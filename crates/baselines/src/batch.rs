//! BATCH — the state-of-the-art OTP (on-top-of-platform) baseline
//! (Ali et al., SC'20), re-hosted on our substrate as the paper does
//! ("we redevelop it atop OpenFaaS and extend its memory-only function
//! profiles with CPU and GPU allocations").
//!
//! What makes it *OTP* rather than native:
//!
//! * **Uniform configuration** — one `(batchsize, resources)` pair per
//!   function, chosen offline from its profile (BATCH "always prefers a
//!   larger batch", Fig. 13b); every instance of the function is
//!   identical and scaling is uniform (instance count only).
//! * **Buffer latency** — the external buffer adds a dispatch delay to
//!   every request before the platform sees it.
//! * **Scheduling blindness** — the buffer cannot see queueing inside
//!   the platform nor steer placement; instances land first-fit. The
//!   **BATCH+RS** variant of Fig. 17b routes the same uniform configs
//!   through a fragmentation-aware best-fit placement instead.
//! * **Fixed keep-alive** — no pre-warming, constant keep-alive window.

use infless_cluster::{ClusterSpec, InstanceConfig, InstanceId, ServerId};
use infless_faults::FaultSchedule;
use infless_models::{profile::ConfigGrid, HardwareModel, ModelSpec, ProfileDatabase};
use infless_sim::{EventQueue, SimDuration, SimTime, StagedStream};
use infless_workload::Workload;
use std::collections::VecDeque;

use infless_core::batching::RpsWindow;
use infless_core::engine::{Engine, EngineEvent, FunctionInfo};
use infless_core::metrics::{RunReport, StartupKind};
use infless_core::predictor::CopPredictor;
use infless_core::router::LeastLoadedScratch;

/// How BATCH places new instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPlacement {
    /// Stock BATCH: the underlying platform's Kubernetes-style
    /// least-allocated spreading — the OTP layer cannot steer placement
    /// (this is what fragments the cluster, Fig. 17b).
    Spread,
    /// BATCH+RS (Fig. 17b): the same uniform configs handed to a
    /// fragmentation-aware best-fit placement.
    BestFit,
}

/// BATCH knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Extra per-request latency added by the OTP buffer layer.
    pub otp_delay: SimDuration,
    /// Fixed keep-alive window.
    pub keep_alive: SimDuration,
    /// Scaling/reap tick period.
    pub tick: SimDuration,
    /// RPS monitor window.
    pub monitor_window: SimDuration,
    /// Placement strategy (FirstFit = BATCH, BestFit = BATCH+RS).
    pub placement: BatchPlacement,
    /// Cap on the uniform batchsize BATCH may choose (the paper's
    /// Fig. 3a experiment fixes b = 4).
    pub max_batch: u32,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            otp_delay: SimDuration::from_millis(8),
            keep_alive: SimDuration::from_secs(300),
            tick: SimDuration::from_secs(1),
            monitor_window: SimDuration::from_secs(10),
            placement: BatchPlacement::Spread,
            max_batch: u32::MAX,
        }
    }
}

/// The uniform per-function plan BATCH derives offline.
#[derive(Debug, Clone, Copy)]
pub struct UniformPlan {
    /// The single `(b, c, g)` every instance of the function uses.
    pub config: InstanceConfig,
    /// The feasible window under BATCH's own (conservative) profile.
    pub window: RpsWindow,
    /// The batch queueing budget.
    pub wait_budget: SimDuration,
}

#[derive(Debug)]
struct FnState {
    plan: Option<UniformPlan>,
    recent_arrivals: VecDeque<SimTime>,
    /// The OTP buffer: requests wait here centrally until a platform
    /// instance has queue space. BATCH's buffer is SLO-aware: it admits
    /// only as much backlog as the current fleet can drain in a couple
    /// of batch rounds — holding more would guarantee timeouts.
    buffer: VecDeque<infless_cluster::Request>,
}

/// The BATCH platform.
///
/// # Example
///
/// ```
/// use infless_baselines::BatchPlatform;
/// use infless_cluster::ClusterSpec;
/// use infless_core::apps::Application;
/// use infless_sim::SimDuration;
/// use infless_workload::{FunctionLoad, Workload};
///
/// let app = Application::osvt();
/// let loads: Vec<_> = app.functions().iter()
///     .map(|_| FunctionLoad::constant(20.0, SimDuration::from_secs(10)))
///     .collect();
/// let workload = Workload::build(&loads, 2);
/// let report = BatchPlatform::new(ClusterSpec::testbed(), app.functions().to_vec(), 2)
///     .run(&workload);
/// assert!(report.total_completed() > 0);
/// ```
#[derive(Debug)]
pub struct BatchPlatform {
    engine: Engine,
    config: BatchConfig,
    fns: Vec<FnState>,
    faults: FaultSchedule,
    route_scratch: LeastLoadedScratch,
}

impl BatchPlatform {
    /// Builds the platform with default settings.
    pub fn new(cluster: ClusterSpec, functions: Vec<FunctionInfo>, seed: u64) -> Self {
        Self::with_config(cluster, functions, BatchConfig::default(), seed)
    }

    /// Builds the platform with custom settings (e.g. BATCH+RS).
    pub fn with_config(
        cluster: ClusterSpec,
        functions: Vec<FunctionInfo>,
        config: BatchConfig,
        seed: u64,
    ) -> Self {
        let construction_started = std::time::Instant::now();
        let hardware = HardwareModel::default();
        let specs: Vec<ModelSpec> = functions.iter().map(|f| f.spec().clone()).collect();
        let (db, cache_outcome) =
            ProfileDatabase::cached_with_outcome(&hardware, &specs, &ConfigGrid::standard(), seed);
        let predictor = CopPredictor::new(db, hardware.clone());
        let name = match config.placement {
            BatchPlacement::Spread => "BATCH",
            BatchPlacement::BestFit => "BATCH+RS",
        };
        // Offline uniform profiling: largest feasible batch, then the
        // configuration with the highest absolute throughput.
        let fns: Vec<FnState> = functions
            .iter()
            .map(|f| FnState {
                plan: uniform_plan(&predictor, f, config.otp_delay, config.max_batch),
                recent_arrivals: VecDeque::new(),
                buffer: VecDeque::new(),
            })
            .collect();
        let mut engine = Engine::new(name, cluster, hardware, functions, seed);
        engine.collector.mark_started(construction_started);
        engine.collector.set_profile_cache(cache_outcome);
        BatchPlatform {
            engine,
            config,
            fns,
            faults: FaultSchedule::empty(),
            route_scratch: LeastLoadedScratch::default(),
        }
    }

    /// Attaches a fault schedule to inject during [`Self::run`]. The
    /// default (an empty schedule) changes nothing.
    pub fn with_fault_schedule(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a telemetry sink (the default no-op sink records
    /// nothing and changes nothing).
    pub fn with_telemetry(mut self, sink: Box<dyn infless_telemetry::TelemetrySink>) -> Self {
        self.engine.set_telemetry(sink);
        self
    }

    /// Attaches a shared metrics registry, fed at every scaler tick.
    /// The registry never feeds back into the simulation.
    pub fn with_metrics(mut self, handle: infless_telemetry::MetricsHandle) -> Self {
        self.engine.set_metrics(handle);
        self
    }

    /// Applies the autoregressive serving knobs: decode-batching
    /// discipline plus device-memory booking for KV arenas. A disabled
    /// config is a no-op (runs stay bit-identical).
    pub fn with_llm(mut self, llm: infless_llm::LlmConfig) -> Self {
        if llm.enabled {
            self.engine.set_llm_batching(llm.batching);
            self.engine.enable_device_memory();
        }
        self
    }

    /// The uniform batchsize chosen for function `f` (None if no
    /// feasible configuration exists).
    pub fn uniform_batch(&self, f: usize) -> Option<u32> {
        self.fns[f].plan.map(|p| p.config.batch())
    }

    /// Runs the workload to completion.
    pub fn run(mut self, workload: &Workload) -> RunReport {
        let mut queue: EventQueue<EngineEvent> = EventQueue::new();
        // The OTP buffer forwards each request after its dispatch
        // delay; the uniform shift keeps the list sorted, so it can
        // merge ahead of the heap (arrivals win equal-timestamp ties,
        // exactly as when pre-scheduled).
        let shifted: Vec<(SimTime, usize)> = workload
            .arrivals()
            .iter()
            .map(|&(t, f)| (t + self.config.otp_delay, f))
            .collect();
        let mut arrivals = StagedStream::new(&shifted);
        let tick_horizon = workload.end_time() + SimDuration::from_secs(5);
        if !workload.is_empty() {
            queue.schedule(SimTime::ZERO + self.config.tick, EngineEvent::ScalerTick);
        }
        let faults = std::mem::take(&mut self.faults);
        for &(t, ev) in faults.events() {
            queue.schedule(t, EngineEvent::Fault(ev));
        }
        while let Some((t, ev)) = arrivals.next(&mut queue, EngineEvent::Arrival) {
            self.engine.advance(t);
            match ev {
                EngineEvent::Arrival(f) => self.on_arrival(f, &mut queue),
                EngineEvent::InstanceReady(id) => {
                    let function = self
                        .engine
                        .is_live(id)
                        .then(|| self.engine.instance(id).function().raw());
                    self.engine.on_instance_ready(id, &mut queue);
                    if let Some(f) = function {
                        self.pump(f, &mut queue);
                    }
                }
                // Never scheduled here (BATCH boots cold), but handled
                // totally, mirroring InstanceReady.
                EngineEvent::SwapComplete(id) => {
                    let function = self
                        .engine
                        .is_live(id)
                        .then(|| self.engine.instance(id).function().raw());
                    self.engine.on_swap_complete(id, &mut queue);
                    if let Some(f) = function {
                        self.pump(f, &mut queue);
                    }
                }
                EngineEvent::BatchTimeout(id) => self.engine.on_batch_timeout(id, &mut queue),
                EngineEvent::BatchComplete(id) => {
                    // Stale if a fault killed the instance mid-batch.
                    if let Some(done) = self.engine.on_batch_complete(id, &mut queue) {
                        self.pump(done.function, &mut queue);
                    }
                }
                EngineEvent::DecodeStep(id) => {
                    // Some only when the episode drained (instance idle).
                    if let Some(done) = self.engine.on_decode_step(id, &mut queue) {
                        self.pump(done.function, &mut queue);
                    }
                }
                EngineEvent::ScalerTick => {
                    self.tick(t, &mut queue);
                    if t < tick_horizon {
                        queue.schedule(t + self.config.tick, EngineEvent::ScalerTick);
                    }
                }
                EngineEvent::Fault(fault) => self.handle_fault(fault, &mut queue),
                // Coordinator directives exist only on the sharded
                // INFless path; baselines never schedule them.
                EngineEvent::DirectiveKill(..) | EngineEvent::DirectiveStraggler { .. } => {
                    unreachable!("fault directives are never scheduled on the BATCH baseline")
                }
            }
        }
        self.engine.finish()
    }

    /// Applies one injected fault. Displaced requests whose SLO budget
    /// survives (and that still fit the admission cap) re-enter the
    /// front of the OTP buffer — they arrived first — and the affected
    /// functions are pumped immediately; replacement capacity itself
    /// only appears at the next scaling tick, as BATCH's OTP layer
    /// cannot react faster than its control loop.
    fn handle_fault(
        &mut self,
        fault: infless_faults::FaultEvent,
        queue: &mut EventQueue<EngineEvent>,
    ) {
        let outcome = self.engine.on_fault(fault);
        if outcome.killed.is_empty() && outcome.displaced.is_empty() {
            return;
        }
        let now = self.engine.now();
        // Reverse order + push_front keeps the buffer arrival-ordered.
        for req in outcome.displaced.into_iter().rev() {
            let f = req.function.raw();
            let slo = self.engine.functions()[f].slo();
            let within_budget = now.saturating_since(req.arrival) < slo;
            if within_budget
                && self.fns[f].plan.is_some()
                && self.fns[f].buffer.len() < self.buffer_cap(f)
            {
                self.fns[f].buffer.push_front(req);
                self.engine.record_retry(&req);
            } else {
                self.engine.shed_request(&req);
            }
        }
        let mut affected: Vec<usize> = outcome.killed.iter().map(|&(f, _)| f).collect();
        affected.sort_unstable();
        affected.dedup();
        for f in affected {
            self.pump(f, queue);
        }
    }

    fn on_arrival(&mut self, f: usize, queue: &mut EventQueue<EngineEvent>) {
        let now = self.engine.now();
        // True gateway arrival precedes the buffer delay.
        let arrival = now.saturating_sub(self.config.otp_delay);
        let req = self.engine.mint_request_arrived(f, arrival);
        self.fns[f].recent_arrivals.push_back(now);
        let cap = self.buffer_cap(f);
        if self.fns[f].plan.is_none() || self.fns[f].buffer.len() >= cap {
            self.engine.drop_request(&req);
            return;
        }
        self.fns[f].buffer.push_back(req);
        self.pump(f, queue);
    }

    /// The SLO-aware admission cap: roughly two batch rounds of backlog
    /// per live instance (plus slack for the cold-start ramp while no
    /// instance exists yet).
    fn buffer_cap(&self, f: usize) -> usize {
        let Some(plan) = self.fns[f].plan else {
            return 0;
        };
        let live = self.engine.instances_of(f).len();
        let b = plan.config.batch() as usize;
        (2 * b * live).max(4 * b)
    }

    /// Moves buffered requests into platform instances with queue
    /// space, least-loaded first. Scaling itself is tick-driven; the
    /// buffer only absorbs what the current fleet cannot.
    fn pump(&mut self, f: usize, queue: &mut EventQueue<EngineEvent>) {
        // Order once per pump (least-loaded first, via the shared
        // routing scratch — no fresh Vec per call) and rotate through
        // the fleet; re-sorting per buffered request would cost
        // O(backlog · n log n) for no better balance.
        let engine = &self.engine;
        let ordered = self
            .route_scratch
            .order(engine.instances_of(f), |id| engine.instance(id).queue_len());
        let n = ordered.len();
        if n == 0 {
            return;
        }
        let mut cursor = 0usize;
        while let Some(&req) = self.fns[f].buffer.front() {
            let mut placed = false;
            for _ in 0..n {
                let id = ordered[cursor % n];
                cursor += 1;
                if self.engine.enqueue(id, req, queue) {
                    placed = true;
                    break;
                }
            }
            if placed {
                self.fns[f].buffer.pop_front();
            } else {
                break;
            }
        }
    }

    fn tick(&mut self, now: SimTime, queue: &mut EventQueue<EngineEvent>) {
        for f in 0..self.fns.len() {
            // Monitor.
            let horizon = now.saturating_sub(self.config.monitor_window);
            while let Some(&t) = self.fns[f].recent_arrivals.front() {
                if t < horizon {
                    self.fns[f].recent_arrivals.pop_front();
                } else {
                    break;
                }
            }
            let window = self
                .config
                .monitor_window
                .min(now.saturating_since(SimTime::ZERO))
                .as_secs_f64()
                .max(1.0);
            let rps = self.fns[f].recent_arrivals.len() as f64 / window;

            let Some(plan) = self.fns[f].plan else {
                continue;
            };
            // Uniform scaling: n = ceil(R / r_up), plus one catch-up
            // instance per tick while the buffer holds a backlog.
            let mut desired = (rps / plan.window.r_up()).ceil() as usize;
            if self.fns[f].buffer.len() > plan.config.batch() as usize {
                desired += 1;
            }
            let live = self.engine.instances_of(f).len();
            for _ in live..desired {
                if self.launch(f, plan, queue).is_none() {
                    break;
                }
            }
            self.pump(f, queue);
            // Fixed keep-alive reaping (no proactive scale-in).
            let dead: Vec<InstanceId> = self
                .engine
                .instances_of(f)
                .iter()
                .copied()
                .filter(|id| self.engine.instance(*id).idle_for(now) > self.config.keep_alive)
                .collect();
            for id in dead {
                self.engine.retire(id);
            }
        }
        let beta = self.engine.beta();
        let frag = self.engine.cluster().fragment_ratio(beta);
        self.engine.collector.fragment_sample(frag);
        let used = self.engine.cluster().weighted_in_use(beta);
        self.engine.collector.provision_point(now, used);
        self.engine.sample_telemetry();
    }

    fn launch(
        &mut self,
        f: usize,
        plan: UniformPlan,
        queue: &mut EventQueue<EngineEvent>,
    ) -> Option<InstanceId> {
        // The OTP buffer cannot pre-warm inside the platform: every
        // launch pays the full cold start.
        let startup = StartupKind::Cold;
        let server = match self.config.placement {
            BatchPlacement::Spread => self.spread_server(plan.config)?,
            BatchPlacement::BestFit => self.best_fit_server(plan.config)?,
        };
        self.engine
            .launch_on(f, server, plan.config, startup, plan.wait_budget, queue)
            .ok()
    }

    /// Stock placement: the fitting server with the *most* free
    /// capacity (Kubernetes least-allocated spreading).
    fn spread_server(&self, config: InstanceConfig) -> Option<ServerId> {
        let beta = self.engine.beta();
        self.engine
            .cluster()
            .servers()
            .iter()
            .filter(|s| s.fits(config.resources()))
            .max_by(|a, b| {
                let fa = beta * f64::from(a.cpu_free()) + f64::from(a.gpu_free_total());
                let fb = beta * f64::from(b.cpu_free()) + f64::from(b.gpu_free_total());
                fa.partial_cmp(&fb).expect("finite")
            })
            .map(|s| s.id())
    }

    /// BATCH+RS placement: the fitting server with the least weighted
    /// free capacity (tightest fit → fewest stranded fragments).
    fn best_fit_server(&self, config: InstanceConfig) -> Option<ServerId> {
        let beta = self.engine.beta();
        self.engine
            .cluster()
            .servers()
            .iter()
            .filter(|s| s.fits(config.resources()))
            .min_by(|a, b| {
                let fa = beta * f64::from(a.cpu_free()) + f64::from(a.gpu_free_total());
                let fb = beta * f64::from(b.cpu_free()) + f64::from(b.gpu_free_total());
                fa.partial_cmp(&fb).expect("finite")
            })
            .map(|s| s.id())
    }
}

/// The relative uncertainty of BATCH's whole-function profiles.
///
/// BATCH profiles *functions* end-to-end (originally memory-only
/// profiles on Lambda, extended here with CPU/GPU dimensions). Those
/// coarse black-box profiles carry substantially more uncertainty than
/// INFless's combined-operator predictions, so BATCH plans against an
/// inflated latency estimate — the same mechanism the paper's OP
/// ablation (Fig. 11) applies to INFless.
pub const BATCH_PROFILE_MARGIN: f64 = 1.3;

/// Chooses BATCH's uniform `(b, c, g)` for a function: the largest
/// batchsize with any SLO-feasible configuration, then the highest
/// absolute throughput configuration at that batchsize.
///
/// The search runs over a *coarse* configuration menu (whole instance
/// sizes, GPU shares in steps of 10 up to 40 %) — an OTP system selects
/// from the platform's preconfigured instance types, it cannot tune
/// arbitrary slices (Fig. 13c shows BATCH using only three ResNet-50
/// configurations) — and against profile estimates inflated by
/// [`BATCH_PROFILE_MARGIN`].
pub fn uniform_plan(
    predictor: &CopPredictor,
    function: &FunctionInfo,
    otp_delay: SimDuration,
    max_batch: u32,
) -> Option<UniformPlan> {
    let slo = function.slo();
    // The buffer delay eats into the latency budget but BATCH cannot
    // see platform internals, so it plans against the reduced budget.
    let effective_slo = slo - otp_delay;
    let cap = max_batch.min(function.max_batch());
    let mut batches: Vec<u32> = predictor
        .grid()
        .batches()
        .iter()
        .copied()
        .filter(|b| *b <= cap)
        .collect();
    batches.sort_unstable();
    let coarse = |cfg: infless_models::ResourceConfig| {
        (cfg.cpu_cores() == 2 || cfg.cpu_cores() == 4)
            && cfg.gpu_pct().is_multiple_of(10)
            && cfg.gpu_pct() <= 40
    };
    for &b in batches.iter().rev() {
        let mut best: Option<(f64, UniformPlan)> = None;
        for &cfg in predictor.grid().configs() {
            if !coarse(cfg) {
                continue;
            }
            let Some(t_raw) = predictor.predict(function.spec(), b, cfg) else {
                continue;
            };
            let t_exec = t_raw.mul_f64(BATCH_PROFILE_MARGIN);
            let Some(window) = RpsWindow::for_instance(t_exec, effective_slo, b) else {
                continue;
            };
            let wait_budget = (effective_slo - t_exec).max(SimDuration::from_millis(1));
            let plan = UniformPlan {
                config: InstanceConfig::new(b, cfg),
                window,
                wait_budget,
            };
            if best.as_ref().is_none_or(|(r, _)| window.r_up() > *r) {
                best = Some((window.r_up(), plan));
            }
        }
        if let Some((_, plan)) = best {
            return Some(plan);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use infless_core::apps::Application;
    use infless_workload::FunctionLoad;

    fn platform(app: &Application) -> BatchPlatform {
        BatchPlatform::new(ClusterSpec::testbed(), app.functions().to_vec(), 9)
    }

    fn run(app: Application, rps: f64, secs: u64) -> RunReport {
        let loads: Vec<FunctionLoad> = app
            .functions()
            .iter()
            .map(|_| FunctionLoad::constant(rps, SimDuration::from_secs(secs)))
            .collect();
        let workload = Workload::build(&loads, 9);
        platform(&app).run(&workload)
    }

    #[test]
    fn prefers_large_uniform_batches() {
        // Fig. 13b: BATCH mainly uses large batchsizes regardless of
        // the actual arrival rate.
        let app = Application::osvt();
        let p = platform(&app);
        for f in 0..app.functions().len() {
            let b = p.uniform_batch(f).expect("feasible");
            assert!(b >= 8, "function {f}: uniform batch {b} too small");
        }
    }

    #[test]
    fn every_function_uses_one_batchsize() {
        let report = run(Application::osvt(), 60.0, 30);
        for f in &report.functions {
            assert!(
                f.per_batch_completed.len() <= 1,
                "{}: BATCH must be uniform, got {:?}",
                f.name,
                f.per_batch_completed
            );
        }
    }

    #[test]
    fn otp_delay_inflates_latency() {
        let report = run(Application::osvt(), 60.0, 30);
        for f in &report.functions {
            if f.completed == 0 {
                continue;
            }
            let lat = &f.latency_ms;
            let min = lat.quantile(0.0).unwrap();
            assert!(
                min >= 8.0,
                "{}: minimum latency {min}ms below the OTP delay",
                f.name
            );
        }
    }

    #[test]
    fn serves_most_requests_under_moderate_load() {
        let report = run(Application::osvt(), 60.0, 40);
        let total = report.total_completed() + report.total_dropped();
        assert!(report.total_completed() as f64 / total as f64 > 0.9);
    }

    #[test]
    fn best_fit_reduces_fragments() {
        let app = Application::combined();
        let loads: Vec<FunctionLoad> = app
            .functions()
            .iter()
            .map(|_| FunctionLoad::constant(80.0, SimDuration::from_secs(30)))
            .collect();
        let workload = Workload::build(&loads, 4);
        let frag = |placement: BatchPlacement| {
            let cfg = BatchConfig {
                placement,
                ..BatchConfig::default()
            };
            let report = BatchPlatform::with_config(
                ClusterSpec::testbed(),
                app.functions().to_vec(),
                cfg,
                4,
            )
            .run(&workload);
            let s = &report.fragment_samples;
            s.quantile(0.5).unwrap_or(0.0)
        };
        let first_fit = frag(BatchPlacement::Spread);
        let best_fit = frag(BatchPlacement::BestFit);
        assert!(
            best_fit <= first_fit + 0.05,
            "BATCH+RS should not fragment more: {best_fit} vs {first_fit}"
        );
    }

    #[test]
    fn deterministic() {
        let a = run(Application::qa_robot(), 40.0, 20);
        let b = run(Application::qa_robot(), 40.0, 20);
        assert_eq!(a.total_completed(), b.total_completed());
        assert_eq!(a.launches, b.launches);
    }
}
