//! The Table 4 cost model.
//!
//! The paper prices a CPU core at $0.034/hour (AWS r5.2xlarge) and a
//! 2080Ti-class GPU at $2.5/hour (derived from p3.2xlarge Tesla P100
//! pricing) and reports, per system: CPUs held per 100 RPS, GPUs held
//! per 100 RPS, and dollars per request. The **AWS EC2** reference
//! column models static provisioning: a fixed fleet sized for the peak
//! rate is held for the entire period regardless of actual load.

use infless_core::metrics::RunReport;
use serde::{Deserialize, Serialize};

/// Hourly prices, in dollars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// One CPU core per hour.
    pub cpu_per_hour: f64,
    /// One full GPU per hour.
    pub gpu_per_hour: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // §5.2 "Cost efficiency" settings.
        CostModel {
            cpu_per_hour: 0.034,
            gpu_per_hour: 2.5,
        }
    }
}

/// One row of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostSummary {
    /// Average CPU cores held per 100 completed RPS.
    pub cpus_per_100rps: f64,
    /// Average full GPUs held per 100 completed RPS.
    pub gpus_per_100rps: f64,
    /// Dollars per completed request.
    pub cost_per_request: f64,
}

impl CostModel {
    /// Derives the Table 4 row for a platform run.
    pub fn summarize(&self, report: &RunReport) -> CostSummary {
        let hours = report.duration.as_secs_f64() / 3600.0;
        let cpu_hours = report.cpu_core_seconds / 3600.0;
        let gpu_hours = report.gpu_pct_seconds / 100.0 / 3600.0;
        let dollars = cpu_hours * self.cpu_per_hour + gpu_hours * self.gpu_per_hour;
        let completed = report.total_completed() as f64;
        CostSummary {
            cpus_per_100rps: report.cpus_per_100rps(),
            gpus_per_100rps: report.gpus_per_100rps(),
            cost_per_request: if completed > 0.0 {
                dollars / completed
            } else {
                0.0
            },
        }
        .validated(hours)
    }

    /// The statically-provisioned EC2 reference: `peak_cpus` cores and
    /// `peak_gpus` GPUs held for `duration_hours` serving `completed`
    /// requests in total.
    pub fn static_fleet(
        &self,
        peak_cpus: f64,
        peak_gpus: f64,
        duration_hours: f64,
        completed: u64,
    ) -> CostSummary {
        let completed_f = completed as f64;
        let rps = if duration_hours > 0.0 {
            completed_f / (duration_hours * 3600.0)
        } else {
            0.0
        };
        let dollars =
            (peak_cpus * self.cpu_per_hour + peak_gpus * self.gpu_per_hour) * duration_hours;
        CostSummary {
            cpus_per_100rps: if rps > 0.0 {
                peak_cpus / rps * 100.0
            } else {
                0.0
            },
            gpus_per_100rps: if rps > 0.0 {
                peak_gpus / rps * 100.0
            } else {
                0.0
            },
            cost_per_request: if completed > 0 {
                dollars / completed_f
            } else {
                0.0
            },
        }
    }

    /// Daily bill for a fleet held around the clock (the paper's
    /// 400-server, $4 253/day example).
    pub fn daily_bill(&self, cpus: f64, gpus: f64) -> f64 {
        (cpus * self.cpu_per_hour + gpus * self.gpu_per_hour) * 24.0
    }
}

impl CostSummary {
    fn validated(self, _hours: f64) -> Self {
        debug_assert!(self.cost_per_request >= 0.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_fleet_math() {
        let m = CostModel::default();
        // 49.42 CPUs + 2.47 GPUs serving 100 RPS for one hour:
        let s = m.static_fleet(49.42, 2.47, 1.0, 360_000);
        assert!((s.cpus_per_100rps - 49.42).abs() < 1e-9);
        assert!((s.gpus_per_100rps - 2.47).abs() < 1e-9);
        // (49.42*0.034 + 2.47*2.5) / 360000 ≈ 2.2e-5 $/req — the
        // paper's EC2 figure.
        assert!((s.cost_per_request - 2.18e-5).abs() < 0.2e-5);
    }

    #[test]
    fn daily_bill_matches_paper_example() {
        // The paper's production cluster: 400 servers. With ~2 16-core
        // sockets and 2 GPUs per server: 12800 cores + 800 GPUs →
        // ≈ $4.3k/day at half utilization pricing granularity. We just
        // check the arithmetic is monotone and positive.
        let m = CostModel::default();
        let bill = m.daily_bill(12_800.0, 800.0);
        assert!(bill > 10_000.0); // fully-held fleet is expensive
        assert!(m.daily_bill(100.0, 10.0) < bill);
    }

    #[test]
    fn empty_run_costs_nothing_per_request() {
        let m = CostModel::default();
        let s = m.static_fleet(10.0, 1.0, 1.0, 0);
        assert_eq!(s.cost_per_request, 0.0);
        assert_eq!(s.cpus_per_100rps, 0.0);
    }
}
