//! An AWS-Lambda-like platform model for the §2 motivation study.
//!
//! Commercial serverless platforms allocate CPU power in proportion to
//! the configured memory (AWS Lambda: ~1 vCPU per 1769 MB, capped
//! around 3 GB at the time of the paper) and offer no accelerators.
//! This module reproduces the three motivation figures:
//!
//! * Fig. 2(a) — invocation latency per model × memory size, no
//!   batching;
//! * Fig. 2(b) — the same with OTP batching (b = 4/8), where batching
//!   multiplies the CPU work;
//! * Fig. 2(c) — the memory over-provisioning needed to reach the
//!   200 ms SLO versus the memory actually consumed.

use infless_models::{HardwareModel, ModelSpec};
use infless_sim::SimDuration;

/// The Lambda memory ladder the paper sweeps (MB).
pub const LAMBDA_MEMORY_STEPS_MB: [u32; 6] = [128, 256, 512, 1024, 1792, 3072];

/// MB of memory per vCPU in the proportional allocation.
const MB_PER_VCPU: f64 = 1769.0;

/// Multiplicative slowdown of Lambda's virtualized runtime relative to
/// bare-metal cores (Firecracker + managed-runtime overheads; Wang et
/// al., ATC'18 measure comparable gaps).
const VIRTUALIZATION_OVERHEAD: f64 = 1.15;

/// The Lambda-like platform model.
///
/// # Example
///
/// ```
/// use infless_baselines::LambdaModel;
/// use infless_models::ModelId;
///
/// let lambda = LambdaModel::new();
/// let mnist = ModelId::Mnist.spec();
/// let t = lambda.invoke_latency(&mnist, 1, 512).expect("fits in 512MB");
/// assert!(t.as_millis_f64() < 50.0);
/// // Bert-v1 cannot even load in 128 MB.
/// assert!(lambda.invoke_latency(&ModelId::BertV1.spec(), 1, 128).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct LambdaModel {
    hardware: HardwareModel,
}

impl LambdaModel {
    /// Creates the model with default hardware calibration.
    pub fn new() -> Self {
        LambdaModel {
            hardware: HardwareModel::default(),
        }
    }

    /// The memory footprint a function needs to load `spec` (model
    /// artifact + serving runtime).
    pub fn required_memory_mb(&self, spec: &ModelSpec) -> f64 {
        self.hardware.instance_memory_mb(spec)
    }

    /// The vCPU share a memory configuration buys.
    pub fn vcpus(&self, memory_mb: u32) -> f64 {
        f64::from(memory_mb) / MB_PER_VCPU
    }

    /// Warm invocation latency of `spec` at batchsize `batch` under a
    /// `memory_mb` configuration, or `None` when the model does not fit
    /// in memory (the × cells of Fig. 2a/b).
    pub fn invoke_latency(
        &self,
        spec: &ModelSpec,
        batch: u32,
        memory_mb: u32,
    ) -> Option<SimDuration> {
        if f64::from(memory_mb) < self.required_memory_mb(spec) {
            return None;
        }
        let secs = self
            .hardware
            .model_latency_cpu_fractional(spec, batch, self.vcpus(memory_mb));
        Some(SimDuration::from_secs_f64(secs * VIRTUALIZATION_OVERHEAD))
    }

    /// The smallest ladder memory size meeting `slo` at `batch`, if any
    /// (Fig. 2c, left bar).
    pub fn min_memory_for_slo(
        &self,
        spec: &ModelSpec,
        batch: u32,
        slo: SimDuration,
    ) -> Option<u32> {
        LAMBDA_MEMORY_STEPS_MB.iter().copied().find(|&mb| {
            self.invoke_latency(spec, batch, mb)
                .is_some_and(|t| t <= slo)
        })
    }

    /// Fraction of the SLO-satisfying memory configuration that is
    /// over-provisioned beyond the actual footprint (Fig. 2c). `None`
    /// when no ladder step meets the SLO.
    pub fn overprovision_fraction(
        &self,
        spec: &ModelSpec,
        batch: u32,
        slo: SimDuration,
    ) -> Option<f64> {
        let configured = f64::from(self.min_memory_for_slo(spec, batch, slo)?);
        let used = self.required_memory_mb(spec);
        Some(((configured - used) / configured).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infless_models::ModelId;

    fn lambda() -> LambdaModel {
        LambdaModel::new()
    }

    #[test]
    fn proportional_cpu_allocation() {
        let l = lambda();
        assert!((l.vcpus(1769) - 1.0).abs() < 1e-9);
        assert!(l.vcpus(128) < 0.1);
    }

    #[test]
    fn small_models_fast_everywhere_they_fit() {
        // Fig. 2a: MNIST/TextCNN respond within 50 ms at every memory
        // size that can load them.
        let l = lambda();
        for id in [ModelId::Mnist, ModelId::TextCnn69] {
            let spec = id.spec();
            for mb in LAMBDA_MEMORY_STEPS_MB {
                if let Some(t) = l.invoke_latency(&spec, 1, mb) {
                    if l.vcpus(mb) >= 0.5 {
                        assert!(t.as_millis_f64() < 50.0, "{id} at {mb}MB: {t}");
                    }
                }
            }
        }
    }

    #[test]
    fn large_models_miss_200ms_even_at_max_memory() {
        // Observation #1: Bert-v1, ResNet-50, VGGNet exceed 200 ms even
        // at the largest configuration.
        let l = lambda();
        for id in [ModelId::BertV1, ModelId::ResNet50, ModelId::VggNet] {
            let spec = id.spec();
            let t = l.invoke_latency(&spec, 1, 3072).expect("loads at 3GB");
            assert!(
                t.as_millis_f64() > 200.0,
                "{id} at 3GB: {t} unexpectedly meets the SLO"
            );
            assert!(l
                .min_memory_for_slo(&spec, 1, SimDuration::from_millis(200))
                .is_none());
        }
    }

    #[test]
    fn batching_pushes_medium_models_past_the_slo() {
        // Observation #2: with OTP batching (b=4/8) several models that
        // met 200 ms at b=1 no longer do.
        let l = lambda();
        let slo = SimDuration::from_millis(200);
        let mut flipped = 0;
        for id in ModelId::all() {
            let spec = id.spec();
            let ok_b1 = l.min_memory_for_slo(&spec, 1, slo).is_some();
            let ok_b8 = l.min_memory_for_slo(&spec, 8, slo).is_some();
            if ok_b1 && !ok_b8 {
                flipped += 1;
            }
        }
        assert!(
            flipped >= 2,
            "batching should break the SLO for some models, flipped={flipped}"
        );
    }

    #[test]
    fn memory_is_overprovisioned_for_compute() {
        // Observation #3: the memory bought to obtain CPU far exceeds
        // the memory actually consumed.
        let l = lambda();
        let slo = SimDuration::from_millis(200);
        let ssd = ModelId::Ssd.spec();
        let frac = l
            .overprovision_fraction(&ssd, 1, slo)
            .expect("SSD meets 200 ms at some memory size");
        assert!(frac > 0.3, "SSD over-provisioning only {frac}");
    }

    #[test]
    fn tiny_memory_cannot_load_big_models() {
        let l = lambda();
        assert!(l
            .invoke_latency(&ModelId::ResNet50.spec(), 1, 128)
            .is_none());
        assert!(l.invoke_latency(&ModelId::Mnist.spec(), 1, 256).is_some());
    }
}
