//! Baseline systems the paper compares INFless against (§5.1, Table 3).
//!
//! * [`OpenFaasPlus`] — the enhanced OpenFaaS baseline: GPU support
//!   added for fairness, but one-to-one request→instance mapping (no
//!   batching), a uniform fixed instance configuration (2 CPU cores +
//!   10 % GPU SMs) and a fixed 300 s keep-alive window.
//! * [`BatchPlatform`] — the BATCH system (Ali et al., SC'20),
//!   re-hosted on the same substrate as in the paper: on-top-of-platform
//!   adaptive batching with a *uniform* per-function batch/resource
//!   configuration, uniform scaling, a fixed keep-alive window and the
//!   OTP buffer's extra dispatch latency. A best-fit placement variant
//!   gives the paper's **BATCH+RS** system (Fig. 17b).
//! * [`Torpor`] — a GPU-memory-tier baseline (Yu et al.): the same
//!   reactive semantics as OpenFaaS+, but every model's weights stay
//!   pinned in host RAM and a launch is a pipelined PCIe swap-in
//!   instead of a container boot + disk load.
//! * [`lambda`] — an AWS-Lambda-like platform model (proportional
//!   CPU-memory allocation, CPU only) for the §2 motivation study
//!   (Fig. 2, Fig. 3).
//! * [`cost`] — the Table 4 cost model (CPU $0.034/h, 2080Ti $2.5/h)
//!   plus the statically-provisioned EC2 reference point.
//!
//! All platforms run on `infless-core`'s [`Engine`](infless_core::Engine)
//! so that differences in results come from policy, not plumbing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cost;
pub mod lambda;
pub mod openfaas;
pub mod torpor;

pub use batch::{
    uniform_plan, BatchConfig, BatchPlacement, BatchPlatform, UniformPlan, BATCH_PROFILE_MARGIN,
};
pub use cost::{CostModel, CostSummary};
pub use lambda::{LambdaModel, LAMBDA_MEMORY_STEPS_MB};
pub use openfaas::{OpenFaasConfig, OpenFaasPlus};
pub use torpor::{Torpor, TorporConfig};
