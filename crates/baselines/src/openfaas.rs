//! OpenFaaS+ — the enhanced-OpenFaaS baseline of §5.1.
//!
//! The paper grants the stock platform GPU access for a fair
//! comparison, but keeps its serverless semantics: every request maps
//! one-to-one onto an instance (batchsize 1), every instance gets the
//! same fixed allocation (2 CPU cores + 10 % GPU SMs), scaling is
//! purely reactive (a request with no free instance triggers a launch),
//! and idle instances die after a fixed 300-second keep-alive.

use infless_cluster::{ClusterSpec, InstanceConfig, InstanceId, InstanceState, Request};
use infless_faults::FaultSchedule;
use infless_models::{HardwareModel, ResourceConfig};
use infless_sim::{EventQueue, SimDuration, SimTime, StagedStream};
use infless_workload::Workload;

use infless_core::engine::{Engine, EngineEvent, FunctionInfo};
use infless_core::metrics::{RunReport, StartupKind};
use infless_core::router::LeastLoadedScratch;

/// OpenFaaS+ knobs (§5.1 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenFaasConfig {
    /// The uniform per-instance allocation ("2 CPU cores and 10% GPU
    /// SMs").
    pub instance_resources: ResourceConfig,
    /// The fixed keep-alive window (300 s).
    pub keep_alive: SimDuration,
    /// Idle-reap check period.
    pub reap_period: SimDuration,
    /// Maximum concurrently cold-starting pods per function — real
    /// OpenFaaS/Kubernetes scale in rate-limited steps rather than one
    /// pod per queued request.
    pub max_concurrent_starts: usize,
}

impl Default for OpenFaasConfig {
    fn default() -> Self {
        OpenFaasConfig {
            instance_resources: ResourceConfig::new(2, 10),
            keep_alive: SimDuration::from_secs(300),
            reap_period: SimDuration::from_secs(1),
            max_concurrent_starts: 8,
        }
    }
}

/// The OpenFaaS+ platform.
///
/// # Example
///
/// ```
/// use infless_baselines::OpenFaasPlus;
/// use infless_cluster::ClusterSpec;
/// use infless_core::apps::Application;
/// use infless_sim::SimDuration;
/// use infless_workload::{FunctionLoad, Workload};
///
/// let app = Application::qa_robot();
/// let loads: Vec<_> = app.functions().iter()
///     .map(|_| FunctionLoad::constant(10.0, SimDuration::from_secs(10)))
///     .collect();
/// let workload = Workload::build(&loads, 1);
/// let report = OpenFaasPlus::new(ClusterSpec::testbed(), app.functions().to_vec(), 1)
///     .run(&workload);
/// assert!(report.total_completed() > 0);
/// ```
#[derive(Debug)]
pub struct OpenFaasPlus {
    engine: Engine,
    config: OpenFaasConfig,
    faults: FaultSchedule,
    route_scratch: LeastLoadedScratch,
}

impl OpenFaasPlus {
    /// Builds the platform with default §5.1 settings.
    pub fn new(cluster: ClusterSpec, functions: Vec<FunctionInfo>, seed: u64) -> Self {
        Self::with_config(cluster, functions, OpenFaasConfig::default(), seed)
    }

    /// Builds the platform with custom settings.
    pub fn with_config(
        cluster: ClusterSpec,
        functions: Vec<FunctionInfo>,
        config: OpenFaasConfig,
        seed: u64,
    ) -> Self {
        let engine = Engine::new(
            "OpenFaaS+",
            cluster,
            HardwareModel::default(),
            functions,
            seed,
        );
        OpenFaasPlus {
            engine,
            config,
            faults: FaultSchedule::empty(),
            route_scratch: LeastLoadedScratch::default(),
        }
    }

    /// Attaches a fault schedule to inject during [`Self::run`]. The
    /// default (an empty schedule) changes nothing.
    pub fn with_fault_schedule(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a telemetry sink (the default no-op sink records
    /// nothing and changes nothing).
    pub fn with_telemetry(mut self, sink: Box<dyn infless_telemetry::TelemetrySink>) -> Self {
        self.engine.set_telemetry(sink);
        self
    }

    /// Attaches a shared metrics registry, fed at every scaler tick.
    /// The registry never feeds back into the simulation.
    pub fn with_metrics(mut self, handle: infless_telemetry::MetricsHandle) -> Self {
        self.engine.set_metrics(handle);
        self
    }

    /// Applies the autoregressive serving knobs: decode-batching
    /// discipline plus device-memory booking for KV arenas. A disabled
    /// config is a no-op (runs stay bit-identical).
    pub fn with_llm(mut self, llm: infless_llm::LlmConfig) -> Self {
        if llm.enabled {
            self.engine.set_llm_batching(llm.batching);
            self.engine.enable_device_memory();
        }
        self
    }

    /// Runs the workload to completion.
    pub fn run(mut self, workload: &Workload) -> RunReport {
        let mut queue: EventQueue<EngineEvent> = EventQueue::new();
        // Merged ahead of the heap; arrivals win equal-timestamp ties
        // (including against faults), exactly as when pre-scheduled.
        let mut arrivals = StagedStream::new(workload.arrivals());
        let tick_horizon = workload.end_time() + SimDuration::from_secs(5);
        if !workload.is_empty() {
            queue.schedule(
                SimTime::ZERO + self.config.reap_period,
                EngineEvent::ScalerTick,
            );
        }
        let faults = std::mem::take(&mut self.faults);
        for &(t, ev) in faults.events() {
            queue.schedule(t, EngineEvent::Fault(ev));
        }
        while let Some((t, ev)) = arrivals.next(&mut queue, EngineEvent::Arrival) {
            self.engine.advance(t);
            match ev {
                EngineEvent::Arrival(f) => self.on_arrival(f, &mut queue),
                EngineEvent::InstanceReady(id) => self.engine.on_instance_ready(id, &mut queue),
                // Never scheduled here (every pod boots cold), but the
                // handler is total for engine-event completeness.
                EngineEvent::SwapComplete(id) => self.engine.on_swap_complete(id, &mut queue),
                EngineEvent::BatchTimeout(id) => self.engine.on_batch_timeout(id, &mut queue),
                EngineEvent::BatchComplete(id) => {
                    // Stale (None) if a fault killed the instance
                    // mid-batch; OpenFaaS has no chain relay to run.
                    self.engine.on_batch_complete(id, &mut queue);
                }
                EngineEvent::DecodeStep(id) => {
                    self.engine.on_decode_step(id, &mut queue);
                }
                EngineEvent::ScalerTick => {
                    self.reap(t);
                    self.sample(t);
                    if t < tick_horizon {
                        queue.schedule(t + self.config.reap_period, EngineEvent::ScalerTick);
                    }
                }
                EngineEvent::Fault(fault) => {
                    // Reactive recovery: displaced requests with SLO
                    // budget left re-enter placement (which launches
                    // replacement pods exactly as a fresh arrival
                    // would); the rest are shed.
                    let outcome = self.engine.on_fault(fault);
                    for req in outcome.displaced {
                        let f = req.function.raw();
                        let slo = self.engine.functions()[f].slo();
                        let now = self.engine.now();
                        if now.saturating_since(req.arrival) < slo && self.place(f, req, &mut queue)
                        {
                            self.engine.record_retry(&req);
                        } else {
                            self.engine.shed_request(&req);
                        }
                    }
                }
                // Coordinator directives exist only on the sharded
                // INFless path; baselines never schedule them.
                EngineEvent::DirectiveKill(..) | EngineEvent::DirectiveStraggler { .. } => {
                    unreachable!("fault directives are never scheduled on the OpenFaaS baseline")
                }
            }
        }
        self.engine.finish()
    }

    /// One-to-one dispatch: a free (idle, empty-queue) instance takes
    /// the request; otherwise a new pod is launched for it — subject to
    /// the platform's scaling rate limit, beyond which the request
    /// queues one-deep behind a busy/starting pod or is rejected.
    fn on_arrival(&mut self, f: usize, queue: &mut EventQueue<EngineEvent>) {
        let req = self.engine.mint_request(f);
        if !self.place(f, req, queue) {
            self.engine.drop_request(&req);
        }
    }

    /// Tries to place `req` (an arrival or a fault-displaced retry);
    /// returns `false` when it could not be accepted anywhere.
    fn place(&mut self, f: usize, req: Request, queue: &mut EventQueue<EngineEvent>) -> bool {
        let now = self.engine.now();
        if let Some(id) = self.free_instance(f, now) {
            let accepted = self.engine.enqueue(id, req, queue);
            debug_assert!(accepted, "a free instance always accepts one request");
            return true;
        }
        // Reactive scale-out: one instance per unserved request. The
        // stock platform has no pre-warming: every pod pays the full
        // container boot + model load. Scaling is rate-limited, as
        // Kubernetes' is.
        let starting = self
            .engine
            .instances_of(f)
            .iter()
            .filter(|id| self.engine.instance(**id).is_starting(now))
            .count();
        if starting < self.config.max_concurrent_starts {
            let cfg = InstanceConfig::new(1, self.config.instance_resources);
            if let Ok(id) =
                self.engine
                    .launch_anywhere(f, cfg, StartupKind::Cold, SimDuration::MAX, queue)
            {
                let accepted = self.engine.enqueue(id, req, queue);
                debug_assert!(accepted);
                return true;
            }
        }
        // Rate-limited (or cluster full): queue one-deep behind any pod
        // with space, else reject.
        let engine = &self.engine;
        let ordered = self
            .route_scratch
            .order(engine.instances_of(f), |id| engine.instance(id).queue_len());
        for &id in ordered {
            if self.engine.enqueue(id, req, queue) {
                return true;
            }
        }
        false
    }

    fn free_instance(&self, f: usize, now: SimTime) -> Option<InstanceId> {
        self.engine.instances_of(f).iter().copied().find(|id| {
            let inst = self.engine.instance(*id);
            inst.queue_len() == 0
                && !inst.is_starting(now)
                && !matches!(inst.state(), InstanceState::Busy { .. })
        })
    }

    fn reap(&mut self, now: SimTime) {
        let dead: Vec<InstanceId> = (0..self.engine.functions().len())
            .flat_map(|f| self.engine.instances_of(f).to_vec())
            .filter(|id| self.engine.instance(*id).idle_for(now) > self.config.keep_alive)
            .collect();
        for id in dead {
            self.engine.retire(id);
        }
    }

    fn sample(&mut self, now: SimTime) {
        let beta = self.engine.beta();
        let frag = self.engine.cluster().fragment_ratio(beta);
        self.engine.collector.fragment_sample(frag);
        let used = self.engine.cluster().weighted_in_use(beta);
        self.engine.collector.provision_point(now, used);
        self.engine.sample_telemetry();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infless_core::apps::Application;
    use infless_workload::FunctionLoad;

    fn run(rps: f64, secs: u64) -> RunReport {
        let app = Application::qa_robot();
        let loads: Vec<FunctionLoad> = app
            .functions()
            .iter()
            .map(|_| FunctionLoad::constant(rps, SimDuration::from_secs(secs)))
            .collect();
        let workload = Workload::build(&loads, 5);
        OpenFaasPlus::new(ClusterSpec::testbed(), app.functions().to_vec(), 5).run(&workload)
    }

    #[test]
    fn serves_requests_one_to_one() {
        let report = run(20.0, 30);
        assert!(report.total_completed() > 0);
        // Everything executes at batchsize 1.
        for f in &report.functions {
            assert!(f.per_batch_completed.keys().all(|b| *b == 1));
        }
    }

    #[test]
    fn spawns_many_instances() {
        // One-to-one mapping creates far more instances than requests
        // strictly need (Observation #4).
        let report = run(50.0, 30);
        assert!(
            report.launches > 20,
            "expected instance sprawl, got {} launches",
            report.launches
        );
    }

    #[test]
    fn fixed_keepalive_retires_nothing_in_short_runs() {
        let report = run(20.0, 30);
        assert_eq!(
            report.retirements, 0,
            "300s keep-alive cannot expire within a 30s run"
        );
    }

    #[test]
    fn drops_when_cluster_exhausted() {
        let app = Application::qa_robot();
        let loads: Vec<FunctionLoad> = app
            .functions()
            .iter()
            .map(|_| FunctionLoad::constant(500.0, SimDuration::from_secs(10)))
            .collect();
        let workload = Workload::build(&loads, 5);
        let tiny = ClusterSpec {
            servers: 1,
            cores_per_server: 4,
            gpus_per_server: 1,
            mem_per_server_mb: 128.0 * 1024.0,
            gpu_mem_per_device_mb: 0.0,
        };
        let report = OpenFaasPlus::new(tiny, app.functions().to_vec(), 5).run(&workload);
        assert!(report.total_dropped() > 0);
    }

    #[test]
    fn deterministic() {
        let a = run(15.0, 20);
        let b = run(15.0, 20);
        assert_eq!(a.total_completed(), b.total_completed());
        assert_eq!(a.launches, b.launches);
    }
}
