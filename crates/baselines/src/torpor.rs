//! Torpor — a GPU-memory-tier baseline built on model swapping.
//!
//! Torpor (Yu et al.) keeps every deployed model's weights pinned in
//! server host RAM and serves a request by *swapping* the model into
//! GPU device memory over PCIe, pipelined with execution — so a
//! "cold" start never pays the container boot + model load from disk,
//! only the (sub-second) swap-in. Everything else mirrors the
//! reactive OpenFaaS+ baseline: one-to-one request→instance mapping,
//! a uniform fixed allocation, a fixed keep-alive window and
//! rate-limited scaling. The difference in the failure sweeps is
//! therefore attributable to exactly one mechanism: swap-based
//! recovery versus boot-based recovery.

use infless_cluster::{ClusterSpec, InstanceConfig, InstanceId, InstanceState, Request};
use infless_faults::FaultSchedule;
use infless_models::{HardwareModel, ResourceConfig};
use infless_sim::{EventQueue, SimDuration, SimTime, StagedStream};
use infless_workload::Workload;

use infless_core::engine::{Engine, EngineEvent, FunctionInfo};
use infless_core::metrics::{RunReport, StartupKind};
use infless_core::router::LeastLoadedScratch;

/// Torpor knobs: the OpenFaaS+ reactive defaults, served from the
/// host-RAM model cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TorporConfig {
    /// The uniform per-instance allocation (2 CPU cores + 10 % GPU
    /// SMs, matching OpenFaaS+ for a like-for-like comparison).
    pub instance_resources: ResourceConfig,
    /// The fixed keep-alive window (300 s).
    pub keep_alive: SimDuration,
    /// Idle-reap check period.
    pub reap_period: SimDuration,
    /// Maximum concurrently starting pods per function.
    pub max_concurrent_starts: usize,
}

impl Default for TorporConfig {
    fn default() -> Self {
        TorporConfig {
            instance_resources: ResourceConfig::new(2, 10),
            keep_alive: SimDuration::from_secs(300),
            reap_period: SimDuration::from_secs(1),
            max_concurrent_starts: 8,
        }
    }
}

/// The Torpor platform.
///
/// # Example
///
/// ```
/// use infless_baselines::Torpor;
/// use infless_cluster::ClusterSpec;
/// use infless_core::apps::Application;
/// use infless_sim::SimDuration;
/// use infless_workload::{FunctionLoad, Workload};
///
/// let app = Application::qa_robot();
/// let loads: Vec<_> = app.functions().iter()
///     .map(|_| FunctionLoad::constant(10.0, SimDuration::from_secs(10)))
///     .collect();
/// let workload = Workload::build(&loads, 1);
/// let report = Torpor::new(ClusterSpec::testbed(), app.functions().to_vec(), 1)
///     .run(&workload);
/// assert!(report.total_completed() > 0);
/// assert!(report.swap_launches > 0);
/// ```
#[derive(Debug)]
pub struct Torpor {
    engine: Engine,
    config: TorporConfig,
    faults: FaultSchedule,
    route_scratch: LeastLoadedScratch,
}

impl Torpor {
    /// Builds the platform with default settings. Every deployed
    /// model is host-resident from deploy time (Torpor pins weights in
    /// server RAM), so the engine books device memory per GPU
    /// placement from the start.
    pub fn new(cluster: ClusterSpec, functions: Vec<FunctionInfo>, seed: u64) -> Self {
        Self::with_config(cluster, functions, TorporConfig::default(), seed)
    }

    /// Builds the platform with custom settings.
    pub fn with_config(
        cluster: ClusterSpec,
        functions: Vec<FunctionInfo>,
        config: TorporConfig,
        seed: u64,
    ) -> Self {
        let mut engine = Engine::new("Torpor", cluster, HardwareModel::default(), functions, seed);
        engine.enable_device_memory();
        Torpor {
            engine,
            config,
            faults: FaultSchedule::empty(),
            route_scratch: LeastLoadedScratch::default(),
        }
    }

    /// Attaches a fault schedule to inject during [`Self::run`]. The
    /// default (an empty schedule) changes nothing.
    pub fn with_fault_schedule(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a telemetry sink (the default no-op sink records
    /// nothing and changes nothing).
    pub fn with_telemetry(mut self, sink: Box<dyn infless_telemetry::TelemetrySink>) -> Self {
        self.engine.set_telemetry(sink);
        self
    }

    /// Attaches a shared metrics registry, fed at every scaler tick.
    /// The registry never feeds back into the simulation.
    pub fn with_metrics(mut self, handle: infless_telemetry::MetricsHandle) -> Self {
        self.engine.set_metrics(handle);
        self
    }

    /// Applies the autoregressive serving knobs: decode-batching
    /// discipline plus device-memory booking for KV arenas (Torpor
    /// books weights already; this adds the arena term). A disabled
    /// config is a no-op (runs stay bit-identical).
    pub fn with_llm(mut self, llm: infless_llm::LlmConfig) -> Self {
        if llm.enabled {
            self.engine.set_llm_batching(llm.batching);
            self.engine.enable_device_memory();
        }
        self
    }

    /// Runs the workload to completion.
    pub fn run(mut self, workload: &Workload) -> RunReport {
        let mut queue: EventQueue<EngineEvent> = EventQueue::new();
        let mut arrivals = StagedStream::new(workload.arrivals());
        let tick_horizon = workload.end_time() + SimDuration::from_secs(5);
        if !workload.is_empty() {
            queue.schedule(
                SimTime::ZERO + self.config.reap_period,
                EngineEvent::ScalerTick,
            );
        }
        let faults = std::mem::take(&mut self.faults);
        for &(t, ev) in faults.events() {
            queue.schedule(t, EngineEvent::Fault(ev));
        }
        while let Some((t, ev)) = arrivals.next(&mut queue, EngineEvent::Arrival) {
            self.engine.advance(t);
            match ev {
                EngineEvent::Arrival(f) => self.on_arrival(f, &mut queue),
                EngineEvent::InstanceReady(id) => self.engine.on_instance_ready(id, &mut queue),
                EngineEvent::SwapComplete(id) => self.engine.on_swap_complete(id, &mut queue),
                EngineEvent::BatchTimeout(id) => self.engine.on_batch_timeout(id, &mut queue),
                EngineEvent::BatchComplete(id) => {
                    self.engine.on_batch_complete(id, &mut queue);
                }
                EngineEvent::DecodeStep(id) => {
                    self.engine.on_decode_step(id, &mut queue);
                }
                EngineEvent::ScalerTick => {
                    self.reap(t);
                    self.sample(t);
                    if t < tick_horizon {
                        queue.schedule(t + self.config.reap_period, EngineEvent::ScalerTick);
                    }
                }
                EngineEvent::Fault(fault) => {
                    // Reactive recovery, like OpenFaaS+ — but the
                    // replacement pods swap in from host RAM instead of
                    // booting from scratch, which is the whole bet.
                    let outcome = self.engine.on_fault(fault);
                    for req in outcome.displaced {
                        let f = req.function.raw();
                        let slo = self.engine.functions()[f].slo();
                        let now = self.engine.now();
                        if now.saturating_since(req.arrival) < slo && self.place(f, req, &mut queue)
                        {
                            self.engine.record_retry(&req);
                        } else {
                            self.engine.shed_request(&req);
                        }
                    }
                }
                EngineEvent::DirectiveKill(..) | EngineEvent::DirectiveStraggler { .. } => {
                    unreachable!("fault directives are never scheduled on the Torpor baseline")
                }
            }
        }
        self.engine.finish()
    }

    fn on_arrival(&mut self, f: usize, queue: &mut EventQueue<EngineEvent>) {
        let req = self.engine.mint_request(f);
        if !self.place(f, req, queue) {
            self.engine.drop_request(&req);
        }
    }

    /// Tries to place `req`; returns `false` when it could not be
    /// accepted anywhere. A launch is a swap-in: the weights are
    /// already in the server's host RAM, only the PCIe upload remains.
    fn place(&mut self, f: usize, req: Request, queue: &mut EventQueue<EngineEvent>) -> bool {
        let now = self.engine.now();
        if let Some(id) = self.free_instance(f, now) {
            let accepted = self.engine.enqueue(id, req, queue);
            debug_assert!(accepted, "a free instance always accepts one request");
            return true;
        }
        let starting = self
            .engine
            .instances_of(f)
            .iter()
            .filter(|id| self.engine.instance(**id).is_starting(now))
            .count();
        if starting < self.config.max_concurrent_starts {
            let cfg = InstanceConfig::new(1, self.config.instance_resources);
            if let Ok(id) =
                self.engine
                    .launch_anywhere(f, cfg, StartupKind::SwapIn, SimDuration::MAX, queue)
            {
                let accepted = self.engine.enqueue(id, req, queue);
                debug_assert!(accepted);
                return true;
            }
        }
        let engine = &self.engine;
        let ordered = self
            .route_scratch
            .order(engine.instances_of(f), |id| engine.instance(id).queue_len());
        for &id in ordered {
            if self.engine.enqueue(id, req, queue) {
                return true;
            }
        }
        false
    }

    fn free_instance(&self, f: usize, now: SimTime) -> Option<InstanceId> {
        self.engine.instances_of(f).iter().copied().find(|id| {
            let inst = self.engine.instance(*id);
            inst.queue_len() == 0
                && !inst.is_starting(now)
                && !matches!(inst.state(), InstanceState::Busy { .. })
        })
    }

    fn reap(&mut self, now: SimTime) {
        let dead: Vec<InstanceId> = (0..self.engine.functions().len())
            .flat_map(|f| self.engine.instances_of(f).to_vec())
            .filter(|id| self.engine.instance(*id).idle_for(now) > self.config.keep_alive)
            .collect();
        for id in dead {
            self.engine.retire(id);
        }
    }

    fn sample(&mut self, now: SimTime) {
        let beta = self.engine.beta();
        let frag = self.engine.cluster().fragment_ratio(beta);
        self.engine.collector.fragment_sample(frag);
        let used = self.engine.cluster().weighted_in_use(beta);
        self.engine.collector.provision_point(now, used);
        self.engine.sample_telemetry();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infless_core::apps::Application;
    use infless_faults::FaultPlan;
    use infless_workload::FunctionLoad;

    fn workload(rps: f64, secs: u64) -> (Application, Workload) {
        let app = Application::qa_robot();
        let loads: Vec<FunctionLoad> = app
            .functions()
            .iter()
            .map(|_| FunctionLoad::constant(rps, SimDuration::from_secs(secs)))
            .collect();
        let w = Workload::build(&loads, 5);
        (app, w)
    }

    fn run(rps: f64, secs: u64) -> RunReport {
        let (app, w) = workload(rps, secs);
        Torpor::new(ClusterSpec::testbed(), app.functions().to_vec(), 5).run(&w)
    }

    #[test]
    fn every_launch_is_a_swap_in() {
        let report = run(20.0, 30);
        assert!(report.total_completed() > 0);
        assert!(report.swap_launches > 0);
        assert_eq!(report.cold_launches, 0, "Torpor never boots from disk");
        assert_eq!(report.swap_launches, report.launches);
    }

    #[test]
    fn swap_starts_beat_openfaas_cold_starts() {
        let (app, w) = workload(20.0, 30);
        let torpor = Torpor::new(ClusterSpec::testbed(), app.functions().to_vec(), 5).run(&w);
        let ofp =
            crate::OpenFaasPlus::new(ClusterSpec::testbed(), app.functions().to_vec(), 5).run(&w);
        assert!(torpor.functions[0].cold_ms.count() > 0);
        assert!(ofp.functions[0].cold_ms.count() > 0);
        let t_cold = torpor.functions[0].cold_ms.mean();
        let o_cold = ofp.functions[0].cold_ms.mean();
        assert!(
            t_cold < o_cold / 2.0,
            "swap-in start ({t_cold:.0} ms) should be far below boot ({o_cold:.0} ms)"
        );
    }

    #[test]
    fn swap_recovery_beats_boot_recovery_under_faults() {
        // Bursty load keeps the reactive fleets launching after the
        // sweep's crashes, so the recapacity probes actually credit;
        // identical seeds on both systems make the gap a pure
        // swap-vs-boot recovery gap.
        use infless_workload::TracePattern;
        let app = Application::qa_robot();
        let dur = SimDuration::from_mins(3);
        let loads: Vec<FunctionLoad> = app
            .functions()
            .iter()
            .map(|_| FunctionLoad::trace(TracePattern::Bursty, 80.0, dur, 42))
            .collect();
        let w = Workload::build(&loads, 42);
        let schedule = || {
            FaultSchedule::generate(
                &FaultPlan::sweep(4.0),
                ClusterSpec::testbed().servers,
                dur,
                9,
            )
        };
        let torpor = Torpor::new(ClusterSpec::testbed(), app.functions().to_vec(), 5)
            .with_fault_schedule(schedule())
            .run(&w);
        let ofp = crate::OpenFaasPlus::new(ClusterSpec::testbed(), app.functions().to_vec(), 5)
            .with_fault_schedule(schedule())
            .run(&w);
        let t = torpor.failures.mean_time_to_recapacity_ms();
        let o = ofp.failures.mean_time_to_recapacity_ms();
        assert!(t.is_some(), "no recapacity samples on the Torpor run");
        assert!(
            t.unwrap() < o.unwrap_or(f64::MAX) / 2.0,
            "swap recovery ({t:?} ms) should clearly beat boot recovery ({o:?} ms)"
        );
    }

    #[test]
    fn deterministic() {
        let a = run(15.0, 20);
        let b = run(15.0, 20);
        assert_eq!(a.total_completed(), b.total_completed());
        assert_eq!(a.launches, b.launches);
        assert_eq!(a.swap_launches, b.swap_launches);
    }
}
