//! Design-choice ablations beyond the paper's Fig. 11 (the DESIGN.md
//! D2–D6 index):
//!
//! * D2 — greedy batch order: largest-first (Algorithm 1) vs
//!   smallest-first;
//! * D3 — placement: Eq. 10 efficiency vs first-fit vs
//!   max-throughput;
//! * D4 — the α hysteresis constant;
//! * D6 — the COP safety offset.

use infless_bench::{constant_workload, header, maybe_quick, pattern_workload, record};
use infless_cluster::ClusterSpec;
use infless_core::apps::Application;
use infless_core::platform::{InflessConfig, InflessPlatform};
use infless_core::predictor::CopPredictor;
use infless_core::scheduler::{PlacementStrategy, Scheduler, SchedulerConfig};
use infless_models::{profile::ConfigGrid, HardwareModel, ModelSpec, ProfileDatabase};
use infless_sim::SimDuration;
use infless_workload::TracePattern;

fn main() {
    let cluster = ClusterSpec::testbed();
    let app = Application::osvt();
    let hw = HardwareModel::default();
    let specs: Vec<ModelSpec> = app.functions().iter().map(|f| f.spec().clone()).collect();
    let db = ProfileDatabase::cached(&hw, &specs, &ConfigGrid::standard(), 50);
    let predictor = CopPredictor::new(db, hw);
    let mut json = serde_json::Map::new();

    // --- D2: greedy order ---------------------------------------------
    header(
        "ablation_design",
        "D2",
        "Greedy batch order: capacity density when scheduling 600 RPS of ResNet-50",
    );
    let mut d2 = Vec::new();
    for (name, largest_first) in [("largest-first", true), ("smallest-first", false)] {
        let mut sched = Scheduler::new(SchedulerConfig {
            largest_batch_first: largest_first,
            ..SchedulerConfig::default()
        });
        let mut c = ClusterSpec::testbed().build();
        let out = sched.schedule(
            &predictor,
            &infless_core::engine::FunctionInfo::new(
                specs[2].clone(),
                SimDuration::from_millis(200),
            ),
            600.0,
            &mut c,
        );
        let cap: f64 = out.instances.iter().map(|i| i.window.r_up()).sum();
        let density = cap / c.weighted_in_use(predictor.beta()).max(1e-9);
        println!(
            "{:<15} instances={:<3} capacity={:>7.0} density={:.2}",
            name,
            out.instances.len(),
            cap,
            density
        );
        d2.push(serde_json::json!({"order": name, "density": density}));
    }
    json.insert("d2_greedy_order".into(), serde_json::json!(d2));
    println!();

    // --- D3: placement strategies at saturation ------------------------
    header(
        "ablation_design",
        "D3",
        "Placement strategy: total capacity extracted at cluster saturation",
    );
    let mut d3 = Vec::new();
    for (name, placement) in [
        ("efficiency (Eq.10)", PlacementStrategy::Efficiency),
        ("first-fit", PlacementStrategy::FirstFit),
        ("max-throughput", PlacementStrategy::MaxThroughput),
    ] {
        let mut sched = Scheduler::new(SchedulerConfig {
            placement,
            ..SchedulerConfig::default()
        });
        let mut c = ClusterSpec::testbed().build();
        let mut cap = 0.0;
        for spec in &specs {
            let out = sched.schedule(
                &predictor,
                &infless_core::engine::FunctionInfo::new(
                    spec.clone(),
                    SimDuration::from_millis(200),
                ),
                1e5,
                &mut c,
            );
            cap += out.instances.iter().map(|i| i.window.r_up()).sum::<f64>();
        }
        let frag = c.fragment_ratio(predictor.beta());
        println!(
            "{:<20} capacity={:>8.0}  fragment ratio={:>5.1}%",
            name,
            cap,
            frag * 100.0
        );
        d3.push(serde_json::json!({"placement": name, "capacity": cap, "fragment_ratio": frag}));
    }
    json.insert("d3_placement".into(), serde_json::json!(d3));
    println!();

    // --- D4: α sweep ----------------------------------------------------
    header(
        "ablation_design",
        "D4",
        "α hysteresis sweep on a bursty trace: launches vs violations",
    );
    let duration = maybe_quick(SimDuration::from_mins(10));
    let workload = pattern_workload(
        app.functions().len(),
        TracePattern::Bursty,
        150.0,
        duration,
        51,
    );
    let mut d4 = Vec::new();
    for alpha in [0.0, 0.4, 0.8, 1.0] {
        let cfg = InflessConfig {
            alpha,
            ..InflessConfig::default()
        };
        let r = InflessPlatform::new(cluster, app.functions().to_vec(), cfg, 51).run(&workload);
        println!(
            "α={alpha:<4} launches={:<4} retirements={:<4} viol={:.2}% thpt/res={:.3}",
            r.launches,
            r.retirements,
            r.violation_rate() * 100.0,
            r.throughput_per_resource()
        );
        d4.push(serde_json::json!({
            "alpha": alpha,
            "launches": r.launches,
            "violation_rate": r.violation_rate(),
            "thpt_per_resource": r.throughput_per_resource(),
        }));
    }
    json.insert("d4_alpha".into(), serde_json::json!(d4));
    println!();

    // --- D6: COP offset sweep -------------------------------------------
    header(
        "ablation_design",
        "D6",
        "COP offset sweep under constant stress: goodput vs safety",
    );
    let stress = constant_workload(
        app.functions().len(),
        800.0,
        maybe_quick(SimDuration::from_secs(60)),
        52,
    );
    let mut d6 = Vec::new();
    for offset in [1.0, 1.1, 1.25, 1.5, 2.0] {
        let cfg = InflessConfig {
            cop_offset: offset,
            ..InflessConfig::default()
        };
        let r = InflessPlatform::new(cluster, app.functions().to_vec(), cfg, 52).run(&stress);
        println!(
            "offset={offset:<5} goodput={:>7.0}rps viol={:.2}% thpt/res={:.3}",
            r.goodput_rps(),
            r.violation_rate() * 100.0,
            r.throughput_per_resource()
        );
        d6.push(serde_json::json!({
            "offset": offset,
            "goodput_rps": r.goodput_rps(),
            "violation_rate": r.violation_rate(),
        }));
    }
    println!("(the paper's 1.10 balances SLO safety against capacity under-estimation)");
    json.insert("d6_offset".into(), serde_json::json!(d6));
    println!();

    // --- D7: MPS interference sensitivity --------------------------------
    header(
        "ablation_design",
        "D7",
        "MPS interference sensitivity: co-located GPU slices under load",
    );
    let load = constant_workload(
        app.functions().len(),
        600.0,
        maybe_quick(SimDuration::from_secs(60)),
        53,
    );
    let mut d7 = Vec::new();
    for k in [0.0, 0.12, 0.3, 0.6] {
        let hw = infless_models::HardwareCalibration {
            mps_interference: k,
            ..Default::default()
        };
        let cfg = InflessConfig {
            hardware: hw,
            ..InflessConfig::default()
        };
        let r = InflessPlatform::new(cluster, app.functions().to_vec(), cfg, 53).run(&load);
        println!(
            "k={k:<5} goodput={:>7.0}rps viol={:.2}% thpt/res={:.3}",
            r.goodput_rps(),
            r.violation_rate() * 100.0,
            r.throughput_per_resource()
        );
        d7.push(serde_json::json!({
            "interference": k,
            "goodput_rps": r.goodput_rps(),
            "violation_rate": r.violation_rate(),
        }));
    }
    println!("(the scheduler's per-instance windows absorb mild interference; heavy\n contention erodes the SLO guarantee — isolation quality matters)");
    json.insert("d7_mps_interference".into(), serde_json::json!(d7));

    record("ablation_design", serde_json::Value::Object(json));
}
