//! Extension experiment: inference function chains (the paper's §7
//! future work).
//!
//! A two-stage OSVT pipeline (SSD → ResNet-50) under one end-to-end
//! SLO, swept across SLO budgets and load levels, comparing the two
//! SLO-splitting policies:
//!
//! * **proportional** — each stage's share matches its minimum
//!   achievable latency (heavy stages get more budget, so the light
//!   stage is pushed toward efficient large-batch configurations);
//! * **equal** — the naive half/half baseline, which starves the heavy
//!   stage at tight budgets.

use infless_bench::{header, maybe_quick, record};
use infless_cluster::ClusterSpec;
use infless_core::chains::{ChainSpec, ChainSplit};
use infless_core::engine::FunctionInfo;
use infless_core::platform::{InflessConfig, InflessPlatform};
use infless_models::ModelId;
use infless_sim::SimDuration;
use infless_workload::{FunctionLoad, TracePattern, Workload};

fn run(
    e2e_ms: u64,
    mean_rps: f64,
    split: ChainSplit,
    duration: SimDuration,
) -> infless_core::metrics::RunReport {
    let functions = vec![
        FunctionInfo::new(ModelId::Ssd.spec(), SimDuration::from_millis(200)),
        FunctionInfo::new(ModelId::ResNet50.spec(), SimDuration::from_millis(200)),
    ];
    let chains = vec![ChainSpec::new(
        "osvt-pipeline",
        vec![0, 1],
        SimDuration::from_millis(e2e_ms),
    )];
    let loads = vec![
        FunctionLoad::trace(TracePattern::Bursty, mean_rps, duration, 201),
        FunctionLoad::explicit(Vec::new()),
    ];
    let workload = Workload::build(&loads, 200);
    let config = InflessConfig {
        chain_split: split,
        ..InflessConfig::default()
    };
    InflessPlatform::with_chains(ClusterSpec::testbed(), functions, chains, config, 200)
        .run(&workload)
}

fn main() {
    header(
        "ext_chains",
        "extension (§7 future work)",
        "Two-stage pipeline: end-to-end SLO attainment and efficiency by split policy",
    );
    let duration = maybe_quick(SimDuration::from_mins(8));
    let mut rows = Vec::new();

    println!(
        "{:>8} {:>8} {:<14} {:>10} {:>10} {:>12} {:>10}",
        "e2e SLO", "load", "split", "completed", "e2e p99", "viol %", "thpt/res"
    );
    for e2e_ms in [250u64, 350, 500] {
        for mean_rps in [60.0, 150.0] {
            for (name, split) in [
                ("proportional", ChainSplit::Proportional),
                ("equal", ChainSplit::Equal),
            ] {
                let r = run(e2e_ms, mean_rps, split, duration);
                let chain = &r.chains[0];
                let e2e = &chain.e2e_ms;
                let p99 = e2e.quantile(0.99).unwrap_or(0.0);
                println!(
                    "{:>6}ms {:>8} {:<14} {:>10} {:>8.0}ms {:>11.2}% {:>10.3}",
                    e2e_ms,
                    mean_rps,
                    name,
                    chain.completed,
                    p99,
                    chain.violation_rate() * 100.0,
                    r.throughput_per_resource()
                );
                rows.push(serde_json::json!({
                    "e2e_slo_ms": e2e_ms,
                    "mean_rps": mean_rps,
                    "split": name,
                    "completed": chain.completed,
                    "e2e_p99_ms": p99,
                    "violation_rate": chain.violation_rate(),
                    "thpt_per_resource": r.throughput_per_resource(),
                }));
            }
        }
        println!();
    }
    println!(
        "(proportional wins at tight budgets; equal acts as a per-stage guard band at loose ones)"
    );
    record("ext_chains", serde_json::json!({ "rows": rows }));
}
