//! Fig. 2(a–c): the AWS-Lambda motivation study.
//!
//! (a) warm invocation latency of every Table-1 model across the Lambda
//!     memory ladder, no batching; × marks "does not fit in memory";
//! (b) the same with OTP batching (b = 4 and b = 8);
//! (c) the memory over-provisioning needed to reach the 200 ms SLO.

use infless_baselines::{LambdaModel, LAMBDA_MEMORY_STEPS_MB};
use infless_bench::{header, record};
use infless_models::ModelId;
use infless_sim::SimDuration;

fn heat_table(lambda: &LambdaModel, batch: u32) -> Vec<serde_json::Value> {
    let mut rows = Vec::new();
    print!("{:<12}", "model");
    for mb in LAMBDA_MEMORY_STEPS_MB {
        print!("{:>9}", format!("{mb}MB"));
    }
    println!();
    for id in ModelId::all() {
        let spec = id.spec();
        print!("{:<12}", id.name());
        let mut cells = Vec::new();
        for mb in LAMBDA_MEMORY_STEPS_MB {
            match lambda.invoke_latency(&spec, batch, mb) {
                Some(t) => {
                    print!("{:>9}", format!("{:.0}ms", t.as_millis_f64()));
                    cells.push(serde_json::json!(t.as_millis_f64()));
                }
                None => {
                    print!("{:>9}", "x");
                    cells.push(serde_json::Value::Null);
                }
            }
        }
        println!();
        rows.push(serde_json::json!({ "model": id.name(), "latency_ms": cells }));
    }
    rows
}

fn main() {
    let lambda = LambdaModel::new();
    let slo = SimDuration::from_millis(200);

    header(
        "fig02_lambda_heatmap",
        "Fig. 2(a)",
        "Warm invocation latency on a Lambda-like platform, batchsize 1",
    );
    let a = heat_table(&lambda, 1);

    let mut b_tables = Vec::new();
    for batch in [4u32, 8] {
        header(
            "fig02_lambda_heatmap",
            "Fig. 2(b)",
            &format!("With OTP batching, batchsize {batch}"),
        );
        b_tables.push(serde_json::json!({
            "batch": batch,
            "rows": heat_table(&lambda, batch),
        }));
    }

    header(
        "fig02_lambda_heatmap",
        "Fig. 2(c)",
        "Memory over-provisioning to meet the 200 ms SLO (batchsize 1)",
    );
    println!(
        "{:<12} {:>12} {:>12} {:>16}",
        "model", "configured", "consumed", "over-provision"
    );
    let mut c_rows = Vec::new();
    for id in ModelId::all() {
        let spec = id.spec();
        let used = lambda.required_memory_mb(&spec);
        match lambda.min_memory_for_slo(&spec, 1, slo) {
            Some(mb) => {
                let frac = lambda.overprovision_fraction(&spec, 1, slo).unwrap_or(0.0);
                println!(
                    "{:<12} {:>10}MB {:>10.0}MB {:>15.1}%",
                    id.name(),
                    mb,
                    used,
                    frac * 100.0
                );
                c_rows.push(serde_json::json!({
                    "model": id.name(),
                    "configured_mb": mb,
                    "consumed_mb": used,
                    "overprovision_frac": frac,
                }));
            }
            None => {
                println!(
                    "{:<12} {:>12} {:>10.0}MB {:>16}",
                    id.name(),
                    "SLO unmet",
                    used,
                    "-"
                );
                c_rows.push(serde_json::json!({
                    "model": id.name(),
                    "configured_mb": serde_json::Value::Null,
                    "consumed_mb": used,
                }));
            }
        }
    }

    record(
        "fig02_lambda_heatmap",
        serde_json::json!({
            "fig2a": a,
            "fig2b": b_tables,
            "fig2c": c_rows,
        }),
    );
}
