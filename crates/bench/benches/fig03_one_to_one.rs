//! Fig. 3: the one-to-one-mapping motivation.
//!
//! (a) instances launched and batch invocations for a ResNet-20-class
//!     workload with and without batching (Observation #4: batching at
//!     b = 4 cuts invocations by ~72 % and launched instances by ~35 %);
//! (b) throughput of a Lambda-like platform, OTP batching, and the
//!     native INFless design on the same stress load (Observation #5).

use infless_bench::{constant_workload, header, maybe_quick, record, summarize_line, System};
use infless_cluster::ClusterSpec;
use infless_core::engine::FunctionInfo;
use infless_models::ModelId;
use infless_sim::SimDuration;
use infless_workload::{FunctionLoad, TracePattern, Workload};

fn main() {
    let cluster = ClusterSpec::testbed();
    let functions = vec![FunctionInfo::new(
        ModelId::ResNet20.spec(),
        SimDuration::from_millis(200),
    )];
    let duration = maybe_quick(SimDuration::from_mins(10));
    let workload = Workload::build(
        &[FunctionLoad::trace(
            TracePattern::Bursty,
            120.0,
            duration,
            33,
        )],
        33,
    );

    header(
        "fig03_one_to_one",
        "Fig. 3(a)",
        "Instances and invocations: one-to-one vs batching (ResNet-20, bursty load)",
    );
    let one_to_one = System::OpenFaasPlus.run(cluster, &functions, &workload, 33);
    // The paper's Fig. 3a fixes the OTP batchsize at 4.
    let batched = infless_baselines::BatchPlatform::with_config(
        cluster,
        functions.clone(),
        infless_baselines::BatchConfig {
            max_batch: 4,
            ..infless_baselines::BatchConfig::default()
        },
        33,
    )
    .run(&workload);

    // Batch invocations approximated from the per-batchsize completion mix.
    let invocations = |r: &infless_core::metrics::RunReport| -> f64 {
        r.functions
            .iter()
            .flat_map(|f| f.per_batch_completed.iter())
            .map(|(b, n)| *n as f64 / f64::from(*b))
            .sum()
    };
    println!(
        "{:<14} {:>12} {:>14} {:>18}",
        "policy", "launches", "invocations", "resource u*s"
    );
    for (name, r) in [("one-to-one", &one_to_one), ("batching b=4", &batched)] {
        println!(
            "{:<14} {:>12} {:>14.0} {:>18.0}",
            name,
            r.launches,
            invocations(r),
            r.weighted_resource_seconds
        );
    }
    let inv_drop = 1.0 - invocations(&batched) / invocations(&one_to_one);
    let launch_drop = 1.0 - batched.launches as f64 / one_to_one.launches as f64;
    println!(
        "\nbatching cuts invocations by {:.0}% and launched instances by {:.0}%",
        inv_drop * 100.0,
        launch_drop * 100.0
    );
    println!("(paper: 72% fewer invocations, 35% fewer instances)\n");

    header(
        "fig03_one_to_one",
        "Fig. 3(b)",
        "Throughput: OTP batching vs the native design, stress load",
    );
    let stress = constant_workload(1, 400.0, maybe_quick(SimDuration::from_secs(90)), 34);
    let mut thpts = Vec::new();
    for sys in System::trio() {
        let r = sys.run(cluster, &functions, &stress, 34);
        println!("{:<10} {}", sys.name(), summarize_line(&r));
        thpts.push((sys.name(), r.goodput_rps(), r.throughput_per_resource()));
    }
    let otp = thpts.iter().find(|(n, _, _)| *n == "BATCH").unwrap();
    let native = thpts.iter().find(|(n, _, _)| *n == "INFless").unwrap();
    println!(
        "\nnative design improves throughput/resource {:.1}x over OTP batching (paper: ~3x)",
        native.2 / otp.2
    );

    record(
        "fig03_one_to_one",
        serde_json::json!({
            "fig3a": serde_json::json!({
                "one_to_one_launches": one_to_one.launches,
                "batching_launches": batched.launches,
                "invocation_reduction": inv_drop,
                "launch_reduction": launch_drop,
            }),
            "fig3b": thpts
                .iter()
                .map(|(n, g, t)| serde_json::json!({"system": n, "goodput_rps": g, "thpt_per_resource": t}))
                .collect::<Vec<_>>(),
        }),
    );
}
