//! Fig. 7: operator call counts and execution-time shares.
//!
//! (a) LSTM-2365: MatMul is called ~81 times and (together with the
//!     fused/attention matmuls) dominates execution time;
//! (b) ResNet-50: ~8 distinct operators, >95 % of time in Conv2D.

use infless_bench::{header, record};
use infless_models::{HardwareModel, ModelId, ResourceConfig};

fn table(id: ModelId) -> Vec<serde_json::Value> {
    let spec = id.spec();
    let hw = HardwareModel::default();
    let cfg = ResourceConfig::new(2, 10);
    let lat = |op: &infless_models::Operator| hw.op_latency_s(op, 8, cfg);

    let counts = spec.dag().kind_counts();
    let times = spec.dag().kind_totals(lat);
    let total_time: f64 = times.values().sum();

    let mut rows: Vec<(String, usize, f64)> = counts
        .iter()
        .map(|(k, c)| (k.to_string(), *c, times[k] / total_time))
        .collect();
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));

    println!(
        "{} — {} call sites, {} distinct operators",
        id.name(),
        spec.dag().len(),
        counts.len()
    );
    println!("{:<18} {:>8} {:>12}", "operator", "calls", "time share");
    let mut json = Vec::new();
    for (kind, calls, share) in &rows {
        println!("{:<18} {:>8} {:>11.1}%", kind, calls, share * 100.0);
        json.push(serde_json::json!({
            "operator": kind, "calls": calls, "time_share": share,
        }));
    }
    println!();
    json
}

fn main() {
    header(
        "fig07_operator_stats",
        "Fig. 7(a,b)",
        "Calling frequency and execution-time share of DNN operators",
    );
    let lstm = table(ModelId::Lstm2365);
    let resnet = table(ModelId::ResNet50);

    // Observation #6 aggregate: call sites vs distinct operators across
    // the whole zoo.
    let mut call_sites = 0;
    let mut kinds = std::collections::HashSet::new();
    for id in ModelId::all() {
        let spec = id.spec();
        call_sites += spec.dag().len();
        kinds.extend(spec.dag().kind_counts().into_keys());
    }
    println!(
        "zoo-wide: {call_sites} operator call sites, {} distinct operator kinds",
        kinds.len()
    );
    println!("(paper: >1000 call sites, 71 distinct operators)");

    record(
        "fig07_operator_stats",
        serde_json::json!({
            "lstm2365": lstm,
            "resnet50": resnet,
            "zoo_call_sites": call_sites,
            "zoo_distinct_kinds": kinds.len(),
        }),
    );
}
