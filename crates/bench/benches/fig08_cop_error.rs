//! Fig. 8: Combined Operator Profiling prediction error.
//!
//! For ResNet-50, MobileNet and LSTM-2365, compare the raw COP
//! combination (chain-sum / branch-max over profiled operator times)
//! against ground-truth execution across the full batch/resource grid.
//! The paper reports average errors of 8.6 %, 7.8 % and 9.74 %
//! respectively, with LSTM-2365 worst because of its overlapping
//! execution paths.

use infless_bench::{header, record};
use infless_core::CopPredictor;
use infless_models::{profile::ConfigGrid, HardwareModel, ModelId, ModelSpec, ProfileDatabase};

fn main() {
    header(
        "fig08_cop_error",
        "Fig. 8(a-c)",
        "COP prediction error |P̂ − P| / P across batch-resource configurations",
    );
    let hw = HardwareModel::default();
    let specs: Vec<ModelSpec> = ModelId::all().iter().map(|id| id.spec()).collect();
    let db = ProfileDatabase::cached(&hw, &specs, &ConfigGrid::standard(), 8);
    let predictor = CopPredictor::new(db, hw.clone());

    let mut json = Vec::new();
    for id in [ModelId::ResNet50, ModelId::MobileNet, ModelId::Lstm2365] {
        let spec = id.spec();
        let mut per_batch: std::collections::BTreeMap<u32, (f64, u32)> = Default::default();
        let mut total = 0.0;
        let mut worst: f64 = 0.0;
        let mut n = 0u32;
        for (b, cfg) in ConfigGrid::standard().points() {
            let raw = predictor
                .combine_raw(&spec, b, cfg)
                .expect("grid fully profiled");
            let actual = hw.model_latency_s(&spec, b, cfg);
            let err = (raw - actual).abs() / actual;
            total += err;
            worst = worst.max(err);
            n += 1;
            let e = per_batch.entry(b).or_insert((0.0, 0));
            e.0 += err;
            e.1 += 1;
        }
        let avg = total / f64::from(n);
        println!(
            "{} — average error {:.2}%, worst {:.2}%",
            id.name(),
            avg * 100.0,
            worst * 100.0
        );
        print!("  per batchsize:");
        for (b, (sum, c)) in &per_batch {
            print!("  b={b}: {:.1}%", sum / f64::from(*c) * 100.0);
        }
        println!("\n");
        json.push(serde_json::json!({
            "model": id.name(),
            "avg_error": avg,
            "worst_error": worst,
            "per_batch": per_batch
                .iter()
                .map(|(b, (s, c))| serde_json::json!({"batch": b, "avg_error": s / f64::from(*c)}))
                .collect::<Vec<_>>(),
        }));
    }
    println!("(paper: ResNet-50 8.6%, MobileNet 7.8%, LSTM-2365 9.74%; +10% offset applied in production)");
    record("fig08_cop_error", serde_json::json!({ "models": json }));
}
