//! Fig. 11: stress-test throughput and component ablation.
//!
//! Left bars: maximum RPS achieved by OpenFaaS+, BATCH and INFless on
//! the OSVT and Q&A-robot applications under a constant stress load
//! (paper: INFless 5.2× / 2.6× over OpenFaaS+ / BATCH on average).
//!
//! Right bars: INFless with each component ablated —
//! * BB off: all batchsizes forced to 1;
//! * RS off: fragmentation-oblivious max-throughput configs;
//! * OP1.5 / OP2: prediction offset inflated to 1.5× / 2×.
//!
//! (paper: throughput drops 45.6 % / 21.9 % / 35.4 % for BB/RS/OP in
//! OSVT; 60 % / 7 % / 34.3 % in Q&A.)

use infless_bench::{
    constant_workload, header, maybe_quick, print_timings, record, run_parallel, System,
};
use infless_cluster::ClusterSpec;
use infless_core::apps::Application;
use infless_core::platform::{InflessConfig, InflessPlatform};
use infless_core::scheduler::{PlacementStrategy, SchedulerConfig};
use infless_sim::SimDuration;

fn ablated(
    cluster: ClusterSpec,
    app: &Application,
    workload: &infless_workload::Workload,
    seed: u64,
    config: InflessConfig,
) -> infless_core::metrics::RunReport {
    InflessPlatform::new(cluster, app.functions().to_vec(), config, seed).run(workload)
}

fn main() {
    let duration = maybe_quick(SimDuration::from_secs(120));
    let mut results = Vec::new();

    // The Q&A models are tiny, so the full 8-server testbed does not
    // saturate at a simulable request rate; the paper's "limited
    // cluster resources" stress setup is reproduced by shrinking the
    // cluster for that application instead.
    for (app, stress_rps, cluster) in [
        (Application::osvt(), 10_000.0, ClusterSpec::testbed()),
        (Application::qa_robot(), 40_000.0, ClusterSpec::large(2)),
    ] {
        header(
            "fig11_throughput_ablation",
            "Fig. 11",
            &format!(
                "{} — stress load {stress_rps} RPS/function on {} servers",
                app.name(),
                cluster.servers
            ),
        );
        let workload = constant_workload(app.functions().len(), stress_rps, duration, 11);

        // Left: system comparison (goodput = requests served within SLO).
        let trio_reports = run_parallel(
            System::trio()
                .into_iter()
                .map(|sys| {
                    let functions = app.functions().to_vec();
                    let workload = &workload;
                    move || sys.run(cluster, &functions, workload, 11)
                })
                .collect(),
        );
        let mut sys_rows = Vec::new();
        let mut base_tpr = 0.0;
        for (sys, r) in System::trio().iter().zip(&trio_reports) {
            println!(
                "{:<10} max goodput {:>8.0} RPS   thpt/resource {:>7.3}",
                sys.name(),
                r.goodput_rps(),
                r.throughput_per_resource()
            );
            if *sys == System::Infless {
                base_tpr = r.throughput_per_resource();
            }
            sys_rows.push((sys.name().to_string(), r.goodput_rps()));
        }
        let base = sys_rows
            .iter()
            .find(|(n, _)| n == "INFless")
            .expect("ran INFless")
            .1;
        let of = sys_rows[0].1;
        let batch = sys_rows[1].1;
        println!(
            "INFless = {:.1}x OpenFaaS+, {:.1}x BATCH\n",
            base / of,
            base / batch
        );
        print_timings(
            System::trio()
                .iter()
                .map(|s| s.name())
                .zip(trio_reports.iter()),
        );
        println!();

        // Right: component ablation.
        let variants: Vec<(&str, InflessConfig)> = vec![
            (
                "BB off (b=1)",
                InflessConfig {
                    scheduler: SchedulerConfig {
                        max_batch: 1,
                        ..SchedulerConfig::default()
                    },
                    ..InflessConfig::default()
                },
            ),
            (
                "RS off",
                InflessConfig {
                    scheduler: SchedulerConfig {
                        placement: PlacementStrategy::MaxThroughput,
                        ..SchedulerConfig::default()
                    },
                    ..InflessConfig::default()
                },
            ),
            (
                "OP1.5",
                InflessConfig {
                    cop_offset: 1.5,
                    ..InflessConfig::default()
                },
            ),
            (
                "OP2",
                InflessConfig {
                    cop_offset: 2.0,
                    ..InflessConfig::default()
                },
            ),
        ];
        // Ablation impact is measured on throughput per unit of
        // resource: when the cluster is not fully saturated, a wasteful
        // variant reaches the same goodput on more resources, and the
        // per-resource metric is what exposes it.
        let _ = base_tpr;
        let mut abl_rows = Vec::new();
        let abl_results = run_parallel(
            variants
                .iter()
                .map(|(_, cfg)| {
                    let app = app.clone();
                    let workload = &workload;
                    let cfg = *cfg;
                    move || ablated(cluster, &app, workload, 11, cfg)
                })
                .collect(),
        );
        for ((name, _), r) in variants.iter().zip(&abl_results) {
            let (goodput, tpr) = (r.goodput_rps(), r.throughput_per_resource());
            let drop = (1.0 - goodput / base) * 100.0;
            println!(
                "{:<14} goodput {:>8.0} RPS  thpt/res {:>7.3}  ({:+.1}% vs full INFless)",
                name, goodput, tpr, -drop
            );
            abl_rows.push((name.to_string(), goodput, drop));
        }
        println!();
        print_timings(
            variants
                .iter()
                .map(|(name, _)| *name)
                .zip(abl_results.iter()),
        );
        println!();
        results.push(serde_json::json!({
            "app": app.name(),
            "systems": sys_rows
                .iter()
                .map(|(n, g)| serde_json::json!({"system": n, "goodput_rps": g}))
                .collect::<Vec<_>>(),
            "ablations": abl_rows
                .iter()
                .map(|(n, g, d)| serde_json::json!({"variant": n, "goodput_rps": g, "drop_pct": d}))
                .collect::<Vec<_>>(),
        }));
    }

    record(
        "fig11_throughput_ablation",
        serde_json::json!({ "apps": results }),
    );
}
