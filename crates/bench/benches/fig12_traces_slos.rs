//! Fig. 12: normalized throughput per unit of resource.
//!
//! (a) under the sporadic / periodic / bursty production traces
//!     (paper: INFless 4.3×/3.4×/3.6× over OpenFaaS+ and
//!     2.6×/1.8×/2.2× over BATCH);
//! (b) under latency SLOs from 150 ms to 350 ms on OSVT
//!     (paper: 1.6×–3.5× over BATCH, improving as the SLO relaxes).

use infless_bench::{header, maybe_quick, pattern_workload, record, run_parallel, System};
use infless_cluster::ClusterSpec;
use infless_core::apps::Application;
use infless_sim::SimDuration;
use infless_workload::TracePattern;

fn main() {
    let cluster = ClusterSpec::testbed();
    let app = Application::osvt();
    let duration = maybe_quick(SimDuration::from_mins(12));

    header(
        "fig12_traces_slos",
        "Fig. 12(a)",
        "Throughput per unit of resource under the three trace patterns (OSVT)",
    );
    let mut trace_rows = Vec::new();
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "system", "sporadic", "periodic", "bursty"
    );
    let mut per_sys: Vec<(String, Vec<f64>)> = System::trio()
        .iter()
        .map(|s| (s.name().to_string(), Vec::new()))
        .collect();
    let workloads: Vec<_> = TracePattern::evaluation_set()
        .iter()
        .enumerate()
        .map(|(pi, pattern)| {
            pattern_workload(
                app.functions().len(),
                *pattern,
                150.0,
                duration,
                12 + pi as u64,
            )
        })
        .collect();
    let mut jobs = Vec::new();
    for workload in &workloads {
        for sys in System::trio() {
            let functions = app.functions().to_vec();
            jobs.push(move || {
                sys.run(cluster, &functions, workload, 12)
                    .throughput_per_resource()
            });
        }
    }
    let results = run_parallel(jobs);
    for (i, v) in results.into_iter().enumerate() {
        per_sys[i % 3].1.push(v);
    }
    for (name, vals) in &per_sys {
        print!("{:<10}", name);
        for v in vals {
            print!("{:>12.3}", v);
        }
        println!();
        trace_rows.push(serde_json::json!({ "system": name, "thpt_per_resource": vals }));
    }
    let inf = &per_sys[2].1;
    let of = &per_sys[0].1;
    let ba = &per_sys[1].1;
    print!("\nINFless vs OpenFaaS+: ");
    for (a, b) in inf.iter().zip(of) {
        print!("{:.1}x ", a / b);
    }
    print!("\nINFless vs BATCH:     ");
    for (a, b) in inf.iter().zip(ba) {
        print!("{:.1}x ", a / b);
    }
    println!("\n");

    header(
        "fig12_traces_slos",
        "Fig. 12(b)",
        "Throughput per unit of resource across latency SLOs (OSVT, bursty)",
    );
    let slos = [150u64, 200, 250, 300, 350];
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "SLO", "INFless", "BATCH", "ratio"
    );
    let mut slo_rows = Vec::new();
    let slo_inputs: Vec<_> = slos
        .iter()
        .enumerate()
        .map(|(i, slo_ms)| {
            let app = Application::osvt_with_slo(SimDuration::from_millis(*slo_ms));
            let workload = pattern_workload(
                app.functions().len(),
                TracePattern::Bursty,
                150.0,
                duration,
                40 + i as u64,
            );
            (app, workload)
        })
        .collect();
    let mut jobs = Vec::new();
    for (app, workload) in &slo_inputs {
        for sys in [System::Infless, System::Batch] {
            jobs.push(move || {
                sys.run(cluster, app.functions(), workload, 13)
                    .throughput_per_resource()
            });
        }
    }
    let results = run_parallel(jobs);
    for (i, slo_ms) in slos.iter().enumerate() {
        let inf = results[2 * i];
        let bat = results[2 * i + 1];
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>9.1}x",
            format!("{slo_ms}ms"),
            inf,
            bat,
            inf / bat
        );
        slo_rows.push(serde_json::json!({
            "slo_ms": slo_ms, "infless": inf, "batch": bat, "ratio": inf / bat,
        }));
    }

    record(
        "fig12_traces_slos",
        serde_json::json!({ "fig12a": trace_rows, "fig12b": slo_rows }),
    );
}
