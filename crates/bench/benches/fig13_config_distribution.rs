//! Fig. 13: flexible batch and resource configurations (ResNet-50).
//!
//! (a/b) the share of throughput contributed by each batchsize for
//!       INFless and BATCH — BATCH concentrates on one or two large
//!       batchsizes, INFless mixes {1, 2, 4, 8, …} as load allows;
//! (c)   the distribution of per-instance ⟨b, c, g⟩ configurations —
//!       INFless is non-uniform, BATCH uses a handful of fixed configs.

use infless_bench::{header, maybe_quick, record, System};
use infless_cluster::ClusterSpec;
use infless_core::engine::FunctionInfo;
use infless_models::ModelId;
use infless_sim::SimDuration;
use infless_workload::{FunctionLoad, TracePattern, Workload};

fn main() {
    let cluster = ClusterSpec::testbed();
    let functions = vec![FunctionInfo::new(
        ModelId::ResNet50.spec(),
        SimDuration::from_millis(200),
    )];
    // A load that swings widely so both small and large batches pay off.
    let duration = maybe_quick(SimDuration::from_mins(15));
    let workload = Workload::build(
        &[FunctionLoad::trace(
            TracePattern::Bursty,
            250.0,
            duration,
            133,
        )],
        133,
    );

    let mut json = serde_json::Map::new();
    for sys in [System::Infless, System::Batch] {
        let r = sys.run(cluster, &functions, &workload, 133);
        header(
            "fig13_config_distribution",
            "Fig. 13(a,b)",
            &format!("{} — throughput share by batchsize (ResNet-50)", sys.name()),
        );
        let f = &r.functions[0];
        let mut batches: Vec<(u32, u64)> = f
            .per_batch_completed
            .iter()
            .map(|(b, n)| (*b, *n))
            .collect();
        batches.sort_unstable();
        let mut batch_rows = Vec::new();
        for (b, n) in &batches {
            let share = *n as f64 / f.completed.max(1) as f64;
            println!("  b={:<3} {:>8} requests ({:>5.1}%)", b, n, share * 100.0);
            batch_rows.push(serde_json::json!({"batch": b, "requests": n, "share": share}));
        }

        header(
            "fig13_config_distribution",
            "Fig. 13(c)",
            &format!(
                "{} — instance (b, c, g) configurations launched",
                sys.name()
            ),
        );
        let mut cfgs: Vec<(String, u64)> = r
            .config_launches
            .iter()
            .map(|((_, cfg), n)| (cfg.to_string(), *n))
            .collect();
        cfgs.sort();
        let mut cfg_rows = Vec::new();
        for (cfg, n) in &cfgs {
            println!("  {cfg} x{n}");
            cfg_rows.push(serde_json::json!({"config": cfg, "launches": n}));
        }
        println!(
            "  => {} distinct configurations ({})\n",
            cfgs.len(),
            if sys == System::Infless {
                "non-uniform scaling"
            } else {
                "uniform scaling"
            }
        );
        json.insert(
            sys.name().to_string(),
            serde_json::json!({
                "batch_shares": batch_rows,
                "configs": cfg_rows,
                "distinct_configs": cfgs.len(),
            }),
        );
    }

    record("fig13_config_distribution", serde_json::Value::Object(json));
}
