//! Fig. 14: resource provisioning over time — BATCH (top) vs INFless
//! (bottom) following a rising-then-falling request load (ResNet-50).
//!
//! Paper shape: BATCH over-provisions on the rise (it always prefers a
//! large batch) and holds resources after the decline (fixed
//! keep-alive); INFless tracks the load both ways and provisions ~60 %
//! less in total.

use infless_bench::{header, maybe_quick, record, System};
use infless_cluster::ClusterSpec;
use infless_core::engine::FunctionInfo;
use infless_models::ModelId;
use infless_sim::{SimDuration, SimTime};
use infless_workload::{FunctionLoad, RateSeries, Workload};

fn main() {
    header(
        "fig14_provisioning",
        "Fig. 14",
        "Provisioned resources over a rise-and-fall load (ResNet-50)",
    );
    let cluster = ClusterSpec::testbed();
    let functions = vec![FunctionInfo::new(
        ModelId::ResNet50.spec(),
        SimDuration::from_millis(200),
    )];
    // A single pulse: ramp 0→peak→0 over the run, like the paper's window.
    let duration = maybe_quick(SimDuration::from_mins(30));
    let mins = (duration.as_secs_f64() / 60.0) as usize;
    let peak = 900.0;
    let rates: Vec<f64> = (0..mins)
        .map(|i| {
            let x = i as f64 / mins as f64;
            (peak * (std::f64::consts::PI * x).sin()).max(0.0)
        })
        .collect();
    let series = RateSeries::new(SimDuration::from_mins(1), rates);
    let workload = Workload::build(&[FunctionLoad::poisson(series.clone())], 14);

    let mut json = serde_json::Map::new();
    let mut totals = Vec::new();
    for sys in [System::Batch, System::Infless] {
        let r = sys.run(cluster, &functions, &workload, 14);
        println!("--- {} ---", sys.name());
        println!("{:>6} {:>10} {:>13}", "min", "load RPS", "provisioned");
        let mut points = Vec::new();
        let step = 120.0;
        let mut next = 0.0;
        for (t, used) in &r.provisioning {
            if *t + 1e-9 < next {
                continue;
            }
            next = t + step;
            let rps = series.rate_at(SimTime::from_secs(*t as u64));
            let bar = "#".repeat((used / 8.0).round() as usize);
            println!("{:>6.1} {:>10.0} {:>13.1}  {bar}", t / 60.0, rps, used);
            points.push(serde_json::json!({"t_s": t, "load_rps": rps, "provisioned": used}));
        }
        println!(
            "total provisioning: {:.0} resource-seconds\n",
            r.weighted_resource_seconds
        );
        totals.push((sys.name(), r.weighted_resource_seconds));
        json.insert(
            sys.name().to_string(),
            serde_json::json!({
                "timeline": points,
                "resource_seconds": r.weighted_resource_seconds,
            }),
        );
    }
    let reduction = 1.0 - totals[1].1 / totals[0].1;
    println!(
        "INFless provisions {:.0}% less than BATCH in total (paper: ~60%)",
        reduction * 100.0
    );
    json.insert("reduction".into(), serde_json::json!(reduction));
    record("fig14_provisioning", serde_json::Value::Object(json));
}
