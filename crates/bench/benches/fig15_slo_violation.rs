//! Fig. 15: SLO violations and latency breakdown.
//!
//! (a) SLO violation rates of the three systems across the trace
//!     patterns (paper: INFless ≤ 3.1 % on average, OpenFaaS+ up to 8 %
//!     under sporadic load from cold starts, BATCH similar from batch
//!     queueing timeouts);
//! (b/c) INFless's per-request latency decomposition (cold / queue /
//!     exec) at SLO = 150 ms and 350 ms — queueing is regulated to
//!     roughly the execution-time scale.

use infless_bench::{header, maybe_quick, pattern_workload, record, run_parallel, System};
use infless_cluster::ClusterSpec;
use infless_core::apps::Application;
use infless_sim::SimDuration;
use infless_workload::TracePattern;

fn main() {
    let cluster = ClusterSpec::testbed();
    let duration = maybe_quick(SimDuration::from_mins(12));

    header(
        "fig15_slo_violation",
        "Fig. 15(a)",
        "SLO violation rate by system and trace pattern (OSVT)",
    );
    let app = Application::osvt();
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "system", "sporadic", "periodic", "bursty"
    );
    let mut viol_rows = Vec::new();
    let workloads: Vec<_> = TracePattern::evaluation_set()
        .iter()
        .enumerate()
        .map(|(pi, pattern)| {
            pattern_workload(
                app.functions().len(),
                *pattern,
                120.0,
                duration,
                150 + pi as u64,
            )
        })
        .collect();
    let mut jobs = Vec::new();
    for sys in System::trio() {
        for workload in &workloads {
            let functions = app.functions().to_vec();
            jobs.push(move || sys.run(cluster, &functions, workload, 15).violation_rate());
        }
    }
    let results = run_parallel(jobs);
    for (si, sys) in System::trio().iter().enumerate() {
        print!("{:<10}", sys.name());
        let vals: Vec<f64> = (0..workloads.len())
            .map(|pi| results[si * workloads.len() + pi])
            .collect();
        for v in &vals {
            print!("{:>9.2}%", v * 100.0);
        }
        println!();
        viol_rows.push(serde_json::json!({ "system": sys.name(), "violation_rates": vals }));
    }
    println!();

    let mut breakdown_rows = Vec::new();
    for slo_ms in [150u64, 350] {
        header(
            "fig15_slo_violation",
            if slo_ms == 150 {
                "Fig. 15(b)"
            } else {
                "Fig. 15(c)"
            },
            &format!("INFless latency breakdown at SLO = {slo_ms} ms (OSVT, bursty)"),
        );
        let app = Application::osvt_with_slo(SimDuration::from_millis(slo_ms));
        let workload = pattern_workload(
            app.functions().len(),
            TracePattern::Bursty,
            150.0,
            duration,
            160 + slo_ms,
        );
        let r = System::Infless.run(cluster, app.functions(), &workload, 15);
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10}",
            "model", "cold ms", "queue ms", "exec ms", "p99 ms"
        );
        for f in &r.functions {
            let lat = &f.latency_ms;
            println!(
                "{:<12} {:>10.2} {:>10.2} {:>10.2} {:>10.1}",
                f.name,
                f.cold_ms.mean(),
                f.queue_ms.mean(),
                f.exec_ms.mean(),
                lat.quantile(0.99).unwrap_or(0.0)
            );
            breakdown_rows.push(serde_json::json!({
                "slo_ms": slo_ms,
                "model": f.name,
                "cold_ms": f.cold_ms.mean(),
                "queue_ms": f.queue_ms.mean(),
                "exec_ms": f.exec_ms.mean(),
            }));
        }
        println!();
    }

    record(
        "fig15_slo_violation",
        serde_json::json!({ "fig15a": viol_rows, "fig15bc": breakdown_rows }),
    );
}
