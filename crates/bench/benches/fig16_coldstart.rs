//! Fig. 16: cold-start rate and idle resource waste — LSTH (γ ∈
//! {0.3, 0.5, 0.7}) vs HHP vs a fixed keep-alive window.
//!
//! Workload: the cold-start-sensitive function mix of the Azure trace —
//! timer-like functions firing in short windows every ~50 minutes,
//! plus sporadic and bursty functions (paper: LSTH cuts the cold-start
//! rate by 21.9 % and idle waste by 24.3 % vs HHP, best at γ = 0.5).

use infless_bench::{header, print_timings, record, run_parallel};
use infless_cluster::ClusterSpec;
use infless_core::engine::FunctionInfo;
use infless_core::platform::{ColdStartConfig, InflessConfig, InflessPlatform};
use infless_models::ModelId;
use infless_sim::rng::stream;
use infless_sim::{SimDuration, SimTime};
use infless_workload::{FunctionLoad, TracePattern, Workload};
use rand::Rng;

/// A single-shot timer function — the dominant cold-start-sensitive
/// archetype of the Azure trace: exactly one invocation per firing,
/// nominally every `period_min` minutes with phase jitter (the STB on
/// top of the periodic LTP). For periods beyond ~an hour, HHP's 4-hour
/// window holds too few samples to be representative and falls back to
/// holding resources conservatively; LSTH's day-long histogram keeps
/// enough history to pre-warm instead.
fn jittered_timer(mins: usize, period_min: usize, jitter_min: usize, seed: u64) -> Vec<SimTime> {
    let mut rng = stream(seed, "fig16/timer");
    let mut times = Vec::new();
    let mut t = rng.gen_range(0..period_min.max(1)) as f64;
    while t < mins as f64 {
        times.push(SimTime::from_secs((t * 60.0) as u64));
        let jitter = rng.gen_range(-(jitter_min as f64)..=jitter_min as f64);
        t += (period_min as f64 + jitter).max(4.0);
    }
    times
}

/// An office-hours function: dense single invocations from 09:00 to
/// 17:00 every ~`gap_min` minutes, a ~70-minute lunch break at 13:00,
/// and overnight silence. The archetype where HHP's 4-hour window fails
/// in *both* directions: at 13:00 its window holds only dense daytime
/// gaps (keep-alive too short → cold after lunch), while overnight its
/// conservative fallback holds resources for four idle hours. LSTH's
/// day-long histogram knows both the lunch gap and that nothing comes
/// overnight.
fn office_hours(mins: usize, gap_min: f64, seed: u64) -> Vec<SimTime> {
    let mut rng = stream(seed, "fig16/office");
    let mut times = Vec::new();
    let days = mins / 1440 + 1;
    for day in 0..days {
        let base = day as f64 * 1440.0;
        let lunch_start = 13.0 * 60.0 + rng.gen_range(-5.0..5.0);
        let lunch_len = rng.gen_range(60.0..80.0);
        let mut t = 9.0 * 60.0 + rng.gen_range(0.0..gap_min);
        while t < 17.0 * 60.0 {
            if t < lunch_start || t >= lunch_start + lunch_len {
                let abs = base + t;
                if (abs as usize) < mins {
                    times.push(SimTime::from_secs((abs * 60.0) as u64));
                }
            }
            t += rng.gen_range(0.5 * gap_min..1.5 * gap_min);
        }
    }
    times
}

fn workload(duration: SimDuration) -> (Vec<FunctionInfo>, Workload) {
    let slo = SimDuration::from_millis(200);
    // Cold-start policies only matter for sparsely-invoked functions —
    // the dominant population of the Azure trace. Six jittered timers
    // with different periods, plus one sporadic and one bursty function.
    // Function-model assignment: the timer functions get the heavier
    // models (holding them idle is what keep-alive decisions price);
    // the steady background texture gets tiny models so its constant
    // holding does not mask the policy differences.
    let models = [
        ModelId::TextCnn69,  // office-hours
        ModelId::MobileNet,  // office-hours
        ModelId::Dssm2365,   // office-hours
        ModelId::Ssd,        // 45-min timer
        ModelId::ResNet20,   // 110-min timer
        ModelId::DeepSpeech, // 170-min timer
        ModelId::Mnist,      // sporadic texture
        ModelId::Dssm2389,   // bursty texture
    ];
    let functions: Vec<FunctionInfo> = models
        .iter()
        .map(|m| FunctionInfo::new(m.spec(), slo))
        .collect();
    let mins = (duration.as_secs_f64() / 60.0) as usize;
    // Three office-hours functions, three timers spanning sub-hour to
    // multi-hour periods, plus light sporadic/bursty texture.
    let mut loads: Vec<FunctionLoad> = vec![
        FunctionLoad::explicit(office_hours(mins, 3.0, 171)),
        FunctionLoad::explicit(office_hours(mins, 4.0, 172)),
        FunctionLoad::explicit(office_hours(mins, 5.0, 173)),
        FunctionLoad::explicit(jittered_timer(mins, 45, 7, 174)),
        FunctionLoad::explicit(jittered_timer(mins, 110, 15, 175)),
        FunctionLoad::explicit(jittered_timer(mins, 170, 20, 176)),
    ];
    loads.push(FunctionLoad::trace(
        TracePattern::Sporadic,
        1.0,
        duration,
        181,
    ));
    loads.push(FunctionLoad::trace(
        TracePattern::Bursty,
        1.5,
        duration,
        182,
    ));
    (functions, Workload::build(&loads, 160))
}

fn main() {
    header(
        "fig16_coldstart",
        "Fig. 16",
        "Cold-start rate and idle resource waste by keep-alive policy",
    );
    // Day-scale patterns need multi-day runs to show (quick: 24 h).
    let duration = if infless_bench::quick() {
        SimDuration::from_hours(24)
    } else {
        SimDuration::from_hours(72)
    };
    let (functions, workload) = workload(duration);
    println!("workload: {} requests over {}\n", workload.len(), duration);

    let policies: Vec<(String, ColdStartConfig)> = vec![
        ("LSTH γ=0.3".into(), ColdStartConfig::Lsth { gamma: 0.3 }),
        ("LSTH γ=0.5".into(), ColdStartConfig::Lsth { gamma: 0.5 }),
        ("LSTH γ=0.7".into(), ColdStartConfig::Lsth { gamma: 0.7 }),
        ("HHP".into(), ColdStartConfig::Hhp),
        (
            "fixed 300s".into(),
            ColdStartConfig::Fixed(SimDuration::from_secs(300)),
        ),
    ];

    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>18}",
        "policy", "cold starts", "cold rate", "violations", "idle waste (u·s)"
    );
    let reports = run_parallel(
        policies
            .iter()
            .map(|(_, coldstart)| {
                let functions = functions.clone();
                let workload = &workload;
                let coldstart = *coldstart;
                move || {
                    let config = InflessConfig {
                        coldstart,
                        ..InflessConfig::default()
                    };
                    InflessPlatform::new(ClusterSpec::testbed(), functions, config, 160)
                        .run(workload)
                }
            })
            .collect(),
    );
    let mut rows = Vec::new();
    let mut hhp = (0u64, 0.0f64);
    let mut lsth05 = (0u64, 0.0f64);
    for ((name, _), r) in policies.iter().zip(&reports) {
        println!(
            "{:<12} {:>12} {:>11.3}% {:>11.2}% {:>18.0}",
            name,
            r.cold_launches,
            r.cold_request_rate() * 100.0,
            r.violation_rate() * 100.0,
            r.weighted_idle_seconds
        );
        if name == "HHP" {
            hhp = (r.cold_launches, r.weighted_idle_seconds);
        }
        if name == "LSTH γ=0.5" {
            lsth05 = (r.cold_launches, r.weighted_idle_seconds);
        }
        rows.push(serde_json::json!({
            "policy": name,
            "cold_launches": r.cold_launches,
            "cold_request_rate": r.cold_request_rate(),
            "violation_rate": r.violation_rate(),
            "idle_waste": r.weighted_idle_seconds,
        }));
    }

    if hhp.0 > 0 {
        println!(
            "\nLSTH(γ=0.5) vs HHP: cold starts {:+.1}%, idle waste {:+.1}%",
            (lsth05.0 as f64 / hhp.0 as f64 - 1.0) * 100.0,
            (lsth05.1 / hhp.1 - 1.0) * 100.0
        );
        println!("(paper: −21.9% cold starts, −24.3% idle waste)");
    }

    println!();
    print_timings(
        policies
            .iter()
            .map(|(name, _)| name.as_str())
            .zip(reports.iter()),
    );

    record("fig16_coldstart", serde_json::json!({ "policies": rows }));
}
