//! Fig. 17: large-scale simulation — scheduling overhead and resource
//! fragments.
//!
//! Following §5.1's simulation methodology, the real `Schedule()` code
//! runs against a simulated 2 000-server cluster; only scheduling
//! decisions are made (no request execution).
//!
//! (a) wall-clock overhead of `Schedule()` as the number of concurrent
//!     instance placements grows to 10 000 (paper: ~0.5 ms per
//!     instance, < 1 s for 10 000);
//! (b) the resource-fragment ratio of INFless, BATCH, BATCH+RS and
//!     OpenFaaS+ placements at scale (paper: INFless ≈ 15 %, lowest).
//!     The four placements are independent, so the harness drives them
//!     on worker threads; each builds its own predictor, served from
//!     the shared COP profile cache.

use std::time::Instant;

use infless_bench::{header, quick, record, run_parallel};
use infless_cluster::{ClusterSpec, InstanceConfig};
use infless_core::apps::Application;
use infless_core::predictor::CopPredictor;
use infless_core::scheduler::{Scheduler, SchedulerConfig};
use infless_models::{
    profile::ConfigGrid, HardwareModel, ModelSpec, ProfileDatabase, ResourceConfig,
};
use infless_sim::SimDuration;

fn predictor_for(app: &Application) -> CopPredictor {
    let hw = HardwareModel::default();
    let specs: Vec<ModelSpec> = app.functions().iter().map(|f| f.spec().clone()).collect();
    let db = ProfileDatabase::cached(&hw, &specs, &ConfigGrid::standard(), 17);
    CopPredictor::new(db, hw)
}

/// One fig17b measurement: system name, fragment ratio, occupancy
/// (INFless only), and the job's wall-clock seconds.
type FragRow = (&'static str, f64, Option<f64>, f64);

fn main() {
    let servers = if quick() { 500 } else { 2000 };
    let app = Application::synthetic(if quick() { 10 } else { 40 });
    let predictor = predictor_for(&app);
    let mut scheduler = Scheduler::new(SchedulerConfig::default());

    header(
        "fig17_scalability",
        "Fig. 17(a)",
        &format!("Schedule() wall-clock overhead on a {servers}-server cluster"),
    );
    println!(
        "{:>10} {:>14} {:>16}",
        "instances", "total time", "per instance"
    );
    let mut overhead_rows = Vec::new();
    // Sequential on purpose: fig17a *is* a wall-clock measurement, and
    // co-scheduled sibling jobs would distort it.
    for target in [100usize, 1_000, 5_000, 10_000] {
        let target = if quick() { target / 10 } else { target };
        let mut cluster = ClusterSpec::large(servers).build();
        let wall = Instant::now();
        let mut placed = 0usize;
        let mut f = 0usize;
        // Keep scheduling function demand until `target` instances exist.
        while placed < target {
            let function = &app.functions()[f % app.functions().len()];
            let out = scheduler.schedule(&predictor, function, 2_000.0, &mut cluster);
            if out.instances.is_empty() {
                break; // cluster exhausted
            }
            placed += out.instances.len();
            f += 1;
        }
        let elapsed = wall.elapsed();
        let per_instance_us = elapsed.as_secs_f64() * 1e6 / placed.max(1) as f64;
        println!(
            "{:>10} {:>14.3?} {:>13.1}us",
            placed, elapsed, per_instance_us
        );
        overhead_rows.push(serde_json::json!({
            "instances": placed,
            "total_ms": elapsed.as_secs_f64() * 1e3,
            "per_instance_us": per_instance_us,
        }));
    }
    println!("(paper: ~0.5 ms per instance, < 1 s total at 10,000)\n");

    header(
        "fig17_scalability",
        "Fig. 17(b)",
        "Resource-fragment ratio by system at ~60% cluster load",
    );
    // The fragment ratio is measured at a realistic operating point —
    // filling the cluster to the brim would erase placement differences
    // (every strategy ends with full servers). Demand is sized to
    // occupy roughly 60% of the cluster and interleaved across the
    // functions as the simulator's arrival mix would.
    let beta = predictor.beta();
    // Per-function demand sized for ~60% aggregate occupancy.
    let demand_per_fn = if quick() { 3_000.0 } else { 12_000.0 };
    let slices = 6usize;

    // INFless: Algorithm 1, functions round-robin in demand slices so
    // the cluster fills with a realistic arrival mix.
    let infless_job = {
        let app = app.clone();
        move || -> FragRow {
            let wall = Instant::now();
            let predictor = predictor_for(&app);
            let mut scheduler = Scheduler::new(SchedulerConfig::default());
            let mut cluster = ClusterSpec::large(servers).build();
            for _ in 0..slices {
                for function in app.functions() {
                    scheduler.schedule(
                        &predictor,
                        function,
                        demand_per_fn / slices as f64,
                        &mut cluster,
                    );
                }
            }
            let frag = cluster.fragment_ratio(beta);
            let load = cluster.weighted_in_use(beta)
                / (beta * cluster.cpu_capacity() as f64 + cluster.gpu_capacity() as f64);
            ("INFless", frag, Some(load), wall.elapsed().as_secs_f64())
        }
    };

    // BATCH (first-fit uniform) and BATCH+RS (best-fit uniform),
    // interleaving the same demand.
    let batch_job = |name: &'static str, best_fit: bool| {
        let app = app.clone();
        move || -> FragRow {
            let wall = Instant::now();
            let predictor = predictor_for(&app);
            let mut cluster = ClusterSpec::large(servers).build();
            let plans: Vec<Option<(InstanceConfig, f64)>> = app
                .functions()
                .iter()
                .map(|f| {
                    infless_baselines::uniform_plan(
                        &predictor,
                        f,
                        SimDuration::from_millis(8),
                        u32::MAX,
                    )
                    .map(|p| (p.config, p.window.r_up()))
                })
                .collect();
            for _ in 0..slices {
                for plan in plans.iter().flatten() {
                    let (cfg, r_up) = *plan;
                    let n = (demand_per_fn / slices as f64 / r_up).ceil() as usize;
                    for _ in 0..n {
                        let free_of = |s: &infless_cluster::Server| {
                            beta * f64::from(s.cpu_free()) + f64::from(s.gpu_free_total())
                        };
                        let fitting = cluster.servers().iter().filter(|s| s.fits(cfg.resources()));
                        let server = if best_fit {
                            fitting
                                .min_by(|a, b| free_of(a).partial_cmp(&free_of(b)).expect("finite"))
                                .map(|s| s.id())
                        } else {
                            // Stock BATCH: Kubernetes-style spreading.
                            fitting
                                .max_by(|a, b| free_of(a).partial_cmp(&free_of(b)).expect("finite"))
                                .map(|s| s.id())
                        };
                        if let Some(srv) = server {
                            cluster.allocate_on(srv, cfg.resources()).expect("fits");
                        }
                    }
                }
            }
            (
                name,
                cluster.fragment_ratio(beta),
                None,
                wall.elapsed().as_secs_f64(),
            )
        }
    };

    // OpenFaaS+: the same demand in fixed 2c+10g batch-1 instances.
    let openfaas_job = {
        let app = app.clone();
        move || -> FragRow {
            let wall = Instant::now();
            let predictor = predictor_for(&app);
            let mut cluster = ClusterSpec::large(servers).build();
            let cfg = ResourceConfig::new(2, 10);
            for function in app.functions() {
                let Some(t) = predictor.predict(function.spec(), 1, cfg) else {
                    continue;
                };
                if t > function.slo() {
                    continue;
                }
                let r_up = (1.0 / t.as_secs_f64()).floor().max(1.0);
                let n = (demand_per_fn / r_up).ceil() as usize;
                for _ in 0..n {
                    if cluster.allocate_anywhere(cfg).is_err() {
                        break;
                    }
                }
            }
            (
                "OpenFaaS+",
                cluster.fragment_ratio(beta),
                None,
                wall.elapsed().as_secs_f64(),
            )
        }
    };

    let jobs: Vec<Box<dyn FnOnce() -> FragRow + Send>> = vec![
        Box::new(infless_job),
        Box::new(batch_job("BATCH", false)),
        Box::new(batch_job("BATCH+RS", true)),
        Box::new(openfaas_job),
    ];
    let frag_results = run_parallel(jobs);

    let mut frag_rows = Vec::new();
    for (name, frag, load, _) in &frag_results {
        match load {
            Some(load) => println!(
                "{:<10} fragment ratio {:>6.1}%  (cluster {:>4.1}% occupied)",
                name,
                frag * 100.0,
                load * 100.0
            ),
            None => println!("{:<10} fragment ratio {:>6.1}%", name, frag * 100.0),
        }
        frag_rows.push(serde_json::json!({"system": name, "fragment_ratio": frag}));
    }
    println!("(paper: INFless ≈ 15%, BATCH+RS < BATCH, OpenFaaS+ worst)\n");
    println!("per-run wall-clock (parallel harness):");
    for (name, _, _, wall) in &frag_results {
        println!("  {name:<14} wall {wall:>7.2}s");
    }

    record(
        "fig17_scalability",
        serde_json::json!({ "fig17a": overhead_rows, "fig17b": frag_rows }),
    );
}
