//! Fig. 18: throughput in the large-scale simulation.
//!
//! As in §5.3, the real scheduling logic runs against simulated
//! machines and only the *theoretical throughput upper bound* is
//! collected (Σ r_up of the placed instances per unit of weighted
//! resource):
//!
//! (a) across the number of deployed functions (10–40)
//!     (paper: INFless 2.6× BATCH and 4.2× OpenFaaS+);
//! (b) across latency SLOs 150–300 ms at 20 functions
//!     (paper: INFless rises from ~0.7 to ~1.0 as the SLO relaxes).

use infless_bench::{header, quick, record};
use infless_cluster::{ClusterSpec, ClusterState};
use infless_core::apps::Application;
use infless_core::predictor::CopPredictor;
use infless_core::scheduler::{Scheduler, SchedulerConfig};
use infless_models::{
    profile::ConfigGrid, HardwareModel, ModelSpec, ProfileDatabase, ResourceConfig,
};
use infless_sim::SimDuration;

struct Harness {
    predictor: CopPredictor,
    scheduler: Scheduler,
    servers: usize,
}

impl Harness {
    fn new(app: &Application, servers: usize) -> Self {
        let hw = HardwareModel::default();
        let specs: Vec<ModelSpec> = app.functions().iter().map(|f| f.spec().clone()).collect();
        let db = ProfileDatabase::cached(&hw, &specs, &ConfigGrid::standard(), 18);
        Harness {
            predictor: CopPredictor::new(db, hw),
            scheduler: Scheduler::new(SchedulerConfig::default()),
            servers,
        }
    }

    /// Places capacity for every function with INFless's scheduler and
    /// returns (Σ r_up) / (weighted resources used).
    fn infless_capacity_density(&mut self, app: &Application, rps_per_fn: f64) -> f64 {
        let mut cluster = ClusterSpec::large(self.servers).build();
        let mut capacity = 0.0;
        for function in app.functions() {
            let out = self
                .scheduler
                .schedule(&self.predictor, function, rps_per_fn, &mut cluster);
            capacity += out.instances.iter().map(|i| i.window.r_up()).sum::<f64>();
        }
        capacity / cluster.weighted_in_use(self.predictor.beta()).max(1e-9)
    }

    /// The same for BATCH's uniform plans placed first-fit.
    fn batch_capacity_density(&self, app: &Application, rps_per_fn: f64) -> f64 {
        let mut cluster = ClusterSpec::large(self.servers).build();
        let mut capacity = 0.0;
        for function in app.functions() {
            let Some(plan) = infless_baselines::uniform_plan(
                &self.predictor,
                function,
                SimDuration::from_millis(8),
                u32::MAX,
            ) else {
                continue;
            };
            let r_up = plan.window.r_up();
            let n = (rps_per_fn / r_up).ceil() as usize;
            for _ in 0..n {
                if cluster.allocate_anywhere(plan.config.resources()).is_err() {
                    break;
                }
                capacity += r_up;
            }
        }
        capacity / cluster.weighted_in_use(self.predictor.beta()).max(1e-9)
    }

    /// OpenFaaS+: fixed 2c+10g, batchsize 1. The one-to-one platform
    /// launches instances for *every* function's demand — functions the
    /// fixed configuration cannot serve within their SLO still consume
    /// resources, they just contribute no within-SLO capacity.
    fn openfaas_capacity_density(&self, app: &Application, rps_per_fn: f64) -> f64 {
        let mut cluster = ClusterSpec::large(self.servers).build();
        let cfg = ResourceConfig::new(2, 10);
        let mut capacity = 0.0;
        for function in app.functions() {
            let Some(t) = self.predictor.predict(function.spec(), 1, cfg) else {
                continue;
            };
            let r_up = (1.0 / t.as_secs_f64()).floor().max(0.2);
            let n = (rps_per_fn / r_up).ceil() as usize;
            let meets_slo = t <= function.slo();
            for _ in 0..n {
                if cluster.allocate_anywhere(cfg).is_err() {
                    break;
                }
                if meets_slo {
                    capacity += r_up;
                }
            }
        }
        capacity / cluster.weighted_in_use(self.predictor.beta()).max(1e-9)
    }
}

fn normalize(rows: &mut [(String, f64)]) {
    let max = rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    if max > 0.0 {
        for (_, v) in rows.iter_mut() {
            *v /= max;
        }
    }
}

fn main() {
    let servers = if quick() { 200 } else { 2000 };
    let _ = ClusterState::new(ClusterSpec::large(1)); // keep the import honest

    header(
        "fig18_largescale",
        "Fig. 18(a)",
        &format!(
            "Normalized throughput upper bound per resource vs #functions ({servers} servers)"
        ),
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "#functions", "OpenFaaS+", "BATCH", "INFless"
    );
    let mut a_rows = Vec::new();
    for n in [10usize, 20, 30, 40] {
        let app = Application::synthetic(n);
        let mut h = Harness::new(&app, servers);
        let rps = 4_000.0;
        let mut row = vec![
            (
                "OpenFaaS+".to_string(),
                h.openfaas_capacity_density(&app, rps),
            ),
            ("BATCH".to_string(), h.batch_capacity_density(&app, rps)),
            ("INFless".to_string(), h.infless_capacity_density(&app, rps)),
        ];
        let raw: Vec<f64> = row.iter().map(|(_, v)| *v).collect();
        normalize(&mut row);
        println!(
            "{:>10} {:>12.2} {:>12.2} {:>12.2}   (INFless {:.1}x BATCH, {:.1}x OpenFaaS+)",
            n,
            row[0].1,
            row[1].1,
            row[2].1,
            raw[2] / raw[1],
            raw[2] / raw[0]
        );
        a_rows.push(serde_json::json!({
            "functions": n,
            "openfaas": raw[0], "batch": raw[1], "infless": raw[2],
        }));
    }
    println!();

    header(
        "fig18_largescale",
        "Fig. 18(b)",
        "INFless throughput upper bound per resource vs SLO (20 functions)",
    );
    println!("{:>8} {:>14}", "SLO", "thpt/resource");
    let mut b_rows = Vec::new();
    let mut base = None;
    for slo_ms in [150u64, 200, 250, 300] {
        // Rebuild the 20-function deployment with a uniform SLO.
        let app = Application::synthetic(20);
        let functions: Vec<_> = app
            .functions()
            .iter()
            .map(|f| {
                infless_core::engine::FunctionInfo::new(
                    f.spec().clone(),
                    SimDuration::from_millis(slo_ms),
                )
            })
            .collect();
        let app = AppShim { functions };
        let mut h = Harness::new_from(&app.functions, servers);
        let density = {
            let mut cluster = ClusterSpec::large(servers).build();
            let mut capacity = 0.0;
            for function in &app.functions {
                let out = h
                    .scheduler
                    .schedule(&h.predictor, function, 4_000.0, &mut cluster);
                capacity += out.instances.iter().map(|i| i.window.r_up()).sum::<f64>();
            }
            capacity / cluster.weighted_in_use(h.predictor.beta()).max(1e-9)
        };
        let base_v = *base.get_or_insert(density);
        println!(
            "{:>6}ms {:>14.2}  ({:.2} normalized)",
            slo_ms,
            density,
            density / base_v
        );
        b_rows.push(serde_json::json!({"slo_ms": slo_ms, "density": density}));
    }
    println!("(paper: throughput per resource rises as the SLO relaxes)");

    record(
        "fig18_largescale",
        serde_json::json!({ "fig18a": a_rows, "fig18b": b_rows }),
    );
}

/// Minimal stand-in so Fig. 18(b) can vary the SLO on the synthetic app.
struct AppShim {
    functions: Vec<infless_core::engine::FunctionInfo>,
}

impl Harness {
    fn new_from(functions: &[infless_core::engine::FunctionInfo], servers: usize) -> Self {
        let hw = HardwareModel::default();
        let specs: Vec<ModelSpec> = functions.iter().map(|f| f.spec().clone()).collect();
        let db = ProfileDatabase::cached(&hw, &specs, &ConfigGrid::standard(), 18);
        Harness {
            predictor: CopPredictor::new(db, hw),
            scheduler: Scheduler::new(SchedulerConfig::default()),
            servers,
        }
    }
}
