//! Extension experiment: SLO violation under injected failures.
//!
//! The paper evaluates INFless on healthy clusters; this experiment
//! asks how much of its SLO advantage survives when machines crash,
//! instances die, cold starts fail and stragglers appear. All four
//! systems face the *identical* seeded fault schedule at each
//! intensity, so the gaps are recovery-policy gaps:
//!
//! * INFless re-runs its Eq. 10 greedy placement for the displaced
//!   throughput and retries displaced requests against the rebuilt
//!   dispatch set within their remaining SLO budget;
//! * OpenFaaS+ retries reactively (a displaced request triggers the
//!   same rate-limited pod launches a fresh arrival would);
//! * BATCH re-buffers displaced requests but cannot add capacity until
//!   its next scaling tick;
//! * Torpor recovers reactively like OpenFaaS+, but every replacement
//!   launch is a PCIe swap-in from the host model cache instead of a
//!   container boot — its time-to-recapacity isolates the memory tier.
//!
//! Reported per (system, intensity): SLO violation rate (shed requests
//! count as violations), requests shed, and mean time-to-recapacity —
//! how long the cluster ran short of the weighted capacity lost to
//! each fault.

use infless_bench::{
    fault_schedule_for, header, maybe_quick, pattern_workload, quick, record, run_parallel,
    timeseries_json, System,
};
use infless_cluster::ClusterSpec;
use infless_core::apps::Application;
use infless_core::runconfig::RunConfig;
use infless_faults::FaultPlan;
use infless_sim::SimDuration;
use infless_telemetry::{MemorySink, SpanKind};
use infless_workload::TracePattern;

fn main() {
    let cluster = ClusterSpec::testbed();
    let duration = maybe_quick(SimDuration::from_mins(8));
    let app = Application::qa_robot();
    let intensities: &[f64] = if quick() {
        &[0.0, 2.0]
    } else {
        &[0.0, 0.5, 1.0, 2.0, 4.0]
    };

    header(
        "fig_failure_slo",
        "extension (fault injection)",
        "SLO violation / shed / time-to-recapacity under a failure-intensity sweep",
    );
    let workload = pattern_workload(
        app.functions().len(),
        TracePattern::Bursty,
        80.0,
        duration,
        42,
    );

    let mut jobs = Vec::new();
    for &intensity in intensities {
        for sys in System::all() {
            let functions = app.functions().to_vec();
            let workload = &workload;
            jobs.push(move || {
                let plan = FaultPlan::sweep(intensity);
                let schedule = fault_schedule_for(&plan, cluster, workload, 42);
                sys.execute(
                    cluster,
                    &functions,
                    workload,
                    42,
                    RunConfig::new().fault_schedule(schedule),
                )
            });
        }
    }
    let reports = run_parallel(jobs);

    println!(
        "{:<10} {:<10} {:>9} {:>9} {:>9} {:>9} {:>12} {:>12}",
        "intensity", "system", "viol %", "shed", "retried", "crashes", "recap ms", "completed"
    );
    let mut rows = Vec::new();
    for (i, &intensity) in intensities.iter().enumerate() {
        for (s, sys) in System::all().iter().enumerate() {
            let r = &reports[i * System::all().len() + s];
            let recap = r.failures.mean_time_to_recapacity_ms();
            println!(
                "{:<10} {:<10} {:>8.2}% {:>9} {:>9} {:>9} {:>12} {:>12}",
                intensity,
                sys.name(),
                r.violation_rate() * 100.0,
                r.failures.requests_shed,
                r.failures.requests_retried,
                r.failures.server_crashes,
                recap.map_or_else(|| "-".into(), |m| format!("{m:.0}")),
                r.total_completed(),
            );
            rows.push(serde_json::json!({
                "intensity": intensity,
                "system": sys.name(),
                "violation_rate": r.violation_rate(),
                "requests_shed": r.failures.requests_shed,
                "requests_retried": r.failures.requests_retried,
                "requests_displaced": r.failures.requests_displaced,
                "server_crashes": r.failures.server_crashes,
                "server_recoveries": r.failures.server_recoveries,
                "instances_killed": r.failures.instances_killed,
                "stragglers": r.failures.stragglers,
                "mean_time_to_recapacity_ms": recap,
                "completed": r.total_completed(),
                "dropped": r.total_dropped(),
                "timeseries": timeseries_json(r),
            }));
        }
        println!();
    }

    // Trace audit: re-run INFless at the top intensity with an
    // in-memory span sink and recompute the fault accounting from the
    // spans alone — it must agree with the collector's counters.
    let top = *intensities.last().expect("non-empty sweep");
    let sink = MemorySink::new();
    let schedule = fault_schedule_for(&FaultPlan::sweep(top), cluster, &workload, 42);
    let audited = System::Infless.execute(
        cluster,
        app.functions(),
        &workload,
        42,
        RunConfig::new()
            .fault_schedule(schedule)
            .telemetry(Box::new(sink.clone())),
    );
    let store = sink.store();
    let count = |k: SpanKind| store.spans.iter().filter(|s| s.kind == k).count() as u64;
    let (displaced, retried, shed) = (
        count(SpanKind::Displaced),
        count(SpanKind::Retried),
        count(SpanKind::Shed),
    );
    println!(
        "trace audit (INFless @ intensity {top}): {} spans; displaced {displaced} = retried \
         {retried} + shed {shed} ({})",
        store.spans.len(),
        if displaced == retried + shed && displaced == audited.failures.requests_displaced {
            "consistent with collector"
        } else {
            "MISMATCH"
        }
    );

    record(
        "fig_failure_slo",
        serde_json::json!({
            "sweep": rows,
            "trace_audit": serde_json::json!({
                "intensity": top,
                "spans": store.spans.len(),
                "displaced": displaced,
                "retried": retried,
                "shed": shed,
            }),
        }),
    );
}
