//! Extension experiment: autoregressive serving under TTFT/TPOT SLOs.
//!
//! Sweeps the chat arrival rate and reports SLO attainment for two
//! token-level classes on all four systems, each under both decode
//! batching disciplines:
//!
//! * **chat** — short prompts, tight TTFT (300 ms) and TPOT (40 ms)
//!   SLOs. Attainment counts a request only if its first token landed
//!   inside the TTFT budget (dropped requests count as misses).
//! * **summarize** — long prompts, a loose end-to-end SLO. Attainment
//!   is plain e2e SLO compliance.
//!
//! The figure's claim: **continuous batching strictly dominates static
//! run-to-completion batching on chat TTFT attainment at high rates** —
//! a joiner slips into the running batch at the next decode boundary
//! instead of waiting out the whole episode. The bench asserts that at
//! the highest swept rate.

use infless_bench::{header, maybe_quick, quick, record, run_parallel, System};
use infless_cluster::ClusterSpec;
use infless_core::engine::FunctionInfo;
use infless_core::metrics::RunReport;
use infless_core::runconfig::RunConfig;
use infless_llm::{LlmBatching, LlmClass, LlmConfig};
use infless_models::ModelId;
use infless_sim::SimDuration;
use infless_workload::{FunctionLoad, Workload};

const CHAT: usize = 0;
const SUMMARIZE: usize = 1;

fn functions() -> Vec<FunctionInfo> {
    vec![
        // Tight e2e SLO on top of the class's TTFT/TPOT budgets.
        FunctionInfo::new(ModelId::BertV1.spec(), SimDuration::from_secs(4))
            .with_llm(LlmClass::chat()),
        // Batch summarization: only the loose e2e deadline matters.
        FunctionInfo::new(ModelId::BertV1.spec(), SimDuration::from_secs(60))
            .with_llm(LlmClass::summarize()),
    ]
}

fn workload(chat_rps: f64, duration: SimDuration, seed: u64) -> Workload {
    let loads = vec![
        FunctionLoad::constant(chat_rps, duration),
        FunctionLoad::constant(2.0, duration),
    ];
    Workload::build(&loads, seed)
}

/// Fraction of chat demand whose first token met the TTFT budget.
/// Dropped requests never produced a token, so they count as misses.
fn ttft_attainment(r: &RunReport) -> f64 {
    let f = &r.functions[CHAT];
    let demand = f.completed + f.dropped;
    if demand == 0 {
        return 1.0;
    }
    let Some(llm) = &f.llm else { return 0.0 };
    let ok = llm.ttft_ms.count().saturating_sub(llm.ttft_violations);
    (ok as f64 / demand as f64).min(1.0)
}

/// Fraction of completed chat sequences whose mean TPOT met the budget.
fn tpot_attainment(r: &RunReport) -> f64 {
    let f = &r.functions[CHAT];
    let Some(llm) = &f.llm else { return 0.0 };
    let n = llm.tpot_ms.count();
    if n == 0 {
        return 1.0;
    }
    1.0 - llm.tpot_violations as f64 / n as f64
}

/// Fraction of summarize demand that completed inside the e2e SLO.
fn e2e_attainment(r: &RunReport) -> f64 {
    let f = &r.functions[SUMMARIZE];
    let demand = f.completed + f.dropped;
    if demand == 0 {
        return 1.0;
    }
    (f.completed - f.violations) as f64 / demand as f64
}

fn mode_name(b: LlmBatching) -> &'static str {
    match b {
        LlmBatching::Continuous => "continuous",
        LlmBatching::Static => "static",
    }
}

fn main() {
    let cluster = ClusterSpec::testbed();
    let duration = maybe_quick(SimDuration::from_secs(60));
    let rates: &[f64] = if quick() {
        &[8.0, 32.0]
    } else {
        &[4.0, 8.0, 16.0, 32.0]
    };
    let modes = [LlmBatching::Continuous, LlmBatching::Static];

    header(
        "fig_llm_slo",
        "extension (autoregressive serving)",
        "chat TTFT/TPOT and summarize e2e SLO attainment vs arrival rate, continuous vs static decode batching",
    );

    let mut jobs = Vec::new();
    for &rate in rates {
        for mode in modes {
            for sys in System::all() {
                jobs.push(move || {
                    let llm = LlmConfig {
                        enabled: true,
                        batching: mode,
                    };
                    let w = workload(rate, duration, 42);
                    sys.execute(cluster, &functions(), &w, 42, RunConfig::new().llm(llm))
                });
            }
        }
    }
    let reports = run_parallel(jobs);

    println!(
        "{:<10} {:<12} {:<10} {:>10} {:>10} {:>10} {:>9}",
        "chat rps", "mode", "system", "ttft att", "tpot att", "e2e att", "dropped"
    );
    let mut rows = Vec::new();
    // INFless chat TTFT attainment at the highest rate, per mode.
    let mut infless_top_rate = std::collections::BTreeMap::new();
    let stride = System::all().len();
    for (i, &rate) in rates.iter().enumerate() {
        for (m, &mode) in modes.iter().enumerate() {
            let base = (i * modes.len() + m) * stride;
            for (s, sys) in System::all().iter().enumerate() {
                let r = &reports[base + s];
                let (ttft, tpot, e2e) = (ttft_attainment(r), tpot_attainment(r), e2e_attainment(r));
                println!(
                    "{:<10} {:<12} {:<10} {:>9.1}% {:>9.1}% {:>9.1}% {:>9}",
                    rate,
                    mode_name(mode),
                    sys.name(),
                    ttft * 100.0,
                    tpot * 100.0,
                    e2e * 100.0,
                    r.total_dropped(),
                );
                rows.push(serde_json::json!({
                    "chat_rps": rate,
                    "batching": mode_name(mode),
                    "system": sys.name(),
                    "ttft_attainment": ttft,
                    "tpot_attainment": tpot,
                    "e2e_attainment": e2e,
                    "completed": r.total_completed(),
                    "dropped": r.total_dropped(),
                    "chat_ttft_p99_ms": r.functions[CHAT]
                        .llm
                        .as_ref()
                        .and_then(|l| l.ttft_ms.quantile(0.99)),
                    "chat_tpot_p99_ms": r.functions[CHAT]
                        .llm
                        .as_ref()
                        .and_then(|l| l.tpot_ms.quantile(0.99)),
                    "cache_full_events": r.functions[CHAT]
                        .llm
                        .as_ref()
                        .map_or(0, |l| l.cache_full_events),
                }));
                if *sys == System::Infless && (rate - rates[rates.len() - 1]).abs() < f64::EPSILON {
                    infless_top_rate.insert(mode_name(mode), ttft);
                }
            }
        }
        println!();
    }

    let cont = infless_top_rate["continuous"];
    let stat = infless_top_rate["static"];
    println!(
        "INFless chat TTFT attainment at {} rps: continuous {:.1}% vs static {:.1}%",
        rates[rates.len() - 1],
        cont * 100.0,
        stat * 100.0
    );
    assert!(
        cont > stat,
        "continuous batching must strictly dominate static on chat TTFT attainment \
         at the highest rate (continuous {cont:.4} vs static {stat:.4})"
    );

    record(
        "fig_llm_slo",
        serde_json::json!({
            "rates": rates,
            "duration_secs": duration.as_secs_f64(),
            "rows": rows,
            "infless_top_rate_ttft_continuous": cont,
            "infless_top_rate_ttft_static": stat,
        }),
    );
}
