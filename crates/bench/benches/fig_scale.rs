//! Sharded-engine scaling harness (`BENCH_scale.json`).
//!
//! Runs one large deployment — 10k+ servers, ≥100M arrivals in full
//! mode — through the epoch-barrier sharded engine at shard counts
//! {1, 2, 4, 8} and reports the wall-clock time and simulated-requests
//! per wall-clock second of each. Because the sharded engine is
//! deterministic *by construction*, the harness also byte-compares the
//! canonical report JSON across every shard count and aborts if any
//! pair diverges — a scaling number for a run that computed something
//! different would be meaningless.
//!
//! The speedup column is honest wall-clock: shards execute on scoped
//! worker threads, so S=4 can only beat S=1 when the host actually has
//! cores to run them on. The committed `BENCH_scale.json` records the
//! host's core count next to every number; on a single-core host the
//! expected speedup is ≤1.0x (barrier and replay overhead with no
//! parallelism to pay for it), and the ≥2x target at S=4 requires a
//! host with at least 4 physical cores.
//!
//! `INFLESS_QUICK=1` shrinks the deployment (200 servers, ~2M
//! arrivals) for CI smoke runs; quick-mode output is written to
//! `target/infless-results/` only, never committed.

use std::time::Instant;

use infless_bench::{constant_workload, header, quick, record};
use infless_cluster::ClusterSpec;
use infless_core::apps::Application;
use infless_core::platform::InflessConfig;
use infless_core::ShardedInfless;
use infless_sim::SimDuration;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    // Full mode: 32 functions x 12,500 rps x 250 s = 100M arrivals on
    // a 10,000-server cluster. Quick mode: 8 functions x 2,500 rps x
    // 100 s = 2M arrivals on 200 servers.
    let (servers, functions, rps_per_fn, secs) = if quick() {
        (200, 8, 2_500.0, 100)
    } else {
        (10_000, 32, 12_500.0, 250)
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let app = Application::synthetic(functions);
    let cluster = ClusterSpec::large(servers);
    let workload = constant_workload(functions, rps_per_fn, SimDuration::from_secs(secs), 11);
    let arrivals = workload.len();

    header(
        "fig_scale",
        "sharded epoch-barrier engine",
        &format!(
            "Wall-clock scaling vs shard count: {functions} functions, \
             {servers} servers, {arrivals} arrivals, {cores} host cores"
        ),
    );
    let sharded = ShardedInfless::new(
        cluster,
        app.functions().to_vec(),
        InflessConfig::default(),
        11,
    );

    println!(
        "{:>7} {:>12} {:>16} {:>10}",
        "shards", "wall (s)", "sim req/s wall", "vs S=1"
    );
    let mut rows = Vec::new();
    let mut baseline_wall = None;
    let mut baseline_report: Option<String> = None;
    for s in SHARD_COUNTS {
        let t0 = Instant::now();
        let report = sharded.run(&workload, s);
        let wall = t0.elapsed().as_secs_f64();
        let canonical = report.canonical_json();
        match &baseline_report {
            None => baseline_report = Some(canonical),
            Some(base) => assert_eq!(
                *base, canonical,
                "shard count {s} produced a different report than S=1 — \
                 determinism broken, scaling numbers void"
            ),
        }
        let base_wall = *baseline_wall.get_or_insert(wall);
        let speedup = base_wall / wall;
        println!(
            "{:>7} {:>12.2} {:>16.0} {:>9.2}x",
            s,
            wall,
            arrivals as f64 / wall,
            speedup
        );
        rows.push(serde_json::json!({
            "shards": s,
            "wall_seconds": wall,
            "requests_per_sec": arrivals as f64 / wall,
            "speedup_vs_s1": speedup,
            "completed": report.total_completed(),
            "dropped": report.total_dropped(),
        }));
    }
    println!("reports byte-identical across all shard counts: yes (asserted)");

    let payload = serde_json::json!({
        "experiment": "fig_scale",
        "quick": quick(),
        "host_cores": cores,
        "servers": servers,
        "functions": functions,
        "rps_per_function": rps_per_fn,
        "duration_s": secs,
        "arrivals": arrivals,
        "reports_byte_identical": true,
        "note": "Speedup is honest wall-clock on scoped worker threads; \
                 S=N can only outpace S=1 when the host has >= N cores. \
                 On a 1-core host expect <= 1.0x at every shard count \
                 (barrier + journal-replay overhead, no parallelism). \
                 The >= 2x @ S=4 target requires >= 4 physical cores.",
        "shard_runs": rows,
    });
    record("fig_scale", payload.clone());
    let mut root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    root.pop();
    root.pop();
    if quick() {
        // Informational only: wall-clock gating quick-mode CI runs
        // against the committed full-mode numbers (different host,
        // different scale) would flake — the hard gate above is the
        // byte-equality assertion across shard counts.
        if let Ok(text) = std::fs::read_to_string(root.join("BENCH_scale.json")) {
            if let Ok(baseline) = serde_json::from_str::<serde_json::Value>(&text) {
                let cores = baseline.get("host_cores").and_then(|v| v.as_f64());
                let s4 = baseline
                    .get("shard_runs")
                    .and_then(|v| v.as_array())
                    .and_then(|rows| {
                        rows.iter()
                            .find(|r| r.get("shards").and_then(|v| v.as_f64()) == Some(4.0))
                    })
                    .and_then(|r| r.get("speedup_vs_s1"))
                    .and_then(|v| v.as_f64());
                if let (Some(cores), Some(s4)) = (cores, s4) {
                    println!(
                        "committed BENCH_scale.json baseline: {s4:.2}x at S=4 \
                         on a {cores:.0}-core host"
                    );
                }
            }
        }
    } else {
        // Committed copy at the workspace root: the scaling trajectory.
        let _ = std::fs::write(
            root.join("BENCH_scale.json"),
            serde_json::to_string_pretty(&payload).unwrap_or_default(),
        );
    }
}
