//! Extension experiment: the GPU memory tier (Torpor-style swapping).
//!
//! Two questions, one figure:
//!
//! * **Startup** — on a churn-heavy sporadic workload, what does a
//!   fresh launch cost each system? Torpor never boots (every launch is
//!   a PCIe swap-in from the host model cache); INFless with the
//!   residency tier enabled swaps in whenever the tiered-LSTH host
//!   window still holds a copy; OpenFaaS+ and plain INFless pay the
//!   full container boot + model load.
//! * **Recovery** — after injected server crashes, how fast does each
//!   system rebuild the lost capacity? Replacement launches on the
//!   swap path should recapture capacity far sooner than boot-path
//!   replacements; mean time-to-recapacity isolates exactly that.
//!
//! All systems face identical seeded workloads and fault schedules, so
//! gaps are memory-tier gaps, not luck.

use infless_bench::{
    fault_schedule_for, header, maybe_quick, pattern_workload, quick, record, run_parallel, System,
};
use infless_cluster::ClusterSpec;
use infless_core::apps::Application;
use infless_core::metrics::RunReport;
use infless_core::residency::ResidencyConfig;
use infless_core::runconfig::RunConfig;
use infless_faults::FaultPlan;
use infless_sim::SimDuration;
use infless_workload::TracePattern;

/// Request-weighted mean cold-start penalty across functions, ms.
fn mean_startup_ms(r: &RunReport) -> Option<f64> {
    let (mut sum, mut n) = (0.0, 0u64);
    for f in &r.functions {
        sum += f.cold_ms.mean() * f.cold_ms.count() as f64;
        n += f.cold_ms.count();
    }
    (n > 0).then(|| sum / n as f64)
}

fn startup_row(label: &str, r: &RunReport) -> serde_json::Value {
    serde_json::json!({
        "system": label,
        "launches": r.launches,
        "cold_launches": r.cold_launches,
        "swap_launches": r.swap_launches,
        "prewarmed_launches": r.prewarmed_launches,
        "mean_startup_ms": mean_startup_ms(r),
        "cold_request_rate": r.cold_request_rate(),
        "violation_rate": r.violation_rate(),
    })
}

fn main() {
    let cluster = ClusterSpec::testbed();
    let app = Application::qa_robot();

    header(
        "fig_swap",
        "extension (GPU memory tier)",
        "swap-in vs boot: startup cost under churn, time-to-recapacity under faults",
    );

    // ── Part 1: startup cost under churn ────────────────────────────
    // Sporadic load idles functions long enough for the device tier to
    // retire instances but (for the tiered policies) not long enough to
    // evict the host copy, so relaunches exercise the swap path.
    let churn = pattern_workload(
        app.functions().len(),
        TracePattern::Sporadic,
        12.0,
        maybe_quick(SimDuration::from_mins(12)),
        42,
    );
    let residency_on = || RunConfig::new().residency(ResidencyConfig::enabled());
    let startup_reports = {
        let functions = app.functions().to_vec();
        let churn = &churn;
        let f2 = functions.clone();
        let f3 = functions.clone();
        let f4 = functions.clone();
        let jobs: Vec<Box<dyn FnOnce() -> (&'static str, RunReport) + Send>> = vec![
            Box::new(move || {
                let r = System::OpenFaasPlus.run(cluster, &functions, churn, 42);
                ("OpenFaaS+", r)
            }),
            Box::new(move || {
                let r = System::Torpor.run(cluster, &f2, churn, 42);
                ("Torpor", r)
            }),
            Box::new(move || {
                let r = System::Infless.run(cluster, &f3, churn, 42);
                ("INFless", r)
            }),
            Box::new(move || {
                let r = System::Infless.execute(cluster, &f4, churn, 42, residency_on());
                ("INFless+tier", r)
            }),
        ];
        run_parallel(jobs)
    };

    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9} {:>12} {:>8}",
        "system", "launches", "cold", "swap", "prewarm", "startup ms", "viol %"
    );
    let mut startup_rows = Vec::new();
    for (label, r) in &startup_reports {
        println!(
            "{:<14} {:>9} {:>9} {:>9} {:>9} {:>12} {:>7.2}%",
            label,
            r.launches,
            r.cold_launches,
            r.swap_launches,
            r.prewarmed_launches,
            mean_startup_ms(r).map_or_else(|| "-".into(), |m| format!("{m:.0}")),
            r.violation_rate() * 100.0,
        );
        startup_rows.push(startup_row(label, r));
    }
    println!();

    // ── Part 2: time-to-recapacity under faults ─────────────────────
    let recovery_load = pattern_workload(
        app.functions().len(),
        TracePattern::Bursty,
        80.0,
        maybe_quick(SimDuration::from_mins(8)),
        42,
    );
    let intensities: &[f64] = if quick() { &[4.0] } else { &[1.0, 2.0, 4.0] };
    let mut jobs = Vec::new();
    for &intensity in intensities {
        for sys in System::all() {
            let functions = app.functions().to_vec();
            let workload = &recovery_load;
            jobs.push(move || {
                let plan = FaultPlan::sweep(intensity);
                let schedule = fault_schedule_for(&plan, cluster, workload, 42);
                let cfg = match sys {
                    System::Infless => RunConfig::new()
                        .fault_schedule(schedule)
                        .residency(ResidencyConfig::enabled()),
                    _ => RunConfig::new().fault_schedule(schedule),
                };
                sys.execute(cluster, &functions, workload, 42, cfg)
            });
        }
    }
    let reports = run_parallel(jobs);

    println!(
        "{:<10} {:<10} {:>9} {:>9} {:>12} {:>8}",
        "intensity", "system", "crashes", "swaps", "recap ms", "viol %"
    );
    let mut recovery_rows = Vec::new();
    let mut torpor_beats_boot_at = Vec::new();
    for (i, &intensity) in intensities.iter().enumerate() {
        let base = i * System::all().len();
        let mut recap = std::collections::BTreeMap::new();
        for (s, sys) in System::all().iter().enumerate() {
            let r = &reports[base + s];
            let ms = r.failures.mean_time_to_recapacity_ms();
            // No samples despite crashes = the lost capacity was never
            // rebuilt inside the horizon — worse than any finite mean.
            let effective = ms.unwrap_or(if r.failures.server_crashes > 0 {
                f64::INFINITY
            } else {
                0.0
            });
            recap.insert(sys.name(), effective);
            println!(
                "{:<10} {:<10} {:>9} {:>9} {:>12} {:>7.2}%",
                intensity,
                sys.name(),
                r.failures.server_crashes,
                r.swap_launches,
                ms.map_or_else(|| "-".into(), |m| format!("{m:.0}")),
                r.violation_rate() * 100.0,
            );
            recovery_rows.push(serde_json::json!({
                "intensity": intensity,
                "system": sys.name(),
                "server_crashes": r.failures.server_crashes,
                "swap_launches": r.swap_launches,
                "mean_time_to_recapacity_ms": ms,
                "violation_rate": r.violation_rate(),
                "completed": r.total_completed(),
            }));
        }
        if let (Some(&t), Some(&o)) = (recap.get("Torpor"), recap.get("OpenFaaS+")) {
            if t.is_finite() && t < o {
                torpor_beats_boot_at.push(intensity);
            }
        }
        println!();
    }
    println!(
        "swap recovery beats boot recovery (Torpor < OpenFaaS+ mean time-to-recapacity) at \
         intensities {torpor_beats_boot_at:?}"
    );
    assert!(
        !torpor_beats_boot_at.is_empty(),
        "swap recovery never beat boot recovery — the memory tier buys nothing"
    );

    record(
        "fig_swap",
        serde_json::json!({
            "startup": startup_rows,
            "recovery": recovery_rows,
            "torpor_beats_boot_at": torpor_beats_boot_at,
        }),
    );
}
