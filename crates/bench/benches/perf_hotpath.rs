//! Hot-path performance harness (`BENCH_hotpath.json`).
//!
//! Measures how fast the *simulator itself* runs — simulated requests
//! processed per wall-clock second — on the fig11-style stress
//! scenarios, plus the dispatch/schedule overhead histograms recorded
//! by the collector. Emits `BENCH_hotpath.json` both at the workspace
//! root (committed, so future PRs have a perf trajectory) and under
//! `target/infless-results/`.
//!
//! With `INFLESS_PERF_GATE=1` the harness compares the measured
//! requests/sec against `crates/bench/perf_baseline.json` and exits
//! nonzero when any scenario regresses by more than 20 %.
//!
//! The macro measurement loop is deliberately simple (best-of-N
//! wall-clock around `System::run`) so numbers stay comparable across
//! PRs; criterion drives the repetition schedule.

use std::time::Instant;

use infless_bench::{constant_workload, header, maybe_quick, quick, record, System};
use infless_cluster::ClusterSpec;
use infless_core::apps::Application;
use infless_core::metrics::RunReport;
use infless_sim::SimDuration;
use infless_workload::Workload;

/// One fig11-style stress scenario.
struct Scenario {
    name: &'static str,
    app: Application,
    cluster: ClusterSpec,
    rps: f64,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "osvt_testbed",
            app: Application::osvt(),
            cluster: ClusterSpec::testbed(),
            rps: 10_000.0,
        },
        Scenario {
            name: "qa_robot_large2",
            app: Application::qa_robot(),
            cluster: ClusterSpec::large(2),
            rps: 40_000.0,
        },
    ]
}

/// Wall-clock result of one measured run.
struct Measured {
    requests_per_sec: f64,
    wall_seconds: f64,
    arrivals: usize,
    report: RunReport,
}

/// Runs the scenario once and times the simulation loop only (platform
/// construction and workload generation excluded — they are not the
/// hot path under test).
fn run_once(sc: &Scenario, workload: &Workload) -> Measured {
    let t0 = Instant::now();
    let report = System::Infless.run(sc.cluster, sc.app.functions(), workload, 11);
    let wall = t0.elapsed().as_secs_f64();
    Measured {
        requests_per_sec: workload.len() as f64 / wall,
        wall_seconds: wall,
        arrivals: workload.len(),
        report,
    }
}

fn quantiles_json(hist: &infless_telemetry::Log2Histogram) -> serde_json::Value {
    if hist.is_empty() {
        return serde_json::json!(null);
    }
    serde_json::json!({
        "count": hist.count(),
        "mean": hist.mean(),
        "min": hist.min(),
        "max": hist.max(),
        "p50": hist.quantile(0.50),
        "p95": hist.quantile(0.95),
        "p99": hist.quantile(0.99),
    })
}

fn main() {
    header(
        "perf_hotpath",
        "§3.4 scheduling overhead / ROADMAP hot path",
        "Simulator wall-clock throughput on fig11-style stress scenarios",
    );

    // Best-of-N: wall-clock noise only ever slows a run down, so the
    // fastest repetition is the closest estimate of the code's speed.
    let reps = if quick() { 2 } else { 3 };
    let duration = maybe_quick(SimDuration::from_secs(120));

    let mut results = Vec::new();
    for sc in scenarios() {
        let workload = constant_workload(sc.app.functions().len(), sc.rps, duration, 11);
        let mut best: Option<Measured> = None;
        for _ in 0..reps {
            let m = run_once(&sc, &workload);
            if best
                .as_ref()
                .is_none_or(|b| m.wall_seconds < b.wall_seconds)
            {
                best = Some(m);
            }
        }
        let best = best.expect("at least one repetition");
        println!(
            "  {:<16} {:>10.0} req/s of wall-clock  ({} arrivals in {:.2}s)",
            sc.name, best.requests_per_sec, best.arrivals, best.wall_seconds
        );
        results.push((sc, best));
    }

    let payload = serde_json::json!({
        "experiment": "perf_hotpath",
        "quick": quick(),
        "duration_s": duration.as_secs_f64(),
        "scenarios": results
            .iter()
            .map(|(sc, m)| {
                serde_json::json!({
                    "name": sc.name,
                    "stress_rps": sc.rps,
                    "arrivals": m.arrivals,
                    "wall_seconds": m.wall_seconds,
                    "requests_per_sec": m.requests_per_sec,
                    "completed": m.report.total_completed(),
                    "dropped": m.report.total_dropped(),
                    "dispatch_overhead_ns": quantiles_json(&m.report.dispatch_overhead_ns),
                    "sched_overhead_us_hist": quantiles_json(&m.report.sched_overhead_hist_us),
                })
            })
            .collect::<Vec<_>>(),
    });
    record("BENCH_hotpath", payload.clone());
    // Committed copy at the workspace root: the perf trajectory.
    let mut root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    root.pop();
    root.pop();
    let _ = std::fs::write(
        root.join("BENCH_hotpath.json"),
        serde_json::to_string_pretty(&payload).unwrap_or_default(),
    );

    if std::env::var("INFLESS_PERF_GATE").is_ok_and(|v| v == "1") {
        gate(&root, &results);
    }
}

/// Fails (exit 1) when any scenario's requests/sec drops more than 20 %
/// below the committed baseline. Scenarios absent from the baseline are
/// skipped, so adding a scenario does not require regenerating it in
/// the same PR.
fn gate(root: &std::path::Path, results: &[(Scenario, Measured)]) {
    let path = root.join("crates/bench/perf_baseline.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        eprintln!("perf gate: no baseline at {} — skipping", path.display());
        return;
    };
    let baseline: serde_json::Value = serde_json::from_str(&text).expect("valid baseline JSON");
    let mut failed = false;
    for (sc, m) in results {
        let Some(base_rps) = baseline
            .get("scenarios")
            .and_then(|s| s.get(sc.name))
            .and_then(|s| s.get("requests_per_sec"))
            .and_then(|v| v.as_f64())
        else {
            eprintln!("perf gate: scenario {} not in baseline — skipping", sc.name);
            continue;
        };
        let ratio = m.requests_per_sec / base_rps;
        let verdict = if ratio < 0.8 {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "  gate {:<16} {:>8.0} vs baseline {:>8.0} req/s  ({:+.1}%)  {}",
            sc.name,
            m.requests_per_sec,
            base_rps,
            (ratio - 1.0) * 100.0,
            verdict
        );
    }
    if failed {
        eprintln!("perf gate: requests/sec regressed more than 20% vs committed baseline");
        std::process::exit(1);
    }
}
