//! Criterion microbenchmarks of the hot control-plane paths: the COP
//! predictor, one `Schedule()` round, and the event queue — the
//! operations behind the Fig. 17(a) overhead numbers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use infless_cluster::ClusterSpec;
use infless_core::predictor::CopPredictor;
use infless_core::scheduler::{Scheduler, SchedulerConfig};
use infless_models::{
    profile::ConfigGrid, HardwareModel, ModelId, ModelSpec, ProfileDatabase, ResourceConfig,
};
use infless_sim::{EventQueue, SimDuration, SimTime};

fn predictor() -> (CopPredictor, ModelSpec) {
    let hw = HardwareModel::default();
    let specs: Vec<ModelSpec> = ModelId::all().iter().map(|id| id.spec()).collect();
    let db = ProfileDatabase::cached(&hw, &specs, &ConfigGrid::standard(), 99);
    (CopPredictor::new(db, hw), ModelId::ResNet50.spec())
}

fn bench_predictor(c: &mut Criterion) {
    let (p, spec) = predictor();
    let cfg = ResourceConfig::new(2, 20);
    c.bench_function("cop_predict_cold_cache", |b| {
        b.iter_batched(
            || {
                let hw = HardwareModel::default();
                let db = ProfileDatabase::profile(
                    &hw,
                    std::slice::from_ref(&spec),
                    &ConfigGrid::standard(),
                    99,
                );
                CopPredictor::new(db, hw)
            },
            |fresh| fresh.predict(&spec, 8, cfg),
            BatchSize::LargeInput,
        )
    });
    c.bench_function("cop_predict_cached", |b| {
        let _ = p.predict(&spec, 8, cfg);
        b.iter(|| p.predict(&spec, 8, cfg))
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let (p, spec) = predictor();
    let mut scheduler = Scheduler::new(SchedulerConfig::default());
    c.bench_function("schedule_one_round_testbed", |b| {
        b.iter_batched(
            || ClusterSpec::testbed().build(),
            |mut cluster| {
                scheduler.schedule(
                    &p,
                    &infless_core::engine::FunctionInfo::new(
                        spec.clone(),
                        SimDuration::from_millis(200),
                    ),
                    500.0,
                    &mut cluster,
                )
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("schedule_one_round_500_servers", |b| {
        b.iter_batched(
            || ClusterSpec::large(500).build(),
            |mut cluster| {
                scheduler.schedule(
                    &p,
                    &infless_core::engine::FunctionInfo::new(
                        spec.clone(),
                        SimDuration::from_millis(200),
                    ),
                    500.0,
                    &mut cluster,
                )
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_micros((i * 7919) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_predictor, bench_scheduler, bench_event_queue
}
criterion_main!(benches);
