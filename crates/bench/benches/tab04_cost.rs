//! Table 4: computation cost comparison.
//!
//! CPUs and GPUs held per 100 completed RPS, and dollars per request,
//! for a statically-provisioned EC2 fleet, OpenFaaS+, BATCH and
//! INFless serving the same diurnal OSVT-style load (CPU $0.034/h,
//! 2080Ti-class GPU $2.5/h).
//!
//! Paper row (per 100 RPS / $ per request):
//!   EC2 49.42 CPU, 2.47 GPU, 2.23e-5 | OpenFaaS+ 55.63, 2.13, 2e-5 |
//!   BATCH 41.45, 1.34, 1.32e-5 | INFless 13.91, 0.51, 1.6e-6.

use infless_baselines::CostModel;
use infless_bench::{header, maybe_quick, record, System};
use infless_cluster::ClusterSpec;
use infless_core::apps::Application;
use infless_sim::SimDuration;
use infless_workload::{FunctionLoad, TracePattern, Workload};

fn main() {
    header(
        "tab04_cost",
        "Table 4",
        "Computation cost per 100 RPS and per request (diurnal OSVT load)",
    );
    let cluster = ClusterSpec::testbed();
    let app = Application::osvt();
    let duration = maybe_quick(SimDuration::from_hours(2));
    let loads: Vec<FunctionLoad> = app
        .functions()
        .iter()
        .enumerate()
        .map(|(i, _)| FunctionLoad::trace(TracePattern::Diurnal, 120.0, duration, 400 + i as u64))
        .collect();
    let workload = Workload::build(&loads, 44);
    let cost = CostModel::default();

    println!(
        "{:<10} {:>14} {:>14} {:>14}",
        "system", "CPUs/100RPS", "GPUs/100RPS", "$/request"
    );

    let mut rows = Vec::new();

    // Static EC2 reference: a fleet provisioned for the peak load, held
    // for the whole period. Size it from OpenFaaS+'s peak provisioning.
    let openfaas = System::OpenFaasPlus.run(cluster, app.functions(), &workload, 44);
    let peak_weighted = openfaas
        .provisioning
        .iter()
        .map(|(_, u)| *u)
        .fold(0.0f64, f64::max);
    // Decompose the peak into the fixed 2c+10g instance shape.
    let beta = 69.4 / 134.5; // HardwareCalibration defaults
    let unit = beta * 2.0 + 10.0;
    let peak_instances = (peak_weighted / unit).ceil();
    let ec2 = cost.static_fleet(
        peak_instances * 2.0,
        peak_instances * 0.10,
        duration.as_secs_f64() / 3600.0,
        openfaas.total_completed(),
    );
    println!(
        "{:<10} {:>14.2} {:>14.2} {:>14.2e}",
        "AWS EC2", ec2.cpus_per_100rps, ec2.gpus_per_100rps, ec2.cost_per_request
    );
    rows.push(serde_json::json!({
        "system": "AWS EC2",
        "cpus_per_100rps": ec2.cpus_per_100rps,
        "gpus_per_100rps": ec2.gpus_per_100rps,
        "cost_per_request": ec2.cost_per_request,
    }));

    let mut infless_cost = 0.0;
    let mut ec2_like = ec2.cost_per_request;
    for sys in System::trio() {
        let r = if sys == System::OpenFaasPlus {
            openfaas.clone()
        } else {
            sys.run(cluster, app.functions(), &workload, 44)
        };
        let s = cost.summarize(&r);
        println!(
            "{:<10} {:>14.2} {:>14.2} {:>14.2e}",
            sys.name(),
            s.cpus_per_100rps,
            s.gpus_per_100rps,
            s.cost_per_request
        );
        if sys == System::Infless {
            infless_cost = s.cost_per_request;
        }
        if sys == System::OpenFaasPlus {
            ec2_like = ec2_like.max(s.cost_per_request);
        }
        rows.push(serde_json::json!({
            "system": sys.name(),
            "cpus_per_100rps": s.cpus_per_100rps,
            "gpus_per_100rps": s.gpus_per_100rps,
            "cost_per_request": s.cost_per_request,
        }));
    }

    if infless_cost > 0.0 {
        println!(
            "\nINFless reduces cost per request {:.0}x vs EC2/OpenFaaS+ (paper: >10x)",
            ec2_like / infless_cost
        );
    }
    // The paper's closing example: 1.9 billion requests/day at >20k RPS.
    let daily_requests = 1.9e9_f64;
    let infless_daily = infless_cost * daily_requests;
    println!(
        "at the local-life-service scale (1.9B requests/day) this system would bill ≈ ${:.0}/day",
        infless_daily
    );

    record("tab04_cost", serde_json::json!({ "rows": rows }));
}
