//! Shared harness for the figure/table reproduction benches.
//!
//! Every bench target in `benches/` regenerates one figure or table of
//! the paper's evaluation: it prints the same rows/series the paper
//! reports and appends a machine-readable copy to
//! `target/infless-results/<experiment>.json` (consumed when updating
//! EXPERIMENTS.md).
//!
//! Conventions:
//!
//! * `INFLESS_QUICK=1` shrinks sweeps for smoke runs.
//! * All workloads and platforms are seeded; re-running a bench
//!   reproduces its numbers exactly (up to wall-clock overhead
//!   measurements).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

use infless_baselines::{BatchConfig, BatchPlacement, BatchPlatform, OpenFaasPlus, Torpor};
use infless_cluster::ClusterSpec;
use infless_core::engine::FunctionInfo;
use infless_core::metrics::RunReport;
use infless_core::platform::{InflessConfig, InflessPlatform};
use infless_core::runconfig::RunConfig;
use infless_core::sharded::ShardedInfless;
use infless_faults::{FaultPlan, FaultSchedule};
use infless_models::CacheOutcome;
use infless_sim::SimDuration;
use infless_workload::{FunctionLoad, TracePattern, Workload};

/// `true` when `INFLESS_QUICK=1`: benches shrink their sweeps.
pub fn quick() -> bool {
    std::env::var("INFLESS_QUICK").is_ok_and(|v| v == "1")
}

/// Scales a duration down 4x in quick mode.
pub fn maybe_quick(d: SimDuration) -> SimDuration {
    if quick() {
        d / 4
    } else {
        d
    }
}

/// Prints the standard experiment header.
pub fn header(experiment: &str, paper_ref: &str, what: &str) {
    println!("==============================================================");
    println!("{experiment}  ({paper_ref})");
    println!("{what}");
    println!("==============================================================");
}

/// Appends a JSON record for this experiment under
/// `target/infless-results/`.
pub fn record(experiment: &str, value: serde_json::Value) {
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{experiment}.json"));
    let _ = fs::write(
        path,
        serde_json::to_string_pretty(&value).unwrap_or_default(),
    );
}

fn results_dir() -> PathBuf {
    // target/ relative to the workspace root, regardless of cwd.
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.join("target").join("infless-results")
}

/// The platforms under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// The one-to-one baseline.
    OpenFaasPlus,
    /// The OTP batching baseline.
    Batch,
    /// BATCH with best-fit placement (Fig. 17b).
    BatchRs,
    /// The paper's system.
    Infless,
    /// The GPU-memory-tier baseline (host-RAM model cache + PCIe
    /// swap-in launches).
    Torpor,
}

impl System {
    /// The Figs. 11/12/15 comparison trio.
    pub fn trio() -> [System; 3] {
        [System::OpenFaasPlus, System::Batch, System::Infless]
    }

    /// The trio plus the Torpor swap baseline — the cold-start and
    /// failure-sweep comparison set.
    pub fn all() -> [System; 4] {
        [
            System::OpenFaasPlus,
            System::Batch,
            System::Torpor,
            System::Infless,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            System::OpenFaasPlus => "OpenFaaS+",
            System::Batch => "BATCH",
            System::BatchRs => "BATCH+RS",
            System::Infless => "INFless",
            System::Torpor => "Torpor",
        }
    }

    /// Runs this system with default knobs — shorthand for
    /// [`System::execute`] with a default [`RunConfig`].
    pub fn run(
        self,
        cluster: ClusterSpec,
        functions: &[FunctionInfo],
        workload: &Workload,
        seed: u64,
    ) -> RunReport {
        self.execute(cluster, functions, workload, seed, RunConfig::new())
    }

    /// Runs this system under the unified execution API: shards, fault
    /// schedule, telemetry sink and residency knobs all ride in
    /// `config`. A default config is the classic single-core,
    /// fault-free, telemetry-free run, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`RunConfig::validate`], or when a
    /// sharded run (an explicit shard count, even 1) is requested for
    /// a system other than INFless — the baselines have no
    /// epoch-barrier driver.
    pub fn execute(
        self,
        cluster: ClusterSpec,
        functions: &[FunctionInfo],
        workload: &Workload,
        seed: u64,
        config: RunConfig,
    ) -> RunReport {
        if let Err(e) = config.validate() {
            panic!("invalid run config for {}: {e}", self.name());
        }
        let sharded = config.is_sharded().then(|| config.effective_shards());
        // Empty schedule and NullSink are the platforms' own defaults;
        // attaching them explicitly is bit-identical to not doing so.
        let schedule = config.fault_schedule.unwrap_or_else(FaultSchedule::empty);
        let sink = config
            .telemetry
            .unwrap_or_else(|| Box::new(infless_telemetry::NullSink));
        let llm = config.llm.unwrap_or_default();
        let infless_config = || {
            let mut cfg = InflessConfig::default();
            if let Some(residency) = config.residency {
                cfg.residency = residency;
            }
            cfg.llm = llm;
            cfg
        };
        if let Some(shards) = sharded {
            assert!(
                self == System::Infless,
                "sharded execution is INFless-only; {} has no epoch-barrier driver",
                self.name()
            );
            return ShardedInfless::new(cluster, functions.to_vec(), infless_config(), seed)
                .with_fault_schedule(schedule)
                .run(workload, shards);
        }
        match self {
            System::OpenFaasPlus => OpenFaasPlus::new(cluster, functions.to_vec(), seed)
                .with_fault_schedule(schedule)
                .with_telemetry(sink)
                .with_llm(llm)
                .run(workload),
            System::Batch => BatchPlatform::new(cluster, functions.to_vec(), seed)
                .with_fault_schedule(schedule)
                .with_telemetry(sink)
                .with_llm(llm)
                .run(workload),
            System::BatchRs => BatchPlatform::with_config(
                cluster,
                functions.to_vec(),
                BatchConfig {
                    placement: BatchPlacement::BestFit,
                    ..BatchConfig::default()
                },
                seed,
            )
            .with_fault_schedule(schedule)
            .with_telemetry(sink)
            .with_llm(llm)
            .run(workload),
            System::Torpor => Torpor::new(cluster, functions.to_vec(), seed)
                .with_fault_schedule(schedule)
                .with_telemetry(sink)
                .with_llm(llm)
                .run(workload),
            System::Infless => {
                InflessPlatform::new(cluster, functions.to_vec(), infless_config(), seed)
                    .with_fault_schedule(schedule)
                    .with_telemetry(sink)
                    .run(workload)
            }
        }
    }
}

/// Generates the seeded fault schedule for a `(plan, cluster,
/// workload, seed)` tuple. Every system handed the same arguments
/// faces the *identical* sequence of crashes, kills and stragglers,
/// so report differences are recovery-policy differences, not luck.
pub fn fault_schedule_for(
    plan: &FaultPlan,
    cluster: ClusterSpec,
    workload: &Workload,
    seed: u64,
) -> FaultSchedule {
    let horizon = workload
        .end_time()
        .saturating_since(infless_sim::SimTime::ZERO);
    FaultSchedule::generate(plan, cluster.servers, horizon, seed)
}

/// Builds per-function loads of the same trace pattern (independent
/// streams) over `duration` at `mean_rps` each.
pub fn pattern_workload(
    functions: usize,
    pattern: TracePattern,
    mean_rps: f64,
    duration: SimDuration,
    seed: u64,
) -> Workload {
    let loads: Vec<FunctionLoad> = (0..functions)
        .map(|i| FunctionLoad::trace(pattern, mean_rps, duration, seed + 1000 + i as u64))
        .collect();
    Workload::build(&loads, seed)
}

/// Builds constant stress loads.
pub fn constant_workload(functions: usize, rps: f64, duration: SimDuration, seed: u64) -> Workload {
    let loads: Vec<FunctionLoad> = (0..functions)
        .map(|_| FunctionLoad::constant(rps, duration))
        .collect();
    Workload::build(&loads, seed)
}

/// Runs independent experiment closures on worker threads and returns
/// their results in input order. Every experiment is seeded, so
/// parallel execution cannot change any number — only the wall-clock
/// time of `cargo bench`.
pub fn run_parallel<F, R>(jobs: Vec<F>) -> Vec<R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs.into_iter().map(|job| scope.spawn(job)).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    })
}

/// Short provenance tag for a run's COP profile database.
pub fn cache_tag(report: &RunReport) -> &'static str {
    match report.profile_cache {
        Some(CacheOutcome::MemoryHit) => "profile-db cache hit",
        Some(CacheOutcome::DiskHit) => "profile-db disk hit",
        Some(CacheOutcome::Built) => "profile-db built",
        None => "no profile-db",
    }
}

/// One per-run accounting line of the parallel harness: wall-clock time
/// of the run (construction + simulation) and where its profile
/// database came from.
pub fn timing_line(label: &str, report: &RunReport) -> String {
    format!(
        "  {:<14} wall {:>7.2}s  ({})",
        label,
        report.wall_clock_seconds,
        cache_tag(report)
    )
}

/// Prints the per-run wall-clock block for a batch of labelled reports.
pub fn print_timings<'a>(runs: impl IntoIterator<Item = (&'a str, &'a RunReport)>) {
    println!("per-run wall-clock (parallel harness):");
    for (label, report) in runs {
        println!("{}", timing_line(label, report));
    }
}

/// The run's time-series gauge summary as a JSON value, for embedding
/// in `record()` payloads.
pub fn timeseries_json(report: &RunReport) -> serde_json::Value {
    serde_json::to_value(&report.timeseries_summary)
}

/// A compact one-line summary used by several benches.
pub fn summarize_line(report: &RunReport) -> String {
    format!(
        "completed={} dropped={} viol={:.2}% goodput={:.1}rps thpt/res={:.3} cold={:.2}%",
        report.total_completed(),
        report.total_dropped(),
        report.violation_rate() * 100.0,
        report.goodput_rps(),
        report.throughput_per_resource(),
        report.cold_request_rate() * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_flag_reads_env() {
        // Not set in the test environment by default.
        assert!(!quick() || std::env::var("INFLESS_QUICK").is_ok());
    }

    #[test]
    fn systems_have_names() {
        assert_eq!(System::Infless.name(), "INFless");
        assert_eq!(System::trio().len(), 3);
    }

    #[test]
    fn workload_builders_produce_load() {
        let w = constant_workload(2, 10.0, SimDuration::from_secs(5), 1);
        assert_eq!(w.len(), 100);
        let w = pattern_workload(
            2,
            TracePattern::Periodic,
            10.0,
            SimDuration::from_mins(2),
            1,
        );
        assert!(!w.is_empty());
    }
}
