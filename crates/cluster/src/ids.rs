//! Typed identifiers.
//!
//! Newtypes keep server, function, instance and request indices from
//! being confused with one another (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($inner:ty), $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name($inner);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(raw: $inner) -> Self {
                $name(raw)
            }

            /// The raw index.
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Index of a server in the cluster.
    ServerId(usize),
    "srv"
);
id_type!(
    /// Index of a deployed inference function.
    FunctionId(usize),
    "fn"
);
id_type!(
    /// Unique id of a function instance (monotonically assigned, never
    /// reused even after the instance is torn down).
    InstanceId(u64),
    "inst"
);
id_type!(
    /// Unique id of an inference request.
    RequestId(u64),
    "req"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_display() {
        assert_eq!(ServerId::new(3).raw(), 3);
        assert_eq!(ServerId::new(3).to_string(), "srv3");
        assert_eq!(FunctionId::new(1).to_string(), "fn1");
        assert_eq!(InstanceId::new(9).to_string(), "inst9");
        assert_eq!(RequestId::new(0).to_string(), "req0");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(InstanceId::new(1) < InstanceId::new(2));
        assert_ne!(RequestId::new(1), RequestId::new(2));
    }
}
