//! Function instances: the unit of placement, batching and scaling.

use std::collections::VecDeque;

use infless_models::ResourceConfig;
use infless_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::ids::{FunctionId, InstanceId, RequestId};
use crate::server::Placement;

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Unique request id.
    pub id: RequestId,
    /// The function it invokes.
    pub function: FunctionId,
    /// When it arrived at the platform gateway.
    pub arrival: SimTime,
}

/// The non-uniform per-instance configuration: batchsize plus hybrid
/// resources. Instances *of the same function* may carry different
/// configs — that is INFless's non-uniform scaling (§3.2).
///
/// # Example
///
/// ```
/// use infless_cluster::InstanceConfig;
/// use infless_models::ResourceConfig;
///
/// let cfg = InstanceConfig::new(8, ResourceConfig::new(2, 20));
/// assert_eq!(cfg.batch(), 8);
/// assert_eq!(cfg.resources().gpu_pct(), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InstanceConfig {
    batch: u32,
    resources: ResourceConfig,
}

impl InstanceConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero (a batchsize of zero means "never
    /// launched" in the paper's formulation and is not a real config).
    pub fn new(batch: u32, resources: ResourceConfig) -> Self {
        assert!(batch >= 1, "batchsize must be at least 1");
        InstanceConfig { batch, resources }
    }

    /// The instance's batchsize `b`.
    pub fn batch(self) -> u32 {
        self.batch
    }

    /// The instance's resource allocation `⟨c, g⟩`.
    pub fn resources(self) -> ResourceConfig {
        self.resources
    }
}

impl std::fmt::Display for InstanceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(b={}, {})", self.batch, self.resources)
    }
}

/// Lifecycle state of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceState {
    /// Cold-starting: container boot + model load in progress.
    Starting {
        /// When the instance becomes able to execute.
        ready_at: SimTime,
    },
    /// Warm and not executing.
    Idle,
    /// Executing a batch.
    Busy {
        /// When the in-flight batch completes.
        until: SimTime,
    },
}

/// A function instance: placement, lifecycle state, and its built-in
/// batch queue.
///
/// The queue holds at most one batch worth of requests (`config.batch`).
/// While a batch executes, the next batch may accumulate; if that
/// pending batch is already full, further requests are *dropped* —
/// exactly the over-submission situation of the paper's Fig. 6a that
/// the `[r_low, r_up]` dispatch window exists to avoid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    id: InstanceId,
    function: FunctionId,
    config: InstanceConfig,
    placement: Placement,
    state: InstanceState,
    queue: VecDeque<Request>,
    queue_opened_at: Option<SimTime>,
    ready_at: SimTime,
    created_at: SimTime,
    last_active: SimTime,
    was_cold_started: bool,
    completed_requests: u64,
    executed_batches: u64,
}

impl Instance {
    /// Creates an instance that begins cold-starting at `now` and
    /// becomes ready at `ready_at`. Use `ready_at = now` for an
    /// instance spawned from a pre-warmed (image already loaded) slot.
    pub fn new(
        id: InstanceId,
        function: FunctionId,
        config: InstanceConfig,
        placement: Placement,
        now: SimTime,
        ready_at: SimTime,
    ) -> Self {
        let cold = ready_at > now;
        Instance {
            id,
            function,
            config,
            placement,
            state: if cold {
                InstanceState::Starting { ready_at }
            } else {
                InstanceState::Idle
            },
            queue: VecDeque::new(),
            queue_opened_at: None,
            ready_at,
            created_at: now,
            last_active: now,
            was_cold_started: cold,
            completed_requests: 0,
            executed_batches: 0,
        }
    }

    /// The instance id.
    pub fn id(&self) -> InstanceId {
        self.id
    }

    /// The function this instance serves.
    pub fn function(&self) -> FunctionId {
        self.function
    }

    /// The instance's batch/resource configuration.
    pub fn config(&self) -> InstanceConfig {
        self.config
    }

    /// Where the instance's resources were allocated.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Current lifecycle state.
    pub fn state(&self) -> InstanceState {
        self.state
    }

    /// `true` while the cold start is still in progress at `now`.
    pub fn is_starting(&self, now: SimTime) -> bool {
        matches!(self.state, InstanceState::Starting { ready_at } if ready_at > now)
    }

    /// `true` if this instance incurred a cold start when created.
    pub fn was_cold_started(&self) -> bool {
        self.was_cold_started
    }

    /// When the instance was created.
    pub fn created_at(&self) -> SimTime {
        self.created_at
    }

    /// When the instance became (or becomes) ready to execute.
    pub fn ready_at(&self) -> SimTime {
        self.ready_at
    }

    /// The last instant the instance did useful work (batch completion
    /// or creation time) — the reference point for keep-alive windows.
    pub fn last_active(&self) -> SimTime {
        self.last_active
    }

    /// Requests waiting in the batch queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// When the oldest queued request arrived, if any — the batch
    /// timeout countdown starts there.
    pub fn queue_opened_at(&self) -> Option<SimTime> {
        self.queue_opened_at
    }

    /// Read access to the queued requests, oldest first — admission
    /// controllers (e.g. the KV-cache gate) inspect before draining.
    pub fn queued(&self) -> impl Iterator<Item = &Request> + '_ {
        self.queue.iter()
    }

    /// Total requests completed over the instance's lifetime.
    pub fn completed_requests(&self) -> u64 {
        self.completed_requests
    }

    /// Total batches executed over the instance's lifetime.
    pub fn executed_batches(&self) -> u64 {
        self.executed_batches
    }

    /// Tries to enqueue a request into the batch queue. Returns `false`
    /// (dropping the request) when a full batch is already pending.
    pub fn enqueue(&mut self, request: Request, now: SimTime) -> bool {
        if self.queue.len() >= self.config.batch as usize {
            return false;
        }
        if self.queue.is_empty() {
            self.queue_opened_at = Some(now);
        }
        self.queue.push_back(request);
        true
    }

    /// Drains and returns every queued request, closing the batch
    /// window. Used when an instance dies (fault injection): the queue
    /// is displaced to the platform for SLO-budgeted retry.
    pub fn take_queue(&mut self) -> Vec<Request> {
        self.queue_opened_at = None;
        self.queue.drain(..).collect()
    }

    /// `true` if a full batch is waiting.
    pub fn batch_full(&self) -> bool {
        self.queue.len() >= self.config.batch as usize
    }

    /// `true` if the instance can start executing a batch at `now`
    /// (warm, not busy, and has at least one queued request).
    pub fn can_execute(&self, now: SimTime) -> bool {
        !self.queue.is_empty()
            && match self.state {
                InstanceState::Idle => true,
                InstanceState::Starting { ready_at } => ready_at <= now,
                InstanceState::Busy { .. } => false,
            }
    }

    /// Takes the queued requests (up to one batch) and marks the
    /// instance busy until `until`. Returns the batch.
    ///
    /// # Panics
    ///
    /// Panics if called when [`Self::can_execute`] is false — executing
    /// on a busy or cold instance is a platform logic error.
    pub fn begin_batch(&mut self, now: SimTime, until: SimTime) -> Vec<Request> {
        assert!(self.can_execute(now), "begin_batch on a non-ready instance");
        let take = (self.config.batch as usize).min(self.queue.len());
        let batch: Vec<Request> = self.queue.drain(..take).collect();
        self.queue_opened_at = if self.queue.is_empty() {
            None
        } else {
            // Remaining requests started waiting when they arrived; the
            // oldest remaining one reopens the window "now".
            Some(now)
        };
        self.state = InstanceState::Busy { until };
        self.executed_batches += 1;
        batch
    }

    /// Like [`Self::begin_batch`], but takes at most `n` requests —
    /// the autoregressive admission path, where the batch that fits is
    /// bounded by KV-cache headroom rather than the configured
    /// batchsize alone.
    ///
    /// # Panics
    ///
    /// Panics if called when [`Self::can_execute`] is false, or if `n`
    /// is zero.
    pub fn begin_batch_of(&mut self, n: usize, now: SimTime, until: SimTime) -> Vec<Request> {
        assert!(n >= 1, "begin_batch_of needs at least one request");
        assert!(
            self.can_execute(now),
            "begin_batch_of on a non-ready instance"
        );
        let take = n.min(self.config.batch as usize).min(self.queue.len());
        let batch: Vec<Request> = self.queue.drain(..take).collect();
        self.queue_opened_at = if self.queue.is_empty() {
            None
        } else {
            Some(now)
        };
        self.state = InstanceState::Busy { until };
        self.executed_batches += 1;
        batch
    }

    /// Drains up to `n` queued requests *while busy* — continuous
    /// batching admits waiting sequences into the running decode batch
    /// at step boundaries without the instance ever going idle.
    ///
    /// # Panics
    ///
    /// Panics if the instance is not busy (joining an idle instance's
    /// queue is what [`Self::begin_batch_of`] is for).
    pub fn drain_queued(&mut self, n: usize, now: SimTime) -> Vec<Request> {
        assert!(
            matches!(self.state, InstanceState::Busy { .. }),
            "drain_queued on a non-busy instance"
        );
        let take = n.min(self.queue.len());
        let joined: Vec<Request> = self.queue.drain(..take).collect();
        self.queue_opened_at = if self.queue.is_empty() {
            None
        } else {
            Some(now)
        };
        joined
    }

    /// Extends the busy window to `until` — one decode step scheduled
    /// after another without an idle gap in between.
    ///
    /// # Panics
    ///
    /// Panics if the instance is not busy.
    pub fn extend_busy(&mut self, until: SimTime) {
        assert!(
            matches!(self.state, InstanceState::Busy { .. }),
            "extend_busy on a non-busy instance"
        );
        self.state = InstanceState::Busy { until };
    }

    /// Marks the in-flight batch of `size` requests complete at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the instance is not busy.
    pub fn complete_batch(&mut self, now: SimTime, size: usize) {
        assert!(
            matches!(self.state, InstanceState::Busy { .. }),
            "complete_batch on a non-busy instance"
        );
        self.state = InstanceState::Idle;
        self.last_active = now;
        self.completed_requests += size as u64;
    }

    /// The idle time at `now`: how long since the instance last did
    /// work. Zero while busy or starting.
    pub fn idle_for(&self, now: SimTime) -> infless_sim::SimDuration {
        match self.state {
            InstanceState::Idle if self.queue.is_empty() => now.saturating_since(self.last_active),
            _ => infless_sim::SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ServerId;
    use crate::server::Server;
    use infless_sim::SimDuration;

    fn placement() -> Placement {
        let mut s = Server::new(ServerId::new(0), 8, &[100]);
        s.allocate(ResourceConfig::new(1, 10)).unwrap()
    }

    fn request(id: u64, t: SimTime) -> Request {
        Request {
            id: RequestId::new(id),
            function: FunctionId::new(0),
            arrival: t,
        }
    }

    fn warm_instance(batch: u32) -> Instance {
        Instance::new(
            InstanceId::new(0),
            FunctionId::new(0),
            InstanceConfig::new(batch, ResourceConfig::new(1, 10)),
            placement(),
            SimTime::ZERO,
            SimTime::ZERO,
        )
    }

    #[test]
    fn cold_instance_waits_for_ready() {
        let inst = Instance::new(
            InstanceId::new(1),
            FunctionId::new(0),
            InstanceConfig::new(4, ResourceConfig::cpu(1)),
            placement(),
            SimTime::ZERO,
            SimTime::from_secs(2),
        );
        assert!(inst.was_cold_started());
        assert!(inst.is_starting(SimTime::from_secs(1)));
        assert!(!inst.is_starting(SimTime::from_secs(2)));
    }

    #[test]
    fn queue_drops_beyond_one_batch() {
        let mut inst = warm_instance(2);
        let t = SimTime::from_millis(1);
        assert!(inst.enqueue(request(0, t), t));
        assert!(inst.enqueue(request(1, t), t));
        assert!(inst.batch_full());
        // Third request: pending batch full, dropped.
        assert!(!inst.enqueue(request(2, t), t));
        assert_eq!(inst.queue_len(), 2);
    }

    #[test]
    fn batch_lifecycle_counters() {
        let mut inst = warm_instance(4);
        let t0 = SimTime::from_millis(5);
        inst.enqueue(request(0, t0), t0);
        inst.enqueue(request(1, t0), t0);
        assert_eq!(inst.queue_opened_at(), Some(t0));
        assert!(inst.can_execute(t0));

        let until = t0 + SimDuration::from_millis(50);
        let batch = inst.begin_batch(t0, until);
        assert_eq!(batch.len(), 2);
        assert_eq!(inst.queue_len(), 0);
        assert_eq!(inst.queue_opened_at(), None);
        assert!(!inst.can_execute(t0));
        assert!(matches!(inst.state(), InstanceState::Busy { .. }));

        inst.complete_batch(until, batch.len());
        assert_eq!(inst.completed_requests(), 2);
        assert_eq!(inst.executed_batches(), 1);
        assert_eq!(inst.last_active(), until);
        assert!(matches!(inst.state(), InstanceState::Idle));
    }

    #[test]
    fn next_batch_accumulates_while_busy() {
        let mut inst = warm_instance(2);
        let t0 = SimTime::from_millis(1);
        inst.enqueue(request(0, t0), t0);
        inst.enqueue(request(1, t0), t0);
        let until = t0 + SimDuration::from_millis(10);
        inst.begin_batch(t0, until);
        // While busy, new requests queue for the next batch.
        let t1 = t0 + SimDuration::from_millis(2);
        assert!(inst.enqueue(request(2, t1), t1));
        assert!(inst.enqueue(request(3, t1), t1));
        assert!(
            !inst.enqueue(request(4, t1), t1),
            "second pending batch drops"
        );
        assert!(!inst.can_execute(t1), "busy until t0+10ms");
        inst.complete_batch(until, 2);
        assert!(inst.can_execute(until));
    }

    #[test]
    fn idle_time_tracks_last_activity() {
        let mut inst = warm_instance(1);
        let t0 = SimTime::from_secs(1);
        inst.enqueue(request(0, t0), t0);
        let until = t0 + SimDuration::from_millis(100);
        inst.begin_batch(t0, until);
        inst.complete_batch(until, 1);
        let later = until + SimDuration::from_secs(30);
        assert_eq!(inst.idle_for(later), SimDuration::from_secs(30));
        // Queued work means not idle.
        inst.enqueue(request(1, later), later);
        assert_eq!(inst.idle_for(later), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-ready")]
    fn begin_batch_on_empty_queue_panics() {
        let mut inst = warm_instance(2);
        inst.begin_batch(SimTime::ZERO, SimTime::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "non-busy")]
    fn complete_without_begin_panics() {
        let mut inst = warm_instance(2);
        inst.complete_batch(SimTime::ZERO, 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_batch_config_rejected() {
        InstanceConfig::new(0, ResourceConfig::cpu(1));
    }

    #[test]
    fn continuous_join_and_extend_lifecycle() {
        let mut inst = warm_instance(4);
        let t0 = SimTime::from_millis(1);
        for i in 0..3 {
            inst.enqueue(request(i, t0), t0);
        }
        // KV headroom admits only 2 of the 3 queued requests.
        let until = t0 + SimDuration::from_millis(10);
        let batch = inst.begin_batch_of(2, t0, until);
        assert_eq!(batch.len(), 2);
        assert_eq!(inst.queue_len(), 1);
        assert_eq!(inst.queue_opened_at(), Some(t0));

        // A decode-step boundary: one joiner drains into the running
        // batch, the busy window rolls forward without going idle.
        let t1 = t0 + SimDuration::from_millis(4);
        let joined = inst.drain_queued(4, t1);
        assert_eq!(joined.len(), 1);
        assert_eq!(inst.queue_opened_at(), None);
        let until2 = t1 + SimDuration::from_millis(10);
        inst.extend_busy(until2);
        assert!(matches!(
            inst.state(),
            InstanceState::Busy { until } if until == until2
        ));
        inst.complete_batch(until2, 3);
        assert_eq!(inst.completed_requests(), 3);
        assert_eq!(inst.executed_batches(), 1);
    }

    #[test]
    #[should_panic(expected = "non-busy")]
    fn drain_queued_while_idle_panics() {
        let mut inst = warm_instance(2);
        let t = SimTime::ZERO;
        inst.enqueue(request(0, t), t);
        inst.drain_queued(1, t);
    }
}
