//! Cluster substrate: servers with hybrid CPU/GPU resources, placement
//! accounting and function-instance lifecycle.
//!
//! This crate is the mechanical layer under every platform in the
//! reproduction (INFless and the baselines alike): it owns *what is
//! where* — which instance holds which cores and which GPU slice on
//! which server — and enforces capacity invariants, while the policy
//! crates decide *what to place*.
//!
//! The default [`ClusterSpec::testbed`] mirrors the paper's Table 2
//! cluster: 8 machines, 32 CPU threads each, 2× RTX 2080Ti per machine
//! (GPU shares are percentages of a single physical device, so a slice
//! never spans devices). [`ClusterSpec::large`] builds the 2 000-server
//! simulation cluster of §5.3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ids;
mod instance;
mod server;
mod state;

pub use ids::{FunctionId, InstanceId, RequestId, ServerId};
pub use instance::{Instance, InstanceConfig, InstanceState, Request};
pub use server::{Placement, Server, ServerHealth};
pub use state::{ClusterOp, ClusterSpec, ClusterState, PlacementError};
