//! A single server: CPU cores plus one or more physical GPUs whose SMs
//! are partitioned by percentage (CUDA MPS style).

use infless_models::ResourceConfig;
use serde::{Deserialize, Serialize};

use crate::ids::ServerId;

/// Where an allocation landed on a server: which GPU device (if any)
/// supplied the SM share. Needed to release the share to the right
/// device later.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    server: ServerId,
    gpu_index: Option<usize>,
    mem_mb: f64,
    // Defaulted so placements serialized before the host/device memory
    // split still load (they reserved no device memory).
    #[serde(default)]
    device_mb: f64,
}

impl Placement {
    /// The server the allocation lives on.
    pub fn server(self) -> ServerId {
        self.server
    }

    /// The GPU device index supplying the SM share, if any.
    pub fn gpu_index(self) -> Option<usize> {
        self.gpu_index
    }

    /// The host memory reserved by the allocation, in MB.
    pub fn mem_mb(self) -> f64 {
        self.mem_mb
    }

    /// The GPU device memory reserved by the allocation, in MB (zero
    /// when the caller does not model the device-memory tier).
    pub fn device_mb(self) -> f64 {
        self.device_mb
    }
}

/// Liveness of a server under the fault model (PR 3).
///
/// Only [`ServerHealth::Up`] servers accept placements; a crashed
/// ([`ServerHealth::Down`]) or rebooting ([`ServerHealth::Recovering`])
/// server is skipped by every placement path (Algorithm 1, first-fit,
/// spread, best-fit) because [`Server::fits_with_memory`] and
/// [`Server::allocate_with_memory`] refuse while unhealthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ServerHealth {
    /// Healthy: accepts placements.
    #[default]
    Up,
    /// Crashed: all instances died; accepts nothing.
    Down,
    /// Outage over, still booting; accepts nothing yet.
    Recovering,
}

/// One server's capacity and free-resource accounting.
///
/// GPU shares must fit within a single physical device — a 60 % slice
/// cannot be satisfied by two devices with 30 % free each. That is why
/// free GPU capacity is tracked per device rather than pooled.
///
/// # Example
///
/// ```
/// use infless_cluster::{Server, ServerId};
/// use infless_models::ResourceConfig;
///
/// let mut s = Server::new(ServerId::new(0), 32, &[100, 100]);
/// let p = s.allocate(ResourceConfig::new(4, 60)).expect("fits");
/// assert_eq!(s.cpu_free(), 28);
/// s.release(ResourceConfig::new(4, 60), p);
/// assert_eq!(s.cpu_free(), 32);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Server {
    id: ServerId,
    cpu_capacity: u32,
    cpu_free: u32,
    gpu_capacity: Vec<u32>,
    gpu_free: Vec<u32>,
    mem_capacity_mb: f64,
    mem_free_mb: f64,
    // Per-device GPU memory books (MB), same indexing as the SM-share
    // vectors. Defaulted so pre-split serialized servers still load
    // (their allocations reserved no device memory, so empty books are
    // consistent).
    #[serde(default)]
    gpu_mem_capacity_mb: Vec<f64>,
    #[serde(default)]
    gpu_mem_free_mb: Vec<f64>,
    instances: usize,
    // Defaulted so pre-fault-model serialized servers still load.
    #[serde(default)]
    health: ServerHealth,
}

/// Per-device GPU memory of the testbed's 2080Ti-class cards, MB.
pub const DEFAULT_GPU_MEM_MB: f64 = 11.0 * 1024.0;

impl Server {
    /// Creates a server with `cpu_capacity` cores, one entry in `gpus`
    /// per physical device giving its SM capacity in percent (normally
    /// 100), and the Table 2 default of 128 GB of memory.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_capacity` is zero.
    pub fn new(id: ServerId, cpu_capacity: u32, gpus: &[u32]) -> Self {
        Self::with_memory(id, cpu_capacity, gpus, 128.0 * 1024.0)
    }

    /// Creates a server with an explicit memory capacity in MB.
    ///
    /// The paper's scheduler omits the memory constraint because model
    /// footprints are far below server capacity (§3.4), but notes the
    /// formulation "can be easily extended to cover more resource
    /// dimensions" — this is that extension, and it matters on
    /// memory-constrained clusters.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_capacity` is zero or `mem_capacity_mb` is not
    /// positive.
    pub fn with_memory(
        id: ServerId,
        cpu_capacity: u32,
        gpus: &[u32],
        mem_capacity_mb: f64,
    ) -> Self {
        Self::with_memory_split(id, cpu_capacity, gpus, mem_capacity_mb, DEFAULT_GPU_MEM_MB)
    }

    /// Creates a server with an explicit host/device memory split:
    /// `mem_capacity_mb` of host memory plus `gpu_mem_per_device_mb` of
    /// memory on each physical GPU. Device memory only constrains
    /// allocations that declare a device demand
    /// ([`Self::allocate_with_split`]); the classic paths reserve none.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_capacity` is zero or either memory capacity is
    /// not positive/finite.
    pub fn with_memory_split(
        id: ServerId,
        cpu_capacity: u32,
        gpus: &[u32],
        mem_capacity_mb: f64,
        gpu_mem_per_device_mb: f64,
    ) -> Self {
        assert!(cpu_capacity > 0, "a server needs CPU capacity");
        assert!(
            mem_capacity_mb > 0.0 && mem_capacity_mb.is_finite(),
            "a server needs memory capacity"
        );
        assert!(
            gpu_mem_per_device_mb > 0.0 && gpu_mem_per_device_mb.is_finite(),
            "a GPU needs device memory capacity"
        );
        Server {
            id,
            cpu_capacity,
            cpu_free: cpu_capacity,
            gpu_capacity: gpus.to_vec(),
            gpu_free: gpus.to_vec(),
            mem_capacity_mb,
            mem_free_mb: mem_capacity_mb,
            gpu_mem_capacity_mb: vec![gpu_mem_per_device_mb; gpus.len()],
            gpu_mem_free_mb: vec![gpu_mem_per_device_mb; gpus.len()],
            instances: 0,
            health: ServerHealth::Up,
        }
    }

    /// The server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Total CPU cores.
    pub fn cpu_capacity(&self) -> u32 {
        self.cpu_capacity
    }

    /// Currently unallocated CPU cores.
    pub fn cpu_free(&self) -> u32 {
        self.cpu_free
    }

    /// Total GPU SM percentage across all devices.
    pub fn gpu_capacity_total(&self) -> u32 {
        self.gpu_capacity.iter().sum()
    }

    /// Currently unallocated GPU SM percentage across all devices.
    pub fn gpu_free_total(&self) -> u32 {
        self.gpu_free.iter().sum()
    }

    /// Total host memory in MB.
    pub fn mem_capacity_mb(&self) -> f64 {
        self.mem_capacity_mb
    }

    /// Currently unallocated host memory in MB.
    pub fn mem_free_mb(&self) -> f64 {
        self.mem_free_mb
    }

    /// Total GPU device memory across all devices, MB.
    pub fn gpu_mem_capacity_total_mb(&self) -> f64 {
        self.gpu_mem_capacity_mb.iter().sum()
    }

    /// Currently unallocated GPU device memory across all devices, MB.
    pub fn gpu_mem_free_total_mb(&self) -> f64 {
        self.gpu_mem_free_mb.iter().sum()
    }

    /// Number of instances currently placed on this server.
    pub fn instance_count(&self) -> usize {
        self.instances
    }

    /// `true` if at least one instance is placed here (an *active*
    /// server in the fragmentation metric of Fig. 17b).
    pub fn is_active(&self) -> bool {
        self.instances > 0
    }

    /// The server's health under the fault model.
    pub fn health(&self) -> ServerHealth {
        self.health
    }

    /// Sets the server's health. Accounting is untouched: a crash
    /// releases its instances' allocations one by one as the engine
    /// kills them, so the books stay exact through the transition.
    pub fn set_health(&mut self, health: ServerHealth) {
        self.health = health;
    }

    /// Checks whether `cfg` fits without allocating. A GPU share must
    /// fit within a single device.
    pub fn fits(&self, cfg: ResourceConfig) -> bool {
        self.fits_with_memory(cfg, 0.0)
    }

    /// [`Self::fits`] with an additional host-memory demand in MB.
    pub fn fits_with_memory(&self, cfg: ResourceConfig, mem_mb: f64) -> bool {
        self.fits_with_split(cfg, mem_mb, 0.0)
    }

    /// [`Self::fits_with_memory`] with an additional GPU device-memory
    /// demand in MB: a single device must supply both the SM share and
    /// the device memory. `device_mb == 0.0` is exactly the classic
    /// check.
    pub fn fits_with_split(&self, cfg: ResourceConfig, mem_mb: f64, device_mb: f64) -> bool {
        if self.health != ServerHealth::Up {
            return false;
        }
        if cfg.cpu_cores() > self.cpu_free || mem_mb > self.mem_free_mb {
            return false;
        }
        if cfg.gpu_pct() == 0 {
            return device_mb <= 0.0;
        }
        self.gpu_free
            .iter()
            .enumerate()
            .any(|(i, &f)| f >= cfg.gpu_pct() && self.device_mem_fits(i, device_mb))
    }

    /// Whether device `i` has `device_mb` MB free. Servers deserialized
    /// from pre-split snapshots carry empty device books — their
    /// allocations reserved no device memory, so an absent book is
    /// treated as unconstrained.
    #[inline]
    fn device_mem_fits(&self, i: usize, device_mb: f64) -> bool {
        self.gpu_mem_free_mb.get(i).is_none_or(|&f| f >= device_mb)
    }

    /// Allocates `cfg` with no memory demand; see
    /// [`Self::allocate_with_memory`].
    pub fn allocate(&mut self, cfg: ResourceConfig) -> Option<Placement> {
        self.allocate_with_memory(cfg, 0.0)
    }

    /// Allocates `cfg` plus `mem_mb` MB of memory, preferring the GPU
    /// device with the *least* sufficient free share (best-fit, to keep
    /// large contiguous shares available). Returns `None` if the config
    /// does not fit.
    ///
    /// # Panics
    ///
    /// Panics if `mem_mb` is negative or non-finite.
    pub fn allocate_with_memory(&mut self, cfg: ResourceConfig, mem_mb: f64) -> Option<Placement> {
        self.allocate_with_split(cfg, mem_mb, 0.0)
    }

    /// [`Self::allocate_with_memory`] with an additional GPU
    /// device-memory demand: the chosen device supplies both the SM
    /// share and `device_mb` MB of device memory (best-fit by free
    /// share among devices that satisfy both). `device_mb == 0.0`
    /// behaves identically to the classic path.
    ///
    /// # Panics
    ///
    /// Panics if either memory demand is negative or non-finite, or if
    /// a device demand is attached to a CPU-only configuration (there
    /// is no device to hold it).
    pub fn allocate_with_split(
        &mut self,
        cfg: ResourceConfig,
        mem_mb: f64,
        device_mb: f64,
    ) -> Option<Placement> {
        assert!(mem_mb >= 0.0 && mem_mb.is_finite(), "bad memory demand");
        assert!(
            device_mb >= 0.0 && device_mb.is_finite(),
            "bad device memory demand"
        );
        assert!(
            device_mb == 0.0 || cfg.gpu_pct() > 0,
            "device memory demand on a CPU-only configuration"
        );
        if self.health != ServerHealth::Up {
            return None;
        }
        if cfg.cpu_cores() > self.cpu_free || mem_mb > self.mem_free_mb {
            return None;
        }
        let gpu_index = if cfg.gpu_pct() == 0 {
            None
        } else {
            let best = self
                .gpu_free
                .iter()
                .enumerate()
                .filter(|&(i, &f)| f >= cfg.gpu_pct() && self.device_mem_fits(i, device_mb))
                .min_by_key(|(_, &f)| f)
                .map(|(i, _)| i)?;
            Some(best)
        };
        self.cpu_free -= cfg.cpu_cores();
        self.mem_free_mb -= mem_mb;
        if let Some(i) = gpu_index {
            self.gpu_free[i] -= cfg.gpu_pct();
            if let Some(f) = self.gpu_mem_free_mb.get_mut(i) {
                *f -= device_mb;
            }
        }
        self.instances += 1;
        Some(Placement {
            server: self.id,
            gpu_index,
            mem_mb,
            device_mb,
        })
    }

    /// Releases an allocation made by [`Self::allocate`] /
    /// [`Self::allocate_with_memory`].
    ///
    /// A double release (e.g. a crash-forced release racing a normal
    /// retirement) is flagged with `debug_assert!` in debug builds; in
    /// release builds the books saturate at capacity instead of
    /// overflowing, so a slipped-through accounting bug degrades into a
    /// bounded over-count rather than corruption.
    ///
    /// # Panics
    ///
    /// Panics if the placement belongs to a different server or its GPU
    /// share does not match the config — those are type-level misuse,
    /// not races. Debug builds additionally panic on double release.
    pub fn release(&mut self, cfg: ResourceConfig, placement: Placement) {
        assert_eq!(placement.server, self.id, "release on the wrong server");
        debug_assert!(self.instances > 0, "release with no instances placed");
        debug_assert!(
            self.cpu_free + cfg.cpu_cores() <= self.cpu_capacity,
            "CPU release exceeds capacity"
        );
        self.cpu_free = (self.cpu_free + cfg.cpu_cores()).min(self.cpu_capacity);
        self.mem_free_mb = (self.mem_free_mb + placement.mem_mb).min(self.mem_capacity_mb);
        match (placement.gpu_index, cfg.gpu_pct()) {
            (None, 0) => {}
            (Some(i), pct) if pct > 0 => {
                debug_assert!(
                    self.gpu_free[i] + pct <= self.gpu_capacity[i],
                    "GPU release exceeds device capacity"
                );
                self.gpu_free[i] = (self.gpu_free[i] + pct).min(self.gpu_capacity[i]);
                if let Some(f) = self.gpu_mem_free_mb.get_mut(i) {
                    *f = (*f + placement.device_mb).min(self.gpu_mem_capacity_mb[i]);
                }
            }
            _ => panic!("placement/config GPU mismatch"),
        }
        self.instances = self.instances.saturating_sub(1);
    }

    /// Weighted free fraction `((β·cpu_free + gpu_free) / (β·C + G))`
    /// used by the fragmentation metric; `beta` converts cores to GPU
    /// percentage points.
    pub fn free_fraction(&self, beta: f64) -> f64 {
        let free = beta * f64::from(self.cpu_free) + f64::from(self.gpu_free_total());
        let cap = beta * f64::from(self.cpu_capacity) + f64::from(self.gpu_capacity_total());
        free / cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn server() -> Server {
        Server::new(ServerId::new(0), 32, &[100, 100])
    }

    #[test]
    fn allocate_and_release_restore_state() {
        let mut s = server();
        let cfg = ResourceConfig::new(8, 40);
        let p = s.allocate(cfg).unwrap();
        assert_eq!(s.cpu_free(), 24);
        assert_eq!(s.gpu_free_total(), 160);
        assert!(s.is_active());
        s.release(cfg, p);
        assert_eq!(s.cpu_free(), 32);
        assert_eq!(s.gpu_free_total(), 200);
        assert!(!s.is_active());
    }

    #[test]
    fn gpu_share_cannot_span_devices() {
        let mut s = server();
        // Fragment both GPUs down to 40% free each.
        let a = s.allocate(ResourceConfig::new(1, 60)).unwrap();
        let b = s.allocate(ResourceConfig::new(1, 60)).unwrap();
        assert_eq!(s.gpu_free_total(), 80);
        // 80% is free in total but no single device has it.
        assert!(!s.fits(ResourceConfig::new(1, 70)));
        assert!(s.allocate(ResourceConfig::new(1, 70)).is_none());
        // 40% fits on either device.
        assert!(s.fits(ResourceConfig::new(1, 40)));
        s.release(ResourceConfig::new(1, 60), a);
        s.release(ResourceConfig::new(1, 60), b);
    }

    #[test]
    fn best_fit_prefers_tighter_device() {
        let mut s = server();
        let _a = s.allocate(ResourceConfig::new(1, 70)).unwrap(); // dev0: 30 free
                                                                  // A 25% request should land on dev0 (30 free), not dev1 (100 free).
        let p = s.allocate(ResourceConfig::new(1, 25)).unwrap();
        assert_eq!(p.gpu_index(), Some(0));
    }

    #[test]
    fn cpu_exhaustion_blocks_allocation() {
        let mut s = server();
        assert!(s.allocate(ResourceConfig::cpu(32)).is_some());
        assert!(s.allocate(ResourceConfig::cpu(1)).is_none());
        assert!(!s.fits(ResourceConfig::cpu(1)));
    }

    #[test]
    #[should_panic(expected = "wrong server")]
    fn release_on_wrong_server_panics() {
        let mut a = Server::new(ServerId::new(0), 4, &[]);
        let mut b = Server::new(ServerId::new(1), 4, &[]);
        let p = a.allocate(ResourceConfig::cpu(2)).unwrap();
        b.release(ResourceConfig::cpu(2), p);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exceeds capacity")]
    fn double_release_panics() {
        let mut s = Server::new(ServerId::new(0), 4, &[]);
        let p = s.allocate(ResourceConfig::cpu(2)).unwrap();
        s.release(ResourceConfig::cpu(2), p);
        // Fake instance count so we hit the capacity assertion.
        let p2 = s.allocate(ResourceConfig::cpu(1)).unwrap();
        s.release(ResourceConfig::cpu(2), p2);
    }

    /// Regression for the double-release guard: whether or not the
    /// debug assertion fires, the books saturate at capacity instead of
    /// overflowing (a crash-forced release racing a normal retirement
    /// must never corrupt accounting).
    #[test]
    fn double_release_saturates_books() {
        let mut s = Server::new(ServerId::new(0), 4, &[100]);
        let p = s.allocate(ResourceConfig::new(2, 50)).unwrap();
        s.release(ResourceConfig::new(2, 50), p);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut again = s.clone();
            again.release(ResourceConfig::new(2, 50), p);
            again
        }));
        if cfg!(debug_assertions) {
            // Debug build: the double release is flagged loudly.
            assert!(result.is_err(), "debug build must panic on double release");
        } else {
            // Release build: the books clamp, nothing overflows.
            let again = result.expect("release build must not panic on double release");
            assert_eq!(again.cpu_free(), again.cpu_capacity());
            assert_eq!(again.gpu_free_total(), again.gpu_capacity_total());
            assert_eq!(again.instance_count(), 0);
        }
    }

    #[test]
    fn unhealthy_server_rejects_placements() {
        let mut s = server();
        let cfg = ResourceConfig::new(2, 40);
        assert_eq!(s.health(), ServerHealth::Up);
        s.set_health(ServerHealth::Down);
        assert!(!s.fits(cfg));
        assert!(s.allocate(cfg).is_none());
        s.set_health(ServerHealth::Recovering);
        assert!(!s.fits(cfg));
        assert!(s.allocate(cfg).is_none());
        s.set_health(ServerHealth::Up);
        assert!(s.fits(cfg));
        assert!(s.allocate(cfg).is_some());
    }

    #[test]
    fn free_fraction_spans_zero_to_one() {
        let mut s = server();
        assert_eq!(s.free_fraction(0.13), 1.0);
        let cfgs = [ResourceConfig::new(16, 100), ResourceConfig::new(16, 100)];
        for c in cfgs {
            s.allocate(c).unwrap();
        }
        assert_eq!(s.free_fraction(0.13), 0.0);
    }

    #[test]
    fn memory_constrains_allocation() {
        let mut s = Server::with_memory(ServerId::new(0), 32, &[100], 1000.0);
        assert!(s.fits_with_memory(ResourceConfig::cpu(1), 600.0));
        let p = s
            .allocate_with_memory(ResourceConfig::cpu(1), 600.0)
            .unwrap();
        assert_eq!(s.mem_free_mb(), 400.0);
        // Plenty of cores left, but not enough memory.
        assert!(!s.fits_with_memory(ResourceConfig::cpu(1), 500.0));
        assert!(s
            .allocate_with_memory(ResourceConfig::cpu(1), 500.0)
            .is_none());
        s.release(ResourceConfig::cpu(1), p);
        assert_eq!(s.mem_free_mb(), 1000.0);
        assert_eq!(p.mem_mb(), 600.0);
    }

    #[test]
    fn default_memory_matches_table2() {
        let s = Server::new(ServerId::new(0), 32, &[100, 100]);
        assert_eq!(s.mem_capacity_mb(), 128.0 * 1024.0);
        assert_eq!(s.mem_free_mb(), s.mem_capacity_mb());
        assert_eq!(s.gpu_mem_capacity_total_mb(), 2.0 * DEFAULT_GPU_MEM_MB);
        assert_eq!(s.gpu_mem_free_total_mb(), s.gpu_mem_capacity_total_mb());
    }

    #[test]
    fn device_memory_constrains_gpu_placement() {
        let mut s = Server::with_memory_split(ServerId::new(0), 32, &[100, 100], 1e5, 1000.0);
        let cfg = ResourceConfig::new(1, 10);
        // Fill device 0's memory with a 600 MB model; a second 600 MB
        // model no longer fits there but lands on device 1, even though
        // best-fit-by-share alone would have preferred device 0.
        let a = s.allocate_with_split(cfg, 600.0, 600.0).unwrap();
        assert_eq!(a.gpu_index(), Some(0));
        assert_eq!(a.device_mb(), 600.0);
        let b = s.allocate_with_split(cfg, 600.0, 600.0).unwrap();
        assert_eq!(b.gpu_index(), Some(1));
        // Both devices' memory is now below 600 MB free: a third does
        // not fit despite ample SM share.
        assert!(!s.fits_with_split(cfg, 600.0, 600.0));
        assert!(s.allocate_with_split(cfg, 600.0, 600.0).is_none());
        // Zero-device-demand allocations are untouched by the wall.
        assert!(s.fits_with_split(cfg, 600.0, 0.0));
        s.release(cfg, a);
        s.release(cfg, b);
        assert_eq!(s.gpu_mem_free_total_mb(), 2000.0);
    }

    #[test]
    fn zero_device_demand_matches_classic_path() {
        let mut classic = server();
        let mut split = server();
        let cfg = ResourceConfig::new(2, 30);
        let a = classic.allocate_with_memory(cfg, 500.0).unwrap();
        let b = split.allocate_with_split(cfg, 500.0, 0.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(classic, split);
    }

    #[test]
    #[should_panic(expected = "CPU-only")]
    fn device_demand_on_cpu_only_config_panics() {
        let mut s = server();
        s.allocate_with_split(ResourceConfig::cpu(1), 100.0, 100.0);
    }

    #[test]
    #[should_panic(expected = "memory capacity")]
    fn zero_memory_rejected() {
        Server::with_memory(ServerId::new(0), 1, &[], 0.0);
    }

    proptest! {
        /// Alloc/release sequences never corrupt the books: free never
        /// exceeds capacity and everything released returns.
        #[test]
        fn prop_accounting_conserved(ops in prop::collection::vec((1u32..8, 0u32..60), 1..50)) {
            let mut s = server();
            let mut live: Vec<(ResourceConfig, Placement)> = Vec::new();
            for (cpu, gpu) in ops {
                let cfg = ResourceConfig::new(cpu, gpu);
                if let Some(p) = s.allocate(cfg) {
                    live.push((cfg, p));
                }
                prop_assert!(s.cpu_free() <= s.cpu_capacity());
                prop_assert!(s.gpu_free_total() <= s.gpu_capacity_total());
            }
            for (cfg, p) in live.drain(..) {
                s.release(cfg, p);
            }
            prop_assert_eq!(s.cpu_free(), s.cpu_capacity());
            prop_assert_eq!(s.gpu_free_total(), s.gpu_capacity_total());
            prop_assert_eq!(s.instance_count(), 0);
        }
    }
}
