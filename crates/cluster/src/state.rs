//! Whole-cluster state: a set of servers plus aggregate accounting.

use infless_models::ResourceConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::ids::ServerId;
use crate::server::{Placement, Server, ServerHealth, DEFAULT_GPU_MEM_MB};

/// Shape of a cluster to build.
///
/// # Example
///
/// ```
/// use infless_cluster::ClusterSpec;
///
/// let testbed = ClusterSpec::testbed();
/// assert_eq!(testbed.servers, 8);
/// let big = ClusterSpec::large(2000);
/// assert_eq!(big.servers, 2000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of servers.
    pub servers: usize,
    /// CPU threads per server.
    pub cores_per_server: u32,
    /// Physical GPUs per server.
    pub gpus_per_server: usize,
    /// Memory per server, MB (Table 2: 128 GB).
    pub mem_per_server_mb: f64,
    /// Device memory per GPU, MB. Zero (the serde default, so
    /// pre-tier snapshots keep parsing) means "use the 2080Ti-class
    /// default" ([`DEFAULT_GPU_MEM_MB`]).
    #[serde(default)]
    pub gpu_mem_per_device_mb: f64,
}

impl ClusterSpec {
    /// The paper's Table 2 testbed: 8 machines × 32 threads × 2 GPUs ×
    /// 128 GB.
    pub fn testbed() -> Self {
        ClusterSpec {
            servers: 8,
            cores_per_server: 32,
            gpus_per_server: 2,
            mem_per_server_mb: 128.0 * 1024.0,
            gpu_mem_per_device_mb: DEFAULT_GPU_MEM_MB,
        }
    }

    /// The per-device memory to build servers with: the configured
    /// value, or the 2080Ti-class default when unset/zero.
    pub fn device_mem_mb(&self) -> f64 {
        if self.gpu_mem_per_device_mb > 0.0 {
            self.gpu_mem_per_device_mb
        } else {
            DEFAULT_GPU_MEM_MB
        }
    }

    /// The §5.3 large-scale simulation cluster with `servers` machines
    /// of testbed shape.
    pub fn large(servers: usize) -> Self {
        ClusterSpec {
            servers,
            ..ClusterSpec::testbed()
        }
    }

    /// Builds the cluster.
    pub fn build(self) -> ClusterState {
        ClusterState::new(self)
    }
}

/// Why a placement request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementError {
    /// No server has enough free resources for the requested config.
    InsufficientResources,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::InsufficientResources => {
                f.write_str("no server can satisfy the requested resource configuration")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// One replayable cluster mutation, as recorded by the journal (see
/// [`ClusterState::enable_journal`]).
///
/// Sharded runs keep one cluster replica per shard; after a shard
/// mutates its replica, the coordinator drains that shard's journal and
/// [`ClusterState::apply_ops`]-replays it onto every other replica, so
/// all replicas agree again at the epoch barrier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterOp {
    /// A committed allocation of `cfg` (+`mem_mb` MB) that landed at
    /// `placement`. Replay allocates on the recorded server and asserts
    /// the replica hands back the identical placement — identical
    /// replicas make per-server allocation deterministic.
    Allocate {
        /// The allocated configuration.
        cfg: ResourceConfig,
        /// Memory footprint of the allocation, MB.
        mem_mb: f64,
        /// Where it landed.
        placement: Placement,
    },
    /// A release of `cfg` at `placement`.
    Release {
        /// The released configuration.
        cfg: ResourceConfig,
        /// The allocation being released.
        placement: Placement,
    },
    /// A health transition of `server`.
    SetHealth {
        /// The affected server.
        server: ServerId,
        /// The new health state.
        health: ServerHealth,
    },
}

/// The cluster: servers plus aggregate capacity/usage views.
///
/// # Example
///
/// ```
/// use infless_cluster::ClusterSpec;
/// use infless_models::ResourceConfig;
///
/// let mut cluster = ClusterSpec::testbed().build();
/// let placement = cluster.allocate_anywhere(ResourceConfig::new(4, 50))?;
/// cluster.release(ResourceConfig::new(4, 50), placement);
/// # Ok::<(), infless_cluster::PlacementError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClusterState {
    servers: Vec<Server>,
    spec: ClusterSpec,
    /// Undo log for the open transaction, if any. Scratch state: not
    /// part of the cluster's logical identity (excluded from serde and
    /// `PartialEq` via the manual impls below), and its buffers are
    /// reused across transactions so steady-state dry-runs allocate
    /// nothing.
    txn: TxnLog,
    /// Replay journal for replica synchronisation; `None` (the
    /// default) records nothing and costs nothing. Scratch state like
    /// `txn`: excluded from serde and `PartialEq`.
    journal: Option<Vec<ClusterOp>>,
}

// The serialized form covers only the logical state (servers + spec);
// the transaction scratch is never persisted, so snapshots taken
// before the transaction API existed keep round-tripping.
impl Serialize for ClusterState {
    fn serialize(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("servers".to_string(), self.servers.serialize());
        map.insert("spec".to_string(), self.spec.serialize());
        serde::Value::Object(map)
    }
}

impl Deserialize for ClusterState {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let servers = value
            .get("servers")
            .ok_or_else(|| serde::Error::custom("ClusterState: missing field `servers`"))?;
        let spec = value
            .get("spec")
            .ok_or_else(|| serde::Error::custom("ClusterState: missing field `spec`"))?;
        Ok(ClusterState {
            servers: Deserialize::deserialize(servers)?,
            spec: Deserialize::deserialize(spec)?,
            txn: TxnLog::default(),
            journal: None,
        })
    }
}

/// First-touch snapshot undo log. Rollback restores each touched
/// server from its pre-transaction snapshot, which is bit-identical by
/// construction — unlike replaying inverse `release` calls, whose
/// saturating float arithmetic (`(x - m) + m`) need not round-trip.
#[derive(Debug, Clone, Default)]
struct TxnLog {
    open: bool,
    /// Indexed by server; `Some` holds the pre-transaction state of a
    /// touched server.
    snapshots: Vec<Option<Server>>,
    /// Indices of servers with a live snapshot, for cheap clearing.
    touched: Vec<usize>,
    /// Journal length at `begin_txn`; rollback truncates back to it so
    /// dry-run mutations never leak into replica replay.
    journal_mark: usize,
}

impl PartialEq for ClusterState {
    fn eq(&self, other: &Self) -> bool {
        self.servers == other.servers && self.spec == other.spec
    }
}

impl ClusterState {
    /// Builds a cluster from a spec.
    pub fn new(spec: ClusterSpec) -> Self {
        let gpus = vec![100u32; spec.gpus_per_server];
        let servers = (0..spec.servers)
            .map(|i| {
                Server::with_memory_split(
                    ServerId::new(i),
                    spec.cores_per_server,
                    &gpus,
                    spec.mem_per_server_mb,
                    spec.device_mem_mb(),
                )
            })
            .collect();
        ClusterState {
            servers,
            spec,
            txn: TxnLog::default(),
            journal: None,
        }
    }

    /// Turns on the replay journal: every committed allocation,
    /// release, and health change is recorded as a [`ClusterOp`] until
    /// drained by [`Self::take_journal`]. Mutations rolled back by
    /// [`Self::rollback_txn`] are truncated out of the journal, so only
    /// surviving state changes replay.
    ///
    /// Mutations made through [`Self::server_mut`] bypass the journal —
    /// sharded callers must not use it on journaled replicas.
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// `true` once [`Self::enable_journal`] has been called.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Drains and returns the recorded ops (journal stays enabled).
    pub fn take_journal(&mut self) -> Vec<ClusterOp> {
        match &mut self.journal {
            Some(ops) => std::mem::take(ops),
            None => Vec::new(),
        }
    }

    /// Replays `ops` (from another replica's journal) onto this
    /// replica without re-recording them.
    ///
    /// # Panics
    ///
    /// Panics if a replayed allocation does not land exactly where the
    /// originating replica placed it — replicas that were identical
    /// when the ops were recorded always re-derive the same placement,
    /// so a mismatch means the replicas had already diverged.
    pub fn apply_ops(&mut self, ops: &[ClusterOp]) {
        let saved = self.journal.take();
        for op in ops {
            match *op {
                ClusterOp::Allocate {
                    cfg,
                    mem_mb,
                    placement,
                } => {
                    let got = self
                        .allocate_on_with_split(
                            placement.server(),
                            cfg,
                            mem_mb,
                            placement.device_mb(),
                        )
                        .expect("replica replay: allocation no longer fits");
                    assert_eq!(
                        got, placement,
                        "replica replay: allocation landed elsewhere (replica divergence)"
                    );
                }
                ClusterOp::Release { cfg, placement } => self.release(cfg, placement),
                ClusterOp::SetHealth { server, health } => self.set_health(server, health),
            }
        }
        self.journal = saved;
    }

    fn record(&mut self, op: ClusterOp) {
        if let Some(ops) = &mut self.journal {
            ops.push(op);
        }
    }

    /// Opens a transaction: every subsequent mutation (allocation,
    /// release, health change, `server_mut` access) is recorded so
    /// [`Self::rollback_txn`] can restore the exact pre-transaction
    /// state. Dry-runs use this instead of cloning the whole cluster.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is already open (transactions do not
    /// nest).
    pub fn begin_txn(&mut self) {
        assert!(!self.txn.open, "cluster transaction already open");
        self.txn.open = true;
        self.txn.journal_mark = self.journal.as_ref().map_or(0, Vec::len);
    }

    /// `true` while a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.txn.open
    }

    /// Commits the open transaction: keeps all mutations and discards
    /// the undo log.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn commit_txn(&mut self) {
        assert!(self.txn.open, "commit_txn without begin_txn");
        for &i in &self.txn.touched {
            self.txn.snapshots[i] = None;
        }
        self.txn.touched.clear();
        self.txn.open = false;
    }

    /// Rolls back the open transaction: restores every touched server
    /// from its snapshot. The result is bit-identical to the state at
    /// [`Self::begin_txn`].
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn rollback_txn(&mut self) {
        assert!(self.txn.open, "rollback_txn without begin_txn");
        let TxnLog {
            touched, snapshots, ..
        } = &mut self.txn;
        for i in touched.drain(..) {
            self.servers[i] = snapshots[i].take().expect("touched server has a snapshot");
        }
        if let Some(ops) = &mut self.journal {
            ops.truncate(self.txn.journal_mark);
        }
        self.txn.open = false;
    }

    /// Records `idx` in the undo log before its first mutation inside
    /// the open transaction. No-op outside a transaction.
    fn note_touch(&mut self, idx: usize) {
        if !self.txn.open {
            return;
        }
        if self.txn.snapshots.len() < self.servers.len() {
            self.txn.snapshots.resize(self.servers.len(), None);
        }
        if self.txn.snapshots[idx].is_none() {
            self.txn.snapshots[idx] = Some(self.servers[idx].clone());
            self.txn.touched.push(idx);
        }
    }

    /// The spec this cluster was built from.
    pub fn spec(&self) -> ClusterSpec {
        self.spec
    }

    /// The servers.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// A server by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids come from this cluster, so
    /// an out-of-range id is a logic error).
    pub fn server(&self, id: ServerId) -> &Server {
        &self.servers[id.raw()]
    }

    /// Mutable access to a server by id.
    pub fn server_mut(&mut self, id: ServerId) -> &mut Server {
        self.note_touch(id.raw());
        &mut self.servers[id.raw()]
    }

    /// The health of a server under the fault model.
    pub fn health(&self, id: ServerId) -> ServerHealth {
        self.servers[id.raw()].health()
    }

    /// Sets the health of a server. Unhealthy servers are skipped by
    /// every placement path ([`Server::fits_with_memory`] refuses), so
    /// no caller needs to re-check health itself.
    pub fn set_health(&mut self, id: ServerId, health: ServerHealth) {
        self.note_touch(id.raw());
        self.servers[id.raw()].set_health(health);
        self.record(ClusterOp::SetHealth { server: id, health });
    }

    /// Number of servers currently accepting placements.
    pub fn up_servers(&self) -> usize {
        self.servers
            .iter()
            .filter(|s| s.health() == ServerHealth::Up)
            .count()
    }

    /// Tries to allocate `cfg` on a specific server.
    pub fn allocate_on(
        &mut self,
        server: ServerId,
        cfg: ResourceConfig,
    ) -> Result<Placement, PlacementError> {
        self.allocate_on_with_memory(server, cfg, 0.0)
    }

    /// [`Self::allocate_on`] with an additional host-memory demand in
    /// MB.
    pub fn allocate_on_with_memory(
        &mut self,
        server: ServerId,
        cfg: ResourceConfig,
        mem_mb: f64,
    ) -> Result<Placement, PlacementError> {
        self.allocate_on_with_split(server, cfg, mem_mb, 0.0)
    }

    /// [`Self::allocate_on_with_memory`] with an additional per-device
    /// GPU-memory demand in MB, booked against the chosen device.
    pub fn allocate_on_with_split(
        &mut self,
        server: ServerId,
        cfg: ResourceConfig,
        mem_mb: f64,
        device_mb: f64,
    ) -> Result<Placement, PlacementError> {
        self.note_touch(server.raw());
        let placement = self.servers[server.raw()]
            .allocate_with_split(cfg, mem_mb, device_mb)
            .ok_or(PlacementError::InsufficientResources)?;
        self.record(ClusterOp::Allocate {
            cfg,
            mem_mb,
            placement,
        });
        Ok(placement)
    }

    /// Allocates `cfg` on the first server that fits (first-fit). The
    /// INFless scheduler makes its own placement choices via
    /// [`Self::allocate_on`]; first-fit is what the simpler baselines
    /// use.
    pub fn allocate_anywhere(&mut self, cfg: ResourceConfig) -> Result<Placement, PlacementError> {
        self.allocate_anywhere_with_memory(cfg, 0.0)
    }

    /// [`Self::allocate_anywhere`] with an additional host-memory
    /// demand.
    pub fn allocate_anywhere_with_memory(
        &mut self,
        cfg: ResourceConfig,
        mem_mb: f64,
    ) -> Result<Placement, PlacementError> {
        self.allocate_anywhere_with_split(cfg, mem_mb, 0.0)
    }

    /// [`Self::allocate_anywhere_with_memory`] with an additional
    /// per-device GPU-memory demand.
    pub fn allocate_anywhere_with_split(
        &mut self,
        cfg: ResourceConfig,
        mem_mb: f64,
        device_mb: f64,
    ) -> Result<Placement, PlacementError> {
        for i in 0..self.servers.len() {
            if !self.servers[i].fits_with_split(cfg, mem_mb, device_mb) {
                continue;
            }
            self.note_touch(i);
            if let Some(p) = self.servers[i].allocate_with_split(cfg, mem_mb, device_mb) {
                self.record(ClusterOp::Allocate {
                    cfg,
                    mem_mb,
                    placement: p,
                });
                return Ok(p);
            }
        }
        Err(PlacementError::InsufficientResources)
    }

    /// Transactional placement: [`Self::allocate_anywhere_with_memory`]
    /// under a name that makes dry-run call sites read naturally. Pair
    /// with [`Self::begin_txn`] / [`Self::rollback_txn`] to trial a
    /// placement without committing it.
    pub fn try_place(
        &mut self,
        cfg: ResourceConfig,
        mem_mb: f64,
    ) -> Result<Placement, PlacementError> {
        self.allocate_anywhere_with_memory(cfg, mem_mb)
    }

    /// Releases an allocation.
    ///
    /// # Panics
    ///
    /// Panics on accounting mismatches (see [`Server::release`]).
    pub fn release(&mut self, cfg: ResourceConfig, placement: Placement) {
        self.note_touch(placement.server().raw());
        self.servers[placement.server().raw()].release(cfg, placement);
        self.record(ClusterOp::Release { cfg, placement });
    }

    /// Total CPU cores in the cluster.
    pub fn cpu_capacity(&self) -> u64 {
        self.servers
            .iter()
            .map(|s| u64::from(s.cpu_capacity()))
            .sum()
    }

    /// CPU cores currently allocated.
    pub fn cpu_in_use(&self) -> u64 {
        self.servers
            .iter()
            .map(|s| u64::from(s.cpu_capacity() - s.cpu_free()))
            .sum()
    }

    /// Total GPU SM percentage points in the cluster (100 per device).
    pub fn gpu_capacity(&self) -> u64 {
        self.servers
            .iter()
            .map(|s| u64::from(s.gpu_capacity_total()))
            .sum()
    }

    /// GPU SM percentage points currently allocated.
    pub fn gpu_in_use(&self) -> u64 {
        self.servers
            .iter()
            .map(|s| u64::from(s.gpu_capacity_total() - s.gpu_free_total()))
            .sum()
    }

    /// Weighted resources in use, `β·cpu + gpu` (the unit of the
    /// scheduling objective, Eq. 2).
    pub fn weighted_in_use(&self, beta: f64) -> f64 {
        beta * self.cpu_in_use() as f64 + self.gpu_in_use() as f64
    }

    /// Total memory capacity across the cluster, MB.
    pub fn mem_capacity_mb(&self) -> f64 {
        self.servers.iter().map(|s| s.mem_capacity_mb()).sum()
    }

    /// Memory currently reserved across the cluster, MB.
    pub fn mem_in_use_mb(&self) -> f64 {
        self.servers
            .iter()
            .map(|s| s.mem_capacity_mb() - s.mem_free_mb())
            .sum()
    }

    /// Total GPU device memory across the cluster, MB.
    pub fn gpu_mem_capacity_mb(&self) -> f64 {
        self.servers
            .iter()
            .map(|s| s.gpu_mem_capacity_total_mb())
            .sum()
    }

    /// GPU device memory currently reserved across the cluster, MB.
    pub fn gpu_mem_in_use_mb(&self) -> f64 {
        self.servers
            .iter()
            .map(|s| s.gpu_mem_capacity_total_mb() - s.gpu_mem_free_total_mb())
            .sum()
    }

    /// Number of servers hosting at least one instance.
    pub fn active_servers(&self) -> usize {
        self.servers.iter().filter(|s| s.is_active()).count()
    }

    /// The resource-fragment ratio of Fig. 17b: the mean weighted free
    /// fraction across *active* servers (idle servers are not
    /// fragments — they are simply off). Returns 0.0 when no server is
    /// active.
    pub fn fragment_ratio(&self, beta: f64) -> f64 {
        let active: Vec<&Server> = self.servers.iter().filter(|s| s.is_active()).collect();
        if active.is_empty() {
            return 0.0;
        }
        active.iter().map(|s| s.free_fraction(beta)).sum::<f64>() / active.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn testbed_matches_table2() {
        let c = ClusterSpec::testbed().build();
        assert_eq!(c.servers().len(), 8);
        assert_eq!(c.cpu_capacity(), 8 * 32);
        assert_eq!(c.gpu_capacity(), 8 * 2 * 100);
        assert_eq!(c.active_servers(), 0);
    }

    #[test]
    fn first_fit_packs_early_servers() {
        let mut c = ClusterSpec::testbed().build();
        let cfg = ResourceConfig::new(8, 0);
        for _ in 0..4 {
            let p = c.allocate_anywhere(cfg).unwrap();
            assert_eq!(p.server(), ServerId::new(0));
        }
        // Server 0 is now CPU-full; next goes to server 1.
        let p = c.allocate_anywhere(cfg).unwrap();
        assert_eq!(p.server(), ServerId::new(1));
        assert_eq!(c.active_servers(), 2);
        assert_eq!(c.cpu_in_use(), 40);
    }

    #[test]
    fn allocate_on_specific_server() {
        let mut c = ClusterSpec::testbed().build();
        let cfg = ResourceConfig::new(1, 30);
        let p = c.allocate_on(ServerId::new(5), cfg).unwrap();
        assert_eq!(p.server(), ServerId::new(5));
        assert_eq!(c.gpu_in_use(), 30);
        c.release(cfg, p);
        assert_eq!(c.gpu_in_use(), 0);
    }

    #[test]
    fn exhaustion_reports_error() {
        let mut c = ClusterSpec {
            servers: 1,
            cores_per_server: 2,
            gpus_per_server: 0,
            mem_per_server_mb: 1024.0,
            gpu_mem_per_device_mb: 0.0,
        }
        .build();
        assert!(c.allocate_anywhere(ResourceConfig::cpu(2)).is_ok());
        let err = c.allocate_anywhere(ResourceConfig::cpu(1)).unwrap_err();
        assert_eq!(err, PlacementError::InsufficientResources);
        assert!(err.to_string().contains("no server"));
    }

    #[test]
    fn fragment_ratio_counts_only_active_servers() {
        let mut c = ClusterSpec::testbed().build();
        assert_eq!(c.fragment_ratio(0.13), 0.0);
        // Fill half of server 0.
        let cfg = ResourceConfig::new(16, 100);
        c.allocate_anywhere(cfg).unwrap();
        let ratio = c.fragment_ratio(0.13);
        assert!(ratio > 0.3 && ratio < 0.7, "half-full server: {ratio}");
    }

    #[test]
    fn down_servers_are_skipped_by_placement() {
        let mut c = ClusterSpec::large(2).build();
        assert_eq!(c.up_servers(), 2);
        c.set_health(ServerId::new(0), ServerHealth::Down);
        assert_eq!(c.up_servers(), 1);
        let cfg = ResourceConfig::new(4, 50);
        // First-fit skips the crashed server 0 and lands on server 1.
        let p = c.allocate_anywhere(cfg).unwrap();
        assert_eq!(p.server(), ServerId::new(1));
        // Targeted placement on the crashed server is refused outright.
        assert!(c.allocate_on(ServerId::new(0), cfg).is_err());
        c.set_health(ServerId::new(0), ServerHealth::Up);
        assert!(c.allocate_on(ServerId::new(0), cfg).is_ok());
    }

    #[test]
    fn weighted_usage_combines_cpu_and_gpu() {
        let mut c = ClusterSpec::testbed().build();
        c.allocate_anywhere(ResourceConfig::new(10, 50)).unwrap();
        let beta = 0.2;
        assert!((c.weighted_in_use(beta) - (0.2 * 10.0 + 50.0)).abs() < 1e-12);
    }

    #[test]
    fn txn_rollback_undoes_allocations() {
        let mut c = ClusterSpec::testbed().build();
        let cfg = ResourceConfig::new(4, 50);
        let live = c.allocate_anywhere(cfg).unwrap();
        c.begin_txn();
        assert!(c.in_txn());
        for _ in 0..5 {
            c.try_place(ResourceConfig::new(2, 20), 512.0).unwrap();
        }
        c.set_health(ServerId::new(3), ServerHealth::Down);
        c.rollback_txn();
        assert!(!c.in_txn());
        assert_eq!(c.cpu_in_use(), 4);
        assert_eq!(c.gpu_in_use(), 50);
        assert_eq!(c.mem_in_use_mb(), 0.0);
        assert_eq!(c.health(ServerId::new(3)), ServerHealth::Up);
        // The pre-transaction allocation is still releasable.
        c.release(cfg, live);
        assert_eq!(c.cpu_in_use(), 0);
    }

    #[test]
    fn txn_commit_keeps_mutations() {
        let mut c = ClusterSpec::testbed().build();
        c.begin_txn();
        let p = c.try_place(ResourceConfig::new(2, 0), 0.0).unwrap();
        c.commit_txn();
        assert_eq!(c.cpu_in_use(), 2);
        // The undo log is gone: releasing after commit must not be
        // undone by a later transaction's rollback.
        c.begin_txn();
        c.rollback_txn();
        assert_eq!(c.cpu_in_use(), 2);
        c.release(ResourceConfig::new(2, 0), p);
        assert_eq!(c.cpu_in_use(), 0);
    }

    /// Replaying one replica's journal onto another keeps the replicas
    /// bit-identical — the mechanism sharded runs use to reconverge
    /// cluster views at epoch barriers.
    #[test]
    fn journal_replay_synchronises_replicas() {
        let mut a = ClusterSpec::testbed().build();
        let mut b = a.clone();
        a.enable_journal();
        assert!(a.journal_enabled());

        let cfg = ResourceConfig::new(4, 50);
        let p0 = a.allocate_anywhere_with_memory(cfg, 512.0).unwrap();
        let p1 = a
            .allocate_on_with_memory(ServerId::new(3), cfg, 256.0)
            .unwrap();
        a.release(cfg, p0);
        a.set_health(ServerId::new(7), ServerHealth::Down);
        let _ = p1;

        let ops = a.take_journal();
        assert_eq!(ops.len(), 4);
        b.apply_ops(&ops);
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // The journal was drained and keeps recording.
        assert!(a.take_journal().is_empty());
        a.set_health(ServerId::new(7), ServerHealth::Up);
        assert_eq!(a.take_journal().len(), 1);
    }

    /// Rolled-back dry-run mutations never reach the journal, so they
    /// are never replayed onto sibling replicas.
    #[test]
    fn journal_excludes_rolled_back_mutations() {
        let mut c = ClusterSpec::testbed().build();
        c.enable_journal();
        let cfg = ResourceConfig::new(2, 20);
        let keep = c.allocate_anywhere(cfg).unwrap();
        c.begin_txn();
        for _ in 0..3 {
            c.try_place(cfg, 128.0).unwrap();
        }
        c.rollback_txn();
        c.release(cfg, keep);
        let ops = c.take_journal();
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[0], ClusterOp::Allocate { .. }));
        assert!(matches!(ops[1], ClusterOp::Release { .. }));
        // Committed transactions keep their ops.
        c.begin_txn();
        c.try_place(cfg, 128.0).unwrap();
        c.commit_txn();
        assert_eq!(c.take_journal().len(), 1);
    }

    /// Device-memory bookings ride the same journal: a replayed
    /// split allocation lands on the recorded device and restores the
    /// replica's device books bit-identically.
    #[test]
    fn journal_replay_covers_device_memory() {
        let mut a = ClusterSpec::testbed().build();
        let mut b = a.clone();
        a.enable_journal();

        let cfg = ResourceConfig::new(2, 40);
        let p0 = a.allocate_anywhere_with_split(cfg, 512.0, 6000.0).unwrap();
        assert!(p0.device_mb() > 0.0);
        let p1 = a
            .allocate_on_with_split(ServerId::new(2), cfg, 256.0, 8000.0)
            .unwrap();
        a.release(cfg, p0);
        let _ = p1;

        let ops = a.take_journal();
        b.apply_ops(&ops);
        assert_eq!(a, b);
        assert!((a.gpu_mem_in_use_mb() - 8000.0).abs() < 1e-9);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn device_memory_aggregates_track_bookings() {
        let mut c = ClusterSpec::large(2).build();
        assert_eq!(c.gpu_mem_capacity_mb(), 2.0 * 2.0 * DEFAULT_GPU_MEM_MB);
        assert_eq!(c.gpu_mem_in_use_mb(), 0.0);
        let cfg = ResourceConfig::new(1, 25);
        let p = c.allocate_anywhere_with_split(cfg, 0.0, 1234.0).unwrap();
        assert!((c.gpu_mem_in_use_mb() - 1234.0).abs() < 1e-9);
        c.release(cfg, p);
        assert_eq!(c.gpu_mem_in_use_mb(), 0.0);
    }

    #[test]
    #[should_panic(expected = "already open")]
    fn txns_do_not_nest() {
        let mut c = ClusterSpec::testbed().build();
        c.begin_txn();
        c.begin_txn();
    }

    proptest! {
        /// Tentpole pin: rolling back a transaction restores the exact
        /// pre-transaction state, bit for bit — verified through the
        /// serialized form, which exposes every float's full precision.
        #[test]
        fn prop_txn_rollback_is_bit_identical(
            setup in prop::collection::vec((1u32..6, 0u32..80, 0.0f64..4096.0), 0..40),
            trial in prop::collection::vec((1u32..8, 0u32..100, 0.0f64..8192.0), 1..60),
            kill in 0usize..4, // 0..3 flips that server's health; 3 = no flip

        ) {
            let mut c = ClusterSpec::large(3).build();
            let mut live = Vec::new();
            for (cpu, gpu, mem) in setup {
                if let Ok(p) = c.allocate_anywhere_with_memory(ResourceConfig::new(cpu, gpu), mem) {
                    live.push((ResourceConfig::new(cpu, gpu), mem, p));
                }
            }
            let before_json = serde_json::to_string(&c).expect("serializes");
            let before = c.clone();

            c.begin_txn();
            // Mix transactional allocations, releases of pre-existing
            // placements, and a health flip — every mutator kind.
            for (i, (cpu, gpu, mem)) in trial.iter().enumerate() {
                if i % 3 == 2 {
                    if let Some((cfg, mem, p)) = live.pop() {
                        let _ = mem;
                        c.release(cfg, p);
                    }
                } else {
                    let _ = c.try_place(ResourceConfig::new(*cpu, *gpu), *mem);
                }
            }
            if kill < 3 {
                c.set_health(ServerId::new(kill), ServerHealth::Down);
            }
            c.rollback_txn();

            let after_json = serde_json::to_string(&c).expect("serializes");
            prop_assert_eq!(before_json, after_json);
            prop_assert_eq!(&before, &c);
        }

        /// Cluster-level conservation: allocations plus frees equal capacity.
        #[test]
        fn prop_cluster_conservation(ops in prop::collection::vec((1u32..6, 0u32..80), 1..80)) {
            let mut c = ClusterSpec::large(3).build();
            let mut live = Vec::new();
            for (cpu, gpu) in ops {
                let cfg = ResourceConfig::new(cpu, gpu);
                if let Ok(p) = c.allocate_anywhere(cfg) {
                    live.push((cfg, p));
                }
                prop_assert!(c.cpu_in_use() <= c.cpu_capacity());
                prop_assert!(c.gpu_in_use() <= c.gpu_capacity());
            }
            let expected_cpu: u64 = live.iter().map(|(c, _)| u64::from(c.cpu_cores())).sum();
            prop_assert_eq!(c.cpu_in_use(), expected_cpu);
            for (cfg, p) in live.drain(..) {
                c.release(cfg, p);
            }
            prop_assert_eq!(c.cpu_in_use(), 0);
            prop_assert_eq!(c.gpu_in_use(), 0);
            prop_assert_eq!(c.active_servers(), 0);
        }
    }
}
