//! The two evaluation applications of §5.1.
//!
//! * **OSVT** — online second-hand vehicle trading: SSD (object
//!   detection), MobileNet (license recognition) and ResNet-50 (vehicle
//!   classification), SLO 200 ms.
//! * **Q&A robot** — TextCNN-69, LSTM-2365 and DSSM-2389 for question
//!   understanding and answer matching, SLO 50 ms.

use infless_models::ModelId;
use infless_sim::SimDuration;

use crate::engine::FunctionInfo;

/// A named bundle of deployed inference functions.
#[derive(Debug, Clone)]
pub struct Application {
    name: &'static str,
    functions: Vec<FunctionInfo>,
}

impl Application {
    /// The OSVT application (SLO 200 ms).
    pub fn osvt() -> Self {
        let slo = SimDuration::from_millis(200);
        Application {
            name: "OSVT",
            functions: vec![
                FunctionInfo::new(ModelId::Ssd.spec(), slo),
                FunctionInfo::new(ModelId::MobileNet.spec(), slo),
                FunctionInfo::new(ModelId::ResNet50.spec(), slo),
            ],
        }
    }

    /// The OSVT application with a custom SLO (the Fig. 12b / Fig. 18b
    /// SLO sweeps).
    pub fn osvt_with_slo(slo: SimDuration) -> Self {
        let mut app = Self::osvt();
        app.functions = app
            .functions
            .iter()
            .map(|f| FunctionInfo::new(f.spec().clone(), slo))
            .collect();
        app
    }

    /// The Q&A robot application (SLO 50 ms).
    pub fn qa_robot() -> Self {
        let slo = SimDuration::from_millis(50);
        Application {
            name: "Q&A robot",
            functions: vec![
                FunctionInfo::new(ModelId::TextCnn69.spec(), slo),
                FunctionInfo::new(ModelId::Lstm2365.spec(), slo),
                FunctionInfo::new(ModelId::Dssm2389.spec(), slo),
            ],
        }
    }

    /// Both applications deployed side by side.
    pub fn combined() -> Self {
        let mut functions = Self::osvt().functions;
        functions.extend(Self::qa_robot().functions);
        Application {
            name: "OSVT + Q&A robot",
            functions,
        }
    }

    /// A synthetic many-function deployment for the large-scale
    /// simulation (Fig. 18a): `n` functions cycling through the zoo
    /// with SLOs spread over 150–350 ms.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn synthetic(n: usize) -> Self {
        assert!(n > 0, "need at least one function");
        let zoo = ModelId::all();
        let slos = [150u64, 200, 250, 300, 350];
        let functions = (0..n)
            .map(|i| {
                FunctionInfo::new(
                    zoo[i % zoo.len()].spec(),
                    SimDuration::from_millis(slos[i % slos.len()]),
                )
            })
            .collect();
        Application {
            name: "synthetic",
            functions,
        }
    }

    /// The application's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The deployed functions.
    pub fn functions(&self) -> &[FunctionInfo] {
        &self.functions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn osvt_matches_section_5_1() {
        let app = Application::osvt();
        let names: Vec<&str> = app.functions().iter().map(|f| f.spec().name()).collect();
        assert_eq!(names, ["SSD", "MobileNet", "ResNet-50"]);
        assert!(app
            .functions()
            .iter()
            .all(|f| f.slo() == SimDuration::from_millis(200)));
    }

    #[test]
    fn qa_robot_matches_section_5_1() {
        let app = Application::qa_robot();
        let names: Vec<&str> = app.functions().iter().map(|f| f.spec().name()).collect();
        assert_eq!(names, ["TextCNN-69", "LSTM-2365", "DSSM-2389"]);
        assert!(app
            .functions()
            .iter()
            .all(|f| f.slo() == SimDuration::from_millis(50)));
    }

    #[test]
    fn combined_has_six_functions() {
        assert_eq!(Application::combined().functions().len(), 6);
    }

    #[test]
    fn slo_override_applies_everywhere() {
        let app = Application::osvt_with_slo(SimDuration::from_millis(350));
        assert!(app
            .functions()
            .iter()
            .all(|f| f.slo() == SimDuration::from_millis(350)));
    }

    #[test]
    fn synthetic_cycles_models_and_slos() {
        let app = Application::synthetic(40);
        assert_eq!(app.functions().len(), 40);
        let slos: std::collections::HashSet<_> = app.functions().iter().map(|f| f.slo()).collect();
        assert!(slos.len() >= 4, "SLOs should vary");
    }
}
