//! Built-in, non-uniform batching (§3.2).
//!
//! Every instance carries its own batch queue; the batchsize and the
//! resource quota may differ between instances of the same function.
//! To guarantee the SLO without dropping requests, the arrival rate
//! dispatched to an instance is kept inside a feasible window
//! `[r_low, r_up]` (Eq. 1):
//!
//! ```text
//! r_up  = ⌊1 / t_exec⌋ · b        (batches must drain at execution speed)
//! r_low = ⌈1 / (t_slo − t_exec)⌉ · b   (batches must fill before timeout)
//! ```
//!
//! requiring `t_exec ≤ t_slo / 2` so that `r_low ≤ r_up`. The
//! three-case controller of §3.2 then splits a function's observed rate
//! `R` across its instances, with hysteresis constant `α` damping
//! scale oscillation.
//!
//! Note on case (ii): the paper prints the interpolation denominator as
//! `R_min`; we use `R_max − R_min`, the form under which `r_i = r_up`
//! at `R = R_max` and `r_i = r_low` at `R = R_min` both hold (the
//! printed form does not reduce to the endpoints and appears to be a
//! typo). DESIGN.md records this deviation.

use infless_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The default oscillation-damping constant (§3.2: "α is set to 0.8 in
/// our implementation").
pub const DEFAULT_ALPHA: f64 = 0.8;

/// The feasible arrival-rate window of one instance (Eq. 1).
///
/// # Example
///
/// ```
/// use infless_core::RpsWindow;
/// use infless_sim::SimDuration;
///
/// // The paper's worked example: SLO 200 ms, t_exec 50 ms, b = 4
/// // gives a window of [28, 80] requests per second.
/// let w = RpsWindow::for_instance(
///     SimDuration::from_millis(50),
///     SimDuration::from_millis(200),
///     4,
/// )
/// .expect("feasible");
/// assert_eq!(w.r_low(), 28.0);
/// assert_eq!(w.r_up(), 80.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RpsWindow {
    r_low: f64,
    r_up: f64,
}

impl RpsWindow {
    /// Computes the window for an instance with predicted batch
    /// execution time `t_exec`, latency SLO `t_slo` and batchsize `b`.
    ///
    /// Returns `None` when the configuration is infeasible:
    /// * `b == 1`: feasible iff `t_exec ≤ t_slo` (no queueing, so the
    ///   window is `[0, r_up]`);
    /// * `b > 1`: feasible iff `t_exec ≤ t_slo / 2` (Eq. 4 — batch
    ///   submission must not outpace execution).
    ///
    /// # Panics
    ///
    /// Panics if `t_exec` is zero or `b` is zero.
    pub fn for_instance(t_exec: SimDuration, t_slo: SimDuration, b: u32) -> Option<RpsWindow> {
        assert!(!t_exec.is_zero(), "execution time must be positive");
        assert!(b >= 1, "batchsize must be at least 1");
        let exec_s = t_exec.as_secs_f64();
        let slo_s = t_slo.as_secs_f64();
        if b == 1 {
            if exec_s > slo_s {
                return None;
            }
            return Some(RpsWindow {
                r_low: 0.0,
                r_up: (1.0 / exec_s).floor() * f64::from(b),
            });
        }
        if exec_s > slo_s / 2.0 {
            return None;
        }
        let r_up = (1.0 / exec_s).floor() * f64::from(b);
        let r_low = (1.0 / (slo_s - exec_s)).ceil() * f64::from(b);
        if r_low > r_up {
            // Right at the t_exec == t_slo/2 boundary the floor/ceil
            // rounding can invert the window; such a configuration has
            // no feasible arrival rate.
            return None;
        }
        Some(RpsWindow { r_low, r_up })
    }

    /// Lower bound: the minimum arrival rate at which batches fill
    /// before the queueing budget expires.
    pub fn r_low(self) -> f64 {
        self.r_low
    }

    /// Upper bound: the maximum arrival rate one instance can drain.
    pub fn r_up(self) -> f64 {
        self.r_up
    }

    /// Window width `r_up − r_low`.
    pub fn width(self) -> f64 {
        self.r_up - self.r_low
    }
}

/// What the three-case rate controller (§3.2) decides for a function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchPlan {
    /// Target dispatch rate per instance, aligned with the input
    /// windows' order.
    pub rates: Vec<f64>,
    /// Case (i): residual RPS the existing instances cannot absorb —
    /// the auto-scaler must launch capacity for this.
    pub residual: f64,
    /// Case (iii): the observed rate is below the hysteresis floor, so
    /// the auto-scaler should release instances.
    pub release_recommended: bool,
}

/// Splits the observed function rate `R` across instances with the
/// given feasible windows (the controller cases (i)–(iii) of §3.2).
///
/// * `R > R_max` → every instance runs at `r_up`; the remainder is
///   reported as `residual` (case i).
/// * `α·R_min + (1−α)·R_max ≤ R ≤ R_max` → linear interpolation within
///   each window (case ii, corrected form — see module docs).
/// * `R` below the hysteresis floor → same interpolation, clamped to
///   each window, plus `release_recommended` (case iii).
///
/// # Example
///
/// ```
/// use infless_core::batching::{split_rate, RpsWindow};
/// use infless_sim::SimDuration;
///
/// let w = RpsWindow::for_instance(
///     SimDuration::from_millis(50),
///     SimDuration::from_millis(200),
///     4,
/// ).unwrap();
/// let plan = split_rate(100.0, &[w, w], 0.8);
/// assert_eq!(plan.residual, 0.0);
/// assert!((plan.rates.iter().sum::<f64>() - 100.0).abs() < 1e-9);
/// ```
pub fn split_rate(r: f64, windows: &[RpsWindow], alpha: f64) -> DispatchPlan {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    if windows.is_empty() {
        return DispatchPlan {
            rates: Vec::new(),
            residual: r.max(0.0),
            release_recommended: false,
        };
    }
    let r = r.max(0.0);
    let r_max: f64 = windows.iter().map(|w| w.r_up()).sum();
    let r_min: f64 = windows.iter().map(|w| w.r_low()).sum();

    if r > r_max {
        // Case (i): saturate everyone, report the residual.
        return DispatchPlan {
            rates: windows.iter().map(|w| w.r_up()).collect(),
            residual: r - r_max,
            release_recommended: false,
        };
    }

    let floor = alpha * r_min + (1.0 - alpha) * r_max;
    let span = r_max - r_min;
    // Degeneracy is relative to the magnitude of the bounds: at
    // thousands of RPS a span of a few ULPs is still "zero width", yet
    // far exceeds the absolute f64::EPSILON, and dividing by it below
    // would blow the deficit up. (`max(1.0)` keeps genuinely tiny rates
    // on the absolute-epsilon scale.)
    let rates: Vec<f64> = if span <= f64::EPSILON * r_max.max(1.0) {
        // Degenerate windows (r_low == r_up): share proportionally to
        // r_up, clamped into the (zero-width) windows as case iii does.
        windows
            .iter()
            .map(|w| {
                let share = if r_max > 0.0 {
                    r * w.r_up() / r_max
                } else {
                    0.0
                };
                share.clamp(w.r_low(), w.r_up())
            })
            .collect()
    } else {
        // Case (ii)/(iii): r_i = r_up − (R_max − R)/(R_max − R_min) · width_i,
        // clamped into the window (case iii can push below r_low).
        let deficit = (r_max - r) / span;
        windows
            .iter()
            .map(|w| (w.r_up() - deficit * w.width()).clamp(w.r_low(), w.r_up()))
            .collect()
    };

    DispatchPlan {
        rates,
        residual: 0.0,
        release_recommended: r < floor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn win(exec_ms: u64, slo_ms: u64, b: u32) -> RpsWindow {
        RpsWindow::for_instance(
            SimDuration::from_millis(exec_ms),
            SimDuration::from_millis(slo_ms),
            b,
        )
        .expect("feasible window")
    }

    #[test]
    fn paper_worked_example() {
        // §3.2: SLO 200 ms, exec 50 ms, b=4 → [28, 80] RPS.
        let w = win(50, 200, 4);
        assert_eq!(w.r_low(), 28.0);
        assert_eq!(w.r_up(), 80.0);
        assert_eq!(w.width(), 52.0);
    }

    #[test]
    fn batch1_has_no_lower_bound() {
        let w = win(150, 200, 1);
        assert_eq!(w.r_low(), 0.0);
        assert_eq!(w.r_up(), 6.0);
    }

    #[test]
    fn batch1_infeasible_when_exec_exceeds_slo() {
        assert!(RpsWindow::for_instance(
            SimDuration::from_millis(250),
            SimDuration::from_millis(200),
            1
        )
        .is_none());
    }

    #[test]
    fn batched_infeasible_past_half_slo() {
        // t_exec = 110ms > 200/2 → infeasible for b > 1.
        assert!(RpsWindow::for_instance(
            SimDuration::from_millis(110),
            SimDuration::from_millis(200),
            4
        )
        .is_none());
        // Exactly at half is feasible.
        assert!(RpsWindow::for_instance(
            SimDuration::from_millis(100),
            SimDuration::from_millis(200),
            4
        )
        .is_some());
    }

    #[test]
    fn case_i_reports_residual() {
        let w = win(50, 200, 4); // r_up 80
        let plan = split_rate(200.0, &[w, w], DEFAULT_ALPHA);
        assert_eq!(plan.rates, vec![80.0, 80.0]);
        assert_eq!(plan.residual, 40.0);
        assert!(!plan.release_recommended);
    }

    #[test]
    fn case_ii_interpolates_to_endpoints() {
        let w = win(50, 200, 4); // [28, 80]
        let at_max = split_rate(160.0, &[w, w], DEFAULT_ALPHA);
        assert_eq!(at_max.rates, vec![80.0, 80.0]);
        let at_min = split_rate(56.0, &[w, w], DEFAULT_ALPHA);
        assert_eq!(at_min.rates, vec![28.0, 28.0]);
        assert!(
            at_min.release_recommended,
            "R == R_min is below the α floor"
        );
    }

    #[test]
    fn case_iii_recommends_release() {
        let w = win(50, 200, 4);
        // Floor = 0.8*56 + 0.2*160 = 76.8 for two instances: 0.8*56... wait
        // two instances: R_min=56, R_max=160, floor = 0.8*56+0.2*160 = 76.8.
        let plan = split_rate(70.0, &[w, w], DEFAULT_ALPHA);
        assert!(plan.release_recommended);
        assert_eq!(plan.residual, 0.0);
        // Above the floor: no release.
        let plan = split_rate(100.0, &[w, w], DEFAULT_ALPHA);
        assert!(!plan.release_recommended);
    }

    #[test]
    fn no_instances_means_everything_is_residual() {
        let plan = split_rate(42.0, &[], DEFAULT_ALPHA);
        assert!(plan.rates.is_empty());
        assert_eq!(plan.residual, 42.0);
    }

    #[test]
    fn heterogeneous_windows_share_proportionally_to_width() {
        let big = win(50, 200, 8); // [16*... compute: r_up = 20*8=160, r_low = ceil(1/0.15)=7*8=56
        let small = win(50, 200, 4); // [28, 80]
        let r = 150.0;
        let plan = split_rate(r, &[big, small], DEFAULT_ALPHA);
        assert!((plan.rates.iter().sum::<f64>() - r).abs() < 30.0);
        // The wider window absorbs more of the deficit in absolute terms,
        // so both instances sit at the same *relative* position.
        let rel_big = (plan.rates[0] - big.r_low()) / big.width();
        let rel_small = (plan.rates[1] - small.r_low()) / small.width();
        assert!((rel_big - rel_small).abs() < 1e-9);
    }

    proptest! {
        /// Eq. 1 invariants: r_low ≤ r_up, and both scale with b.
        #[test]
        fn prop_window_invariants(
            exec_ms in 1u64..100,
            slo_ms in 1u64..400,
            b in prop::sample::select(vec![1u32, 2, 4, 8, 16, 32]),
        ) {
            let exec = SimDuration::from_millis(exec_ms);
            let slo = SimDuration::from_millis(slo_ms);
            if let Some(w) = RpsWindow::for_instance(exec, slo, b) {
                prop_assert!(w.r_low() <= w.r_up());
                prop_assert!(w.r_low() >= 0.0);
                if b > 1 {
                    prop_assert!(exec_ms * 2 <= slo_ms);
                }
            } else if b > 1 {
                // Infeasible either past the half-SLO bound or right at
                // it, where floor/ceil rounding inverts the window.
                prop_assert!(exec_ms * 2 + 10 > slo_ms);
            } else {
                prop_assert!(exec_ms > slo_ms);
            }
        }

        /// The controller conserves rate: assigned + residual ≥ R, and
        /// assigned rates never leave their windows.
        #[test]
        fn prop_split_conserves_and_respects_windows(
            r in 0.0f64..2000.0,
            n in 1usize..6,
            exec_ms in 10u64..95,
        ) {
            let w = RpsWindow::for_instance(
                SimDuration::from_millis(exec_ms),
                SimDuration::from_millis(200),
                4,
            );
            prop_assume!(w.is_some());
            let windows = vec![w.unwrap(); n];
            let plan = split_rate(r, &windows, DEFAULT_ALPHA);
            for (rate, w) in plan.rates.iter().zip(&windows) {
                prop_assert!(*rate >= w.r_low() - 1e-9);
                prop_assert!(*rate <= w.r_up() + 1e-9);
            }
            let assigned: f64 = plan.rates.iter().sum();
            // Conservation: the assigned rates plus the reported residual
            // always cover the offered rate (case iii may over-cover via
            // the r_low clamp).
            prop_assert!(assigned + plan.residual >= r - 1e-6);
            // Case i exactness: if residual > 0, everyone is saturated.
            if plan.residual > 0.0 {
                for (rate, w) in plan.rates.iter().zip(&windows) {
                    prop_assert!((rate - w.r_up()).abs() < 1e-9);
                }
            }
        }

        /// Rate conservation also holds for *heterogeneous* dispatch
        /// sets — mixed batchsizes and execution times, as left behind
        /// by scale-down and emergency scaling — not just the cloned
        /// windows above.
        #[test]
        fn prop_split_conserves_heterogeneous(
            r in 0.0f64..3000.0,
            mix in prop::collection::vec((10u64..95, prop::sample::select(vec![1u32, 2, 4, 8])), 1..6),
        ) {
            let windows: Vec<RpsWindow> = mix
                .iter()
                .filter_map(|&(exec_ms, b)| {
                    RpsWindow::for_instance(
                        SimDuration::from_millis(exec_ms),
                        SimDuration::from_millis(200),
                        b,
                    )
                })
                .collect();
            prop_assume!(!windows.is_empty());
            let plan = split_rate(r, &windows, DEFAULT_ALPHA);
            prop_assert_eq!(plan.rates.len(), windows.len());
            for (rate, w) in plan.rates.iter().zip(&windows) {
                prop_assert!(*rate >= w.r_low() - 1e-9);
                prop_assert!(*rate <= w.r_up() + 1e-9);
            }
            let assigned: f64 = plan.rates.iter().sum();
            // Conservation below saturation: exactly R is dispatched
            // (case iii may over-cover via the r_low clamp); above it,
            // assigned + residual accounts for every request.
            let r_max: f64 = windows.iter().map(|w| w.r_up()).sum();
            if r <= r_max {
                prop_assert_eq!(plan.residual, 0.0);
                prop_assert!(assigned >= r - 1e-6 * r.max(1.0));
            } else {
                prop_assert!((assigned + plan.residual - r).abs() < 1e-6 * r.max(1.0));
            }
        }
    }
}
