//! Inference function chains — the extension the paper names as future
//! work (§7: "we would like to further study and optimize the
//! performance of inference function chains in the serverless
//! platform").
//!
//! A chain is a sequential pipeline of deployed functions (e.g.
//! object detection → crop classification) with an *end-to-end* latency
//! SLO. The platform:
//!
//! 1. **splits** the end-to-end SLO into per-stage SLOs proportional to
//!    each stage's minimum achievable latency (its fastest profiled
//!    single-sample configuration), so every stage receives slack in
//!    proportion to its weight;
//! 2. serves each stage like any other function (batching, Algorithm 1
//!    scaling, LSTH) under its per-stage SLO;
//! 3. **relays** every completed stage request to the next stage as a
//!    fresh arrival, threading the original chain-entry timestamp so
//!    the end-to-end latency of the final stage is measured exactly.

use infless_models::ModelSpec;
use infless_sim::SimDuration;
use infless_telemetry::Log2Histogram;

use crate::predictor::CopPredictor;

/// A declared function chain.
///
/// # Example
///
/// ```
/// use infless_core::chains::ChainSpec;
/// use infless_sim::SimDuration;
///
/// // Stage 0 feeds stage 2 within 300 ms end-to-end.
/// let chain = ChainSpec::new("detect-then-classify", vec![0, 2], SimDuration::from_millis(300));
/// assert_eq!(chain.stages(), &[0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSpec {
    name: String,
    stages: Vec<usize>,
    e2e_slo: SimDuration,
}

impl ChainSpec {
    /// Declares a chain over function indices `stages` (executed in
    /// order) with an end-to-end SLO.
    ///
    /// # Panics
    ///
    /// Panics if the chain has fewer than two stages, repeats a stage,
    /// or the SLO is zero.
    pub fn new(name: impl Into<String>, stages: Vec<usize>, e2e_slo: SimDuration) -> Self {
        assert!(stages.len() >= 2, "a chain needs at least two stages");
        let mut dedup = stages.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), stages.len(), "chain stages must be distinct");
        assert!(!e2e_slo.is_zero(), "the end-to-end SLO must be positive");
        ChainSpec {
            name: name.into(),
            stages,
            e2e_slo,
        }
    }

    /// The chain's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The function indices, in execution order.
    pub fn stages(&self) -> &[usize] {
        &self.stages
    }

    /// The end-to-end latency SLO.
    pub fn e2e_slo(&self) -> SimDuration {
        self.e2e_slo
    }
}

/// How a chain's end-to-end SLO is divided across its stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChainSplit {
    /// Proportional to each stage's minimum achievable latency (the
    /// default; heavy stages get more budget).
    #[default]
    Proportional,
    /// Equal share per stage — the naive baseline the ext_chains
    /// ablation compares against.
    Equal,
}

/// Splits a chain's end-to-end SLO equally across its stages.
pub fn split_slo_equal(chain: &ChainSpec) -> Vec<SimDuration> {
    let n = chain.stages().len() as u64;
    vec![chain.e2e_slo() / n; chain.stages().len()]
}

/// Splits a chain's end-to-end SLO across its stages proportionally to
/// each stage's minimum achievable single-sample latency over the
/// profiled grid.
///
/// Returns one SLO per stage (same order as [`ChainSpec::stages`]), or
/// `None` when some stage's model has no profiled configuration at all.
///
/// # Example
///
/// ```
/// use infless_core::chains::{split_slo, ChainSpec};
/// use infless_core::CopPredictor;
/// use infless_models::{profile::ConfigGrid, HardwareModel, ModelId, ProfileDatabase};
/// use infless_sim::SimDuration;
///
/// let hw = HardwareModel::default();
/// let specs = vec![ModelId::Ssd.spec(), ModelId::ResNet50.spec()];
/// let db = ProfileDatabase::profile(&hw, &specs, &ConfigGrid::standard(), 1);
/// let predictor = CopPredictor::new(db, hw);
///
/// let chain = ChainSpec::new("c", vec![0, 1], SimDuration::from_millis(300));
/// let slos = split_slo(&predictor, &specs, &chain).expect("profiled");
/// assert_eq!(slos.len(), 2);
/// let total: f64 = slos.iter().map(|s| s.as_secs_f64()).sum();
/// assert!((total - 0.3).abs() < 1e-6);
/// ```
pub fn split_slo(
    predictor: &CopPredictor,
    specs: &[ModelSpec],
    chain: &ChainSpec,
) -> Option<Vec<SimDuration>> {
    let mut mins = Vec::with_capacity(chain.stages.len());
    for &stage in &chain.stages {
        let spec = specs.get(stage)?;
        let best = predictor
            .grid()
            .configs()
            .iter()
            .filter_map(|&cfg| predictor.predict(spec, 1, cfg))
            .map(|d| d.as_secs_f64())
            .fold(f64::INFINITY, f64::min);
        if !best.is_finite() {
            return None;
        }
        mins.push(best);
    }
    let total: f64 = mins.iter().sum();
    if total <= 0.0 {
        return None;
    }
    Some(
        mins.iter()
            .map(|m| chain.e2e_slo.mul_f64(m / total))
            .collect(),
    )
}

/// End-to-end results for one chain.
#[derive(Debug, Clone)]
pub struct ChainReport {
    /// The chain's name.
    pub name: String,
    /// The end-to-end SLO.
    pub e2e_slo: SimDuration,
    /// Requests that traversed the whole chain.
    pub completed: u64,
    /// Completions whose end-to-end latency exceeded the SLO.
    pub violations: u64,
    /// Requests lost mid-chain (a stage dropped the relayed request).
    pub lost: u64,
    /// End-to-end latency of completed traversals, milliseconds
    /// (log2-bucketed; quantile error ≤ 2⁻⁷ relative).
    pub e2e_ms: Log2Histogram,
}

impl ChainReport {
    pub(crate) fn new(spec: &ChainSpec) -> Self {
        ChainReport {
            name: spec.name.clone(),
            e2e_slo: spec.e2e_slo,
            completed: 0,
            violations: 0,
            lost: 0,
            e2e_ms: Log2Histogram::new(),
        }
    }

    /// End-to-end violation rate (losses count as violations).
    pub fn violation_rate(&self) -> f64 {
        let total = self.completed + self.lost;
        if total == 0 {
            0.0
        } else {
            (self.violations + self.lost) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infless_models::{profile::ConfigGrid, HardwareModel, ModelId, ProfileDatabase};

    fn predictor(specs: &[ModelSpec]) -> CopPredictor {
        let hw = HardwareModel::default();
        let db = ProfileDatabase::cached(&hw, specs, &ConfigGrid::standard(), 4);
        CopPredictor::new(db, hw)
    }

    #[test]
    fn slo_split_is_proportional_and_exhaustive() {
        let specs = vec![
            ModelId::Ssd.spec(),       // heavy
            ModelId::MobileNet.spec(), // light
        ];
        let p = predictor(&specs);
        let chain = ChainSpec::new("c", vec![0, 1], SimDuration::from_millis(400));
        let slos = split_slo(&p, &specs, &chain).unwrap();
        let total: f64 = slos.iter().map(|s| s.as_secs_f64()).sum();
        assert!((total - 0.4).abs() < 1e-6, "split must cover the budget");
        assert!(
            slos[0] > slos[1],
            "the heavier stage receives the larger share: {slos:?}"
        );
    }

    #[test]
    fn slo_split_handles_unknown_stage() {
        let specs = vec![ModelId::Mnist.spec()];
        let p = predictor(&specs);
        let chain = ChainSpec::new("c", vec![0, 7], SimDuration::from_millis(100));
        assert!(split_slo(&p, &specs, &chain).is_none());
    }

    #[test]
    #[should_panic(expected = "two stages")]
    fn single_stage_chain_rejected() {
        ChainSpec::new("c", vec![0], SimDuration::from_millis(100));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn repeated_stage_rejected() {
        ChainSpec::new("c", vec![0, 0], SimDuration::from_millis(100));
    }

    #[test]
    fn report_rates() {
        let chain = ChainSpec::new("c", vec![0, 1], SimDuration::from_millis(100));
        let mut r = ChainReport::new(&chain);
        assert_eq!(r.violation_rate(), 0.0);
        r.completed = 8;
        r.violations = 1;
        r.lost = 2;
        assert!((r.violation_rate() - 0.3).abs() < 1e-12);
    }
}
