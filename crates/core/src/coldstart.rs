//! Cold-start management: the Long-Short Term Histogram policy (§3.5)
//! and the baselines it is evaluated against (Fig. 16).
//!
//! All policies observe a function's *idle times* (gaps between
//! activity) and derive two windows:
//!
//! * **pre-warm window** — how long to wait after the last execution
//!   before loading the function image in anticipation of the next
//!   invocation;
//! * **keep-alive window** — how long to keep the loaded image (and the
//!   idle instances) alive.
//!
//! The hybrid histogram policy (HHP, Shahrad et al.) builds one
//! histogram over a fixed tracking duration; the paper shows this is
//! either too conservative (long duration → waste when the rate drops)
//! or unrepresentative (short duration → misses periodicity). LSTH
//! tracks **two** histograms — long-term (1 day) and short-term
//! (1 hour) — and blends their heads/tails with weight `γ`.

use std::collections::VecDeque;

use infless_sim::stats::BinnedHistogram;
use infless_sim::{SimDuration, SimTime};

/// The head percentile used for the pre-warming window (5th).
pub const HEAD_PERCENTILE: f64 = 0.05;
/// The tail percentile used for the keep-alive window (99th).
pub const TAIL_PERCENTILE: f64 = 0.99;
/// Default LSTH blend weight (§3.5: "by default, we set γ = 0.5").
pub const DEFAULT_GAMMA: f64 = 0.5;
/// Minimum samples before a histogram is considered representative.
const MIN_SAMPLES: u64 = 4;

/// Pre-warm / keep-alive window pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Windows {
    /// Wait after the last execution before re-loading the image.
    pub pre_warm: SimDuration,
    /// Keep the image (and idle instances) alive this long.
    pub keep_alive: SimDuration,
}

/// A cold-start policy: observes idle times, emits windows.
///
/// `Send` so whole platforms can be driven from worker threads (the
/// benchmark harness runs independent experiments in parallel).
pub trait ColdStartPolicy: std::fmt::Debug + Send {
    /// Records that the function was idle for `idle` ending at `now`.
    fn record_idle(&mut self, now: SimTime, idle: SimDuration);

    /// The windows to apply at `now`.
    fn windows(&mut self, now: SimTime) -> Windows;

    /// How long to keep a model's weights *host-cached* after its last
    /// GPU residency lapses — the second tier of the residency state
    /// machine (`GpuResident → HostCached → Cold`). Host memory is
    /// cheap relative to device memory, so the default simply stretches
    /// the keep-alive window: a model worth keeping on a GPU for `k` is
    /// worth keeping in host RAM for `4k`.
    fn host_keep_alive(&mut self, now: SimTime) -> SimDuration {
        self.windows(now).keep_alive.mul_f64(4.0)
    }

    /// Short policy name for reports.
    fn name(&self) -> &'static str;
}

/// A time-windowed idle-time sample store that can render itself as a
/// fixed-bin histogram (1-minute bins up to 4 hours, as in HHP).
#[derive(Debug, Clone)]
struct IdleTracker {
    retention: SimDuration,
    samples: VecDeque<(SimTime, f64)>,
}

impl IdleTracker {
    fn new(retention: SimDuration) -> Self {
        IdleTracker {
            retention,
            samples: VecDeque::new(),
        }
    }

    fn record(&mut self, now: SimTime, idle: SimDuration) {
        // Prune on the write path too: a function that records for days
        // but is never asked for windows must not accumulate samples
        // beyond its retention. (`histogram` still prunes, for trackers
        // queried long after their last record.)
        self.prune(now);
        self.samples.push_back((now, idle.as_secs_f64()));
    }

    fn prune(&mut self, now: SimTime) {
        let horizon = now.saturating_sub(self.retention);
        while let Some(&(t, _)) = self.samples.front() {
            if t < horizon {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    fn histogram(&mut self, now: SimTime) -> BinnedHistogram {
        self.prune(now);
        // One-minute bins spanning the tracker's own retention (HHP's
        // 4-hour tracker gets the classic 240-bin histogram; LSTH's
        // long-term tracker can represent day-scale idle periods).
        let bins = ((self.retention.as_secs_f64() / 60.0).ceil() as usize).clamp(60, 1440);
        let mut h = BinnedHistogram::new(60.0, bins);
        for &(_, idle) in &self.samples {
            h.add(idle);
        }
        h
    }
}

/// Windows from one histogram, or `None` if it is not representative
/// (too few samples or dominated by out-of-range idle times).
fn histogram_windows(h: &BinnedHistogram) -> Option<Windows> {
    if h.count() < MIN_SAMPLES || h.overflow_fraction() > 0.5 {
        return None;
    }
    let head = h.quantile_lower_edge(HEAD_PERCENTILE)?;
    let tail = h.quantile_upper_edge(TAIL_PERCENTILE)?;
    Some(Windows {
        pre_warm: SimDuration::from_secs_f64(head),
        keep_alive: SimDuration::from_secs_f64(tail),
    })
}

/// The conservative fallback: never unload within HHP's classic
/// histogram range.
fn conservative() -> Windows {
    Windows {
        pre_warm: SimDuration::ZERO,
        keep_alive: SimDuration::from_hours(4),
    }
}

/// The hybrid histogram policy of Shahrad et al. — the paper's baseline.
///
/// One histogram over a configurable tracking duration (4 hours by
/// default); head → pre-warm, tail → keep-alive; falls back to a
/// conservative always-warm window when the histogram is not
/// representative.
#[derive(Debug, Clone)]
pub struct HybridHistogram {
    tracker: IdleTracker,
}

impl HybridHistogram {
    /// Creates HHP with the standard 4-hour tracking duration.
    pub fn new() -> Self {
        Self::with_duration(SimDuration::from_hours(4))
    }

    /// Creates HHP with a custom tracking duration.
    pub fn with_duration(duration: SimDuration) -> Self {
        HybridHistogram {
            tracker: IdleTracker::new(duration),
        }
    }
}

impl Default for HybridHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl ColdStartPolicy for HybridHistogram {
    fn record_idle(&mut self, now: SimTime, idle: SimDuration) {
        self.tracker.record(now, idle);
    }

    fn windows(&mut self, now: SimTime) -> Windows {
        histogram_windows(&self.tracker.histogram(now)).unwrap_or_else(conservative)
    }

    fn name(&self) -> &'static str {
        "HHP"
    }
}

/// The Long-Short Term Histogram policy (§3.5, Fig. 9b).
///
/// Tracks a long-term (default 24 h) and a short-term (default 1 h)
/// histogram and blends their windows:
/// `pre_warm = γ·L_head + (1−γ)·S_head`,
/// `keep_alive = γ·L_tail + (1−γ)·S_tail`.
///
/// # Example
///
/// ```
/// use infless_core::{ColdStartPolicy, Lsth};
/// use infless_sim::{SimDuration, SimTime};
///
/// let mut lsth = Lsth::new(0.5);
/// let mut t = SimTime::ZERO;
/// for _ in 0..50 {
///     t += SimDuration::from_mins(10);
///     lsth.record_idle(t, SimDuration::from_mins(10));
/// }
/// let w = lsth.windows(t);
/// // Idle gaps are consistently ~10 min: pre-warm just before, keep
/// // alive just past.
/// assert!(w.pre_warm <= SimDuration::from_mins(10));
/// assert!(w.keep_alive >= SimDuration::from_mins(10));
/// ```
#[derive(Debug, Clone)]
pub struct Lsth {
    long: IdleTracker,
    short: IdleTracker,
    gamma: f64,
}

impl Lsth {
    /// Creates LSTH with the paper's default durations (24 h long-term,
    /// 1 h short-term — the Fig. 16 settings) and blend weight `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is outside `[0, 1]`.
    pub fn new(gamma: f64) -> Self {
        Self::with_durations(
            gamma,
            SimDuration::from_hours(24),
            SimDuration::from_hours(1),
        )
    }

    /// Creates LSTH with custom tracking durations.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is outside `[0, 1]` or `long <= short`.
    pub fn with_durations(gamma: f64, long: SimDuration, short: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
        assert!(
            long > short,
            "the long-term window must exceed the short-term one"
        );
        Lsth {
            long: IdleTracker::new(long),
            short: IdleTracker::new(short),
            gamma,
        }
    }

    /// The blend weight γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl ColdStartPolicy for Lsth {
    fn record_idle(&mut self, now: SimTime, idle: SimDuration) {
        self.long.record(now, idle);
        self.short.record(now, idle);
    }

    fn windows(&mut self, now: SimTime) -> Windows {
        let long = histogram_windows(&self.long.histogram(now));
        let short = histogram_windows(&self.short.histogram(now));
        match (long, short) {
            (Some(l), Some(s)) => Windows {
                pre_warm: l.pre_warm.mul_f64(self.gamma) + s.pre_warm.mul_f64(1.0 - self.gamma),
                keep_alive: l.keep_alive.mul_f64(self.gamma)
                    + s.keep_alive.mul_f64(1.0 - self.gamma),
            },
            // Only one representative histogram: trust it alone.
            (Some(l), None) => l,
            (None, Some(s)) => s,
            (None, None) => conservative(),
        }
    }

    fn host_keep_alive(&mut self, now: SimTime) -> SimDuration {
        // Tiered LSTH: the host tier reads a *deeper* tail of the same
        // two histograms (99.9th instead of 99th) — idle gaps too rare
        // to justify device residency still argue for a host copy,
        // because a swap-in at ~0.3 s is an order of magnitude cheaper
        // than a boot. Never below the stretched device window.
        const HOST_TAIL: f64 = 0.999;
        let deep = |h: &BinnedHistogram| -> Option<SimDuration> {
            if h.count() < MIN_SAMPLES || h.overflow_fraction() > 0.5 {
                return None;
            }
            h.quantile_upper_edge(HOST_TAIL)
                .map(SimDuration::from_secs_f64)
        };
        let long = deep(&self.long.histogram(now));
        let short = deep(&self.short.histogram(now));
        let blended = match (long, short) {
            (Some(l), Some(s)) => l.mul_f64(self.gamma) + s.mul_f64(1.0 - self.gamma),
            (Some(l), None) => l,
            (None, Some(s)) => s,
            (None, None) => conservative().keep_alive,
        };
        blended.max(self.windows(now).keep_alive.mul_f64(4.0))
    }

    fn name(&self) -> &'static str {
        "LSTH"
    }
}

/// The fixed keep-alive policy of OpenFaaS / commercial platforms: no
/// pre-warming, constant keep-alive window.
#[derive(Debug, Clone, Copy)]
pub struct FixedKeepAlive {
    keep_alive: SimDuration,
}

impl FixedKeepAlive {
    /// OpenFaaS+'s 300-second fixed window (§5.1).
    pub fn openfaas() -> Self {
        FixedKeepAlive {
            keep_alive: SimDuration::from_secs(300),
        }
    }

    /// A custom fixed window.
    pub fn new(keep_alive: SimDuration) -> Self {
        FixedKeepAlive { keep_alive }
    }
}

impl ColdStartPolicy for FixedKeepAlive {
    fn record_idle(&mut self, _now: SimTime, _idle: SimDuration) {}

    fn windows(&mut self, _now: SimTime) -> Windows {
        Windows {
            pre_warm: SimDuration::ZERO,
            keep_alive: self.keep_alive,
        }
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_regular(policy: &mut dyn ColdStartPolicy, gap: SimDuration, n: usize) -> SimTime {
        let mut t = SimTime::ZERO;
        for _ in 0..n {
            t += gap;
            policy.record_idle(t, gap);
        }
        t
    }

    #[test]
    fn hhp_windows_bracket_regular_gaps() {
        let mut hhp = HybridHistogram::new();
        let t = feed_regular(&mut hhp, SimDuration::from_mins(20), 10);
        let w = hhp.windows(t);
        assert!(w.pre_warm <= SimDuration::from_mins(20));
        assert!(w.pre_warm >= SimDuration::from_mins(15));
        assert!(w.keep_alive >= SimDuration::from_mins(20));
        assert!(w.keep_alive <= SimDuration::from_mins(25));
    }

    #[test]
    fn hhp_is_conservative_without_data() {
        let mut hhp = HybridHistogram::new();
        let w = hhp.windows(SimTime::from_secs(10));
        assert_eq!(w.pre_warm, SimDuration::ZERO);
        assert_eq!(w.keep_alive, SimDuration::from_hours(4));
    }

    #[test]
    fn hhp_is_conservative_when_gaps_exceed_range() {
        // The histogram range is capped at 24 h even for very long
        // retentions; gaps beyond it all land in the overflow bucket
        // and the policy falls back to the conservative windows.
        let mut hhp = HybridHistogram::with_duration(SimDuration::from_hours(400));
        let t = feed_regular(&mut hhp, SimDuration::from_hours(25), 8);
        let w = hhp.windows(t);
        assert_eq!(w.pre_warm, SimDuration::ZERO);
        assert_eq!(w.keep_alive, SimDuration::from_hours(4));
    }

    #[test]
    fn long_retention_represents_day_scale_gaps() {
        // A 24h-retention tracker (LSTH's long histogram) can express
        // multi-hour idle periods that HHP's 4-hour range cannot.
        let mut lsth =
            Lsth::with_durations(1.0, SimDuration::from_hours(48), SimDuration::from_hours(1));
        let t = feed_regular(&mut lsth, SimDuration::from_hours(8), 6);
        let w = lsth.windows(t);
        assert!(w.pre_warm >= SimDuration::from_hours(7));
        assert!(w.keep_alive >= SimDuration::from_hours(8));

        let mut hhp = HybridHistogram::new();
        let t = feed_regular(&mut hhp, SimDuration::from_hours(8), 6);
        let w = hhp.windows(t);
        assert_eq!(w.keep_alive, SimDuration::from_hours(4), "HHP cannot");
    }

    #[test]
    fn record_alone_keeps_memory_bounded() {
        // Recording must prune as it goes: a tracker that is fed for a
        // long time without ever being asked for windows holds only its
        // retention's worth of samples, not the whole history.
        let mut tracker = IdleTracker::new(SimDuration::from_hours(1));
        let mut t = SimTime::ZERO;
        for _ in 0..10_000 {
            t += SimDuration::from_mins(1);
            tracker.record(t, SimDuration::from_mins(1));
        }
        assert!(
            tracker.samples.len() <= 61,
            "1h retention of 1-min gaps must hold ~60 samples, not {}",
            tracker.samples.len()
        );
    }

    #[test]
    fn hhp_forgets_old_samples() {
        let mut hhp = HybridHistogram::new(); // 4h retention
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += SimDuration::from_mins(5);
            hhp.record_idle(t, SimDuration::from_mins(5));
        }
        // 5 hours later, all samples aged out → conservative again.
        let much_later = t + SimDuration::from_hours(5);
        let w = hhp.windows(much_later);
        assert_eq!(w.keep_alive, SimDuration::from_hours(4));
    }

    #[test]
    fn lsth_blends_long_and_short_patterns() {
        // Long-term history: 60-min gaps. Recent >1 hour: 4-min gaps, so
        // the short-term (1 h) histogram holds only the 4-min pattern.
        let mut lsth = Lsth::new(0.5);
        let mut t = SimTime::ZERO;
        for _ in 0..20 {
            t += SimDuration::from_mins(60);
            lsth.record_idle(t, SimDuration::from_mins(60));
        }
        for _ in 0..16 {
            t += SimDuration::from_mins(4);
            lsth.record_idle(t, SimDuration::from_mins(4));
        }
        let w = lsth.windows(t);
        // The pure-long keep-alive would be ~61 min; the pure-short
        // ~5 min. The blend sits strictly between.
        assert!(w.keep_alive > SimDuration::from_mins(10));
        assert!(w.keep_alive < SimDuration::from_mins(55));
    }

    #[test]
    fn lsth_gamma_extremes_follow_one_histogram() {
        let build = |gamma: f64| {
            let mut lsth = Lsth::new(gamma);
            let mut t = SimTime::ZERO;
            for _ in 0..20 {
                t += SimDuration::from_mins(30);
                lsth.record_idle(t, SimDuration::from_mins(30));
            }
            // >1 hour of 2-min gaps so the short-term histogram no
            // longer remembers the 30-min pattern.
            for _ in 0..35 {
                t += SimDuration::from_mins(2);
                lsth.record_idle(t, SimDuration::from_mins(2));
            }
            lsth.windows(t)
        };
        let long_only = build(1.0);
        let short_only = build(0.0);
        assert!(
            long_only.keep_alive > short_only.keep_alive,
            "γ=1 follows the long-term pattern, γ=0 the recent one"
        );
    }

    #[test]
    fn lsth_falls_back_to_long_when_short_is_empty() {
        let mut lsth = Lsth::new(0.5);
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += SimDuration::from_mins(30);
            lsth.record_idle(t, SimDuration::from_mins(30));
        }
        // Two hours of silence: short-term histogram empties out.
        let later = t + SimDuration::from_hours(2);
        let w = lsth.windows(later);
        assert!(w.keep_alive >= SimDuration::from_mins(30));
        assert!(
            w.keep_alive < SimDuration::from_hours(4),
            "not conservative"
        );
    }

    #[test]
    fn fixed_policy_ignores_observations() {
        let mut fixed = FixedKeepAlive::openfaas();
        let t = feed_regular(&mut fixed, SimDuration::from_mins(1), 50);
        let w = fixed.windows(t);
        assert_eq!(w.pre_warm, SimDuration::ZERO);
        assert_eq!(w.keep_alive, SimDuration::from_secs(300));
        assert_eq!(fixed.name(), "fixed");
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn lsth_rejects_bad_gamma() {
        Lsth::new(1.5);
    }

    #[test]
    #[should_panic(expected = "long-term")]
    fn lsth_rejects_inverted_durations() {
        Lsth::with_durations(0.5, SimDuration::from_mins(10), SimDuration::from_hours(1));
    }

    /// Tiered eviction: the host tier always out-waits the device
    /// tier, and LSTH's deep-tail host window reacts to rare long
    /// gaps that the 99th-percentile device window shrugs off.
    #[test]
    fn host_keep_alive_outlasts_device_keep_alive() {
        let mut lsth = Lsth::new(0.5);
        let mut t = SimTime::ZERO;
        for _ in 0..40 {
            t += SimDuration::from_mins(5);
            lsth.record_idle(t, SimDuration::from_mins(5));
        }
        let device = lsth.windows(t).keep_alive;
        let host = lsth.host_keep_alive(t);
        assert!(
            host >= device.mul_f64(4.0),
            "host {host:?} device {device:?}"
        );

        // The default-impl path (HHP) stretches the device window.
        let mut hhp = HybridHistogram::new();
        let t2 = feed_regular(&mut hhp, SimDuration::from_mins(20), 10);
        let device = hhp.windows(t2).keep_alive;
        assert_eq!(hhp.host_keep_alive(t2), device.mul_f64(4.0));
    }

    #[test]
    fn policy_names() {
        assert_eq!(Lsth::new(0.5).name(), "LSTH");
        assert_eq!(HybridHistogram::new().name(), "HHP");
    }
}
