//! Shared platform mechanics.
//!
//! Every platform in the reproduction — INFless and the baselines —
//! runs on this engine so that comparisons measure *policy*, not
//! simulation plumbing. The engine owns the cluster, the instance map
//! and the metrics collector, and implements the mechanical parts of
//! serving: minting requests, launching/retiring instances, filling
//! batch queues, starting batches when they are full or timed out, and
//! recording the latency breakdown of every completed request.
//!
//! Platforms drive the engine from their own event loop over
//! [`EngineEvent`]s: arrivals go through the platform's dispatcher
//! (that is where systems differ), everything else is handled by the
//! engine's `on_*` methods.

use std::collections::{HashMap, VecDeque};

use infless_cluster::{
    ClusterSpec, ClusterState, FunctionId, Instance, InstanceConfig, InstanceId, PlacementError,
    Request, RequestId, ServerHealth, ServerId,
};
use infless_faults::FaultEvent;
use infless_llm::{LlmBatching, LlmClass};
use infless_models::{HardwareModel, ModelSpec, ResourceConfig};
use infless_sim::{EventQueue, SimDuration, SimTime};
use infless_telemetry::{
    BreakdownEvent, DecisionEvent, DecisionKind, DecisionReason, DecisionRecord, FaultTag,
    GaugeRow, MetricsHandle, NullSink, SpanEvent, SpanKind, TelemetrySink, TraceMeta,
};
use rand::rngs::StdRng;
use rand::Rng;

use crate::metrics::{Collector, LatencyParts, StartupKind};

/// A deployed inference function: its model and latency SLO (the two
/// fields of the paper's Fig. 5 template that matter to scheduling).
#[derive(Debug, Clone)]
pub struct FunctionInfo {
    spec: ModelSpec,
    slo: SimDuration,
    max_batch: u32,
    llm: Option<LlmClass>,
}

impl FunctionInfo {
    /// Creates a function deployment with no per-function batch cap
    /// beyond the platform grid's (≤ 32).
    pub fn new(spec: ModelSpec, slo: SimDuration) -> Self {
        Self::with_max_batch(spec, slo, u32::MAX)
    }

    /// Creates a function deployment with a per-function batchsize cap —
    /// the `maxBatchsize` field of the paper's Fig. 5 template.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn with_max_batch(spec: ModelSpec, slo: SimDuration, max_batch: u32) -> Self {
        assert!(max_batch >= 1, "the batch cap must be at least 1");
        FunctionInfo {
            spec,
            slo,
            max_batch,
            llm: None,
        }
    }

    /// Marks the function autoregressive: requests carry prompt/output
    /// token counts and execute as prefill + decode episodes under the
    /// two-phase (TTFT/TPOT) SLO model.
    pub fn with_llm(mut self, llm: LlmClass) -> Self {
        self.llm = Some(llm);
        self
    }

    /// The model.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The latency SLO.
    pub fn slo(&self) -> SimDuration {
        self.slo
    }

    /// The per-function batchsize cap.
    pub fn max_batch(&self) -> u32 {
        self.max_batch
    }

    /// The autoregressive class parameters, if this function is one.
    pub fn llm(&self) -> Option<&LlmClass> {
        self.llm.as_ref()
    }
}

/// A finished batch, as reported by [`Engine::on_batch_complete`].
#[derive(Debug, Clone)]
pub struct CompletedBatch {
    /// The function the batch served.
    pub function: usize,
    /// The requests that completed.
    pub requests: Vec<Request>,
}

/// The event vocabulary platforms schedule and consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineEvent {
    /// A request for function index `usize` arrives at the gateway.
    Arrival(usize),
    /// A cold/pre-warmed start finished.
    InstanceReady(InstanceId),
    /// A Torpor-style host→device model swap finished; the instance
    /// becomes ready. Separate from [`EngineEvent::InstanceReady`] so
    /// platforms (and traces) can tell a swap-in from a boot.
    SwapComplete(InstanceId),
    /// A batch queue's wait budget may have expired.
    BatchTimeout(InstanceId),
    /// A running batch finished.
    BatchComplete(InstanceId),
    /// An autoregressive decode-step boundary on this instance: every
    /// active sequence produced one token; completed sequences leave
    /// and (under continuous batching) queued requests may join.
    DecodeStep(InstanceId),
    /// Periodic auto-scaler invocation.
    ScalerTick,
    /// An injected fault fires (see [`infless_faults`]).
    Fault(FaultEvent),
    /// Coordinator-resolved fault directive: kill this specific
    /// instance (sharded/epoch path). Unlike [`EngineEvent::Fault`],
    /// the victim was chosen ahead of time from the global registry;
    /// application is tolerant of victims that already died.
    DirectiveKill(InstanceId, FaultTag),
    /// Coordinator-resolved straggler episode on one server
    /// (broadcast to every shard, since any shard may run batches
    /// there).
    DirectiveStraggler {
        /// The straggling server.
        server: ServerId,
        /// Execution slowdown in percent (100 = 2× exec time).
        slowdown_pct: u32,
        /// Episode length.
        duration: SimDuration,
    },
}

/// What a delivered fault did, as reported by [`Engine::on_fault`]. The
/// platform owns the policy response: re-placing lost throughput,
/// retrying the displaced requests within their SLO budget, and
/// shedding what cannot be saved.
#[derive(Debug, Default)]
pub struct FaultOutcome {
    /// Requests displaced from killed instances (in-flight batch first,
    /// then the queued remainder), oldest first.
    pub displaced: Vec<Request>,
    /// `(function, instance)` pairs killed by the fault, in
    /// deterministic (function-major, launch-order) order.
    pub killed: Vec<(usize, InstanceId)>,
}

/// Shared serving mechanics. See the [module docs](self).
#[derive(Debug)]
pub struct Engine {
    hardware: HardwareModel,
    cluster: ClusterState,
    functions: Vec<FunctionInfo>,
    /// Instance slab, indexed by the raw [`InstanceId`]. Ids are minted
    /// sequentially and never reused, so the slab only ever grows;
    /// retirements leave `None` holes behind. One direct index replaces
    /// the two-to-three hash lookups the request hot path used to pay
    /// per event.
    slots: Vec<Option<Slot>>,
    live_by_function: Vec<Vec<InstanceId>>,
    /// Number of batches currently executing (occupied `in_flight`
    /// entries across the slab), so telemetry sampling needs no scan.
    in_flight_count: usize,
    /// Active (executing) SM share per physical GPU device, for the MPS
    /// interference model. Flat-indexed `server * gpus_per_server + gpu`.
    gpu_busy_pct: Vec<u32>,
    gpus_per_server: usize,
    /// Per-server straggler episodes: `(until, slowdown factor)`.
    /// Batches started on a listed server before `until` run slower.
    straggle: HashMap<ServerId, (SimTime, f64)>,
    /// Outstanding capacity-loss probes for the time-to-recapacity
    /// metric, oldest first.
    recapacity: VecDeque<RecapacityProbe>,
    next_instance: u64,
    next_request: u64,
    noise: NoiseRng,
    /// Autoregressive decode-batching discipline (LLM functions only;
    /// one-shot functions never consult it).
    llm_batching: LlmBatching,
    /// Live autoregressive episodes, keyed by raw instance id.
    llm_episodes: HashMap<u64, LlmEpisode>,
    /// Prompt/output token counts per in-system LLM request, keyed by
    /// raw request id. Minted at arrival, removed at completion/shed.
    token_table: HashMap<u64, TokenInfo>,
    /// Lazily-created per-function token-count streams with
    /// shard-invariant labels (`llm/{platform}/fn{i}`). Empty until an
    /// LLM function mints its first request, so non-LLM runs never
    /// touch them.
    token_streams: Vec<Option<StdRng>>,
    seed: u64,
    /// How MPS interference reads co-resident SM activity; see
    /// [`Self::use_interference_snapshot`].
    interference_snapshot: Option<Vec<u32>>,
    /// When `true`, GPU instance launches book the model's weights
    /// against the chosen device's memory (the residency tier's
    /// device-memory constraint). Off by default so a tier-disabled
    /// run allocates exactly like the pre-tier engine.
    device_memory: bool,
    /// When `true`, capacity-loss probes are owned by an external
    /// coordinator: launches append to `launch_log` instead of
    /// crediting the internal FIFO, and faults book no probes here.
    recapacity_external: bool,
    /// `(ready_at, weighted capacity)` of launches since the last
    /// [`Self::take_launch_log`] drain (external recapacity mode only).
    launch_log: Vec<(SimTime, f64)>,
    beta: f64,
    /// The metrics recorder (public so platforms can add their own
    /// samples, e.g. fragment ratios at scaler ticks).
    pub collector: Collector,
    /// Where lifecycle spans and gauge rows go. [`NullSink`] by
    /// default: emission is gated on `enabled()`, draws no randomness,
    /// and schedules no events, so a sink-less run is bit-identical to
    /// one that predates the telemetry subsystem.
    telemetry: Box<dyn TelemetrySink>,
    /// Gateway-arrival → (latest) instance-enqueue instant per
    /// in-system request, feeding the queueing component of the
    /// latency decomposition. Always maintained: the breakdown
    /// histograms are part of the canonical report, so the map cannot
    /// be gated on a sink.
    enqueue_at: HashMap<u64, SimTime>,
    /// Per-function monotonic decision sequence numbers — the
    /// tiebreaker that makes a merged multi-shard decision trace
    /// totally ordered (a function is wholly owned by one shard, so
    /// its counter is globally unique).
    decision_seq: Vec<u64>,
    /// Per-function launch ordinals for the decision trace. Raw
    /// instance ids are dense engine-local slot indices and therefore
    /// differ across shard counts; launches within a function happen
    /// in the same order at every shard count, so this ordinal is
    /// shard-invariant. Observability-only: written when decisions are
    /// enabled and never read by the simulation.
    decision_inst_seq: Vec<u64>,
    /// Raw instance id → launch ordinal, for decision events that
    /// reference an already-launched instance.
    decision_inst_ids: HashMap<u64, i64>,
    /// Per-function arrival ordinals for the decision trace — the
    /// request-id analogue of `decision_inst_seq`: raw request ids are
    /// engine-global mint order and therefore shard-local, while a
    /// function's arrivals happen in the same order at every shard
    /// count. Observability-only.
    decision_req_seq: Vec<u64>,
    /// Raw request id → arrival ordinal.
    decision_req_ids: HashMap<u64, i64>,
    /// Host-cache occupancy gauge (MB), set by the owning platform
    /// just before telemetry sampling.
    host_cache_mb: f64,
    /// Optional metrics registry; gauge families are refreshed on
    /// every [`Self::record_gauges`] call.
    metrics: Option<MetricsHandle>,
    now: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct InstanceMeta {
    wait_budget: SimDuration,
    startup: StartupKind,
}

/// One live instance's slab entry: the instance itself plus the
/// engine-side bookkeeping that used to live in separate side maps.
#[derive(Debug)]
struct Slot {
    inst: Instance,
    meta: InstanceMeta,
    in_flight: Option<InFlight>,
}

#[derive(Debug)]
struct InFlight {
    started: SimTime,
    exec: SimDuration,
    /// Execution estimate before the MPS-interference and straggler
    /// multipliers — the decomposition's execution/interference split.
    exec_base: SimDuration,
    batch: Vec<Request>,
}

/// Prompt/output token counts minted at arrival for a request of an
/// autoregressive function, plus decode progress (updated when a fault
/// displaces the sequence, so retry estimates see the remaining work).
#[derive(Debug, Clone, Copy)]
struct TokenInfo {
    prompt: u32,
    output: u32,
    produced: u32,
}

/// One sequence inside a running autoregressive episode.
#[derive(Debug)]
struct LlmSeq {
    req: Request,
    prompt: u32,
    output: u32,
    produced: u32,
    /// When the sequence entered the batch (episode start or a
    /// continuous join) — the queue/exec boundary of its breakdown.
    admitted: SimTime,
    first_token: Option<SimTime>,
}

/// A running autoregressive episode on one instance: one prefill pass
/// followed by iteration-level decode steps until every sequence
/// finishes (or, under continuous batching, forever replenished from
/// the instance queue).
#[derive(Debug)]
struct LlmEpisode {
    active: Vec<LlmSeq>,
    /// `prompt + output` tokens reserved against the KV arena by the
    /// admission gate (actual residency never exceeds the reservation,
    /// so a step can never overflow the arena mid-episode).
    reserved_tokens: u64,
    /// Prompt tokens of sequences that joined since the last step,
    /// folded into the next step's latency (piggybacked prefill).
    pending_prefill_tokens: u64,
    /// Sequences completed over the episode's lifetime.
    completed: usize,
    /// Episode-scoped slowdown (noise × interference × straggler),
    /// drawn once at episode start so jitter cannot re-order steps.
    slow: f64,
    /// The interference × straggler share of `slow` (noise excluded):
    /// dividing an episode latency by this recovers the
    /// decomposition's pre-interference execution estimate.
    interf: f64,
}

/// Samples one token count: inverse-CDF exponential with the given
/// mean, rounded and clamped to ≥ 1. A single uniform draw per count
/// keeps the per-function stream shard-invariant.
fn sample_token_count<R: Rng + ?Sized>(rng: &mut R, mean: u32) -> u32 {
    let u: f64 = rng.gen_range(0.0..1.0);
    let t = -f64::from(mean) * (1.0 - u).ln();
    (t.round() as u32).max(1)
}

/// Weighted capacity lost to a fault, awaiting replacement launches.
#[derive(Debug, Clone, Copy)]
struct RecapacityProbe {
    since: SimTime,
    remaining: f64,
}

/// Where execution-time noise draws come from.
///
/// `Shared` is one stream for the whole engine — today's baseline
/// behaviour, where the draw order entangles every function. The
/// sharded path needs `PerFunction`: each function draws from its own
/// stream keyed by a shard-invariant label, so a function's noise
/// sequence depends only on its own batch history and a run is
/// bit-identical no matter how functions are partitioned across shards.
#[derive(Debug)]
enum NoiseRng {
    Shared(StdRng),
    PerFunction(Vec<StdRng>),
}

impl Engine {
    /// Builds an engine: cluster from `spec`, given hardware model and
    /// function table; `seed` drives execution-time noise.
    pub fn new(
        platform_name: &str,
        cluster: ClusterSpec,
        hardware: HardwareModel,
        functions: Vec<FunctionInfo>,
        seed: u64,
    ) -> Self {
        let beta = hardware.beta();
        let collector = Collector::new(
            platform_name,
            &functions
                .iter()
                .map(|f| (f.spec().name().to_string(), f.slo()))
                .collect::<Vec<_>>(),
        );
        let n = functions.len();
        let gpus_per_server = cluster.gpus_per_server;
        let gpu_devices = cluster.servers * gpus_per_server;
        Engine {
            hardware,
            cluster: cluster.build(),
            functions,
            slots: Vec::new(),
            live_by_function: vec![Vec::new(); n],
            in_flight_count: 0,
            gpu_busy_pct: vec![0; gpu_devices],
            gpus_per_server,
            straggle: HashMap::new(),
            recapacity: VecDeque::new(),
            next_instance: 0,
            next_request: 0,
            noise: NoiseRng::Shared(infless_sim::rng::stream(
                seed,
                &format!("engine/{platform_name}"),
            )),
            llm_batching: LlmBatching::Static,
            llm_episodes: HashMap::new(),
            token_table: HashMap::new(),
            token_streams: Vec::new(),
            seed,
            interference_snapshot: None,
            device_memory: false,
            recapacity_external: false,
            launch_log: Vec::new(),
            beta,
            collector,
            telemetry: Box::new(NullSink),
            enqueue_at: HashMap::new(),
            decision_seq: vec![0; n],
            decision_inst_seq: vec![0; n],
            decision_inst_ids: HashMap::new(),
            decision_req_seq: vec![0; n],
            decision_req_ids: HashMap::new(),
            host_cache_mb: 0.0,
            metrics: None,
            now: SimTime::ZERO,
        }
    }

    /// Attaches a telemetry sink, announcing the run's identity to it.
    /// Spans and gauge rows flow to the sink from then on; attach
    /// before driving the event loop to capture the whole run.
    pub fn set_telemetry(&mut self, mut sink: Box<dyn TelemetrySink>) {
        sink.begin(&TraceMeta {
            platform: self.collector.platform().to_string(),
            functions: self
                .functions
                .iter()
                .map(|f| f.spec().name().to_string())
                .collect(),
        });
        self.telemetry = sink;
    }

    /// `true` when the attached sink wants decision records. Platforms
    /// gate every [`DecisionEvent`] construction on this, mirroring the
    /// span contract: a decision-less run builds nothing.
    pub fn decisions_enabled(&self) -> bool {
        self.telemetry.decisions_enabled()
    }

    /// Stamps `ev` with the clock and the function's next sequence
    /// number, then forwards it to the sink. Callers gate on
    /// [`Self::decisions_enabled`].
    pub fn record_decision(&mut self, function: usize, mut ev: DecisionEvent) {
        ev.t_s = self.now.as_secs_f64();
        ev.function = function as u32;
        ev.seq = self.next_decision_seq(function);
        self.telemetry
            .record_decision(&DecisionRecord::Decision(ev));
    }

    fn next_decision_seq(&mut self, function: usize) -> u64 {
        let seq = self.decision_seq[function];
        self.decision_seq[function] += 1;
        seq
    }

    /// The shard-invariant launch ordinal assigned to `id` when its
    /// launch decision was recorded, or `-1` if decisions were not
    /// enabled at launch time. Observability-only.
    pub fn decision_instance_ordinal(&self, id: InstanceId) -> i64 {
        self.decision_inst_ids.get(&id.raw()).copied().unwrap_or(-1)
    }

    /// The shard-invariant arrival ordinal assigned to the request with
    /// raw id `raw` when it was minted, or `-1` if decisions were not
    /// enabled at mint time. Observability-only.
    pub fn decision_request_ordinal(&self, raw: u64) -> i64 {
        self.decision_req_ids.get(&raw).copied().unwrap_or(-1)
    }

    /// Emits one per-request latency decomposition on the decisions
    /// channel. Callers gate on [`Self::decisions_enabled`].
    fn emit_breakdown(
        &mut self,
        function: usize,
        request: u64,
        parts: LatencyParts,
        total: SimDuration,
    ) {
        let seq = self.next_decision_seq(function);
        // The trace carries the shard-invariant arrival ordinal, not
        // the engine-local raw id (see `decision_req_ids`).
        let request = self
            .decision_req_ids
            .get(&request)
            .map(|&o| o as u64)
            .unwrap_or(request);
        self.telemetry
            .record_decision(&DecisionRecord::Breakdown(BreakdownEvent {
                t_s: self.now.as_secs_f64(),
                function: function as u32,
                seq,
                request,
                slo_ms: self.functions[function].slo().as_millis_f64(),
                queue_ms: parts.queueing.as_millis_f64(),
                batch_wait_ms: parts.batch_wait.as_millis_f64(),
                startup_ms: parts.startup.as_millis_f64(),
                exec_ms: parts.execution.as_millis_f64(),
                interference_ms: parts.interference.as_millis_f64(),
                total_ms: total.as_millis_f64(),
            }));
    }

    /// Attaches a metrics registry. Gauge families (instances,
    /// occupancy, queue depth, KV residency, host cache) are refreshed
    /// at every telemetry sampling tick; the run layer adds the final
    /// counter families from the report.
    pub fn set_metrics(&mut self, handle: MetricsHandle) {
        self.metrics = Some(handle);
    }

    /// Sets the host-cache occupancy gauge (MB). The residency-tier
    /// platform refreshes this just before sampling telemetry.
    pub fn set_host_cache_mb(&mut self, mb: f64) {
        self.host_cache_mb = mb;
    }

    /// KV-cache bytes currently resident across live autoregressive
    /// episodes. A u64 total over integer token counts, so the value is
    /// independent of episode-map iteration order.
    pub fn kv_resident_bytes(&self) -> u64 {
        let mut total = 0u64;
        for (raw, ep) in &self.llm_episodes {
            let function = self.slots[*raw as usize]
                .as_ref()
                .expect("episode on a live instance")
                .inst
                .function()
                .raw();
            let bpt = self.functions[function]
                .llm()
                .expect("episode on a non-LLM function")
                .kv_bytes_per_token();
            total += ep
                .active
                .iter()
                .map(|s| (u64::from(s.prompt) + u64::from(s.produced)) * bpt)
                .sum::<u64>();
        }
        total
    }

    /// Switches execution-time noise to per-function streams keyed by
    /// `engine/{platform}/fn{index}/{model}` — labels that do not
    /// depend on shard layout, so each function's draw sequence is
    /// identical for every shard count. Call before the first batch
    /// starts (the shared stream's past draws are not replayed).
    pub fn use_per_function_noise(&mut self, seed: u64) {
        let name = self.collector.platform().to_string();
        self.noise = NoiseRng::PerFunction(
            self.functions
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    infless_sim::rng::stream(
                        seed,
                        &format!("engine/{name}/fn{i}/{}", f.spec().name()),
                    )
                })
                .collect(),
        );
    }

    /// Switches MPS interference to snapshot mode: batches read
    /// co-resident SM activity from the last snapshot installed via
    /// [`Self::refresh_interference_snapshot`] instead of the live
    /// per-device books. The sharded path snapshots the cluster-wide
    /// totals at every epoch barrier, so interference stops depending
    /// on which shard a co-resident function landed on.
    pub fn use_interference_snapshot(&mut self) {
        if self.interference_snapshot.is_none() {
            self.interference_snapshot = Some(vec![0; self.gpu_busy_pct.len()]);
        }
    }

    /// Installs a new interference snapshot (cluster-wide active SM
    /// share per physical device, same flat indexing as
    /// [`Self::gpu_busy_totals`]).
    ///
    /// # Panics
    ///
    /// Panics if snapshot mode was never enabled or the slice length
    /// does not match the device count.
    pub fn refresh_interference_snapshot(&mut self, totals: &[u32]) {
        let snap = self
            .interference_snapshot
            .as_mut()
            .expect("refresh_interference_snapshot without use_interference_snapshot");
        assert_eq!(snap.len(), totals.len(), "device count mismatch");
        snap.copy_from_slice(totals);
    }

    /// This engine's live per-device active SM share (the books behind
    /// the MPS interference model), flat-indexed
    /// `server * gpus_per_server + gpu`.
    pub fn gpu_busy_totals(&self) -> &[u32] {
        &self.gpu_busy_pct
    }

    /// Turns on device-memory booking: subsequent GPU launches reserve
    /// the model's weight footprint on the chosen device, so placement
    /// respects per-GPU memory capacity. Leave off (the default) to
    /// allocate exactly like the pre-tier engine.
    pub fn enable_device_memory(&mut self) {
        self.device_memory = true;
    }

    /// The per-device GPU-memory demand a launch of `function` with
    /// `config` books: the model's weights — plus the KV-cache arena
    /// for autoregressive functions — for GPU configs when
    /// device-memory booking is on, zero otherwise.
    pub fn device_demand(&self, function: usize, config: InstanceConfig) -> f64 {
        if self.device_memory && config.resources().gpu_pct() > 0 {
            let f = &self.functions[function];
            f.spec().size_mb() + f.llm().map_or(0.0, |l| l.kv_arena_mb)
        } else {
            0.0
        }
    }

    /// Sets the autoregressive decode-batching discipline (default:
    /// run-to-completion static batching).
    pub fn set_llm_batching(&mut self, batching: LlmBatching) {
        self.llm_batching = batching;
    }

    /// The active autoregressive batching discipline.
    pub fn llm_batching(&self) -> LlmBatching {
        self.llm_batching
    }

    /// A best-case lower bound on re-serving `request` from scratch
    /// when its function is autoregressive: prefill of the full prompt
    /// on the richest grid slice plus the *remaining* decode tokens.
    /// `None` for one-shot functions (the ordinary predictor applies)
    /// or when the request's token entry is gone.
    pub fn llm_retry_estimate(&self, request: &Request) -> Option<SimDuration> {
        let function = request.function.raw();
        let llm = self.functions[function].llm()?;
        let info = self.token_table.get(&request.id.raw())?;
        let best = ResourceConfig::new(1, 100);
        let spec = self.functions[function].spec();
        let prefill = self
            .hardware
            .prefill_latency(spec, u64::from(info.prompt.max(1)), best);
        let remaining = info.output.saturating_sub(info.produced).max(1);
        let step = self.hardware.decode_step_latency(
            spec,
            1,
            f64::from(info.prompt) * llm.kv_mb_per_token,
            best,
        );
        Some(prefill + step.mul_f64(f64::from(remaining - 1)))
    }

    /// Hands capacity-loss probe ownership to an external coordinator:
    /// subsequent launches append `(ready_at, weighted)` to the launch
    /// log (drained via [`Self::take_launch_log`]) instead of crediting
    /// the engine's internal recapacity FIFO, and faults applied here
    /// book no probes.
    pub fn use_external_recapacity(&mut self) {
        self.recapacity_external = true;
    }

    /// Drains the launch log (external recapacity mode).
    pub fn take_launch_log(&mut self) -> Vec<(SimTime, f64)> {
        std::mem::take(&mut self.launch_log)
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock to a popped event's timestamp.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the current instant.
    pub fn advance(&mut self, t: SimTime) {
        assert!(t >= self.now, "time went backwards");
        self.now = t;
    }

    /// The hardware model.
    pub fn hardware(&self) -> &HardwareModel {
        &self.hardware
    }

    /// The CPU↔GPU conversion factor β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The cluster (read access; mutation goes through launch/retire or
    /// [`Self::cluster_mut`] for schedulers that pre-allocate).
    pub fn cluster(&self) -> &ClusterState {
        &self.cluster
    }

    /// Mutable cluster access for schedulers that allocate during their
    /// search (Algorithm 1 does).
    pub fn cluster_mut(&mut self) -> &mut ClusterState {
        &mut self.cluster
    }

    /// The function table.
    pub fn functions(&self) -> &[FunctionInfo] {
        &self.functions
    }

    /// Live instance ids of one function.
    pub fn instances_of(&self, function: usize) -> &[InstanceId] {
        &self.live_by_function[function]
    }

    /// A live instance by id.
    ///
    /// # Panics
    ///
    /// Panics if the instance does not exist (retired or never created).
    pub fn instance(&self, id: InstanceId) -> &Instance {
        &self.slot(id).inst
    }

    /// `true` if the instance is still live.
    pub fn is_live(&self, id: InstanceId) -> bool {
        self.slots
            .get(id.raw() as usize)
            .is_some_and(|s| s.is_some())
    }

    #[inline]
    fn slot(&self, id: InstanceId) -> &Slot {
        self.slots[id.raw() as usize].as_ref().expect(
            "instance retired or killed — callers reachable from stale \
             events must guard with is_live first",
        )
    }

    #[inline]
    fn slot_mut(&mut self, id: InstanceId) -> &mut Slot {
        self.slots[id.raw() as usize].as_mut().expect(
            "instance retired or killed — callers reachable from stale \
             events must guard with is_live first",
        )
    }

    /// Flat index of one physical GPU device in `gpu_busy_pct`.
    #[inline]
    fn device_index(&self, server: ServerId, gpu: usize) -> usize {
        server.raw() * self.gpus_per_server + gpu
    }

    /// Mints a new request for `function` arriving now.
    pub fn mint_request(&mut self, function: usize) -> Request {
        self.mint_request_arrived(function, self.now)
    }

    /// Mints a request whose gateway arrival predates "now" — used by
    /// the BATCH baseline, whose on-top-of-platform buffer adds a
    /// dispatch delay between true arrival and platform delivery.
    ///
    /// # Panics
    ///
    /// Panics if `arrival` lies in the future.
    pub fn mint_request_arrived(&mut self, function: usize, arrival: SimTime) -> Request {
        assert!(arrival <= self.now, "requests cannot arrive in the future");
        let id = RequestId::new(self.next_request);
        self.next_request += 1;
        let request = Request {
            id,
            function: FunctionId::new(function),
            arrival,
        };
        if self.telemetry.decisions_enabled() {
            let ordinal = self.decision_req_seq[function] as i64;
            self.decision_req_seq[function] += 1;
            self.decision_req_ids.insert(id.raw(), ordinal);
        }
        if self.functions[function].llm().is_some() {
            let info = self.mint_tokens(function);
            self.token_table.insert(id.raw(), info);
        }
        if self.telemetry.enabled() {
            // Timestamped at the gateway arrival, which the BATCH
            // baseline backdates relative to "now".
            self.emit(SpanKind::Arrival, arrival, &request, -1, -1, 0);
        }
        request
    }

    /// Samples prompt/output token counts for a new LLM request from
    /// the function's dedicated stream (label `llm/{platform}/fn{i}`).
    /// Shard-invariant: a function is wholly owned by one shard and
    /// draws happen in arrival order.
    fn mint_tokens(&mut self, function: usize) -> TokenInfo {
        let llm = *self.functions[function].llm().expect("LLM function");
        if self.token_streams.len() != self.functions.len() {
            self.token_streams
                .resize_with(self.functions.len(), || None);
        }
        if self.token_streams[function].is_none() {
            let label = format!("llm/{}/fn{function}", self.collector.platform());
            self.token_streams[function] = Some(infless_sim::rng::stream(self.seed, &label));
        }
        let rng = self.token_streams[function].as_mut().expect("just created");
        TokenInfo {
            prompt: sample_token_count(rng, llm.prompt_tokens_mean),
            output: sample_token_count(rng, llm.output_tokens_mean),
            produced: 0,
        }
    }

    /// Builds and records one span (`instance`/`server` are raw ids or
    /// -1). Callers gate on `telemetry.enabled()` so the disabled path
    /// never constructs a [`SpanEvent`].
    fn emit(
        &mut self,
        kind: SpanKind,
        t: SimTime,
        request: &Request,
        instance: i64,
        server: i64,
        batch: u32,
    ) {
        self.telemetry.record(SpanEvent {
            t_s: t.as_secs_f64(),
            kind,
            request: request.id.raw(),
            function: request.function.raw() as u32,
            instance,
            server,
            batch,
            fault: FaultTag::None,
        });
    }

    /// Launches an instance whose resources were already allocated on
    /// the cluster (the Algorithm 1 path). `wait_budget` is the batch
    /// queueing budget (use `SimDuration::MAX` for "no timeout").
    pub fn launch_preallocated(
        &mut self,
        function: usize,
        config: InstanceConfig,
        placement: infless_cluster::Placement,
        startup: StartupKind,
        wait_budget: SimDuration,
        queue: &mut EventQueue<EngineEvent>,
    ) -> InstanceId {
        let delay = self.startup_delay(function, startup);
        let id = InstanceId::new(self.next_instance);
        self.next_instance += 1;
        let ready_at = self.now + delay;
        let inst = Instance::new(
            id,
            FunctionId::new(function),
            config,
            placement,
            self.now,
            ready_at,
        );
        debug_assert_eq!(id.raw() as usize, self.slots.len(), "ids are dense");
        self.slots.push(Some(Slot {
            inst,
            meta: InstanceMeta {
                wait_budget,
                startup,
            },
            in_flight: None,
        }));
        self.live_by_function[function].push(id);
        self.collector.launch(function, config, startup);
        let (w, c, g) = self.weights(config);
        self.collector.usage_delta(function, self.now, w, c, g);
        // Credit outstanding capacity-loss probes: time-to-recapacity
        // measures how long until the platform brings up replacement
        // weighted capacity equal to what a fault destroyed, whichever
        // launches supply it.
        if self.recapacity_external {
            self.launch_log.push((ready_at, w));
        } else if !self.recapacity.is_empty() {
            let mut credit = w;
            while credit > 0.0 {
                let Some(front) = self.recapacity.front_mut() else {
                    break;
                };
                let used = credit.min(front.remaining);
                front.remaining -= used;
                credit -= used;
                if front.remaining <= 1e-9 {
                    let probe = self.recapacity.pop_front().expect("probe exists");
                    self.collector
                        .recapacity_sample(ready_at.saturating_since(probe.since).as_millis_f64());
                }
            }
        }
        if matches!(startup, StartupKind::SwapIn) {
            if self.telemetry.enabled() {
                self.emit_swap(SpanKind::SwapBegin, self.now, function, id, placement);
            }
            if ready_at > self.now {
                queue.schedule(ready_at, EngineEvent::SwapComplete(id));
            }
        } else if ready_at > self.now {
            queue.schedule(ready_at, EngineEvent::InstanceReady(id));
        }
        if self.telemetry.decisions_enabled() {
            let ordinal = self.decision_inst_seq[function] as i64;
            self.decision_inst_seq[function] += 1;
            self.decision_inst_ids.insert(id.raw(), ordinal);
            let mut ev = DecisionEvent::new(DecisionKind::Launch);
            ev.instance = ordinal;
            ev.server = placement.server().raw() as i64;
            ev.batch = config.batch();
            ev.cpu = config.resources().cpu_cores();
            ev.gpu = config.resources().gpu_pct();
            ev.reason = match startup {
                StartupKind::Cold => DecisionReason::ColdBoot,
                StartupKind::PreWarmed => DecisionReason::PreWarmed,
                StartupKind::SwapIn => DecisionReason::SwapIn,
            };
            ev.value = delay.as_secs_f64();
            self.record_decision(function, ev);
        }
        id
    }

    /// Records one instance-scoped swap span. Keyed by a synthetic
    /// request id with the high bit set, so it can never collide with a
    /// real request in per-request trace validation.
    fn emit_swap(
        &mut self,
        kind: SpanKind,
        t: SimTime,
        function: usize,
        id: InstanceId,
        placement: infless_cluster::Placement,
    ) {
        self.telemetry.record(SpanEvent {
            t_s: t.as_secs_f64(),
            kind,
            request: (1u64 << 63) | id.raw(),
            function: function as u32,
            instance: id.raw() as i64,
            server: placement.server().raw() as i64,
            batch: 0,
            fault: FaultTag::None,
        });
    }

    /// Allocates anywhere (first-fit) and launches — the baseline path.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] when no server fits the configuration.
    pub fn launch_anywhere(
        &mut self,
        function: usize,
        config: InstanceConfig,
        startup: StartupKind,
        wait_budget: SimDuration,
        queue: &mut EventQueue<EngineEvent>,
    ) -> Result<InstanceId, PlacementError> {
        let mem = self
            .hardware
            .instance_memory_mb(self.functions[function].spec());
        let device_mb = self.device_demand(function, config);
        let placement =
            self.cluster
                .allocate_anywhere_with_split(config.resources(), mem, device_mb)?;
        Ok(self.launch_preallocated(function, config, placement, startup, wait_budget, queue))
    }

    /// Allocates on a specific server and launches.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] when the server cannot fit the
    /// configuration.
    pub fn launch_on(
        &mut self,
        function: usize,
        server: ServerId,
        config: InstanceConfig,
        startup: StartupKind,
        wait_budget: SimDuration,
        queue: &mut EventQueue<EngineEvent>,
    ) -> Result<InstanceId, PlacementError> {
        let mem = self
            .hardware
            .instance_memory_mb(self.functions[function].spec());
        let device_mb = self.device_demand(function, config);
        let placement =
            self.cluster
                .allocate_on_with_split(server, config.resources(), mem, device_mb)?;
        Ok(self.launch_preallocated(function, config, placement, startup, wait_budget, queue))
    }

    /// Retires an idle instance, releasing its resources.
    ///
    /// # Panics
    ///
    /// Panics if the instance is busy or has queued requests — the
    /// platform must drain before retiring.
    pub fn retire(&mut self, id: InstanceId) {
        let slot = self.slots[id.raw() as usize]
            .take()
            .expect("retire of unknown instance");
        let inst = slot.inst;
        assert!(
            inst.queue_len() == 0
                && !matches!(inst.state(), infless_cluster::InstanceState::Busy { .. }),
            "retired an instance with work pending"
        );
        let function = inst.function().raw();
        self.live_by_function[function].retain(|x| *x != id);
        self.cluster
            .release(inst.config().resources(), inst.placement());
        let (w, c, g) = self.weights(inst.config());
        self.collector.usage_delta(function, self.now, -w, -c, -g);
        self.collector.retire();
    }

    /// Tries to enqueue `request` on `id`; returns `false` (request not
    /// consumed) if the pending batch is already full. On success, may
    /// start a batch and/or schedule a timeout.
    pub fn enqueue(
        &mut self,
        id: InstanceId,
        request: Request,
        queue: &mut EventQueue<EngineEvent>,
    ) -> bool {
        let now = self.now;
        let slot = self.slot_mut(id);
        let budget = slot.meta.wait_budget;
        let inst = &mut slot.inst;
        let was_empty = inst.queue_len() == 0;
        if !inst.enqueue(request, now) {
            return false;
        }
        let server = inst.placement().server().raw() as i64;
        let full = inst.batch_full();
        // Latest enqueue wins: a displaced request re-dispatched by the
        // recovery path attributes the retry delay to queueing.
        self.enqueue_at.insert(request.id.raw(), now);
        if self.telemetry.enabled() {
            self.emit(
                SpanKind::Enqueued,
                now,
                &request,
                id.raw() as i64,
                server,
                0,
            );
        }
        if was_empty && budget < SimDuration::MAX {
            queue.schedule(now + budget, EngineEvent::BatchTimeout(id));
        }
        // LLM functions also try on every enqueue: under continuous
        // batching an idle instance starts immediately (TTFT is the
        // point), and `try_start` itself gates the static discipline.
        if full || self.functions[request.function.raw()].llm().is_some() {
            self.try_start(id, queue);
        }
        true
    }

    /// Handles [`EngineEvent::InstanceReady`].
    pub fn on_instance_ready(&mut self, id: InstanceId, queue: &mut EventQueue<EngineEvent>) {
        if !self.is_live(id) {
            return;
        }
        // Start immediately if a full batch (or an expired partial one)
        // accumulated during the cold start.
        self.try_start(id, queue);
    }

    /// Handles [`EngineEvent::SwapComplete`]: the host→device transfer
    /// finished — record the span and treat the instance as ready.
    pub fn on_swap_complete(&mut self, id: InstanceId, queue: &mut EventQueue<EngineEvent>) {
        if !self.is_live(id) {
            return;
        }
        if self.telemetry.enabled() {
            let slot = self.slot(id);
            let function = slot.inst.function().raw();
            let placement = slot.inst.placement();
            self.emit_swap(SpanKind::SwapComplete, self.now, function, id, placement);
        }
        self.try_start(id, queue);
    }

    /// Handles [`EngineEvent::BatchTimeout`].
    pub fn on_batch_timeout(&mut self, id: InstanceId, queue: &mut EventQueue<EngineEvent>) {
        if !self.is_live(id) {
            return;
        }
        self.try_start(id, queue);
    }

    /// Handles [`EngineEvent::BatchComplete`]: records the latency
    /// breakdown of every request in the finished batch and starts the
    /// next batch if one is waiting. Returns the served function index
    /// and the completed requests (function-chain platforms relay them
    /// to the next stage), or `None` when the instance no longer exists
    /// — a fault can kill an instance at the very timestamp its batch
    /// would have completed, leaving a stale event behind (the
    /// displaced requests were already handed to the recovery path).
    pub fn on_batch_complete(
        &mut self,
        id: InstanceId,
        queue: &mut EventQueue<EngineEvent>,
    ) -> Option<CompletedBatch> {
        if !self.is_live(id) {
            return None;
        }
        let now = self.now;
        let slot = self.slot_mut(id);
        let fl = slot.in_flight.take().expect(
            "BatchComplete on a live instance with no batch in flight — \
             completions are scheduled once per started batch, so this \
             event cannot outnumber starts",
        );
        let inst = &mut slot.inst;
        inst.complete_batch(now, fl.batch.len());
        let function = inst.function().raw();
        let config = inst.config();
        let placement = inst.placement();
        let batch_setting = config.batch();
        let ready_at = inst.ready_at();
        // Swap-ins attribute their (much shorter) startup wait the same
        // way cold boots do; pre-warmed attaches stay invisible.
        let was_cold = !matches!(slot.meta.startup, StartupKind::PreWarmed);
        let budget = slot.meta.wait_budget;
        self.in_flight_count -= 1;
        let (w, _, _) = self.weights(config);
        self.collector.busy_delta(function, self.now, -w);
        if let Some(gpu) = placement.gpu_index() {
            let device = self.device_index(placement.server(), gpu);
            self.gpu_busy_pct[device] -= config.resources().gpu_pct();
        }
        let telemetry_on = self.telemetry.enabled();
        let decisions_on = self.telemetry.decisions_enabled();
        for req in &fl.batch {
            let wait = fl.started - req.arrival;
            let cold = if was_cold && ready_at > req.arrival {
                (ready_at - req.arrival).min(wait)
            } else {
                SimDuration::ZERO
            };
            let enqueue_delay = self
                .enqueue_at
                .remove(&req.id.raw())
                .map(|t| t.saturating_since(req.arrival))
                .unwrap_or(SimDuration::ZERO);
            let parts = LatencyParts::derive(wait, fl.exec, cold, enqueue_delay, fl.exec_base);
            self.collector
                .complete_with_parts(function, wait, fl.exec, cold, batch_setting, parts);
            if decisions_on {
                self.emit_breakdown(function, req.id.raw(), parts, wait + fl.exec);
            }
            if telemetry_on {
                self.emit(
                    SpanKind::Complete,
                    self.now,
                    req,
                    id.raw() as i64,
                    placement.server().raw() as i64,
                    fl.batch.len() as u32,
                );
            }
        }
        // Leftover requests may already form a startable batch.
        self.try_start(id, queue);
        // If a partial batch remains, re-arm its timeout.
        let inst = &self.slot(id).inst;
        if inst.queue_len() > 0 && budget < SimDuration::MAX {
            if let Some(opened) = inst.queue_opened_at() {
                queue.schedule(opened + budget, EngineEvent::BatchTimeout(id));
            }
        }
        Some(CompletedBatch {
            function,
            requests: fl.batch,
        })
    }

    /// Records a dropped request.
    pub fn drop_request(&mut self, request: &Request) {
        self.token_table.remove(&request.id.raw());
        self.enqueue_at.remove(&request.id.raw());
        self.collector.drop_request(request.function.raw());
        if self.telemetry.enabled() {
            self.emit(SpanKind::Dropped, self.now, request, -1, -1, 0);
        }
    }

    /// Records a displaced request shed by the recovery path (deadline
    /// blown or no residual capacity). Counts as a drop for SLO
    /// purposes *and* in the failure section's shed tally.
    pub fn shed_request(&mut self, request: &Request) {
        self.token_table.remove(&request.id.raw());
        self.enqueue_at.remove(&request.id.raw());
        self.collector.shed(request.function.raw());
        if self.telemetry.enabled() {
            self.emit(SpanKind::Shed, self.now, request, -1, -1, 0);
        }
    }

    /// Records a displaced request successfully re-dispatched by the
    /// platform's recovery policy.
    pub fn record_retry(&mut self, request: &Request) {
        self.collector.retried();
        if self.telemetry.enabled() {
            self.emit(SpanKind::Retried, self.now, request, -1, -1, 0);
        }
    }

    /// Handles [`EngineEvent::Fault`]: applies the mechanical effect of
    /// the fault (kills instances, force-releases their allocations,
    /// flips server health, arms straggler slowdowns) and returns the
    /// displaced work for the platform's recovery policy. Events that
    /// no longer apply (crash of an already-down server, kill with no
    /// live instances) are no-ops.
    pub fn on_fault(&mut self, ev: FaultEvent) -> FaultOutcome {
        let mut outcome = FaultOutcome::default();
        let fault_tag = match ev {
            FaultEvent::ServerCrash { .. } => FaultTag::ServerCrash,
            FaultEvent::InstanceKill { .. } => FaultTag::InstanceKill,
            FaultEvent::ColdStartFailure { .. } => FaultTag::ColdStartFailure,
            _ => FaultTag::None,
        };
        match ev {
            FaultEvent::ServerCrash { server } => {
                if self.cluster.health(server) != ServerHealth::Up {
                    return outcome;
                }
                // Victims in deterministic order: function-major, then
                // launch order (live_by_function preserves both).
                let victims: Vec<(usize, InstanceId)> = self
                    .live_by_function
                    .iter()
                    .enumerate()
                    .flat_map(|(f, ids)| {
                        ids.iter()
                            .filter(|id| self.instance(**id).placement().server() == server)
                            .map(move |id| (f, *id))
                    })
                    .collect();
                let mut lost = 0.0;
                for &(f, id) in &victims {
                    lost += self.weighted_cost(self.instance(id).config());
                    let displaced = self.kill_instance(id);
                    outcome.killed.push((f, id));
                    outcome.displaced.extend(displaced);
                }
                self.cluster.set_health(server, ServerHealth::Down);
                self.collector.server_crash();
                if lost > 0.0 && !self.recapacity_external {
                    self.recapacity.push_back(RecapacityProbe {
                        since: self.now,
                        remaining: lost,
                    });
                }
            }
            FaultEvent::ServerRecoveryBegin { server } => {
                if self.cluster.health(server) == ServerHealth::Down {
                    self.cluster.set_health(server, ServerHealth::Recovering);
                }
            }
            FaultEvent::ServerUp { server } => {
                if self.cluster.health(server) == ServerHealth::Recovering {
                    self.cluster.set_health(server, ServerHealth::Up);
                    self.collector.server_recovered();
                }
            }
            FaultEvent::InstanceKill { selector } => {
                let candidates: Vec<(usize, InstanceId)> = self
                    .live_by_function
                    .iter()
                    .enumerate()
                    .flat_map(|(f, ids)| ids.iter().map(move |id| (f, *id)))
                    .collect();
                if candidates.is_empty() {
                    return outcome;
                }
                let (f, id) = candidates[(selector % candidates.len() as u64) as usize];
                self.kill_one(f, id, &mut outcome);
            }
            FaultEvent::ColdStartFailure { selector } => {
                let now = self.now;
                let candidates: Vec<(usize, InstanceId)> = self
                    .live_by_function
                    .iter()
                    .enumerate()
                    .flat_map(|(f, ids)| {
                        ids.iter()
                            .filter(|id| self.instance(**id).is_starting(now))
                            .map(move |id| (f, *id))
                    })
                    .collect();
                if candidates.is_empty() {
                    return outcome;
                }
                let (f, id) = candidates[(selector % candidates.len() as u64) as usize];
                self.kill_one(f, id, &mut outcome);
            }
            FaultEvent::StragglerStart {
                server,
                slowdown_pct,
                duration,
            } => {
                let factor = 1.0 + f64::from(slowdown_pct) / 100.0;
                self.straggle.insert(server, (self.now + duration, factor));
                self.collector.straggler();
            }
        }
        if !outcome.displaced.is_empty() {
            self.collector.displaced(outcome.displaced.len() as u64);
            if self.telemetry.enabled() {
                for req in &outcome.displaced {
                    self.telemetry.record(SpanEvent {
                        t_s: self.now.as_secs_f64(),
                        kind: SpanKind::Displaced,
                        request: req.id.raw(),
                        function: req.function.raw() as u32,
                        instance: -1,
                        server: -1,
                        batch: 0,
                        fault: fault_tag,
                    });
                }
            }
        }
        outcome
    }

    /// Kills a single instance and books a recapacity probe for it.
    fn kill_one(&mut self, function: usize, id: InstanceId, outcome: &mut FaultOutcome) {
        let lost = self.weighted_cost(self.instance(id).config());
        let displaced = self.kill_instance(id);
        outcome.killed.push((function, id));
        outcome.displaced.extend(displaced);
        if lost > 0.0 && !self.recapacity_external {
            self.recapacity.push_back(RecapacityProbe {
                since: self.now,
                remaining: lost,
            });
        }
    }

    /// Applies a coordinator-resolved kill directive
    /// ([`EngineEvent::DirectiveKill`]): kills the instance and returns
    /// its function plus the displaced requests, or `None` if the
    /// victim already died (an earlier directive or crash at the same
    /// timestamp) — directives tolerate stale victims by design.
    ///
    /// Books no recapacity probe (the coordinator that resolved the
    /// victim owns those) but tallies the kill and displacement like
    /// [`Self::on_fault`] does.
    pub fn apply_kill_directive(
        &mut self,
        id: InstanceId,
        tag: FaultTag,
    ) -> Option<(usize, Vec<Request>)> {
        if !self.is_live(id) {
            return None;
        }
        let function = self.instance(id).function().raw();
        let displaced = self.kill_instance(id);
        if !displaced.is_empty() {
            self.collector.displaced(displaced.len() as u64);
            if self.telemetry.enabled() {
                for req in &displaced {
                    self.telemetry.record(SpanEvent {
                        t_s: self.now.as_secs_f64(),
                        kind: SpanKind::Displaced,
                        request: req.id.raw(),
                        function: req.function.raw() as u32,
                        instance: -1,
                        server: -1,
                        batch: 0,
                        fault: tag,
                    });
                }
            }
        }
        Some((function, displaced))
    }

    /// Applies a coordinator-resolved straggler directive
    /// ([`EngineEvent::DirectiveStraggler`]): arms the slowdown on this
    /// shard's view of the server. The episode tally is the
    /// coordinator's (exactly one per injected fault), so none is
    /// booked here.
    pub fn apply_straggler_directive(
        &mut self,
        server: ServerId,
        slowdown_pct: u32,
        duration: SimDuration,
    ) {
        let factor = 1.0 + f64::from(slowdown_pct) / 100.0;
        self.straggle.insert(server, (self.now + duration, factor));
    }

    /// Forcibly removes an instance: unwinds any in-flight batch,
    /// drains the queue, releases the allocation, and returns the
    /// displaced requests (in-flight batch first, then the queue).
    /// The dangling `BatchComplete`/`InstanceReady`/`BatchTimeout`
    /// events become no-ops via the platforms' `is_live` guards.
    fn kill_instance(&mut self, id: InstanceId) -> Vec<Request> {
        let slot = self.slots[id.raw() as usize]
            .take()
            .expect("kill of unknown instance");
        let mut inst = slot.inst;
        let function = inst.function().raw();
        self.live_by_function[function].retain(|x| *x != id);
        let was_starting = inst.is_starting(self.now);
        let config = inst.config();
        let placement = inst.placement();
        let mut displaced = Vec::new();
        if let Some(fl) = slot.in_flight {
            self.in_flight_count -= 1;
            let (w, _, _) = self.weights(config);
            self.collector.busy_delta(function, self.now, -w);
            if let Some(gpu) = placement.gpu_index() {
                let device = self.device_index(placement.server(), gpu);
                self.gpu_busy_pct[device] -= config.resources().gpu_pct();
            }
            displaced.extend(fl.batch);
        }
        if let Some(ep) = self.llm_episodes.remove(&id.raw()) {
            // An autoregressive episode was running: unwind the busy
            // books exactly like an in-flight batch, free the resident
            // KV of every active sequence, and displace them with
            // their decode progress preserved for retry estimates.
            self.in_flight_count -= 1;
            let (w, _, _) = self.weights(config);
            self.collector.busy_delta(function, self.now, -w);
            if let Some(gpu) = placement.gpu_index() {
                let device = self.device_index(placement.server(), gpu);
                self.gpu_busy_pct[device] -= config.resources().gpu_pct();
            }
            let bpt = self.functions[function]
                .llm()
                .expect("episode on a non-LLM function")
                .kv_bytes_per_token();
            for seq in ep.active {
                self.collector
                    .kv_free((u64::from(seq.prompt) + u64::from(seq.produced)) * bpt);
                if let Some(info) = self.token_table.get_mut(&seq.req.id.raw()) {
                    info.produced = seq.produced;
                }
                displaced.push(seq.req);
            }
        }
        displaced.extend(inst.take_queue());
        self.cluster.release(config.resources(), placement);
        let (w, c, g) = self.weights(config);
        self.collector.usage_delta(function, self.now, -w, -c, -g);
        self.collector.instance_killed(was_starting);
        displaced
    }

    /// Weighted resource cost `β·c + g` of a configuration.
    pub fn weighted_cost(&self, config: InstanceConfig) -> f64 {
        self.weights(config).0
    }

    /// Samples the run's gauges (instance counts, occupancy, queue
    /// depth, in-flight batches). Platforms call this from their
    /// periodic tick. The constant-size [`TimeseriesSummary`] in the
    /// collector is always updated; the full [`GaugeRow`] (which
    /// allocates a per-function vector) is built only for an enabled
    /// sink.
    ///
    /// [`TimeseriesSummary`]: infless_telemetry::TimeseriesSummary
    pub fn sample_telemetry(&mut self) {
        let (instances, starting, queue_depth, in_flight_batches) = self.gauge_counts();
        let per_function = self.per_function_live_counts();
        let kv_resident_bytes = self.kv_resident_bytes();
        let host_cache_mb_used = self.host_cache_mb;
        self.record_gauges(
            instances,
            starting,
            queue_depth,
            in_flight_batches,
            kv_resident_bytes,
            host_cache_mb_used,
            per_function,
        );
    }

    /// This shard's raw gauge readings: `(instances, starting,
    /// queue_depth, in_flight_batches)`. The sharded coordinator sums
    /// these across shards before recording.
    pub fn gauge_counts(&self) -> (u64, u64, u64, u64) {
        let now = self.now;
        let mut instances = 0u64;
        let mut starting = 0u64;
        let mut queue_depth = 0u64;
        for slot in self.slots.iter().flatten() {
            instances += 1;
            if slot.inst.is_starting(now) {
                starting += 1;
            }
            queue_depth += slot.inst.queue_len() as u64;
        }
        (
            instances,
            starting,
            queue_depth,
            self.in_flight_count as u64,
        )
    }

    /// Live instance count per function (zeros for functions this
    /// shard does not own).
    pub fn per_function_live_counts(&self) -> Vec<u64> {
        self.live_by_function
            .iter()
            .map(|ids| ids.len() as u64)
            .collect()
    }

    /// Records one tick's (possibly cluster-wide) gauge readings into
    /// this engine's collector and sink. Occupancies come from this
    /// engine's cluster view — in sharded runs every replica agrees at
    /// barrier time, when this is called.
    #[allow(clippy::too_many_arguments)]
    pub fn record_gauges(
        &mut self,
        instances: u64,
        starting: u64,
        queue_depth: u64,
        in_flight_batches: u64,
        kv_resident_bytes: u64,
        host_cache_mb_used: f64,
        per_function_instances: Vec<u64>,
    ) {
        let cpu_cap = self.cluster.cpu_capacity();
        let gpu_cap = self.cluster.gpu_capacity();
        let cpu_occupancy = if cpu_cap == 0 {
            0.0
        } else {
            self.cluster.cpu_in_use() as f64 / cpu_cap as f64
        };
        let gpu_occupancy = if gpu_cap == 0 {
            0.0
        } else {
            self.cluster.gpu_in_use() as f64 / gpu_cap as f64
        };
        self.collector.observe_gauges(
            instances,
            cpu_occupancy,
            gpu_occupancy,
            queue_depth,
            in_flight_batches,
        );
        if let Some(handle) = &self.metrics {
            let mut reg = handle.lock().expect("metrics registry poisoned");
            let labels = [("platform", self.collector.platform())];
            reg.gauge_set(
                "infless_instances",
                "Live instances.",
                &labels,
                instances as f64,
            );
            reg.gauge_set(
                "infless_instances_starting",
                "Instances still cold-starting.",
                &labels,
                starting as f64,
            );
            reg.gauge_set(
                "infless_cpu_occupancy",
                "Allocated CPU cores over capacity.",
                &labels,
                cpu_occupancy,
            );
            reg.gauge_set(
                "infless_gpu_occupancy",
                "Allocated GPU SM share over capacity.",
                &labels,
                gpu_occupancy,
            );
            reg.gauge_set(
                "infless_queue_depth",
                "Requests queued across instances.",
                &labels,
                queue_depth as f64,
            );
            reg.gauge_set(
                "infless_in_flight_batches",
                "Batches currently executing.",
                &labels,
                in_flight_batches as f64,
            );
            reg.gauge_set(
                "infless_kv_resident_bytes",
                "KV-cache bytes resident in live decode episodes.",
                &labels,
                kv_resident_bytes as f64,
            );
            reg.gauge_set(
                "infless_host_cache_mb_used",
                "Host-memory model cache occupancy, MB.",
                &labels,
                host_cache_mb_used,
            );
        }
        if self.telemetry.enabled() {
            self.telemetry.sample(&GaugeRow {
                t_s: self.now.as_secs_f64(),
                instances,
                starting,
                cpu_occupancy,
                gpu_occupancy,
                queue_depth,
                in_flight_batches,
                kv_resident_bytes,
                host_cache_mb_used,
                per_function_instances,
            });
        }
    }

    /// Ends the run: flushes the telemetry sink and freezes metrics at
    /// the current instant.
    pub fn finish(mut self) -> crate::metrics::RunReport {
        self.telemetry.finish();
        self.book_kv_residents();
        self.collector.finish(self.now)
    }

    /// Dismantles the engine without freezing a report: flushes the
    /// telemetry sink and hands back the collector. The sharded runner
    /// uses this to fold worker-shard collectors into the
    /// coordinator's before a single [`Self::finish`]-equivalent
    /// freeze.
    pub fn into_collector(mut self) -> Collector {
        self.telemetry.finish();
        self.book_kv_residents();
        self.collector
    }

    /// Books the KV bytes still resident in live episodes at the
    /// horizon, closing the conservation invariant
    /// `allocated == freed + resident` exactly. Summation over the
    /// (unordered) episode map is a u64 total, so the result does not
    /// depend on iteration order.
    fn book_kv_residents(&mut self) {
        if self.llm_episodes.is_empty() {
            return;
        }
        let total = self.kv_resident_bytes();
        self.collector.kv_resident(total);
    }

    // --- internals -------------------------------------------------------

    fn weights(&self, config: InstanceConfig) -> (f64, f64, f64) {
        let c = f64::from(config.resources().cpu_cores());
        let g = f64::from(config.resources().gpu_pct());
        (self.beta * c + g, c, g)
    }

    /// The startup latency a launch of `function` pays for a given
    /// startup kind — the cost term Algorithm 1 weighs when it can
    /// choose between a swap-in and a boot.
    pub fn startup_delay(&self, function: usize, startup: StartupKind) -> SimDuration {
        match startup {
            StartupKind::Cold => self.hardware.cold_start(self.functions[function].spec()),
            // Image resident: container attach + runtime init only.
            StartupKind::PreWarmed => SimDuration::from_millis(200),
            // Host-cached weights: pipelined PCIe upload.
            StartupKind::SwapIn => self.hardware.swap_in(self.functions[function].spec()),
        }
    }

    /// Starts a batch on `id` if the instance is ready and the batch is
    /// full or past its wait budget. Autoregressive functions divert to
    /// [`Self::try_start_llm`].
    fn try_start(&mut self, id: InstanceId, queue: &mut EventQueue<EngineEvent>) {
        let now = self.now;
        let probe = self.slot(id);
        if !probe.inst.can_execute(now) {
            return;
        }
        let is_llm = self.functions[probe.inst.function().raw()].llm().is_some();
        if is_llm {
            self.try_start_llm(id, queue);
            return;
        }
        let slot = self.slot(id);
        let budget = slot.meta.wait_budget;
        let inst = &slot.inst;
        let deadline_passed = inst
            .queue_opened_at()
            .map(|t| now >= t + budget)
            .unwrap_or(false);
        if !(inst.batch_full() || deadline_passed) {
            return;
        }
        let config = inst.config();
        let function = inst.function().raw();
        let placement = inst.placement();
        let len = (inst.queue_len()).min(config.batch() as usize) as u32;
        debug_assert!(len >= 1);
        let spec = self.functions[function].spec();
        let rng = match &mut self.noise {
            NoiseRng::Shared(rng) => rng,
            NoiseRng::PerFunction(streams) => &mut streams[function],
        };
        let mut exec = self
            .hardware
            .model_latency_noisy(spec, len, config.resources(), rng);
        // Pre-interference estimate: the decomposition's
        // execution/interference boundary.
        let exec_base = exec;
        // MPS interference: co-resident *active* SM share on the same
        // physical device slows this batch down (shared memory
        // bandwidth / L2 behind the SM partitioning). Snapshot mode
        // reads the barrier-time totals instead of the live books.
        if let Some(gpu) = placement.gpu_index() {
            let device = self.device_index(placement.server(), gpu);
            let others = match &self.interference_snapshot {
                Some(snap) => snap[device],
                None => self.gpu_busy_pct[device],
            };
            let k = self.hardware.calibration().mps_interference;
            exec = exec.mul_f64(1.0 + k * f64::from(others) / 100.0);
            self.gpu_busy_pct[device] += config.resources().gpu_pct();
        }
        // Straggler episode: batches started on a straggling server run
        // slower. Guarded on emptiness so fault-free runs never touch
        // the map (zero-cost when disabled).
        if !self.straggle.is_empty() {
            let server = placement.server();
            if let Some(&(until_t, factor)) = self.straggle.get(&server) {
                if now < until_t {
                    exec = exec.mul_f64(factor);
                    self.collector.straggled_batch();
                } else {
                    self.straggle.remove(&server);
                }
            }
        }
        let until = now + exec;
        let batch = self.slot_mut(id).inst.begin_batch(now, until);
        if self.telemetry.enabled() {
            let blen = batch.len() as u32;
            let inst_raw = id.raw() as i64;
            let srv = placement.server().raw() as i64;
            for req in &batch {
                self.emit(SpanKind::BatchFormed, now, req, inst_raw, srv, blen);
            }
            // One exec-start per batch, keyed by its first request.
            let first = batch[0];
            self.emit(SpanKind::ExecStart, now, &first, inst_raw, srv, blen);
        }
        let (w, _, _) = self.weights(config);
        self.collector.busy_delta(function, now, w);
        self.slot_mut(id).in_flight = Some(InFlight {
            started: now,
            exec,
            exec_base,
            batch,
        });
        self.in_flight_count += 1;
        queue.schedule(until, EngineEvent::BatchComplete(id));
    }

    /// Starts an autoregressive episode on `id`: admits queued
    /// sequences under the KV-arena gate, books their prompt KV, and
    /// schedules the prefill's end as the first decode step (the first
    /// token of every admitted sequence lands there).
    fn try_start_llm(&mut self, id: InstanceId, queue: &mut EventQueue<EngineEvent>) {
        let now = self.now;
        let slot = self.slot(id);
        let budget = slot.meta.wait_budget;
        let inst = &slot.inst;
        debug_assert!(inst.can_execute(now));
        let config = inst.config();
        let function = inst.function().raw();
        let placement = inst.placement();
        let llm = *self.functions[function].llm().expect("LLM function");
        // Static batching forms episodes exactly like one-shot batches
        // (full batch or past the wait budget). Continuous admits
        // greedily: TTFT is the point, and later arrivals join the
        // running batch at decode boundaries anyway.
        if self.llm_batching == LlmBatching::Static {
            let deadline_passed = inst
                .queue_opened_at()
                .map(|t| now >= t + budget)
                .unwrap_or(false);
            if !(inst.batch_full() || deadline_passed) {
                return;
            }
        }
        // KV admission: walk the queue in order, reserving
        // `prompt + output` tokens per sequence against the arena. The
        // head sequence is always admitted, so an oversized request
        // cannot wedge the queue forever.
        let cap = llm.arena_capacity_tokens();
        let max_batch = config.batch() as usize;
        let mut reserved = 0u64;
        let mut infos: Vec<TokenInfo> = Vec::new();
        let mut blocked = false;
        let mut blocked_req = -1i64;
        let mut blocked_need = 0u64;
        for req in inst.queued() {
            if infos.len() >= max_batch {
                break;
            }
            let info = self.token_table[&req.id.raw()];
            let need = u64::from(info.prompt) + u64::from(info.output);
            if !infos.is_empty() && reserved + need > cap {
                blocked = true;
                blocked_req = req.id.raw() as i64;
                blocked_need = need;
                break;
            }
            reserved += need;
            infos.push(info);
        }
        if blocked {
            self.collector.llm_cache_full(function);
            if self.telemetry.decisions_enabled() {
                let mut ev = DecisionEvent::new(DecisionKind::CacheFull);
                ev.request = if blocked_req >= 0 {
                    self.decision_request_ordinal(blocked_req as u64)
                } else {
                    -1
                };
                ev.instance = self.decision_instance_ordinal(id);
                ev.server = placement.server().raw() as i64;
                ev.value = blocked_need as f64;
                ev.aux = cap.saturating_sub(reserved) as f64;
                self.record_decision(function, ev);
            }
        }
        debug_assert!(!infos.is_empty());
        let prefill_tokens: u64 = infos.iter().map(|i| u64::from(i.prompt)).sum();
        // Episode-scoped slowdown: one noise draw plus the start-time
        // interference and straggler factors, applied to every phase.
        let rng = match &mut self.noise {
            NoiseRng::Shared(rng) => rng,
            NoiseRng::PerFunction(streams) => &mut streams[function],
        };
        let mut slow = self.hardware.noise_factor(rng);
        let mut interf = 1.0;
        if let Some(gpu) = placement.gpu_index() {
            let device = self.device_index(placement.server(), gpu);
            let others = match &self.interference_snapshot {
                Some(snap) => snap[device],
                None => self.gpu_busy_pct[device],
            };
            let k = self.hardware.calibration().mps_interference;
            interf *= 1.0 + k * f64::from(others) / 100.0;
            self.gpu_busy_pct[device] += config.resources().gpu_pct();
        }
        if !self.straggle.is_empty() {
            let server = placement.server();
            if let Some(&(until_t, factor)) = self.straggle.get(&server) {
                if now < until_t {
                    interf *= factor;
                    self.collector.straggled_batch();
                } else {
                    self.straggle.remove(&server);
                }
            }
        }
        slow *= interf;
        let spec = self.functions[function].spec();
        let prefill = self
            .hardware
            .prefill_latency(spec, prefill_tokens, config.resources())
            .mul_f64(slow);
        let until = now + prefill;
        let n = infos.len();
        let batch = self.slot_mut(id).inst.begin_batch_of(n, now, until);
        debug_assert_eq!(batch.len(), n);
        let bpt = llm.kv_bytes_per_token();
        let telemetry_on = self.telemetry.enabled();
        let decisions_on = self.telemetry.decisions_enabled();
        let mut active = Vec::with_capacity(n);
        for (req, info) in batch.into_iter().zip(infos) {
            self.collector.kv_alloc(u64::from(info.prompt) * bpt);
            if telemetry_on {
                self.emit(
                    SpanKind::PrefillStart,
                    now,
                    &req,
                    id.raw() as i64,
                    placement.server().raw() as i64,
                    n as u32,
                );
            }
            if decisions_on {
                let mut ev = DecisionEvent::new(DecisionKind::Admit);
                ev.request = self.decision_request_ordinal(req.id.raw());
                ev.instance = self.decision_instance_ordinal(id);
                ev.server = placement.server().raw() as i64;
                ev.batch = n as u32;
                ev.value = (u64::from(info.prompt) + u64::from(info.output)) as f64;
                ev.aux = cap.saturating_sub(reserved) as f64;
                self.record_decision(function, ev);
            }
            active.push(LlmSeq {
                req,
                prompt: info.prompt,
                output: info.output,
                produced: 0,
                admitted: now,
                first_token: None,
            });
        }
        let (w, _, _) = self.weights(config);
        self.collector.busy_delta(function, now, w);
        self.in_flight_count += 1;
        self.llm_episodes.insert(
            id.raw(),
            LlmEpisode {
                active,
                reserved_tokens: reserved,
                pending_prefill_tokens: 0,
                completed: 0,
                slow,
                interf,
            },
        );
        queue.schedule(until, EngineEvent::DecodeStep(id));
    }

    /// Handles [`EngineEvent::DecodeStep`]: every active sequence
    /// produces one token (the first one closes the TTFT clock),
    /// completed sequences leave and free their KV, continuous batching
    /// admits queued joiners, and either the next step is scheduled or
    /// the episode ends. Returns the requests that completed at the
    /// episode's final step when the instance goes idle, `None`
    /// otherwise — including for stale events on killed instances.
    pub fn on_decode_step(
        &mut self,
        id: InstanceId,
        queue: &mut EventQueue<EngineEvent>,
    ) -> Option<CompletedBatch> {
        if !self.is_live(id) {
            return None;
        }
        let now = self.now;
        let mut ep = self
            .llm_episodes
            .remove(&id.raw())
            .expect("DecodeStep on a live instance without an episode");
        let (function, config, placement, ready_at, was_cold, budget) = {
            let slot = self.slot(id);
            (
                slot.inst.function().raw(),
                slot.inst.config(),
                slot.inst.placement(),
                slot.inst.ready_at(),
                !matches!(slot.meta.startup, StartupKind::PreWarmed),
                slot.meta.wait_budget,
            )
        };
        let llm = *self.functions[function].llm().expect("LLM function");
        let bpt = llm.kv_bytes_per_token();
        let batch_setting = config.batch();
        let telemetry_on = self.telemetry.enabled();
        let decisions_on = self.telemetry.decisions_enabled();
        let srv = placement.server().raw() as i64;
        let inst_raw = id.raw() as i64;
        let nseq = ep.active.len() as u32;
        // 1. Every active sequence produces one token; first tokens
        //    close the TTFT clock.
        for i in 0..ep.active.len() {
            let seq = &mut ep.active[i];
            seq.produced += 1;
            let first = seq.first_token.is_none();
            if first {
                seq.first_token = Some(now);
            }
            let req = seq.req;
            let arrival = seq.req.arrival;
            self.collector.kv_alloc(bpt);
            if first {
                self.collector
                    .llm_first_token(function, now - arrival, llm.ttft_slo);
                if telemetry_on {
                    self.emit(SpanKind::FirstToken, now, &req, inst_raw, srv, nseq);
                }
            }
        }
        // 2. Completed sequences leave, freeing their KV.
        let mut still_active = Vec::with_capacity(ep.active.len());
        let mut finished = Vec::new();
        for seq in ep.active.drain(..) {
            if seq.produced >= seq.output {
                finished.push(seq);
            } else {
                still_active.push(seq);
            }
        }
        ep.active = still_active;
        let mut completed_now = Vec::with_capacity(finished.len());
        for seq in finished {
            ep.reserved_tokens -= u64::from(seq.prompt) + u64::from(seq.output);
            ep.completed += 1;
            let wait = seq.admitted - seq.req.arrival;
            let exec = now - seq.admitted;
            let cold = if was_cold && ready_at > seq.req.arrival {
                (ready_at - seq.req.arrival).min(wait)
            } else {
                SimDuration::ZERO
            };
            let enqueue_delay = self
                .enqueue_at
                .remove(&seq.req.id.raw())
                .map(|t| t.saturating_since(seq.req.arrival))
                .unwrap_or(SimDuration::ZERO);
            // The episode's interference/straggler multiplier is known,
            // so dividing it out recovers the pre-interference estimate.
            let exec_base = if ep.interf > 1.0 {
                SimDuration::from_secs_f64(exec.as_secs_f64() / ep.interf)
            } else {
                exec
            };
            let parts = LatencyParts::derive(wait, exec, cold, enqueue_delay, exec_base);
            self.collector
                .complete_with_parts(function, wait, exec, cold, batch_setting, parts);
            if decisions_on {
                self.emit_breakdown(function, seq.req.id.raw(), parts, wait + exec);
            }
            let tpot = if seq.output > 1 {
                let first = seq
                    .first_token
                    .expect("completed sequences produced tokens");
                Some(SimDuration::from_secs_f64(
                    (now - first).as_secs_f64() / f64::from(seq.output - 1),
                ))
            } else {
                None
            };
            self.collector
                .llm_complete(function, tpot, llm.tpot_slo, u64::from(seq.produced));
            self.collector
                .kv_free((u64::from(seq.prompt) + u64::from(seq.produced)) * bpt);
            self.token_table.remove(&seq.req.id.raw());
            if telemetry_on {
                self.emit(SpanKind::DecodeComplete, now, &seq.req, inst_raw, srv, nseq);
                self.emit(SpanKind::Complete, now, &seq.req, inst_raw, srv, nseq);
            }
            completed_now.push(seq.req);
        }
        // 3. Continuous batching: queued requests join at the boundary,
        //    their prompt prefill folded into the next step's latency.
        if self.llm_batching == LlmBatching::Continuous && !ep.active.is_empty() {
            let cap = llm.arena_capacity_tokens();
            let max_batch = config.batch() as usize;
            loop {
                if ep.active.len() >= max_batch {
                    break;
                }
                let Some(head) = self.slot(id).inst.queued().next().copied() else {
                    break;
                };
                let info = self.token_table[&head.id.raw()];
                let need = u64::from(info.prompt) + u64::from(info.output);
                if ep.reserved_tokens + need > cap {
                    self.collector.llm_cache_full(function);
                    if decisions_on {
                        let mut ev = DecisionEvent::new(DecisionKind::CacheFull);
                        ev.request = self.decision_request_ordinal(head.id.raw());
                        ev.instance = self.decision_instance_ordinal(id);
                        ev.server = srv;
                        ev.value = need as f64;
                        ev.aux = cap.saturating_sub(ep.reserved_tokens) as f64;
                        self.record_decision(function, ev);
                    }
                    break;
                }
                let joined = self.slot_mut(id).inst.drain_queued(1, now);
                debug_assert_eq!(joined.len(), 1);
                ep.reserved_tokens += need;
                ep.pending_prefill_tokens += u64::from(info.prompt);
                self.collector.kv_alloc(u64::from(info.prompt) * bpt);
                if telemetry_on {
                    self.emit(SpanKind::PrefillStart, now, &head, inst_raw, srv, nseq);
                }
                if decisions_on {
                    let mut ev = DecisionEvent::new(DecisionKind::Admit);
                    ev.request = self.decision_request_ordinal(head.id.raw());
                    ev.instance = self.decision_instance_ordinal(id);
                    ev.server = srv;
                    ev.batch = (ep.active.len() + 1) as u32;
                    ev.value = need as f64;
                    ev.aux = cap.saturating_sub(ep.reserved_tokens) as f64;
                    self.record_decision(function, ev);
                }
                ep.active.push(LlmSeq {
                    req: head,
                    prompt: info.prompt,
                    output: info.output,
                    produced: 0,
                    admitted: now,
                    first_token: None,
                });
            }
        }
        if ep.active.is_empty() {
            // Episode over: the instance goes idle and the one-shot
            // completion plumbing (books, timeout re-arm, next start)
            // takes back over.
            let n = ep.completed;
            self.slot_mut(id).inst.complete_batch(now, n);
            self.in_flight_count -= 1;
            let (w, _, _) = self.weights(config);
            self.collector.busy_delta(function, now, -w);
            if let Some(gpu) = placement.gpu_index() {
                let device = self.device_index(placement.server(), gpu);
                self.gpu_busy_pct[device] -= config.resources().gpu_pct();
            }
            self.try_start(id, queue);
            let inst = &self.slot(id).inst;
            if inst.queue_len() > 0 && budget < SimDuration::MAX {
                if let Some(opened) = inst.queue_opened_at() {
                    queue.schedule(opened + budget, EngineEvent::BatchTimeout(id));
                }
            }
            Some(CompletedBatch {
                function,
                requests: completed_now,
            })
        } else {
            // Next decode step: memory-bound on weights + resident KV,
            // plus the piggybacked prefill of any joiners.
            let resident: u64 = ep
                .active
                .iter()
                .map(|s| u64::from(s.prompt) + u64::from(s.produced))
                .sum();
            let kv_mb = resident as f64 * llm.kv_mb_per_token;
            let spec = self.functions[function].spec();
            let mut step = self.hardware.decode_step_latency(
                spec,
                ep.active.len() as u32,
                kv_mb,
                config.resources(),
            );
            if ep.pending_prefill_tokens > 0 {
                step += self.hardware.prefill_latency(
                    spec,
                    ep.pending_prefill_tokens,
                    config.resources(),
                );
                ep.pending_prefill_tokens = 0;
            }
            let until = now + step.mul_f64(ep.slow);
            self.slot_mut(id).inst.extend_busy(until);
            self.llm_episodes.insert(id.raw(), ep);
            queue.schedule(until, EngineEvent::DecodeStep(id));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infless_models::{ModelId, ResourceConfig};

    fn engine() -> (Engine, EventQueue<EngineEvent>) {
        let functions = vec![FunctionInfo::new(
            ModelId::MobileNet.spec(),
            SimDuration::from_millis(50),
        )];
        (
            Engine::new(
                "test",
                ClusterSpec::testbed(),
                HardwareModel::default(),
                functions,
                1,
            ),
            EventQueue::new(),
        )
    }

    fn cfg() -> InstanceConfig {
        InstanceConfig::new(4, ResourceConfig::new(1, 10))
    }

    /// Drains engine-handled events, returning completed request counts.
    fn drain(engine: &mut Engine, queue: &mut EventQueue<EngineEvent>) {
        while let Some((t, ev)) = queue.pop() {
            engine.advance(t);
            match ev {
                EngineEvent::InstanceReady(id) => engine.on_instance_ready(id, queue),
                EngineEvent::SwapComplete(id) => engine.on_swap_complete(id, queue),
                EngineEvent::BatchTimeout(id) => engine.on_batch_timeout(id, queue),
                EngineEvent::BatchComplete(id) => {
                    // Faults can kill an instance mid-batch; its
                    // completion event is then stale.
                    if engine.is_live(id) {
                        engine.on_batch_complete(id, queue);
                    }
                }
                EngineEvent::DecodeStep(id) => {
                    engine.on_decode_step(id, queue);
                }
                EngineEvent::Fault(f) => {
                    engine.on_fault(f);
                }
                EngineEvent::Arrival(_) | EngineEvent::ScalerTick => {}
                EngineEvent::DirectiveKill(..) | EngineEvent::DirectiveStraggler { .. } => {}
            }
        }
    }

    #[test]
    fn full_batch_executes_immediately() {
        let (mut engine, mut queue) = engine();
        let id = engine
            .launch_anywhere(
                0,
                cfg(),
                StartupKind::PreWarmed,
                SimDuration::from_millis(30),
                &mut queue,
            )
            .unwrap();
        // Let the instance become ready (200ms prewarmed start).
        drain(&mut engine, &mut queue);
        for _ in 0..4 {
            let req = engine.mint_request(0);
            assert!(engine.enqueue(id, req, &mut queue));
        }
        drain(&mut engine, &mut queue);
        let report = engine.finish();
        assert_eq!(report.total_completed(), 4);
        assert_eq!(report.functions[0].per_batch_completed[&4], 4);
    }

    #[test]
    fn partial_batch_waits_for_timeout() {
        let (mut engine, mut queue) = engine();
        let budget = SimDuration::from_millis(30);
        let id = engine
            .launch_anywhere(0, cfg(), StartupKind::PreWarmed, budget, &mut queue)
            .unwrap();
        drain(&mut engine, &mut queue);
        let t0 = engine.now();
        let req = engine.mint_request(0);
        engine.enqueue(id, req, &mut queue);
        drain(&mut engine, &mut queue);
        let report = engine.finish();
        assert_eq!(report.total_completed(), 1);
        // The lone request waited out the full budget before executing.
        let queue_ms = report.functions[0].queue_ms.mean();
        assert!(
            (queue_ms - budget.as_millis_f64()).abs() < 1.0,
            "queue {queue_ms}ms vs budget {budget}"
        );
        let _ = t0;
    }

    #[test]
    fn cold_start_is_attributed_to_requests() {
        let (mut engine, mut queue) = engine();
        let id = engine
            .launch_anywhere(
                0,
                cfg(),
                StartupKind::Cold,
                SimDuration::from_millis(30),
                &mut queue,
            )
            .unwrap();
        // Request arrives while the instance is still starting.
        let req = engine.mint_request(0);
        engine.enqueue(id, req, &mut queue);
        drain(&mut engine, &mut queue);
        let report = engine.finish();
        assert_eq!(report.total_completed(), 1);
        assert_eq!(report.functions[0].cold_requests, 1);
        assert!(
            report.functions[0].cold_ms.mean() > 1000.0,
            "cold start is seconds"
        );
        assert_eq!(report.cold_launches, 1);
    }

    #[test]
    fn overflow_requests_are_rejected() {
        let (mut engine, mut queue) = engine();
        let id = engine
            .launch_anywhere(0, cfg(), StartupKind::Cold, SimDuration::MAX, &mut queue)
            .unwrap();
        // Instance is cold: queue fills to one batch, fifth drops.
        for i in 0..5 {
            let req = engine.mint_request(0);
            let accepted = engine.enqueue(id, req, &mut queue);
            assert_eq!(accepted, i < 4, "request {i}");
            if !accepted {
                engine.drop_request(&req);
            }
        }
        drain(&mut engine, &mut queue);
        let report = engine.finish();
        assert_eq!(report.total_completed(), 4);
        assert_eq!(report.total_dropped(), 1);
    }

    #[test]
    fn retire_releases_resources() {
        let (mut engine, mut queue) = engine();
        let before = engine.cluster().cpu_in_use();
        let id = engine
            .launch_anywhere(
                0,
                cfg(),
                StartupKind::PreWarmed,
                SimDuration::MAX,
                &mut queue,
            )
            .unwrap();
        assert!(engine.cluster().cpu_in_use() > before);
        drain(&mut engine, &mut queue);
        engine.retire(id);
        assert_eq!(engine.cluster().cpu_in_use(), before);
        assert!(!engine.is_live(id));
        let report = engine.finish();
        assert_eq!(report.retirements, 1);
    }

    #[test]
    #[should_panic(expected = "work pending")]
    fn retiring_with_queued_work_panics() {
        let (mut engine, mut queue) = engine();
        let id = engine
            .launch_anywhere(0, cfg(), StartupKind::Cold, SimDuration::MAX, &mut queue)
            .unwrap();
        let req = engine.mint_request(0);
        engine.enqueue(id, req, &mut queue);
        engine.retire(id);
    }

    #[test]
    fn usage_accounting_tracks_lifetime() {
        let (mut engine, mut queue) = engine();
        let id = engine
            .launch_anywhere(
                0,
                cfg(),
                StartupKind::PreWarmed,
                SimDuration::MAX,
                &mut queue,
            )
            .unwrap();
        drain(&mut engine, &mut queue);
        // Hold for 10 virtual seconds, then retire.
        engine.advance(SimTime::from_secs(10));
        engine.retire(id);
        engine.advance(SimTime::from_secs(20));
        let beta = engine.beta();
        let report = engine.finish();
        let expected = (beta * 1.0 + 10.0) * 10.0;
        assert!(
            (report.weighted_resource_seconds - expected).abs() / expected < 0.05,
            "usage {} vs expected {expected}",
            report.weighted_resource_seconds
        );
    }

    #[test]
    fn colocated_gpu_batches_interfere() {
        // Two instances sharing one physical GPU: a batch started while
        // the neighbour executes runs slower than one started alone.
        let functions = vec![FunctionInfo::new(
            ModelId::ResNet50.spec(),
            SimDuration::from_millis(500),
        )];
        let cluster = ClusterSpec {
            servers: 1,
            cores_per_server: 8,
            gpus_per_server: 1,
            mem_per_server_mb: 128.0 * 1024.0,
            gpu_mem_per_device_mb: 0.0,
        };
        let mut engine = Engine::new("t", cluster, HardwareModel::default(), functions, 2);
        let mut queue = EventQueue::new();
        let cfg = InstanceConfig::new(8, ResourceConfig::new(1, 40));
        let a = engine
            .launch_anywhere(0, cfg, StartupKind::PreWarmed, SimDuration::MAX, &mut queue)
            .unwrap();
        let b = engine
            .launch_anywhere(0, cfg, StartupKind::PreWarmed, SimDuration::MAX, &mut queue)
            .unwrap();
        // Let both become ready.
        while let Some((t, ev)) = queue.pop() {
            engine.advance(t);
            if let EngineEvent::InstanceReady(id) = ev {
                engine.on_instance_ready(id, &mut queue);
            }
        }
        // Fill instance A; it starts immediately (solo on the device).
        for _ in 0..8 {
            let req = engine.mint_request(0);
            assert!(engine.enqueue(a, req, &mut queue));
        }
        let (t_a_done, _) = queue.peek_time().map(|t| (t, ())).unwrap();
        let solo_exec = t_a_done - engine.now();
        // Fill instance B while A executes: B starts co-located.
        for _ in 0..8 {
            let req = engine.mint_request(0);
            assert!(engine.enqueue(b, req, &mut queue));
        }
        // Find B's completion event time.
        let start = engine.now();
        let mut done = Vec::new();
        while let Some((t, ev)) = queue.pop() {
            engine.advance(t);
            if let EngineEvent::BatchComplete(id) = ev {
                engine.on_batch_complete(id, &mut queue);
                done.push((id, t));
            }
        }
        let b_done = done.iter().find(|(id, _)| *id == b).unwrap().1;
        let colocated_exec = b_done - start;
        assert!(
            colocated_exec.as_secs_f64() > solo_exec.as_secs_f64() * 1.02,
            "co-located batch should run slower: solo {solo_exec} vs {colocated_exec}"
        );
        // And the device book-keeping drains back to zero.
        let req = engine.mint_request(0);
        assert!(engine.enqueue(a, req, &mut queue));
    }

    #[test]
    fn instance_kill_displaces_work_and_releases_resources() {
        let (mut engine, mut queue) = engine();
        let before = engine.cluster().cpu_in_use();
        let id = engine
            .launch_anywhere(
                0,
                cfg(),
                StartupKind::PreWarmed,
                SimDuration::from_millis(30),
                &mut queue,
            )
            .unwrap();
        drain(&mut engine, &mut queue);
        // Two queued requests (partial batch, timeout pending).
        let r1 = engine.mint_request(0);
        let r2 = engine.mint_request(0);
        assert!(engine.enqueue(id, r1, &mut queue));
        assert!(engine.enqueue(id, r2, &mut queue));
        let outcome = engine.on_fault(FaultEvent::InstanceKill { selector: 7 });
        assert_eq!(outcome.killed, vec![(0, id)]);
        assert_eq!(outcome.displaced, vec![r1, r2]);
        assert!(!engine.is_live(id));
        assert_eq!(engine.cluster().cpu_in_use(), before);
        // The pending BatchTimeout for the dead instance is a no-op.
        drain(&mut engine, &mut queue);
        let report = engine.finish();
        assert_eq!(report.failures.instances_killed, 1);
        assert_eq!(report.failures.requests_displaced, 2);
        assert_eq!(report.total_completed(), 0);
    }

    #[test]
    fn kill_unwinds_in_flight_batch_and_gpu_books() {
        let (mut engine, mut queue) = engine();
        let id = engine
            .launch_anywhere(
                0,
                cfg(),
                StartupKind::PreWarmed,
                SimDuration::MAX,
                &mut queue,
            )
            .unwrap();
        drain(&mut engine, &mut queue);
        for _ in 0..4 {
            let req = engine.mint_request(0);
            assert!(engine.enqueue(id, req, &mut queue));
        }
        // The full batch started executing; kill mid-flight.
        let outcome = engine.on_fault(FaultEvent::InstanceKill { selector: 0 });
        assert_eq!(outcome.displaced.len(), 4);
        // Relaunch on the same device: the busy books were unwound, so
        // a fresh batch sees no phantom interference and can start.
        let id2 = engine
            .launch_anywhere(
                0,
                cfg(),
                StartupKind::PreWarmed,
                SimDuration::MAX,
                &mut queue,
            )
            .unwrap();
        drain(&mut engine, &mut queue);
        for _ in 0..4 {
            let req = engine.mint_request(0);
            assert!(engine.enqueue(id2, req, &mut queue));
        }
        drain(&mut engine, &mut queue);
        let report = engine.finish();
        assert_eq!(report.total_completed(), 4);
        assert_eq!(report.failures.instances_killed, 1);
    }

    /// Satellite 2 regression: a fault can kill an instance at the
    /// exact timestamp its batch completion (or ready/timeout event)
    /// is pending. The stale events must be no-ops, not panics.
    #[test]
    fn same_timestamp_kill_then_stale_events_do_not_panic() {
        let (mut engine, mut queue) = engine();
        let id = engine
            .launch_anywhere(
                0,
                cfg(),
                StartupKind::PreWarmed,
                SimDuration::MAX,
                &mut queue,
            )
            .unwrap();
        drain(&mut engine, &mut queue);
        for _ in 0..4 {
            let req = engine.mint_request(0);
            assert!(engine.enqueue(id, req, &mut queue));
        }
        // The batch is in flight with a BatchComplete pending. Advance
        // to that very timestamp, then deliver the fault first.
        let t_done = queue.peek_time().unwrap();
        engine.advance(t_done);
        let outcome = engine.on_fault(FaultEvent::InstanceKill { selector: 0 });
        assert_eq!(outcome.displaced.len(), 4);
        // The stale completion (same timestamp) resolves to None.
        let (t, ev) = queue.pop().unwrap();
        assert_eq!(t, t_done);
        assert!(matches!(ev, EngineEvent::BatchComplete(i) if i == id));
        assert!(engine.on_batch_complete(id, &mut queue).is_none());
        // Stale ready/timeout events are equally harmless.
        engine.on_instance_ready(id, &mut queue);
        engine.on_batch_timeout(id, &mut queue);
        let report = engine.finish();
        assert_eq!(report.total_completed(), 0);
        assert_eq!(report.failures.requests_displaced, 4);
    }

    /// Coordinator-resolved kill directives displace work like
    /// `on_fault` kills, and tolerate victims that already died.
    #[test]
    fn kill_directive_displaces_and_tolerates_dead_victims() {
        let (mut engine, mut queue) = engine();
        let id = engine
            .launch_anywhere(
                0,
                cfg(),
                StartupKind::PreWarmed,
                SimDuration::from_millis(30),
                &mut queue,
            )
            .unwrap();
        drain(&mut engine, &mut queue);
        let r1 = engine.mint_request(0);
        assert!(engine.enqueue(id, r1, &mut queue));
        let (function, displaced) = engine
            .apply_kill_directive(id, infless_telemetry::FaultTag::InstanceKill)
            .expect("victim is live");
        assert_eq!(function, 0);
        assert_eq!(displaced, vec![r1]);
        assert!(!engine.is_live(id));
        // Double delivery (e.g. crash + kill at the same timestamp).
        assert!(engine
            .apply_kill_directive(id, infless_telemetry::FaultTag::InstanceKill)
            .is_none());
        let report = engine.finish();
        assert_eq!(report.failures.instances_killed, 1);
        assert_eq!(report.failures.requests_displaced, 1);
    }

    #[test]
    fn server_crash_kills_residents_and_gates_placement() {
        let (mut engine, mut queue) = engine();
        let id = engine
            .launch_anywhere(
                0,
                cfg(),
                StartupKind::PreWarmed,
                SimDuration::MAX,
                &mut queue,
            )
            .unwrap();
        drain(&mut engine, &mut queue);
        let server = engine.instance(id).placement().server();
        let outcome = engine.on_fault(FaultEvent::ServerCrash { server });
        assert_eq!(outcome.killed.len(), 1);
        assert!(!engine.is_live(id));
        assert_eq!(engine.cluster().health(server), ServerHealth::Down);
        // Crashing an already-down server is a no-op.
        let again = engine.on_fault(FaultEvent::ServerCrash { server });
        assert!(again.killed.is_empty());
        engine.on_fault(FaultEvent::ServerRecoveryBegin { server });
        assert_eq!(engine.cluster().health(server), ServerHealth::Recovering);
        engine.on_fault(FaultEvent::ServerUp { server });
        assert_eq!(engine.cluster().health(server), ServerHealth::Up);
        let report = engine.finish();
        assert_eq!(report.failures.server_crashes, 1);
        assert_eq!(report.failures.server_recoveries, 1);
    }

    #[test]
    fn recapacity_clock_stops_when_replacement_is_ready() {
        let (mut engine, mut queue) = engine();
        let id = engine
            .launch_anywhere(
                0,
                cfg(),
                StartupKind::PreWarmed,
                SimDuration::MAX,
                &mut queue,
            )
            .unwrap();
        drain(&mut engine, &mut queue);
        let t_kill = engine.now();
        engine.on_fault(FaultEvent::InstanceKill { selector: 0 });
        let _ = id;
        // Replacement with the same config: the probe is fully credited
        // at its ready time (prewarmed start = 200 ms).
        engine
            .launch_anywhere(
                0,
                cfg(),
                StartupKind::PreWarmed,
                SimDuration::MAX,
                &mut queue,
            )
            .unwrap();
        let report = engine.finish();
        let mean = report.failures.mean_time_to_recapacity_ms().unwrap();
        let _ = t_kill;
        assert!(
            (mean - 200.0).abs() < 1.0,
            "recapacity should equal the prewarmed startup delay, got {mean}ms"
        );
    }

    /// Tentpole: a swap-in launch is far cheaper than a boot, rides its
    /// own `SwapComplete` event, and attributes its startup wait to the
    /// requests that queued behind it.
    #[test]
    fn swap_in_is_faster_than_boot_and_attributed() {
        let (mut engine, mut queue) = engine();
        let swap = engine.startup_delay(0, StartupKind::SwapIn);
        let cold = engine.startup_delay(0, StartupKind::Cold);
        let warm = engine.startup_delay(0, StartupKind::PreWarmed);
        assert!(warm < swap && swap < cold, "{warm} < {swap} < {cold}");
        let id = engine
            .launch_anywhere(
                0,
                cfg(),
                StartupKind::SwapIn,
                SimDuration::from_millis(30),
                &mut queue,
            )
            .unwrap();
        // Request arrives while the model is still swapping in.
        let req = engine.mint_request(0);
        engine.enqueue(id, req, &mut queue);
        drain(&mut engine, &mut queue);
        let report = engine.finish();
        assert_eq!(report.total_completed(), 1);
        assert_eq!(report.swap_launches, 1);
        assert_eq!(report.cold_launches, 0);
        assert_eq!(report.functions[0].cold_requests, 1);
        let cold_ms = report.functions[0].cold_ms.mean();
        assert!(
            (200.0..1000.0).contains(&cold_ms),
            "swap wait is sub-second, got {cold_ms}ms"
        );
    }

    /// Swap-based recovery re-arms capacity faster than boot-based
    /// recovery — the mean time-to-recapacity mechanism `fig_swap`
    /// pins at the bench level.
    #[test]
    fn swap_recovery_beats_boot_on_recapacity() {
        let run = |kind: StartupKind| {
            let (mut engine, mut queue) = engine();
            engine
                .launch_anywhere(
                    0,
                    cfg(),
                    StartupKind::PreWarmed,
                    SimDuration::MAX,
                    &mut queue,
                )
                .unwrap();
            drain(&mut engine, &mut queue);
            engine.on_fault(FaultEvent::InstanceKill { selector: 0 });
            engine
                .launch_anywhere(0, cfg(), kind, SimDuration::MAX, &mut queue)
                .unwrap();
            engine
                .finish()
                .failures
                .mean_time_to_recapacity_ms()
                .unwrap()
        };
        let boot = run(StartupKind::Cold);
        let swap = run(StartupKind::SwapIn);
        assert!(
            swap < boot / 2.0,
            "swap recovery {swap}ms should crush boot recovery {boot}ms"
        );
    }

    #[test]
    fn straggler_slows_batches_only_during_episode() {
        let (mut engine, mut queue) = engine();
        let id = engine
            .launch_anywhere(
                0,
                cfg(),
                StartupKind::PreWarmed,
                SimDuration::MAX,
                &mut queue,
            )
            .unwrap();
        drain(&mut engine, &mut queue);
        let server = engine.instance(id).placement().server();
        // Baseline batch.
        for _ in 0..4 {
            let req = engine.mint_request(0);
            assert!(engine.enqueue(id, req, &mut queue));
        }
        let t0 = engine.now();
        let (done, _) = queue.pop().unwrap();
        engine.advance(done);
        engine.on_batch_complete(id, &mut queue);
        let base = done - t0;
        // Straggling batch: 100% slowdown doubles execution.
        engine.on_fault(FaultEvent::StragglerStart {
            server,
            slowdown_pct: 100,
            duration: SimDuration::from_secs(3600),
        });
        for _ in 0..4 {
            let req = engine.mint_request(0);
            assert!(engine.enqueue(id, req, &mut queue));
        }
        let t1 = engine.now();
        let (done, _) = queue.pop().unwrap();
        engine.advance(done);
        engine.on_batch_complete(id, &mut queue);
        let slow = done - t1;
        // Execution noise is a few percent; a 2x factor dominates it.
        assert!(
            slow.as_secs_f64() > base.as_secs_f64() * 1.5,
            "straggled batch {slow} should be ~2x baseline {base}"
        );
        let report = engine.finish();
        assert_eq!(report.failures.stragglers, 1);
        assert_eq!(report.failures.straggled_batches, 1);
    }

    #[test]
    fn next_batch_starts_after_completion() {
        let (mut engine, mut queue) = engine();
        let id = engine
            .launch_anywhere(
                0,
                cfg(),
                StartupKind::PreWarmed,
                SimDuration::from_millis(5),
                &mut queue,
            )
            .unwrap();
        drain(&mut engine, &mut queue);
        // Two full batches' worth of requests: 4 execute, 4 queue behind.
        for _ in 0..8 {
            let req = engine.mint_request(0);
            assert!(engine.enqueue(id, req, &mut queue));
        }
        drain(&mut engine, &mut queue);
        let report = engine.finish();
        assert_eq!(report.total_completed(), 8);
        assert_eq!(report.functions[0].per_batch_completed[&4], 8);
    }

    // --- autoregressive (LLM) episodes -------------------------------

    use infless_llm::{LlmBatching, LlmClass};

    fn llm_engine(class: LlmClass, batching: LlmBatching) -> (Engine, EventQueue<EngineEvent>) {
        let functions = vec![
            FunctionInfo::new(ModelId::BertV1.spec(), SimDuration::from_secs(30)).with_llm(class),
        ];
        let mut engine = Engine::new(
            "test",
            ClusterSpec::testbed(),
            HardwareModel::default(),
            functions,
            1,
        );
        engine.set_llm_batching(batching);
        (engine, EventQueue::new())
    }

    fn gpu_cfg() -> InstanceConfig {
        InstanceConfig::new(4, ResourceConfig::new(1, 50))
    }

    #[test]
    fn llm_episode_records_ttft_tpot_and_conserves_kv() {
        let (mut engine, mut queue) = llm_engine(LlmClass::chat(), LlmBatching::Static);
        let id = engine
            .launch_anywhere(
                0,
                gpu_cfg(),
                StartupKind::PreWarmed,
                SimDuration::from_millis(30),
                &mut queue,
            )
            .unwrap();
        drain(&mut engine, &mut queue);
        for _ in 0..4 {
            let req = engine.mint_request(0);
            assert!(engine.enqueue(id, req, &mut queue));
        }
        drain(&mut engine, &mut queue);
        let report = engine.finish();
        assert_eq!(report.total_completed(), 4);
        let llm = report.functions[0].llm.as_ref().expect("LLM stats");
        assert_eq!(llm.ttft_ms.count(), 4, "one first token per sequence");
        assert!(llm.tpot_ms.count() >= 1, "multi-token outputs record TPOT");
        assert!(llm.decoded_tokens >= 4, "every sequence decoded tokens");
        assert!(llm.ttft_ms.mean() > 0.0);
        // Every byte of KV allocated over the run was freed: no
        // sequence is live at the horizon.
        assert!(report.kv_allocated_bytes > 0);
        assert_eq!(report.kv_resident_bytes, 0);
        assert_eq!(report.kv_allocated_bytes, report.kv_freed_bytes);
    }

    #[test]
    fn continuous_joiner_merges_into_running_episode() {
        let (mut engine, mut queue) = llm_engine(LlmClass::chat(), LlmBatching::Continuous);
        let id = engine
            .launch_anywhere(
                0,
                gpu_cfg(),
                StartupKind::PreWarmed,
                SimDuration::MAX,
                &mut queue,
            )
            .unwrap();
        drain(&mut engine, &mut queue);
        // First request starts an episode immediately (continuous mode
        // does not wait for a full batch)...
        let r1 = engine.mint_request(0);
        assert!(engine.enqueue(id, r1, &mut queue));
        // ...and a second arrival while the episode runs is admitted at
        // a decode boundary instead of waiting for the instance to
        // drain — with a MAX wait budget, a static second batch would
        // never form, so completion of both proves the merge.
        let r2 = engine.mint_request(0);
        assert!(engine.enqueue(id, r2, &mut queue));
        drain(&mut engine, &mut queue);
        let report = engine.finish();
        assert_eq!(report.total_completed(), 2);
        let llm = report.functions[0].llm.as_ref().expect("LLM stats");
        assert_eq!(llm.ttft_ms.count(), 2);
        // Both sequences retired under the instance's batch setting.
        assert_eq!(report.functions[0].per_batch_completed[&4], 2);
        assert_eq!(report.kv_resident_bytes, 0);
        assert_eq!(report.kv_allocated_bytes, report.kv_freed_bytes);
    }

    #[test]
    fn static_mode_waits_for_full_batch() {
        // The same two-request arrival under static batching leaves
        // the partial batch queued forever on a MAX budget: run-to-
        // completion never starts a batch early.
        let (mut engine, mut queue) = llm_engine(LlmClass::chat(), LlmBatching::Static);
        let id = engine
            .launch_anywhere(
                0,
                gpu_cfg(),
                StartupKind::PreWarmed,
                SimDuration::MAX,
                &mut queue,
            )
            .unwrap();
        drain(&mut engine, &mut queue);
        let r1 = engine.mint_request(0);
        assert!(engine.enqueue(id, r1, &mut queue));
        let r2 = engine.mint_request(0);
        assert!(engine.enqueue(id, r2, &mut queue));
        drain(&mut engine, &mut queue);
        let report = engine.finish();
        assert_eq!(report.total_completed(), 0);
    }

    #[test]
    fn kv_full_arena_blocks_admission_and_is_counted() {
        // An arena sized for roughly one mean sequence cannot admit a
        // 4-deep batch at once: admission must stop at the headroom
        // wall and count the blocked attempts, while the head sequence
        // is always admitted so the queue cannot wedge.
        let mut class = LlmClass::chat();
        class.kv_arena_mb = 32.0; // 640 tokens; a mean chat seq is ~320
        let (mut engine, mut queue) = llm_engine(class, LlmBatching::Static);
        let id = engine
            .launch_anywhere(
                0,
                gpu_cfg(),
                StartupKind::PreWarmed,
                SimDuration::from_millis(30),
                &mut queue,
            )
            .unwrap();
        drain(&mut engine, &mut queue);
        for _ in 0..4 {
            let req = engine.mint_request(0);
            assert!(engine.enqueue(id, req, &mut queue));
        }
        drain(&mut engine, &mut queue);
        let report = engine.finish();
        // Everybody completes eventually (across several episodes)...
        assert_eq!(report.total_completed(), 4);
        let llm = report.functions[0].llm.as_ref().expect("LLM stats");
        // ...but the arena wall was hit on the way.
        assert!(llm.cache_full_events >= 1, "tiny arena must block");
        assert_eq!(report.kv_resident_bytes, 0);
        assert_eq!(report.kv_allocated_bytes, report.kv_freed_bytes);
    }

    #[test]
    fn kill_mid_episode_frees_kv_and_displaces_sequences() {
        let (mut engine, mut queue) = llm_engine(LlmClass::chat(), LlmBatching::Static);
        let id = engine
            .launch_anywhere(
                0,
                gpu_cfg(),
                StartupKind::PreWarmed,
                SimDuration::MAX,
                &mut queue,
            )
            .unwrap();
        drain(&mut engine, &mut queue);
        for _ in 0..4 {
            let req = engine.mint_request(0);
            assert!(engine.enqueue(id, req, &mut queue));
        }
        // The full batch prefilled and is mid-decode; kill the instance.
        let outcome = engine.on_fault(FaultEvent::InstanceKill { selector: 0 });
        assert_eq!(outcome.killed.len(), 1);
        assert_eq!(outcome.displaced.len(), 4, "active sequences displace");
        assert!(!engine.is_live(id));
        // Displaced requests keep a token entry so the recovery path
        // can cost their remaining work.
        for req in &outcome.displaced {
            assert!(
                engine.llm_retry_estimate(req).is_some(),
                "retry estimate must survive the kill"
            );
        }
        drain(&mut engine, &mut queue);
        let report = engine.finish();
        assert_eq!(report.total_completed(), 0);
        assert_eq!(report.failures.requests_displaced, 4);
        // The kill freed every byte the prefill had pinned.
        assert!(report.kv_allocated_bytes > 0);
        assert_eq!(report.kv_resident_bytes, 0);
        assert_eq!(report.kv_allocated_bytes, report.kv_freed_bytes);
    }
}
