//! The INFless contribution: a native serverless inference platform.
//!
//! This crate implements everything inside the dashed box of the paper's
//! Fig. 4, running against the simulated substrates of the sibling
//! crates:
//!
//! * [`batching`] — built-in, non-uniform batching (§3.2): the
//!   per-instance feasible arrival-rate window of Eq. 1 and the
//!   three-case dispatch-rate controller with hysteresis constant `α`.
//! * [`predictor`] — Combined Operator Profiling (§3.3): predicts batch
//!   execution time for any `⟨b, c, g⟩` by combining per-operator
//!   profiles along the model DAG, inflated by a safety offset.
//! * [`scheduler`] — Algorithm 1 (§3.4): the greedy largest-batch-first
//!   search with the resource-efficiency placement metric of Eq. 10.
//! * [`router`] — the indexed deficit router: the allocation-free
//!   O(log n) request hot path shared by INFless (credit routing) and
//!   the baselines (least-loaded routing).
//! * [`coldstart`] — the Long-Short Term Histogram policy (§3.5) plus
//!   the hybrid-histogram (HHP) and fixed-window baselines it is
//!   evaluated against.
//! * [`engine`] / [`metrics`] — the shared platform mechanics (instance
//!   lifecycle, batch queues, request accounting) used by INFless *and*
//!   by the baseline platforms in `infless-baselines`, so every system
//!   is compared on identical machinery.
//! * [`platform`] — [`InflessPlatform`]: the full event loop tying the
//!   pieces together (batch-aware dispatcher, auto-scaling engine,
//!   cold-start manager).
//! * [`apps`] — the two evaluation applications of §5.1: online
//!   second-hand vehicle trading (OSVT, SLO 200 ms) and the Q&A robot
//!   (SLO 50 ms).
//!
//! # Example
//!
//! ```
//! use infless_core::apps::Application;
//! use infless_core::platform::{InflessConfig, InflessPlatform};
//! use infless_cluster::ClusterSpec;
//! use infless_sim::SimDuration;
//! use infless_workload::{FunctionLoad, Workload};
//!
//! let app = Application::qa_robot();
//! let loads: Vec<FunctionLoad> = app
//!     .functions()
//!     .iter()
//!     .map(|_| FunctionLoad::constant(30.0, SimDuration::from_secs(20)))
//!     .collect();
//! let workload = Workload::build(&loads, 7);
//!
//! let mut platform = InflessPlatform::new(
//!     ClusterSpec::testbed(),
//!     app.functions().to_vec(),
//!     InflessConfig::default(),
//!     7,
//! );
//! let report = platform.run(&workload);
//! assert!(report.total_completed() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod batching;
pub mod chains;
pub mod coldstart;
pub mod engine;
pub mod metrics;
pub mod platform;
pub mod predictor;
pub mod residency;
pub mod router;
pub mod runconfig;
pub mod scheduler;
pub mod sharded;

pub use batching::RpsWindow;
pub use chains::{ChainReport, ChainSpec, ChainSplit};
pub use coldstart::{ColdStartPolicy, FixedKeepAlive, HybridHistogram, Lsth, Windows};
pub use engine::{Engine, EngineEvent, FunctionInfo};
pub use metrics::{
    BreakdownHists, FunctionReport, LatencyParts, LlmFunctionStats, RunReport, StartupKind,
};
pub use platform::{InflessConfig, InflessPlatform};
pub use predictor::CopPredictor;
pub use residency::ResidencyConfig;
pub use router::{DeficitRouter, LeastLoadedScratch, RouterEntry};
pub use runconfig::{RunConfig, RunConfigError};
pub use scheduler::{PlacementStrategy, ScheduledInstance, Scheduler, SchedulerConfig};
pub use sharded::ShardedInfless;
