//! Run-level measurement: everything the paper's figures need.
//!
//! A [`Collector`] records events while a platform runs; calling
//! [`Collector::finish`] freezes it into a [`RunReport`] with the
//! derived metrics (SLO violation rate, throughput per unit of
//! resource, cold-start rate, fragment statistics, …).

use std::collections::HashMap;
use std::time::Instant;

use infless_cluster::InstanceConfig;
use infless_models::CacheOutcome;
use infless_sim::stats::{Samples, TimeWeighted, Welford};
use infless_sim::{SimDuration, SimTime};
use infless_telemetry::{Log2Histogram, TimeseriesSummary};
use serde::{Deserialize, Serialize};

/// How an instance came up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StartupKind {
    /// Full cold start: container boot + model load.
    Cold,
    /// The image was pre-warmed (or already resident): fast attach.
    PreWarmed,
    /// The model was host-cached and swapped onto a GPU (Torpor-style
    /// pipelined upload): much faster than a boot, slower than attach.
    SwapIn,
}

/// Token-level results of one autoregressive function (PR 8). Present
/// only on functions that declared an LLM class; `None` keeps one-shot
/// functions (and pre-LLM reports) untouched.
#[derive(Debug, Clone, Default)]
pub struct LlmFunctionStats {
    /// Time-to-first-token of every admitted sequence, milliseconds
    /// (arrival → end of its prefill).
    pub ttft_ms: Log2Histogram,
    /// Mean time-per-output-token of completed sequences with more
    /// than one output token, milliseconds.
    pub tpot_ms: Log2Histogram,
    /// Sequences whose TTFT exceeded the class's `ttft_slo`.
    pub ttft_violations: u64,
    /// Completed sequences whose mean TPOT exceeded `tpot_slo`.
    pub tpot_violations: u64,
    /// Admission attempts blocked by a full KV arena (the request
    /// stayed queued or was shed by the platform's policy).
    pub cache_full_events: u64,
    /// Output tokens decoded by completed sequences.
    pub decoded_tokens: u64,
}

/// The five-way SLO latency decomposition of one completed request.
/// The components partition the end-to-end latency exactly:
/// `queueing + batch_wait + startup + execution + interference` equals
/// the latency the report records for the request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyParts {
    /// Arrival → final instance enqueue (gateway dispatch delay,
    /// pending backlog, fault-retry delay).
    pub queueing: SimDuration,
    /// Enqueue → batch start, net of the startup overlap: waiting for
    /// the batch to fill or time out.
    pub batch_wait: SimDuration,
    /// Cold-start / swap-in time the request observed.
    pub startup: SimDuration,
    /// Execution at the profiled (noise-adjusted) speed.
    pub execution: SimDuration,
    /// Execution stretch from MPS co-residence and stragglers.
    pub interference: SimDuration,
}

impl LatencyParts {
    /// Partitions a request's `wait`/`exec` phases by clamped cascade:
    /// `enqueue_delay` (final enqueue − arrival) is credited to
    /// queueing, the startup overlap to startup, and the remainder of
    /// the wait to batch-wait; `exec_base` (the pre-interference
    /// execution estimate) splits the exec phase into execution and
    /// interference. Each component is clamped so the five always sum
    /// to exactly `wait + exec` whatever the inputs.
    pub fn derive(
        wait: SimDuration,
        exec: SimDuration,
        cold: SimDuration,
        enqueue_delay: SimDuration,
        exec_base: SimDuration,
    ) -> LatencyParts {
        let queueing = enqueue_delay.min(wait);
        let startup = cold.min(wait - queueing);
        let batch_wait = wait - queueing - startup;
        let execution = exec_base.min(exec);
        let interference = exec - execution;
        LatencyParts {
            queueing,
            batch_wait,
            startup,
            execution,
            interference,
        }
    }

    /// A decomposition with everything attributed the way the
    /// pre-decomposition report did: `queue − cold` to batch-wait,
    /// `cold` to startup, all of exec to execution.
    pub fn legacy(queue: SimDuration, exec: SimDuration, cold: SimDuration) -> LatencyParts {
        LatencyParts::derive(queue, exec, cold, SimDuration::ZERO, exec)
    }
}

/// Per-function [`Log2Histogram`]s of the decomposition components.
#[derive(Debug, Clone, Default)]
pub struct BreakdownHists {
    /// Queueing component, ms.
    pub queueing_ms: Log2Histogram,
    /// Batch-wait component, ms.
    pub batch_wait_ms: Log2Histogram,
    /// Startup component, ms.
    pub startup_ms: Log2Histogram,
    /// Execution component, ms.
    pub execution_ms: Log2Histogram,
    /// Interference component, ms.
    pub interference_ms: Log2Histogram,
}

impl BreakdownHists {
    fn add(&mut self, parts: LatencyParts) {
        self.queueing_ms.add(parts.queueing.as_millis_f64());
        self.batch_wait_ms.add(parts.batch_wait.as_millis_f64());
        self.startup_ms.add(parts.startup.as_millis_f64());
        self.execution_ms.add(parts.execution.as_millis_f64());
        self.interference_ms.add(parts.interference.as_millis_f64());
    }
}

/// Per-function results.
#[derive(Debug, Clone)]
pub struct FunctionReport {
    /// Function display name (model name in the evaluation apps).
    pub name: String,
    /// The latency SLO.
    pub slo: SimDuration,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped (no instance could accept them).
    pub dropped: u64,
    /// Completed requests whose end-to-end latency exceeded the SLO.
    pub violations: u64,
    /// Completed requests that experienced a cold-start wait.
    pub cold_requests: u64,
    /// End-to-end latency of completed requests, milliseconds, as a
    /// log2-bucketed histogram (quantile error ≤ 2⁻⁷ relative, exact at
    /// the extremes — see [`Log2Histogram`]).
    pub latency_ms: Log2Histogram,
    /// Folded latency percentiles (ms), computed from `latency_ms` at
    /// freeze time; 0.0 when no request completed.
    pub latency_p50_ms: f64,
    /// 95th-percentile latency (ms); see `latency_p50_ms`.
    pub latency_p95_ms: f64,
    /// 99th-percentile latency (ms); see `latency_p50_ms`.
    pub latency_p99_ms: f64,
    /// Serving batchsize of completed requests as a histogram (the
    /// distribution view of `per_batch_completed`).
    pub batch_sizes: Log2Histogram,
    /// Batch-queueing component (ms).
    pub queue_ms: Welford,
    /// Execution component (ms).
    pub exec_ms: Welford,
    /// Cold-start component (ms).
    pub cold_ms: Welford,
    /// Completed requests per serving-instance batchsize (Fig. 13a/b).
    pub per_batch_completed: HashMap<u32, u64>,
    /// SLO latency decomposition histograms (always maintained, so
    /// the report carries them with or without a telemetry sink).
    pub breakdown: BreakdownHists,
    /// Token-level stats when this function is autoregressive.
    pub llm: Option<LlmFunctionStats>,
}

impl FunctionReport {
    fn new(name: String, slo: SimDuration) -> Self {
        FunctionReport {
            name,
            slo,
            completed: 0,
            dropped: 0,
            violations: 0,
            cold_requests: 0,
            latency_ms: Log2Histogram::new(),
            latency_p50_ms: 0.0,
            latency_p95_ms: 0.0,
            latency_p99_ms: 0.0,
            batch_sizes: Log2Histogram::new(),
            queue_ms: Welford::new(),
            exec_ms: Welford::new(),
            cold_ms: Welford::new(),
            per_batch_completed: HashMap::new(),
            breakdown: BreakdownHists::default(),
            llm: None,
        }
    }

    /// SLO violation rate counting drops as violations, in `[0, 1]`.
    pub fn violation_rate(&self) -> f64 {
        let total = self.completed + self.dropped;
        if total == 0 {
            0.0
        } else {
            (self.violations + self.dropped) as f64 / total as f64
        }
    }

    /// Fraction of completed requests that experienced a cold start.
    pub fn cold_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.cold_requests as f64 / self.completed as f64
        }
    }
}

/// Failure-injection and recovery accounting for one run (PR 3).
///
/// All-zero when the run had no fault schedule. Serialized behind
/// `#[serde(default)]` so reports written before the fault model
/// existed still deserialize (and a default section serializes to
/// plain zeros that old readers can ignore).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct FailureReport {
    /// Whole-server crashes injected (and applied).
    pub server_crashes: u64,
    /// Servers that completed the Down → Recovering → Up cycle.
    pub server_recoveries: u64,
    /// Instances killed by any fault (crash, kill, cold-start failure).
    pub instances_killed: u64,
    /// Instance deaths that struck while the victim was still starting.
    pub coldstart_failures: u64,
    /// Straggler episodes injected.
    pub stragglers: u64,
    /// Batches that ran slowed-down under a straggler episode.
    pub straggled_batches: u64,
    /// Requests displaced from killed instances (queued or in-flight).
    pub requests_displaced: u64,
    /// Displaced requests successfully re-dispatched within SLO budget.
    pub requests_retried: u64,
    /// Displaced requests shed (deadline already blown or no capacity).
    /// Shed requests are also counted in the per-function `dropped`
    /// tallies, so `violation_rate` reflects them.
    pub requests_shed: u64,
    /// Time from each capacity-losing fault until replacement capacity
    /// was ready, milliseconds.
    pub recapacity_ms: Vec<f64>,
}

impl FailureReport {
    /// `true` when the run experienced any fault.
    pub fn any(&self) -> bool {
        self.server_crashes > 0
            || self.instances_killed > 0
            || self.stragglers > 0
            || self.requests_displaced > 0
    }

    /// Mean time-to-recapacity in milliseconds, or `None` when no
    /// capacity-losing fault was (yet) compensated.
    pub fn mean_time_to_recapacity_ms(&self) -> Option<f64> {
        if self.recapacity_ms.is_empty() {
            return None;
        }
        Some(self.recapacity_ms.iter().sum::<f64>() / self.recapacity_ms.len() as f64)
    }
}

/// The frozen result of one platform run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Platform name ("INFless", "OpenFaaS+", "BATCH", …).
    pub platform: String,
    /// Per-function results.
    pub functions: Vec<FunctionReport>,
    /// Simulated span of the run.
    pub duration: SimDuration,
    /// Instances launched in total.
    pub launches: u64,
    /// Launches that paid a full cold start.
    pub cold_launches: u64,
    /// Launches served from a pre-warmed image.
    pub prewarmed_launches: u64,
    /// Launches served by swapping a host-cached model onto a GPU.
    pub swap_launches: u64,
    /// Instances retired.
    pub retirements: u64,
    /// ∫ (β·cpu + gpu) allocated dt, in weighted-resource · seconds.
    pub weighted_resource_seconds: f64,
    /// ∫ over instances that were allocated but not executing.
    pub weighted_idle_seconds: f64,
    /// ∫ CPU cores allocated dt (core·s).
    pub cpu_core_seconds: f64,
    /// ∫ GPU SM-percent allocated dt (pct·s).
    pub gpu_pct_seconds: f64,
    /// Fragment-ratio samples taken at scaler ticks (Fig. 17b).
    pub fragment_samples: Samples,
    /// Wall-clock scheduling overhead per `Schedule()` call, µs
    /// (Fig. 17a).
    pub sched_overhead_us: Samples,
    /// The same `Schedule()` overheads as a log2-bucketed histogram, so
    /// `BENCH_hotpath.json` can report tail quantiles without keeping
    /// raw samples.
    pub sched_overhead_hist_us: Log2Histogram,
    /// Wall-clock cost of sampled per-request dispatch decisions,
    /// nanoseconds. Sampled (not every request) — see
    /// `Collector::dispatch_overhead`; empty for platforms that do not
    /// instrument their router.
    pub dispatch_overhead_ns: Log2Histogram,
    /// `(t seconds, weighted resources allocated)` timeline (Fig. 14).
    pub provisioning: Vec<(f64, f64)>,
    /// Instances launched per (function, config) — Fig. 13c.
    pub config_launches: HashMap<(usize, InstanceConfig), u64>,
    /// End-to-end results per declared function chain (empty unless the
    /// platform was built with chains).
    pub chains: Vec<crate::chains::ChainReport>,
    /// Wall-clock time from platform construction to report freeze —
    /// what the parallel bench harness reports per run.
    pub wall_clock_seconds: f64,
    /// How this run's COP profile database was obtained, when the
    /// platform uses one (`None` for profile-free baselines).
    pub profile_cache: Option<CacheOutcome>,
    /// Fault-injection and recovery accounting (all-zero without a
    /// fault schedule).
    pub failures: FailureReport,
    /// Digest of the tick-sampled gauge stream (peak/mean instance
    /// count, peak occupancy, max queue depth). All-zero when the
    /// platform never called `Engine::sample_telemetry`. Serialized
    /// behind `#[serde(default)]` on its own type, so JSON snapshots
    /// written before the telemetry subsystem keep deserializing.
    pub timeseries_summary: TimeseriesSummary,
    /// KV-cache bytes booked over the run (prompt KV at admission plus
    /// one token's worth per decode). All-zero without LLM functions.
    pub kv_allocated_bytes: u64,
    /// KV-cache bytes released (sequence completion or displacement).
    pub kv_freed_bytes: u64,
    /// KV-cache bytes still resident in live episodes at the horizon.
    /// Conservation invariant: `allocated == freed + resident`.
    pub kv_resident_bytes: u64,
}

impl RunReport {
    /// Total completed requests.
    pub fn total_completed(&self) -> u64 {
        self.functions.iter().map(|f| f.completed).sum()
    }

    /// Total dropped requests.
    pub fn total_dropped(&self) -> u64 {
        self.functions.iter().map(|f| f.dropped).sum()
    }

    /// Overall SLO violation rate (drops count as violations).
    pub fn violation_rate(&self) -> f64 {
        let total: u64 = self.functions.iter().map(|f| f.completed + f.dropped).sum();
        if total == 0 {
            return 0.0;
        }
        let bad: u64 = self
            .functions
            .iter()
            .map(|f| f.violations + f.dropped)
            .sum();
        bad as f64 / total as f64
    }

    /// Completed requests that met their SLO, per second of simulated
    /// time (the "maximum RPS achieved" of Fig. 11).
    pub fn goodput_rps(&self) -> f64 {
        let good: u64 = self
            .functions
            .iter()
            .map(|f| f.completed - f.violations)
            .sum();
        let secs = self.duration.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            good as f64 / secs
        }
    }

    /// Completed requests per weighted-resource-second — the
    /// "throughput per unit of resource" of Figs. 12 and 18.
    pub fn throughput_per_resource(&self) -> f64 {
        if self.weighted_resource_seconds == 0.0 {
            0.0
        } else {
            self.total_completed() as f64 / self.weighted_resource_seconds
        }
    }

    /// Fraction of completed requests that experienced a cold start.
    pub fn cold_request_rate(&self) -> f64 {
        let completed = self.total_completed();
        if completed == 0 {
            return 0.0;
        }
        let cold: u64 = self.functions.iter().map(|f| f.cold_requests).sum();
        cold as f64 / completed as f64
    }

    /// Fraction of launches that paid a full cold start.
    pub fn cold_launch_rate(&self) -> f64 {
        if self.launches == 0 {
            0.0
        } else {
            self.cold_launches as f64 / self.launches as f64
        }
    }

    /// Average CPU cores held per 100 completed RPS (Table 4).
    pub fn cpus_per_100rps(&self) -> f64 {
        let rps = self.total_completed() as f64 / self.duration.as_secs_f64().max(1e-9);
        if rps == 0.0 {
            return 0.0;
        }
        (self.cpu_core_seconds / self.duration.as_secs_f64().max(1e-9)) / rps * 100.0
    }

    /// Average full GPUs held per 100 completed RPS (Table 4).
    pub fn gpus_per_100rps(&self) -> f64 {
        let rps = self.total_completed() as f64 / self.duration.as_secs_f64().max(1e-9);
        if rps == 0.0 {
            return 0.0;
        }
        (self.gpu_pct_seconds / 100.0 / self.duration.as_secs_f64().max(1e-9)) / rps * 100.0
    }

    /// Deterministic JSON rendering of the simulation-visible results.
    ///
    /// Excludes every wall-clock-derived field (`wall_clock_seconds`,
    /// `sched_overhead_us`, `sched_overhead_hist_us`,
    /// `dispatch_overhead_ns`) and `profile_cache` (a host-cache
    /// artifact), and renders all maps in sorted key order, so the
    /// output is **byte-identical** across hosts, runs and shard
    /// counts for the same `(workload, seed, config)`. The CI
    /// determinism gate byte-diffs this string between `--shards 1`
    /// and `--shards 4` runs.
    pub fn canonical_json(&self) -> String {
        let functions: Vec<serde_json::Value> = self
            .functions
            .iter()
            .map(|f| {
                let mut per_batch: Vec<(u32, u64)> = f
                    .per_batch_completed
                    .iter()
                    .map(|(b, n)| (*b, *n))
                    .collect();
                per_batch.sort_unstable();
                let mut v = serde_json::json!({
                    "name": f.name,
                    "slo_ms": f.slo.as_millis_f64(),
                    "completed": f.completed,
                    "dropped": f.dropped,
                    "violations": f.violations,
                    "cold_requests": f.cold_requests,
                    "latency_p50_ms": f.latency_p50_ms,
                    "latency_p95_ms": f.latency_p95_ms,
                    "latency_p99_ms": f.latency_p99_ms,
                    "latency_count": f.latency_ms.count(),
                    "batch_size_mean": f.batch_sizes.mean(),
                    "queue_ms_mean": f.queue_ms.mean(),
                    "exec_ms_mean": f.exec_ms.mean(),
                    "cold_ms_mean": f.cold_ms.mean(),
                    "per_batch_completed": per_batch,
                });
                // The llm key only exists for autoregressive functions,
                // appended after the base keys (the map is
                // insertion-ordered), so pre-LLM reports stay
                // byte-identical.
                if let Some(llm) = &f.llm {
                    if let serde_json::Value::Object(m) = &mut v {
                        m.insert(
                            "llm".to_string(),
                            serde_json::json!({
                                "first_tokens": llm.ttft_ms.count(),
                                "ttft_p50_ms": llm.ttft_ms.quantile(0.50).unwrap_or(0.0),
                                "ttft_p99_ms": llm.ttft_ms.quantile(0.99).unwrap_or(0.0),
                                "ttft_violations": llm.ttft_violations,
                                "tpot_p50_ms": llm.tpot_ms.quantile(0.50).unwrap_or(0.0),
                                "tpot_p99_ms": llm.tpot_ms.quantile(0.99).unwrap_or(0.0),
                                "tpot_violations": llm.tpot_violations,
                                "cache_full_events": llm.cache_full_events,
                                "decoded_tokens": llm.decoded_tokens,
                            }),
                        );
                    }
                }
                // The five-way SLO decomposition is always maintained
                // (and derived from shard-invariant quantities), so it
                // is unconditionally part of the determinism-gated
                // surface.
                if let serde_json::Value::Object(m) = &mut v {
                    let b = &f.breakdown;
                    m.insert(
                        "breakdown".to_string(),
                        serde_json::json!({
                            "count": b.queueing_ms.count(),
                            "queueing_ms_mean": b.queueing_ms.mean(),
                            "batch_wait_ms_mean": b.batch_wait_ms.mean(),
                            "startup_ms_mean": b.startup_ms.mean(),
                            "execution_ms_mean": b.execution_ms.mean(),
                            "interference_ms_mean": b.interference_ms.mean(),
                        }),
                    );
                }
                v
            })
            .collect();
        let chains: Vec<serde_json::Value> = self
            .chains
            .iter()
            .map(|c| {
                serde_json::json!({
                    "name": c.name,
                    "completed": c.completed,
                    "violations": c.violations,
                    "lost": c.lost,
                    "e2e_p50_ms": c.e2e_ms.quantile(0.5),
                    "e2e_p99_ms": c.e2e_ms.quantile(0.99),
                })
            })
            .collect();
        let mut config_launches: Vec<(usize, u32, u32, u32, u64)> = self
            .config_launches
            .iter()
            .map(|((f, cfg), n)| {
                (
                    *f,
                    cfg.batch(),
                    cfg.resources().cpu_cores(),
                    cfg.resources().gpu_pct(),
                    *n,
                )
            })
            .collect();
        config_launches.sort_unstable();
        let mut out = serde_json::json!({
            "platform": self.platform,
            "duration_s": self.duration.as_secs_f64(),
            "completed": self.total_completed(),
            "dropped": self.total_dropped(),
            "violation_rate": self.violation_rate(),
            "launches": self.launches,
            "cold_launches": self.cold_launches,
            "prewarmed_launches": self.prewarmed_launches,
            "swap_launches": self.swap_launches,
            "retirements": self.retirements,
            "weighted_resource_seconds": self.weighted_resource_seconds,
            "weighted_idle_seconds": self.weighted_idle_seconds,
            "cpu_core_seconds": self.cpu_core_seconds,
            "gpu_pct_seconds": self.gpu_pct_seconds,
            "fragment_mean": self.fragment_samples.mean(),
            "fragment_count": self.fragment_samples.len(),
            "provisioning": self.provisioning,
            "config_launches": config_launches,
            "functions": functions,
            "chains": chains,
            "failures": self.failures,
            "timeseries_summary": self.timeseries_summary,
        });
        // Like the per-function llm key: kv_cache appears only when the
        // run actually served an autoregressive function.
        if self.functions.iter().any(|f| f.llm.is_some()) || self.kv_allocated_bytes > 0 {
            if let serde_json::Value::Object(m) = &mut out {
                m.insert(
                    "kv_cache".to_string(),
                    serde_json::json!({
                        "allocated_bytes": self.kv_allocated_bytes,
                        "freed_bytes": self.kv_freed_bytes,
                        "resident_bytes": self.kv_resident_bytes,
                    }),
                );
            }
        }
        serde_json::to_string_pretty(&out).expect("report serializes")
    }
}

/// Per-function time-weighted resource step functions.
///
/// Kept per function (not as run-wide accumulators) so each function's
/// f64 accumulation order depends only on that function's own event
/// sequence: a sharded run sums the per-function values in
/// function-major order at freeze time and lands on bit-identical
/// totals regardless of how functions were partitioned across shards.
#[derive(Debug, Clone, Copy, Default)]
struct ResourceUsage {
    weighted_usage: TimeWeighted,
    weighted_busy: TimeWeighted,
    cpu_usage: TimeWeighted,
    gpu_usage: TimeWeighted,
}

/// The mutable recorder a running platform writes into.
#[derive(Debug)]
pub struct Collector {
    platform: String,
    functions: Vec<FunctionReport>,
    launches: u64,
    cold_launches: u64,
    prewarmed_launches: u64,
    swap_launches: u64,
    retirements: u64,
    usage: Vec<ResourceUsage>,
    fragment_samples: Samples,
    sched_overhead_us: Samples,
    sched_overhead_hist_us: Log2Histogram,
    dispatch_overhead_ns: Log2Histogram,
    provisioning: Vec<(f64, f64)>,
    config_launches: HashMap<(usize, InstanceConfig), u64>,
    started: Instant,
    profile_cache: Option<CacheOutcome>,
    failures: FailureReport,
    timeseries: TimeseriesSummary,
    kv_allocated_bytes: u64,
    kv_freed_bytes: u64,
    kv_resident_bytes: u64,
}

impl Collector {
    /// Creates a collector for `platform` covering the given functions
    /// (`(name, slo)` pairs).
    pub fn new(platform: impl Into<String>, functions: &[(String, SimDuration)]) -> Self {
        Collector {
            platform: platform.into(),
            functions: functions
                .iter()
                .map(|(n, slo)| FunctionReport::new(n.clone(), *slo))
                .collect(),
            launches: 0,
            cold_launches: 0,
            prewarmed_launches: 0,
            swap_launches: 0,
            retirements: 0,
            usage: vec![ResourceUsage::default(); functions.len()],
            fragment_samples: Samples::new(),
            sched_overhead_us: Samples::new(),
            sched_overhead_hist_us: Log2Histogram::new(),
            dispatch_overhead_ns: Log2Histogram::new(),
            provisioning: Vec::new(),
            config_launches: HashMap::new(),
            started: Instant::now(),
            profile_cache: None,
            failures: FailureReport::default(),
            timeseries: TimeseriesSummary::default(),
            kv_allocated_bytes: 0,
            kv_freed_bytes: 0,
            kv_resident_bytes: 0,
        }
    }

    /// The platform name this collector was created for.
    pub fn platform(&self) -> &str {
        &self.platform
    }

    /// Records how the platform's COP profile database was obtained
    /// (platforms without a predictor never call this).
    pub fn set_profile_cache(&mut self, outcome: CacheOutcome) {
        self.profile_cache = Some(outcome);
    }

    /// Backdates the wall-clock origin to `at` — platforms call this so
    /// the reported time covers profiling done before the engine (and
    /// this collector) existed.
    pub fn mark_started(&mut self, at: Instant) {
        self.started = at;
    }

    /// Records a completed request, attributing its whole wait phase
    /// the way the pre-decomposition report did (see
    /// [`LatencyParts::legacy`]). The engine calls
    /// [`complete_with_parts`](Self::complete_with_parts) instead.
    pub fn complete(
        &mut self,
        function: usize,
        queue: SimDuration,
        exec: SimDuration,
        cold: SimDuration,
        batch_setting: u32,
    ) {
        let parts = LatencyParts::legacy(queue, exec, cold);
        self.complete_with_parts(function, queue, exec, cold, batch_setting, parts);
    }

    /// Records a completed request with its five-way latency
    /// decomposition.
    #[allow(clippy::too_many_arguments)]
    pub fn complete_with_parts(
        &mut self,
        function: usize,
        queue: SimDuration,
        exec: SimDuration,
        cold: SimDuration,
        batch_setting: u32,
        parts: LatencyParts,
    ) {
        let f = &mut self.functions[function];
        let latency = queue + exec;
        f.completed += 1;
        f.latency_ms.add(latency.as_millis_f64());
        f.queue_ms.add((queue - cold).as_millis_f64());
        f.exec_ms.add(exec.as_millis_f64());
        f.cold_ms.add(cold.as_millis_f64());
        f.breakdown.add(parts);
        if latency > f.slo {
            f.violations += 1;
        }
        if !cold.is_zero() {
            f.cold_requests += 1;
        }
        f.batch_sizes.add(f64::from(batch_setting));
        *f.per_batch_completed.entry(batch_setting).or_insert(0) += 1;
    }

    /// Folds one tick's gauge readings into the run's time-series
    /// summary (see `Engine::sample_telemetry`).
    pub fn observe_gauges(
        &mut self,
        instances: u64,
        cpu_occupancy: f64,
        gpu_occupancy: f64,
        queue_depth: u64,
        in_flight_batches: u64,
    ) {
        self.timeseries.observe(
            instances,
            cpu_occupancy,
            gpu_occupancy,
            queue_depth,
            in_flight_batches,
        );
    }

    /// Records a dropped request.
    pub fn drop_request(&mut self, function: usize) {
        self.functions[function].dropped += 1;
    }

    /// Records an instance launch.
    pub fn launch(&mut self, function: usize, config: InstanceConfig, kind: StartupKind) {
        self.launches += 1;
        match kind {
            StartupKind::Cold => self.cold_launches += 1,
            StartupKind::PreWarmed => self.prewarmed_launches += 1,
            StartupKind::SwapIn => self.swap_launches += 1,
        }
        *self.config_launches.entry((function, config)).or_insert(0) += 1;
    }

    /// Records an instance retirement.
    pub fn retire(&mut self) {
        self.retirements += 1;
    }

    /// Adjusts `function`'s allocated-resource step functions at time
    /// `t`.
    pub fn usage_delta(&mut self, function: usize, t: SimTime, weighted: f64, cpu: f64, gpu: f64) {
        let u = &mut self.usage[function];
        u.weighted_usage.add(t, weighted);
        u.cpu_usage.add(t, cpu);
        u.gpu_usage.add(t, gpu);
    }

    /// Adjusts `function`'s busy-resource step function at time `t`
    /// (instances actively executing a batch).
    pub fn busy_delta(&mut self, function: usize, t: SimTime, weighted: f64) {
        self.usage[function].weighted_busy.add(t, weighted);
    }

    /// Samples the cluster fragment ratio.
    pub fn fragment_sample(&mut self, ratio: f64) {
        self.fragment_samples.add(ratio);
    }

    /// Records the wall-clock cost of one `Schedule()` invocation.
    pub fn sched_overhead(&mut self, micros: f64) {
        self.sched_overhead_us.add(micros);
        self.sched_overhead_hist_us.add(micros);
    }

    /// Records the wall-clock cost of one sampled dispatch decision,
    /// nanoseconds. Routers sample (e.g. every 64th dispatch) so the
    /// timing itself stays off the hot path; wall-clock readings never
    /// influence simulated state, so sampling cannot perturb a run.
    pub fn dispatch_overhead(&mut self, nanos: f64) {
        self.dispatch_overhead_ns.add(nanos);
    }

    /// Appends a provisioning-timeline point.
    pub fn provision_point(&mut self, t: SimTime, weighted_in_use: f64) {
        self.provisioning.push((t.as_secs_f64(), weighted_in_use));
    }

    /// Current allocated weighted resources (step-function value),
    /// summed across functions in function-major order.
    pub fn current_weighted_usage(&self) -> f64 {
        self.usage.iter().map(|u| u.weighted_usage.current()).sum()
    }

    /// Read access to the failure tallies so far (platforms use this to
    /// assert invariants mid-run in tests).
    pub fn failures(&self) -> &FailureReport {
        &self.failures
    }

    /// Records an applied whole-server crash.
    pub fn server_crash(&mut self) {
        self.failures.server_crashes += 1;
    }

    /// Records a server completing recovery (back to `Up`).
    pub fn server_recovered(&mut self) {
        self.failures.server_recoveries += 1;
    }

    /// Records an instance killed by a fault. `was_starting` marks a
    /// cold-start failure (the victim had not finished booting).
    pub fn instance_killed(&mut self, was_starting: bool) {
        self.failures.instances_killed += 1;
        if was_starting {
            self.failures.coldstart_failures += 1;
        }
    }

    /// Records an injected straggler episode.
    pub fn straggler(&mut self) {
        self.failures.stragglers += 1;
    }

    /// Records a batch that executed under a straggler slowdown.
    pub fn straggled_batch(&mut self) {
        self.failures.straggled_batches += 1;
    }

    /// Records `n` requests displaced from killed instances.
    pub fn displaced(&mut self, n: u64) {
        self.failures.requests_displaced += n;
    }

    /// Records a displaced request successfully re-dispatched.
    pub fn retried(&mut self) {
        self.failures.requests_retried += 1;
    }

    /// Records a displaced request shed. Also tallies it as dropped for
    /// `function`, so SLO violation rates account for shed load.
    pub fn shed(&mut self, function: usize) {
        self.failures.requests_shed += 1;
        self.functions[function].dropped += 1;
    }

    /// Records one time-to-recapacity sample (fault until replacement
    /// capacity ready), milliseconds.
    pub fn recapacity_sample(&mut self, ms: f64) {
        self.failures.recapacity_ms.push(ms);
    }

    fn llm_stats(&mut self, function: usize) -> &mut LlmFunctionStats {
        self.functions[function]
            .llm
            .get_or_insert_with(LlmFunctionStats::default)
    }

    /// Records a sequence's first token (end of its prefill): the TTFT
    /// sample and, when it blew `slo`, a TTFT violation.
    pub fn llm_first_token(&mut self, function: usize, ttft: SimDuration, slo: SimDuration) {
        let s = self.llm_stats(function);
        s.ttft_ms.add(ttft.as_millis_f64());
        if ttft > slo {
            s.ttft_violations += 1;
        }
    }

    /// Records a completed sequence's token-level outcome. `tpot` is
    /// `None` for single-output-token sequences (no decode interval to
    /// average).
    pub fn llm_complete(
        &mut self,
        function: usize,
        tpot: Option<SimDuration>,
        slo: SimDuration,
        decoded: u64,
    ) {
        let s = self.llm_stats(function);
        s.decoded_tokens += decoded;
        if let Some(t) = tpot {
            s.tpot_ms.add(t.as_millis_f64());
            if t > slo {
                s.tpot_violations += 1;
            }
        }
    }

    /// Records an admission attempt blocked by a full KV arena.
    pub fn llm_cache_full(&mut self, function: usize) {
        self.llm_stats(function).cache_full_events += 1;
    }

    /// Books KV-cache bytes allocated (prompt KV at admission, one
    /// token's worth per decode step).
    pub fn kv_alloc(&mut self, bytes: u64) {
        self.kv_allocated_bytes += bytes;
    }

    /// Books KV-cache bytes freed (completion or displacement).
    pub fn kv_free(&mut self, bytes: u64) {
        self.kv_freed_bytes += bytes;
    }

    /// Books KV-cache bytes still resident in live episodes at the
    /// horizon (called once at freeze time by the engine).
    pub fn kv_resident(&mut self, bytes: u64) {
        self.kv_resident_bytes += bytes;
    }

    /// Folds a shard's collector into this one (the coordinator's, by
    /// convention shard 0's).
    ///
    /// `owned` lists the function indices the shard owned: their
    /// per-function reports and resource accumulators are moved over
    /// wholesale (a function runs on exactly one shard, so this
    /// collector's entries for them are untouched defaults). Scalar
    /// counters, failure tallies, per-config launch counts and the
    /// overhead recordings are summed or merged; coordinator-owned
    /// streams (fragment samples, provisioning timeline, time-series
    /// gauges) are only ever written on the coordinator's collector, so
    /// the shard side contributes nothing there.
    pub fn absorb(&mut self, other: Collector, owned: &[usize]) {
        debug_assert_eq!(self.functions.len(), other.functions.len());
        for &f in owned {
            debug_assert_eq!(self.functions[f].completed, 0);
            self.functions[f] = other.functions[f].clone();
            self.usage[f] = other.usage[f];
        }
        self.launches += other.launches;
        self.cold_launches += other.cold_launches;
        self.prewarmed_launches += other.prewarmed_launches;
        self.swap_launches += other.swap_launches;
        self.retirements += other.retirements;
        self.fragment_samples.merge_from(&other.fragment_samples);
        self.sched_overhead_us.merge_from(&other.sched_overhead_us);
        self.sched_overhead_hist_us
            .merge(&other.sched_overhead_hist_us);
        self.dispatch_overhead_ns.merge(&other.dispatch_overhead_ns);
        self.provisioning.extend(other.provisioning.iter().copied());
        for (&key, &n) in &other.config_launches {
            *self.config_launches.entry(key).or_insert(0) += n;
        }
        let f = &mut self.failures;
        let g = &other.failures;
        f.server_crashes += g.server_crashes;
        f.server_recoveries += g.server_recoveries;
        f.instances_killed += g.instances_killed;
        f.coldstart_failures += g.coldstart_failures;
        f.stragglers += g.stragglers;
        f.straggled_batches += g.straggled_batches;
        f.requests_displaced += g.requests_displaced;
        f.requests_retried += g.requests_retried;
        f.requests_shed += g.requests_shed;
        f.recapacity_ms.extend(g.recapacity_ms.iter().copied());
        self.kv_allocated_bytes += other.kv_allocated_bytes;
        self.kv_freed_bytes += other.kv_freed_bytes;
        self.kv_resident_bytes += other.kv_resident_bytes;
    }

    /// Freezes the collector into a report covering `[0, end]`.
    pub fn finish(mut self, end: SimTime) -> RunReport {
        // Fold the latency histograms into the headline percentiles.
        for f in &mut self.functions {
            f.latency_p50_ms = f.latency_ms.quantile(0.50).unwrap_or(0.0);
            f.latency_p95_ms = f.latency_ms.quantile(0.95).unwrap_or(0.0);
            f.latency_p99_ms = f.latency_ms.quantile(0.99).unwrap_or(0.0);
        }
        // Function-major sums keep the f64 accumulation order a pure
        // function of the function list, not of shard layout.
        let usage: f64 = self
            .usage
            .iter()
            .map(|u| u.weighted_usage.integral_until(end))
            .sum();
        let busy: f64 = self
            .usage
            .iter()
            .map(|u| u.weighted_busy.integral_until(end))
            .sum();
        RunReport {
            platform: self.platform,
            functions: self.functions,
            duration: end - SimTime::ZERO,
            launches: self.launches,
            cold_launches: self.cold_launches,
            prewarmed_launches: self.prewarmed_launches,
            swap_launches: self.swap_launches,
            retirements: self.retirements,
            weighted_resource_seconds: usage,
            weighted_idle_seconds: (usage - busy).max(0.0),
            cpu_core_seconds: self
                .usage
                .iter()
                .map(|u| u.cpu_usage.integral_until(end))
                .sum(),
            gpu_pct_seconds: self
                .usage
                .iter()
                .map(|u| u.gpu_usage.integral_until(end))
                .sum(),
            fragment_samples: self.fragment_samples,
            sched_overhead_us: self.sched_overhead_us,
            sched_overhead_hist_us: self.sched_overhead_hist_us,
            dispatch_overhead_ns: self.dispatch_overhead_ns,
            provisioning: self.provisioning,
            config_launches: self.config_launches,
            chains: Vec::new(),
            wall_clock_seconds: self.started.elapsed().as_secs_f64(),
            profile_cache: self.profile_cache,
            failures: self.failures,
            timeseries_summary: self.timeseries,
            kv_allocated_bytes: self.kv_allocated_bytes,
            kv_freed_bytes: self.kv_freed_bytes,
            kv_resident_bytes: self.kv_resident_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infless_models::ResourceConfig;

    fn collector() -> Collector {
        Collector::new(
            "test",
            &[
                ("a".to_string(), SimDuration::from_millis(100)),
                ("b".to_string(), SimDuration::from_millis(50)),
            ],
        )
    }

    #[test]
    fn completion_classifies_violations() {
        let mut c = collector();
        c.complete(
            0,
            SimDuration::from_millis(30),
            SimDuration::from_millis(40),
            SimDuration::ZERO,
            4,
        ); // 70ms <= 100ms: ok
        c.complete(
            0,
            SimDuration::from_millis(90),
            SimDuration::from_millis(40),
            SimDuration::from_millis(50),
            4,
        ); // 130ms > 100ms: violation, cold
        let r = c.finish(SimTime::from_secs(10));
        let f = &r.functions[0];
        assert_eq!(f.completed, 2);
        assert_eq!(f.violations, 1);
        assert_eq!(f.cold_requests, 1);
        assert_eq!(f.violation_rate(), 0.5);
        assert_eq!(f.cold_rate(), 0.5);
        assert_eq!(f.per_batch_completed[&4], 2);
    }

    #[test]
    fn drops_count_as_violations() {
        let mut c = collector();
        c.complete(
            1,
            SimDuration::from_millis(10),
            SimDuration::from_millis(10),
            SimDuration::ZERO,
            1,
        );
        c.drop_request(1);
        let r = c.finish(SimTime::from_secs(1));
        assert_eq!(r.total_dropped(), 1);
        assert_eq!(r.violation_rate(), 0.5);
    }

    #[test]
    fn resource_integrals_and_throughput() {
        let mut c = collector();
        c.usage_delta(0, SimTime::ZERO, 10.0, 2.0, 20.0);
        c.usage_delta(0, SimTime::from_secs(5), -10.0, -2.0, -20.0);
        for _ in 0..50 {
            c.complete(
                0,
                SimDuration::from_millis(1),
                SimDuration::from_millis(1),
                SimDuration::ZERO,
                1,
            );
        }
        let r = c.finish(SimTime::from_secs(10));
        assert_eq!(r.weighted_resource_seconds, 50.0);
        assert_eq!(r.cpu_core_seconds, 10.0);
        assert_eq!(r.gpu_pct_seconds, 100.0);
        assert_eq!(r.throughput_per_resource(), 1.0);
        assert_eq!(r.goodput_rps(), 5.0);
    }

    #[test]
    fn idle_is_usage_minus_busy() {
        let mut c = collector();
        c.usage_delta(0, SimTime::ZERO, 4.0, 0.0, 0.0);
        c.busy_delta(1, SimTime::from_secs(2), 4.0);
        c.busy_delta(1, SimTime::from_secs(4), -4.0);
        let r = c.finish(SimTime::from_secs(10));
        assert_eq!(r.weighted_resource_seconds, 40.0);
        assert_eq!(r.weighted_idle_seconds, 32.0);
    }

    #[test]
    fn launch_kinds_are_tallied() {
        let mut c = collector();
        let cfg = InstanceConfig::new(4, ResourceConfig::new(1, 10));
        c.launch(0, cfg, StartupKind::Cold);
        c.launch(0, cfg, StartupKind::PreWarmed);
        c.launch(1, cfg, StartupKind::Cold);
        c.launch(1, cfg, StartupKind::SwapIn);
        c.retire();
        let r = c.finish(SimTime::from_secs(1));
        assert_eq!(r.launches, 4);
        assert_eq!(r.cold_launches, 2);
        assert_eq!(r.prewarmed_launches, 1);
        assert_eq!(r.swap_launches, 1);
        assert_eq!(r.retirements, 1);
        assert!((r.cold_launch_rate() - 2.0 / 4.0).abs() < 1e-12);
        assert_eq!(r.config_launches[&(0, cfg)], 2);
    }

    #[test]
    fn table4_unit_math() {
        // 10 cores and 1.5 GPUs held for the whole run at 50 completed RPS.
        let mut c = collector();
        c.usage_delta(0, SimTime::ZERO, 0.0, 10.0, 150.0);
        for _ in 0..500 {
            c.complete(
                0,
                SimDuration::ZERO,
                SimDuration::from_millis(1),
                SimDuration::ZERO,
                1,
            );
        }
        let r = c.finish(SimTime::from_secs(10));
        assert!((r.cpus_per_100rps() - 20.0).abs() < 1e-9);
        assert!((r.gpus_per_100rps() - 3.0).abs() < 1e-9);
    }

    /// Sharded runs fold per-shard collectors into the coordinator's:
    /// per-function state moves wholesale, scalar tallies sum.
    #[test]
    fn absorb_merges_shard_collectors() {
        let cfg = InstanceConfig::new(2, ResourceConfig::new(1, 10));
        // Shard 0 owns function 0; shard 1 owns function 1.
        let mut c0 = collector();
        c0.usage_delta(0, SimTime::ZERO, 2.0, 1.0, 10.0);
        c0.launch(0, cfg, StartupKind::Cold);
        c0.complete(
            0,
            SimDuration::from_millis(10),
            SimDuration::from_millis(10),
            SimDuration::ZERO,
            2,
        );
        let mut c1 = collector();
        c1.usage_delta(1, SimTime::ZERO, 3.0, 2.0, 0.0);
        c1.launch(1, cfg, StartupKind::PreWarmed);
        c1.complete(
            1,
            SimDuration::from_millis(100),
            SimDuration::from_millis(10),
            SimDuration::ZERO,
            1,
        );
        c1.shed(1);
        c1.recapacity_sample(40.0);
        c0.absorb(c1, &[1]);
        assert_eq!(c0.current_weighted_usage(), 5.0);
        let r = c0.finish(SimTime::from_secs(10));
        assert_eq!(r.launches, 2);
        assert_eq!(r.cold_launches, 1);
        assert_eq!(r.prewarmed_launches, 1);
        assert_eq!(r.total_completed(), 2);
        assert_eq!(r.functions[1].completed, 1);
        assert_eq!(r.functions[1].violations, 1);
        assert_eq!(r.functions[1].dropped, 1);
        assert_eq!(r.weighted_resource_seconds, 50.0);
        assert_eq!(r.cpu_core_seconds, 30.0);
        assert_eq!(r.gpu_pct_seconds, 100.0);
        assert_eq!(r.failures.requests_shed, 1);
        assert_eq!(r.failures.recapacity_ms, vec![40.0]);
        assert_eq!(r.config_launches[&(0, cfg)], 1);
        assert_eq!(r.config_launches[&(1, cfg)], 1);
    }

    #[test]
    fn failure_counters_feed_the_report() {
        let mut c = collector();
        c.server_crash();
        c.instance_killed(false);
        c.instance_killed(true);
        c.straggler();
        c.straggled_batch();
        c.displaced(3);
        c.retried();
        c.retried();
        c.shed(0);
        c.recapacity_sample(120.0);
        c.recapacity_sample(80.0);
        c.server_recovered();
        let r = c.finish(SimTime::from_secs(1));
        let f = &r.failures;
        assert!(f.any());
        assert_eq!(f.server_crashes, 1);
        assert_eq!(f.server_recoveries, 1);
        assert_eq!(f.instances_killed, 2);
        assert_eq!(f.coldstart_failures, 1);
        assert_eq!(f.stragglers, 1);
        assert_eq!(f.straggled_batches, 1);
        assert_eq!(f.requests_displaced, 3);
        assert_eq!(f.requests_retried, 2);
        assert_eq!(f.requests_shed, 1);
        assert_eq!(f.mean_time_to_recapacity_ms(), Some(100.0));
        // Shed requests count as drops, so they bite the violation rate.
        assert_eq!(r.total_dropped(), 1);
        assert_eq!(r.violation_rate(), 1.0);
    }

    /// Satellite 6: old serialized reports (no failure section) must
    /// keep deserializing, and a fault-free section is all defaults.
    #[test]
    fn failure_report_deserializes_from_empty_object() {
        let f: FailureReport = serde_json::from_str("{}").unwrap();
        assert_eq!(f, FailureReport::default());
        assert!(!f.any());
        assert_eq!(f.mean_time_to_recapacity_ms(), None);
        let partial: FailureReport =
            serde_json::from_str("{\"requests_shed\": 7, \"recapacity_ms\": [5.0]}").unwrap();
        assert_eq!(partial.requests_shed, 7);
        assert_eq!(partial.mean_time_to_recapacity_ms(), Some(5.0));
        // Round-trip.
        let json = serde_json::to_string(&partial).unwrap();
        let back: FailureReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, partial);
    }

    /// Headline percentiles are folded from the latency histogram at
    /// freeze time, within the histogram's documented 2⁻⁷ relative
    /// error bound.
    #[test]
    fn finish_folds_latency_percentiles() {
        let mut c = collector();
        for i in 1..=100u64 {
            c.complete(
                0,
                SimDuration::from_millis(i),
                SimDuration::ZERO,
                SimDuration::ZERO,
                1,
            );
        }
        let r = c.finish(SimTime::from_secs(10));
        let f = &r.functions[0];
        assert!((f.latency_p50_ms - 50.0).abs() / 50.0 <= 1.0 / 128.0);
        assert!((f.latency_p95_ms - 95.0).abs() / 95.0 <= 1.0 / 128.0);
        assert!((f.latency_p99_ms - 99.0).abs() / 99.0 <= 1.0 / 128.0);
        assert_eq!(f.latency_ms.len() as u64, f.completed);
        // The batch-size histogram mirrors per_batch_completed.
        assert_eq!(f.batch_sizes.len(), 100);
        assert_eq!(f.batch_sizes.quantile(1.0), Some(1.0));
    }

    /// Satellite: old serialized reports (no time-series section) must
    /// keep deserializing, mirroring the FailureReport pattern above.
    #[test]
    fn timeseries_summary_deserializes_from_empty_object() {
        let t: TimeseriesSummary = serde_json::from_str("{}").unwrap();
        assert_eq!(t, TimeseriesSummary::default());
        assert!(!t.any());
        let partial: TimeseriesSummary =
            serde_json::from_str("{\"samples\": 3, \"peak_instances\": 9}").unwrap();
        assert_eq!(partial.samples, 3);
        assert_eq!(partial.peak_instances, 9);
        assert_eq!(partial.max_queue_depth, 0);
        let json = serde_json::to_string(&partial).unwrap();
        let back: TimeseriesSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, partial);
    }

    #[test]
    fn observed_gauges_reach_the_report() {
        let mut c = collector();
        c.observe_gauges(4, 0.5, 0.25, 7, 2);
        c.observe_gauges(6, 0.75, 0.5, 3, 1);
        let r = c.finish(SimTime::from_secs(1));
        let t = &r.timeseries_summary;
        assert!(t.any());
        assert_eq!(t.samples, 2);
        assert_eq!(t.peak_instances, 6);
        assert_eq!(t.max_queue_depth, 7);
        assert!((t.mean_instances - 5.0).abs() < 1e-12);
        assert!((t.peak_cpu_occupancy - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = collector().finish(SimTime::from_secs(1));
        assert_eq!(r.total_completed(), 0);
        assert_eq!(r.violation_rate(), 0.0);
        assert_eq!(r.goodput_rps(), 0.0);
        assert_eq!(r.throughput_per_resource(), 0.0);
        assert_eq!(r.cold_request_rate(), 0.0);
        assert_eq!(r.cold_launch_rate(), 0.0);
    }
}
