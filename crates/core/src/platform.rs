//! The INFless platform: batch-aware dispatcher, auto-scaling engine
//! and cold-start manager wired together (Fig. 4).
//!
//! Event flow per request: the gateway receives an arrival ❶, the
//! batch-aware dispatcher routes it to the instance whose target rate
//! (three-case controller, §3.2) is least satisfied ❷; the instance's
//! built-in batch queue fills until full or timed out ❸; execution is
//! simulated by the hardware substrate ❹. Every scaler tick the
//! auto-scaling engine re-splits observed RPS across instances, parks
//! or launches capacity via Algorithm 1 ❺, and the LSTH cold-start
//! manager decides how long idle capacity survives ❻.

use std::collections::VecDeque;
use std::time::Instant;

use infless_cluster::{ClusterSpec, InstanceId, Request, RequestId};
use infless_faults::{FaultEvent, FaultSchedule};
use infless_llm::LlmConfig;
use infless_models::{
    profile::ConfigGrid, HardwareCalibration, HardwareModel, ModelSpec, ProfileDatabase,
};
use infless_sim::{EventQueue, SimDuration, SimTime, StagedStream};
use infless_telemetry::{DecisionEvent, DecisionKind, DecisionReason, FaultTag};
use infless_workload::Workload;
use std::collections::HashMap;

use crate::batching::{split_rate, RpsWindow, DEFAULT_ALPHA};
use crate::chains::{split_slo, split_slo_equal, ChainReport, ChainSpec, ChainSplit};
use crate::coldstart::{
    ColdStartPolicy, FixedKeepAlive, HybridHistogram, Lsth, Windows, DEFAULT_GAMMA,
};
use crate::engine::{Engine, EngineEvent, FunctionInfo};
use crate::metrics::{RunReport, StartupKind};
use crate::predictor::{CopPredictor, DEFAULT_OFFSET};
use crate::residency::ResidencyConfig;
use crate::router::{DeficitRouter, RouterEntry};
use crate::scheduler::{Scheduler, SchedulerConfig};

/// Which cold-start policy the platform's cold-start manager runs —
/// LSTH by default; HHP and fixed windows for the Fig. 16 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColdStartConfig {
    /// The paper's Long-Short Term Histogram policy.
    Lsth {
        /// Blend weight γ (§3.5, default 0.5).
        gamma: f64,
    },
    /// The hybrid histogram policy baseline (4-hour window).
    Hhp,
    /// A fixed keep-alive window with no pre-warming.
    Fixed(SimDuration),
}

impl ColdStartConfig {
    fn build(self) -> Box<dyn ColdStartPolicy> {
        match self {
            ColdStartConfig::Lsth { gamma } => Box::new(Lsth::new(gamma)),
            ColdStartConfig::Hhp => Box::new(HybridHistogram::new()),
            ColdStartConfig::Fixed(d) => Box::new(FixedKeepAlive::new(d)),
        }
    }
}

/// INFless configuration: the §3 defaults plus the ablation switches
/// used by the Fig. 11 component analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InflessConfig {
    /// Scale-oscillation damping constant (§3.2, default 0.8).
    pub alpha: f64,
    /// Cold-start manager policy (LSTH with γ = 0.5 by default).
    pub coldstart: ColdStartConfig,
    /// COP prediction inflation (§3.3, default 1.10; the OP ablation
    /// sets 1.5 / 2.0).
    pub cop_offset: f64,
    /// Algorithm 1 knobs (placement strategy, batch cap, greedy order).
    pub scheduler: SchedulerConfig,
    /// Auto-scaler invocation period.
    pub scaler_period: SimDuration,
    /// Sliding window for the RPS monitor.
    pub monitor_window: SimDuration,
    /// Minimum spacing between emergency (drop-triggered) scale-outs
    /// per function.
    pub emergency_backoff: SimDuration,
    /// How chain end-to-end SLOs are divided across stages.
    pub chain_split: ChainSplit,
    /// Hardware calibration override (testbed defaults otherwise) —
    /// used by the interference/sensitivity ablations.
    pub hardware: HardwareCalibration,
    /// GPU memory tier (Torpor-style model swapping). Disabled by
    /// default: runs stay bit-identical to the pre-tier engine.
    pub residency: ResidencyConfig,
    /// Autoregressive (LLM) serving. Disabled by default: runs stay
    /// bit-identical to the pre-LLM engine.
    pub llm: LlmConfig,
}

impl Default for InflessConfig {
    fn default() -> Self {
        InflessConfig {
            alpha: DEFAULT_ALPHA,
            coldstart: ColdStartConfig::Lsth {
                gamma: DEFAULT_GAMMA,
            },
            cop_offset: DEFAULT_OFFSET,
            scheduler: SchedulerConfig::default(),
            scaler_period: SimDuration::from_secs(1),
            monitor_window: SimDuration::from_secs(10),
            emergency_backoff: SimDuration::from_millis(200),
            chain_split: ChainSplit::default(),
            hardware: HardwareCalibration::default(),
            residency: ResidencyConfig::default(),
            llm: LlmConfig::default(),
        }
    }
}

/// Chain bookkeeping: per-function stage topology, in-flight chain
/// start times, and per-chain end-to-end reports.
#[derive(Debug, Default)]
struct ChainCtx {
    /// Which chain (index) a function belongs to, if any.
    chain_of_fn: Vec<Option<usize>>,
    /// The next stage's function index, if the function is a non-final
    /// chain stage.
    next_of_fn: Vec<Option<usize>>,
    /// Whether the function is some chain's entry stage.
    entry_of_fn: Vec<Option<usize>>,
    /// Chain-entry timestamps of in-flight stage requests.
    starts: HashMap<RequestId, SimTime>,
    /// Per-chain end-to-end results.
    reports: Vec<ChainReport>,
}

impl ChainCtx {
    /// # Panics
    ///
    /// Panics if a chain references an unknown function or a function
    /// appears in more than one chain.
    fn new(specs: &[ChainSpec], functions: usize) -> Self {
        let mut ctx = ChainCtx {
            chain_of_fn: vec![None; functions],
            next_of_fn: vec![None; functions],
            entry_of_fn: vec![None; functions],
            starts: HashMap::new(),
            reports: specs.iter().map(ChainReport::new).collect(),
        };
        for (ci, chain) in specs.iter().enumerate() {
            for (pos, &stage) in chain.stages().iter().enumerate() {
                assert!(stage < functions, "chain stage {stage} is not deployed");
                assert!(
                    ctx.chain_of_fn[stage].is_none(),
                    "function {stage} appears in more than one chain"
                );
                ctx.chain_of_fn[stage] = Some(ci);
                ctx.next_of_fn[stage] = chain.stages().get(pos + 1).copied();
                if pos == 0 {
                    ctx.entry_of_fn[stage] = Some(ci);
                }
            }
        }
        ctx
    }

    fn chain_of(&self, f: usize) -> Option<usize> {
        self.chain_of_fn.get(f).copied().flatten()
    }

    fn next_of(&self, f: usize) -> Option<usize> {
        self.next_of_fn.get(f).copied().flatten()
    }

    fn entry_of(&self, f: usize) -> Option<usize> {
        self.entry_of_fn.get(f).copied().flatten()
    }
}

/// A parked (drained, kept-alive) instance awaiting re-use.
#[derive(Debug, Clone, Copy)]
struct ParkedInstance {
    id: InstanceId,
    window: RpsWindow,
    /// Carried from the scheduler so fault recovery can judge retry
    /// feasibility without re-predicting.
    predicted_exec: SimDuration,
}

/// A request parked in the epoch-mode pending buffer, awaiting the
/// barrier flush. The two origins keep their distinct terminal
/// accounting: a fresh arrival that still cannot be placed is a
/// gateway *drop*, a fault-displaced request is *shed* (preserving the
/// `displaced = retried + shed` invariant).
#[derive(Debug)]
enum PendingRequest {
    /// A gateway/chain-relay arrival no instance could take.
    Fresh(Request),
    /// A fault-displaced request awaiting the rebuilt fleet.
    Displaced(Request),
}

/// What [`InflessPlatform::retry_displaced`] does when a displaced
/// request cannot be re-dispatched right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RetryMode {
    /// Shed immediately (the legacy event loop: capacity was already
    /// rebuilt by the fault handler).
    Terminal,
    /// Park in the pending buffer until the next epoch barrier (the
    /// sharded path: scale-out is deferred, so the fleet the request
    /// needs may not exist yet).
    Defer,
}

/// Per-function platform state.
#[derive(Debug)]
struct FnState {
    coldstart: Box<dyn ColdStartPolicy>,
    recent_arrivals: VecDeque<SimTime>,
    dispatch: DeficitRouter,
    parked: Vec<ParkedInstance>,
    last_activity: SimTime,
    had_activity: bool,
    last_emergency: SimTime,
    last_consolidation: SimTime,
    cached_windows: Windows,
    windows_refreshed: Option<SimTime>,
    last_idle_recorded: SimTime,
    /// Epoch-mode only: requests waiting for the barrier flush.
    pending: Vec<PendingRequest>,
    /// Epoch-mode only: dispatch throughput lost to kill directives
    /// since the last barrier, recaptured at the next flush.
    pending_lost_rate: f64,
    /// Epoch-mode only: the startup-kind verdict captured when the
    /// first unplaceable request of the epoch was deferred, evaluated
    /// against the *pre-arrival* activity — exactly the evidence the
    /// legacy emergency path uses at scale-out time.
    pending_startup: Option<StartupKind>,
    /// When the model's weights last entered host RAM (any launch),
    /// `None` before the first launch. With the residency tier enabled
    /// the host copy survives past instance retirement for the host
    /// keep-alive window, turning relaunches into swap-ins.
    host_copy_since: Option<SimTime>,
    /// Whether the one-time Algorithm 1 candidate-grid walk has been
    /// emitted on the decisions channel for this function.
    candidates_traced: bool,
}

/// The INFless platform. Create with [`InflessPlatform::new`], then
/// [`InflessPlatform::run`] a workload to get a [`RunReport`].
#[derive(Debug)]
pub struct InflessPlatform {
    pub(crate) engine: Engine,
    predictor: CopPredictor,
    scheduler: Scheduler,
    pub(crate) config: InflessConfig,
    fns: Vec<FnState>,
    chains: ChainCtx,
    pub(crate) faults: FaultSchedule,
    /// Dispatch counter driving the sampled (1-in-64) wall-clock
    /// overhead measurement; deterministic, and the timing itself never
    /// feeds back into simulated state.
    dispatch_tick: u32,
    /// Epoch (sharded) mode: every allocation-touching reaction —
    /// emergency scale-out, fault-recovery scale-out — is deferred to
    /// the next barrier flush instead of running mid-epoch, so cluster
    /// replicas only need to synchronise at barriers.
    deferred_scaling: bool,
}

impl InflessPlatform {
    /// Builds the platform: profiles the deployed models' operators
    /// offline (the ❸ profile database of Fig. 4) and initializes the
    /// per-function controllers.
    pub fn new(
        cluster: ClusterSpec,
        functions: Vec<FunctionInfo>,
        config: InflessConfig,
        seed: u64,
    ) -> Self {
        Self::with_chains(cluster, functions, Vec::new(), config, seed)
    }

    /// Builds the platform with declared function chains (the §7
    /// future-work extension; see [`crate::chains`]). Each chain's
    /// end-to-end SLO is split across its stages (overriding the
    /// stages' standalone SLOs) and every completed stage request is
    /// relayed to the next stage automatically.
    ///
    /// # Panics
    ///
    /// Panics if a chain references an unknown function, a function
    /// appears in more than one chain, or some chain stage has no
    /// profiled configuration.
    pub fn with_chains(
        cluster: ClusterSpec,
        mut functions: Vec<FunctionInfo>,
        chain_specs: Vec<ChainSpec>,
        config: InflessConfig,
        seed: u64,
    ) -> Self {
        let construction_started = std::time::Instant::now();
        let hardware = HardwareModel::new(config.hardware);
        let specs: Vec<ModelSpec> = functions.iter().map(|f| f.spec().clone()).collect();
        let (db, cache_outcome) =
            ProfileDatabase::cached_with_outcome(&hardware, &specs, &ConfigGrid::standard(), seed);
        let predictor = CopPredictor::with_offset(db, hardware.clone(), config.cop_offset);
        // Chain setup: split each end-to-end SLO across its stages and
        // override the stage functions' SLOs accordingly.
        let chains = ChainCtx::new(&chain_specs, functions.len());
        for chain in &chain_specs {
            let slos = match config.chain_split {
                ChainSplit::Proportional => split_slo(&predictor, &specs, chain)
                    .expect("every chain stage must be deployed and profiled"),
                ChainSplit::Equal => split_slo_equal(chain),
            };
            for (&stage, slo) in chain.stages().iter().zip(slos) {
                let llm = functions[stage].llm().copied();
                let mut rebuilt = FunctionInfo::with_max_batch(
                    functions[stage].spec().clone(),
                    slo,
                    functions[stage].max_batch(),
                );
                // The SLO override must not strip the stage's
                // autoregressive class.
                if let Some(llm) = llm {
                    rebuilt = rebuilt.with_llm(llm);
                }
                functions[stage] = rebuilt;
            }
        }
        let scheduler = Scheduler::new(config.scheduler);
        let n = functions.len();
        let mut engine = Engine::new("INFless", cluster, hardware, functions, seed);
        if config.residency.enabled {
            engine.enable_device_memory();
        }
        if config.llm.enabled {
            engine.set_llm_batching(config.llm.batching);
            // KV arenas are real device memory: book them against the
            // per-GPU budget so placement respects cache headroom.
            engine.enable_device_memory();
        }
        engine.collector.mark_started(construction_started);
        engine.collector.set_profile_cache(cache_outcome);
        let fns = (0..n)
            .map(|_| FnState {
                coldstart: config.coldstart.build(),
                recent_arrivals: VecDeque::new(),
                dispatch: DeficitRouter::new(),
                parked: Vec::new(),
                last_activity: SimTime::ZERO,
                had_activity: false,
                last_emergency: SimTime::ZERO,
                last_consolidation: SimTime::ZERO,
                cached_windows: Windows {
                    pre_warm: SimDuration::ZERO,
                    keep_alive: SimDuration::from_hours(4),
                },
                windows_refreshed: None,
                last_idle_recorded: SimTime::ZERO,
                pending: Vec::new(),
                pending_lost_rate: 0.0,
                pending_startup: None,
                host_copy_since: None,
                candidates_traced: false,
            })
            .collect();
        InflessPlatform {
            engine,
            predictor,
            scheduler,
            config,
            fns,
            chains,
            faults: FaultSchedule::empty(),
            dispatch_tick: 0,
            deferred_scaling: false,
        }
    }

    /// Attaches a fault schedule to inject during [`Self::run`]. The
    /// default (an empty schedule) leaves the run bit-identical to a
    /// platform built without the fault subsystem.
    pub fn with_fault_schedule(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a telemetry sink. The default ([`NullSink`]) records
    /// nothing and leaves the run bit-identical to a platform built
    /// before the telemetry subsystem existed.
    ///
    /// [`NullSink`]: infless_telemetry::NullSink
    pub fn with_telemetry(mut self, sink: Box<dyn infless_telemetry::TelemetrySink>) -> Self {
        self.engine.set_telemetry(sink);
        self
    }

    /// Attaches a shared metrics registry, fed at every scaler tick
    /// with the gauge readings the collector records anyway. The
    /// registry never feeds back into the simulation.
    pub fn with_metrics(mut self, handle: infless_telemetry::MetricsHandle) -> Self {
        self.engine.set_metrics(handle);
        self
    }

    /// Access to the COP predictor (for the Fig. 8 experiment).
    pub fn predictor(&self) -> &CopPredictor {
        &self.predictor
    }

    /// Runs the workload to completion and returns the report.
    pub fn run(mut self, workload: &Workload) -> RunReport {
        let mut queue: EventQueue<EngineEvent> = EventQueue::new();
        // Arrivals stay in the sorted workload slice and merge ahead of
        // the heap at pop time (equal-timestamp ties go to the arrival,
        // exactly as when they were pre-scheduled with the lowest
        // sequence numbers — including against fault events: the
        // request reaches the gateway an instant before the machine
        // dies). Keeping millions of arrivals out of the heap is a
        // large constant-factor win on the hot path.
        let mut arrivals = StagedStream::new(workload.arrivals());
        let tick_horizon = workload.end_time() + SimDuration::from_secs(5);
        if !workload.is_empty() {
            queue.schedule(
                SimTime::ZERO + self.config.scaler_period,
                EngineEvent::ScalerTick,
            );
        }
        let faults = std::mem::take(&mut self.faults);
        for &(t, ev) in faults.events() {
            queue.schedule(t, EngineEvent::Fault(ev));
        }
        while let Some((t, ev)) = arrivals.next(&mut queue, EngineEvent::Arrival) {
            self.engine.advance(t);
            match ev {
                EngineEvent::Arrival(f) => self.on_arrival(f, &mut queue),
                EngineEvent::InstanceReady(id) => self.engine.on_instance_ready(id, &mut queue),
                EngineEvent::SwapComplete(id) => self.engine.on_swap_complete(id, &mut queue),
                EngineEvent::BatchTimeout(id) => self.engine.on_batch_timeout(id, &mut queue),
                EngineEvent::BatchComplete(id) => {
                    // A fault may have killed the instance mid-batch;
                    // its completion event is then stale (None).
                    if let Some(done) = self.engine.on_batch_complete(id, &mut queue) {
                        self.fns[done.function].last_activity = t;
                        self.relay_chain_stages(&done, &mut queue);
                    }
                }
                EngineEvent::DecodeStep(id) => {
                    // Some only when the episode drained (instance idle).
                    if let Some(done) = self.engine.on_decode_step(id, &mut queue) {
                        self.fns[done.function].last_activity = t;
                        self.relay_chain_stages(&done, &mut queue);
                    }
                }
                EngineEvent::ScalerTick => {
                    self.scaler_tick(&mut queue);
                    if t < tick_horizon {
                        queue.schedule(t + self.config.scaler_period, EngineEvent::ScalerTick);
                    }
                }
                EngineEvent::Fault(fault) => self.handle_fault(fault, &mut queue),
                EngineEvent::DirectiveKill(id, tag) => {
                    self.handle_kill_directive(id, tag, &mut queue)
                }
                EngineEvent::DirectiveStraggler {
                    server,
                    slowdown_pct,
                    duration,
                } => self
                    .engine
                    .apply_straggler_directive(server, slowdown_pct, duration),
            }
        }
        let mut report = self.engine.finish();
        report.chains = self.chains.reports;
        report
    }

    // --- epoch (sharded) driver hooks --------------------------------------

    /// Switches the platform into epoch mode (see
    /// [`crate::sharded`]): mid-epoch reactions that would touch the
    /// cluster books are deferred to the barrier flush.
    pub(crate) fn set_deferred_scaling(&mut self) {
        self.deferred_scaling = true;
    }

    /// Drains and delivers every event (staged arrival or queued) with
    /// timestamp `<= until`, then advances the clock to the barrier.
    /// Scaler ticks and raw fault events are never scheduled in epoch
    /// mode — scaling runs at barriers and faults arrive pre-resolved
    /// as directives.
    pub(crate) fn epoch_drain(
        &mut self,
        arrivals: &mut StagedStream<'_, usize>,
        queue: &mut EventQueue<EngineEvent>,
        until: SimTime,
    ) {
        while let Some((t, ev)) = arrivals.next_until(queue, until, EngineEvent::Arrival) {
            self.engine.advance(t);
            match ev {
                EngineEvent::Arrival(f) => self.on_arrival(f, queue),
                EngineEvent::InstanceReady(id) => self.engine.on_instance_ready(id, queue),
                EngineEvent::SwapComplete(id) => self.engine.on_swap_complete(id, queue),
                EngineEvent::BatchTimeout(id) => self.engine.on_batch_timeout(id, queue),
                EngineEvent::BatchComplete(id) => {
                    if let Some(done) = self.engine.on_batch_complete(id, queue) {
                        self.fns[done.function].last_activity = t;
                        self.relay_chain_stages(&done, queue);
                    }
                }
                EngineEvent::DecodeStep(id) => {
                    if let Some(done) = self.engine.on_decode_step(id, queue) {
                        self.fns[done.function].last_activity = t;
                        self.relay_chain_stages(&done, queue);
                    }
                }
                EngineEvent::DirectiveKill(id, tag) => self.handle_kill_directive(id, tag, queue),
                EngineEvent::DirectiveStraggler {
                    server,
                    slowdown_pct,
                    duration,
                } => self
                    .engine
                    .apply_straggler_directive(server, slowdown_pct, duration),
                EngineEvent::ScalerTick | EngineEvent::Fault(_) => {
                    unreachable!("epoch mode schedules neither scaler ticks nor raw faults")
                }
            }
        }
        self.engine.advance(until);
    }

    /// The barrier flush for one function: recapture throughput lost to
    /// kill directives, scale out once for any pending (unplaceable)
    /// requests, then give every pending request its terminal retry.
    pub(crate) fn barrier_flush_fn(&mut self, f: usize, queue: &mut EventQueue<EngineEvent>) {
        let lost = std::mem::take(&mut self.fns[f].pending_lost_rate);
        let mut needed = lost;
        if !self.fns[f].pending.is_empty() {
            // Same residual estimate the emergency path uses: the burst
            // rate minus what the dispatch set already absorbs.
            let now = self.engine.now();
            let rps = self.instant_rps(f, now).max(1.0);
            let assigned: f64 = self.fns[f].dispatch.iter().map(|e| e.window.r_up()).sum();
            needed += (rps - assigned).max(1.0);
        }
        if needed > 0.0 {
            let startup = match self.fns[f].pending_startup.take() {
                Some(kind) => kind,
                // Pure lost-rate recapture (no deferred arrival): the
                // same live check the legacy fault path runs.
                None => self.startup_kind(f),
            };
            self.scale_out(f, needed, startup, queue);
        } else {
            self.fns[f].pending_startup = None;
        }
        let pending = std::mem::take(&mut self.fns[f].pending);
        for p in pending {
            match p {
                PendingRequest::Fresh(req) => {
                    if self.dispatch(f, req, queue)
                        || (self.unpark_one(f) && self.dispatch(f, req, queue))
                    {
                        continue;
                    }
                    self.engine.drop_request(&req);
                    if let Some(chain) = self.chains.chain_of(f) {
                        self.chains.starts.remove(&req.id);
                        self.chains.reports[chain].lost += 1;
                    }
                }
                PendingRequest::Displaced(req) => self.retry_or_shed(req, queue),
            }
        }
    }

    /// Hands over the per-chain end-to-end reports (the sharded merge
    /// collects each chain from the shard that owned its stages).
    pub(crate) fn take_chain_reports(&mut self) -> Vec<ChainReport> {
        std::mem::take(&mut self.chains.reports)
    }

    // --- dispatcher (❷) ---------------------------------------------------

    fn on_arrival(&mut self, f: usize, queue: &mut EventQueue<EngineEvent>) {
        // A gateway arrival at a chain's entry stage starts that
        // chain's end-to-end clock.
        let chain_start = self.chains.entry_of(f).map(|_| self.engine.now());
        self.deliver(f, chain_start, queue);
    }

    /// Delivers one request to function `f`: updates the monitors,
    /// dispatches (unparking or emergency-scaling if needed), and
    /// registers chain context. Used for gateway arrivals and for
    /// stage-to-stage chain relays alike.
    fn deliver(
        &mut self,
        f: usize,
        chain_start: Option<SimTime>,
        queue: &mut EventQueue<EngineEvent>,
    ) {
        let now = self.engine.now();
        self.observe_idle(f, now);
        let st = &mut self.fns[f];
        let prev_activity = st.last_activity;
        let prev_had_activity = st.had_activity;
        st.recent_arrivals.push_back(now);
        st.last_activity = now;
        st.had_activity = true;

        let req = self.engine.mint_request(f);
        if let (Some(start), Some(_)) = (chain_start, self.chains.chain_of(f)) {
            self.chains.starts.insert(req.id, start);
        }
        if self.dispatch(f, req, queue) {
            return;
        }
        // No instance could take the request: unpark or scale out.
        if self.unpark_one(f) && self.dispatch(f, req, queue) {
            return;
        }
        if self.deferred_scaling {
            // Epoch mode: no mid-epoch allocation. The request waits in
            // the pending buffer for the barrier flush (which scales
            // out once, deterministically) instead of triggering an
            // emergency launch whose placement would depend on which
            // shard got there first. The startup-kind verdict is frozen
            // now, against the pre-arrival activity, because by flush
            // time this very arrival would count as "recent activity"
            // and turn every first launch spuriously pre-warmed.
            if self.fns[f].pending_startup.is_none() {
                let kind = self.startup_kind_since(f, prev_activity, prev_had_activity);
                self.fns[f].pending_startup = Some(kind);
            }
            self.fns[f].pending.push(PendingRequest::Fresh(req));
            return;
        }
        if self.emergency_scale(f, prev_activity, prev_had_activity, queue)
            && self.dispatch(f, req, queue)
        {
            return;
        }
        self.engine.drop_request(&req);
        if let Some(chain) = self.chains.chain_of(f) {
            self.chains.starts.remove(&req.id);
            self.chains.reports[chain].lost += 1;
        }
    }

    /// Relays every completed request of a chain stage to the next
    /// stage, or closes the chain's end-to-end measurement at the final
    /// stage.
    fn relay_chain_stages(
        &mut self,
        done: &crate::engine::CompletedBatch,
        queue: &mut EventQueue<EngineEvent>,
    ) {
        let Some(chain) = self.chains.chain_of(done.function) else {
            return;
        };
        let next = self.chains.next_of(done.function);
        let now = self.engine.now();
        for req in &done.requests {
            let Some(start) = self.chains.starts.remove(&req.id) else {
                continue; // not part of a chain traversal (defensive)
            };
            match next {
                Some(next_f) => self.deliver(next_f, Some(start), queue),
                None => {
                    let report = &mut self.chains.reports[chain];
                    let e2e = now - start;
                    report.completed += 1;
                    report.e2e_ms.add(e2e.as_millis_f64());
                    if e2e > report.e2e_slo {
                        report.violations += 1;
                    }
                }
            }
        }
    }

    /// Routes to the dispatch-set instance whose target rate is least
    /// satisfied (deficit routing, via the indexed [`DeficitRouter`]);
    /// returns `false` if every instance's pending batch is full.
    fn dispatch(&mut self, f: usize, req: Request, queue: &mut EventQueue<EngineEvent>) -> bool {
        self.dispatch_tick = self.dispatch_tick.wrapping_add(1);
        let t0 = self.dispatch_tick.is_multiple_of(64).then(Instant::now);
        let engine = &mut self.engine;
        let hit = self.fns[f]
            .dispatch
            .dispatch(|id| engine.enqueue(id, req, queue));
        if let Some(t0) = t0 {
            engine
                .collector
                .dispatch_overhead(t0.elapsed().as_nanos() as f64);
        }
        hit.is_some()
    }

    /// Moves one parked instance back into the dispatch set.
    fn unpark_one(&mut self, f: usize) -> bool {
        let st = &mut self.fns[f];
        if let Some(p) = st.parked.pop() {
            st.dispatch.push(RouterEntry {
                id: p.id,
                window: p.window,
                rate: p.window.r_up(),
                sent: 0,
                predicted_exec: p.predicted_exec,
            });
            true
        } else {
            false
        }
    }

    /// Drop-triggered scale-out between ticks (rate-limited unless the
    /// function has no capacity at all).
    fn emergency_scale(
        &mut self,
        f: usize,
        prev_activity: SimTime,
        prev_had_activity: bool,
        queue: &mut EventQueue<EngineEvent>,
    ) -> bool {
        let now = self.engine.now();
        let st = &self.fns[f];
        let has_capacity = !st.dispatch.is_empty();
        if has_capacity && now.saturating_since(st.last_emergency) < self.config.emergency_backoff {
            return false;
        }
        self.fns[f].last_emergency = now;
        let rps = self.instant_rps(f, now).max(1.0);
        let assigned: f64 = self.fns[f].dispatch.iter().map(|e| e.window.r_up()).sum();
        let residual = (rps - assigned).max(1.0);
        let startup = self.startup_kind_since(f, prev_activity, prev_had_activity);
        self.scale_out(f, residual, startup, queue) > 0
    }

    /// Instantaneous arrival-rate estimate over the last second (or the
    /// elapsed time since the first recent arrival when shorter) — the
    /// burst detector behind emergency scaling.
    fn instant_rps(&self, f: usize, now: SimTime) -> f64 {
        let st = &self.fns[f];
        let horizon = now.saturating_sub(SimDuration::from_secs(1));
        let mut recent = 0u64;
        let mut oldest = now;
        for t in st
            .recent_arrivals
            .iter()
            .rev()
            .take_while(|t| **t >= horizon)
        {
            recent += 1;
            oldest = *t;
        }
        let span = now.saturating_since(oldest).as_secs_f64().clamp(0.1, 1.0);
        recent as f64 / span
    }

    // --- auto-scaling engine (❺) -------------------------------------------

    fn scaler_tick(&mut self, queue: &mut EventQueue<EngineEvent>) {
        for f in 0..self.fns.len() {
            self.scaler_pass_fn(f, queue);
        }
        self.cluster_sample();
    }

    /// One function's slice of the scaler tick: monitor refresh, §3.2
    /// rate splitting, consolidation and the cold-start manager. The
    /// sharded coordinator calls this per function (function-major) at
    /// scaler barriers; the legacy loop calls it for every function in
    /// a row — same code, same order.
    pub(crate) fn scaler_pass_fn(&mut self, f: usize, queue: &mut EventQueue<EngineEvent>) {
        let now = self.engine.now();
        self.prune_monitor(f, now);
        self.drop_dead_entries(f);
        let rps = self.observed_rps(f, now);

        let windows: Vec<RpsWindow> = self.fns[f].dispatch.iter().map(|e| e.window).collect();
        let plan = split_rate(rps, &windows, self.config.alpha);

        if plan.residual > 0.0 {
            let mut residual = plan.residual;
            while residual > 1e-9 && self.unpark_one(f) {
                let got = self.fns[f]
                    .dispatch
                    .iter()
                    .last()
                    .expect("just pushed")
                    .window
                    .r_up();
                residual -= got;
            }
            if residual > 1e-9 {
                let startup = self.startup_kind(f);
                self.scale_out(f, residual, startup, queue);
            }
            // Saturate: every dispatch entry runs at its r_up.
            self.fns[f].dispatch.retune(|entries| {
                for e in entries {
                    e.rate = e.window.r_up();
                    e.sent = 0;
                }
            });
        } else {
            self.fns[f].dispatch.retune(|entries| {
                for (e, rate) in entries.iter_mut().zip(&plan.rates) {
                    e.rate = *rate;
                    e.sent = 0;
                }
            });
            if plan.release_recommended {
                self.park_excess(f, rps);
            }
        }

        self.maybe_consolidate(f, rps, queue);

        // Cold-start manager (❻): refresh windows and reap.
        self.refresh_windows(f, now);
        self.reap(f, now);
    }

    /// The cluster-wide tail of the scaler tick: fragment ratio,
    /// provisioning timeline and gauge sampling. Legacy runs call it
    /// after every per-function pass; the sharded coordinator replaces
    /// it with cross-shard sums recorded on shard 0.
    fn cluster_sample(&mut self) {
        let now = self.engine.now();
        let beta = self.engine.beta();
        let frag = self.engine.cluster().fragment_ratio(beta);
        self.engine.collector.fragment_sample(frag);
        let used = self.engine.cluster().weighted_in_use(beta);
        self.engine.collector.provision_point(now, used);
        let host_mb = self.host_cache_mb_now();
        self.engine.set_host_cache_mb(host_mb);
        self.engine.sample_telemetry();
    }

    /// Host-RAM model-cache occupancy right now: the summed weight
    /// footprint of functions whose host copy is still inside its
    /// retention window. Behaviour-neutral to sample unconditionally:
    /// the LSTH histogram reads only prune samples that every later
    /// query would prune anyway.
    pub fn host_cache_mb_now(&mut self) -> f64 {
        if !self.config.residency.enabled {
            return 0.0;
        }
        let mut total = 0.0;
        for f in 0..self.engine.functions().len() {
            let last = self.fns[f].last_activity;
            let had = self.fns[f].had_activity;
            if self.host_resident_since(f, last, had) {
                total += self.engine.functions()[f].spec().size_mb();
            }
        }
        total
    }

    /// Runs Algorithm 1 for `residual` RPS and launches the resulting
    /// instances. Returns how many were launched.
    fn scale_out(
        &mut self,
        f: usize,
        residual: f64,
        startup: StartupKind,
        queue: &mut EventQueue<EngineEvent>,
    ) -> usize {
        let function = self.engine.functions()[f].clone();
        let slo = function.slo();
        let (startup_cost, device_mb) = self.schedule_cost(f, startup);
        let decisions_on = self.engine.decisions_enabled();
        let mut trace = if decisions_on {
            let mut buf = Vec::new();
            if !self.fns[f].candidates_traced {
                self.fns[f].candidates_traced = true;
                self.scheduler
                    .trace_candidates(&self.predictor, &function, &mut buf);
            }
            Some(buf)
        } else {
            None
        };
        let wall = Instant::now();
        let outcome = self.scheduler.schedule_with_cost_traced(
            &self.predictor,
            &function,
            residual,
            self.engine.cluster_mut(),
            startup_cost,
            device_mb,
            trace.as_mut(),
        );
        let elapsed_us = wall.elapsed().as_secs_f64() * 1e6;
        self.engine.collector.sched_overhead(elapsed_us);
        let launched = outcome.instances.len();
        if let Some(mut buf) = trace {
            let mut summary = DecisionEvent::new(DecisionKind::ScaleOut);
            summary.value = launched as f64;
            summary.aux = residual;
            buf.push(summary);
            for ev in buf {
                self.engine.record_decision(f, ev);
            }
        }
        for si in outcome.instances {
            let budget = (slo - si.predicted_exec).max(SimDuration::from_millis(1));
            let id =
                self.engine
                    .launch_preallocated(f, si.config, si.placement, startup, budget, queue);
            self.fns[f].dispatch.push(RouterEntry {
                id,
                window: si.window,
                rate: si.window.r_up(),
                sent: 0,
                predicted_exec: si.predicted_exec,
            });
        }
        if launched > 0 && self.config.residency.enabled {
            // The launches pulled the weights through host RAM; the
            // copy now outlives the instances for the host window.
            self.fns[f].host_copy_since = Some(self.engine.now());
        }
        launched
    }

    /// Algorithm 1's startup-cost term: the amortized launch delay and
    /// the device-memory demand the scheduler must book. Both are zero
    /// with the residency tier disabled, which keeps `schedule`'s
    /// decisions bit-identical to the pre-tier scheduler.
    fn schedule_cost(&mut self, f: usize, startup: StartupKind) -> (SimDuration, f64) {
        // Autoregressive instances pin a KV-cache arena on device next
        // to the weights; the scheduler must see that demand or it
        // will over-pack GPUs the engine then refuses to launch on.
        let kv_mb = self.engine.functions()[f]
            .llm()
            .map_or(0.0, |l| l.kv_arena_mb);
        if self.config.residency.enabled {
            (
                self.engine.startup_delay(f, startup),
                self.engine.functions()[f].spec().size_mb() + kv_mb,
            )
        } else if kv_mb > 0.0 {
            (
                SimDuration::ZERO,
                self.engine.functions()[f].spec().size_mb() + kv_mb,
            )
        } else {
            (SimDuration::ZERO, 0.0)
        }
    }

    /// The startup kind a fresh launch of `f` would get right now —
    /// the single residency check shared by the scaler, fault
    /// recovery and consolidation paths.
    fn startup_kind(&mut self, f: usize) -> StartupKind {
        let last = self.fns[f].last_activity;
        let had = self.fns[f].had_activity;
        self.startup_kind_since(f, last, had)
    }

    /// Residency tier check against explicit (pre-arrival) activity
    /// evidence: live instances ⇒ pre-warmed attach, an unexpired
    /// host-RAM copy ⇒ PCIe swap-in, otherwise a full cold boot. The
    /// middle tier exists only with [`ResidencyConfig::enabled`] set.
    fn startup_kind_since(
        &mut self,
        f: usize,
        last_activity: SimTime,
        had_activity: bool,
    ) -> StartupKind {
        if self.image_warm_since(f, last_activity, had_activity) {
            StartupKind::PreWarmed
        } else if self.host_resident_since(f, last_activity, had_activity) {
            StartupKind::SwapIn
        } else {
            StartupKind::Cold
        }
    }

    /// Whether the model still holds a host-RAM copy: launched at
    /// least once, small enough for the host cache, and inside the
    /// tiered-LSTH host keep-alive window since its last load or
    /// activity. Strictly per-function state — the sharded driver
    /// relies on this never consulting other functions' books.
    fn host_resident_since(
        &mut self,
        f: usize,
        last_activity: SimTime,
        had_activity: bool,
    ) -> bool {
        let residency = self.config.residency;
        if !residency.enabled {
            return false;
        }
        let Some(loaded) = self.fns[f].host_copy_since else {
            return false;
        };
        if self.engine.functions()[f].spec().size_mb() > residency.host_cache_mb {
            return false;
        }
        let now = self.engine.now();
        let anchor = if had_activity {
            loaded.max(last_activity)
        } else {
            loaded
        };
        let window = self.fns[f]
            .coldstart
            .host_keep_alive(now)
            .mul_f64(residency.host_retention);
        now.saturating_since(anchor) < window
    }

    // --- fault handling & recovery -----------------------------------------

    /// Applies one injected fault and runs the INFless recovery policy:
    /// forget dead instances, re-run Algorithm 1 for the throughput they
    /// carried, then retry each displaced request against the rebuilt
    /// dispatch set (shedding only when the SLO budget is already
    /// exhausted or no capacity can take it).
    fn handle_fault(&mut self, ev: FaultEvent, queue: &mut EventQueue<EngineEvent>) {
        let outcome = self.engine.on_fault(ev);
        if outcome.killed.is_empty() && outcome.displaced.is_empty() {
            return;
        }
        // Drop dead instances from the routing tables, tallying the
        // dispatch throughput each function lost.
        let mut lost = vec![0.0f64; self.fns.len()];
        for &(f, id) in &outcome.killed {
            let st = &mut self.fns[f];
            if let Some(e) = st.dispatch.remove_by_id(id) {
                lost[f] += e.window.r_up();
            } else {
                st.parked.retain(|p| p.id != id);
            }
        }
        // Recapture the lost throughput with fresh Eq. 10 placements.
        for (f, rate) in lost.iter().enumerate() {
            if *rate > 0.0 {
                let startup = self.startup_kind(f);
                self.scale_out(f, *rate, startup, queue);
            }
        }
        for req in outcome.displaced {
            self.retry_or_shed(req, queue);
        }
    }

    /// Applies a coordinator-resolved kill directive (sharded runs):
    /// the victim is already pinned to a concrete instance id, so only
    /// the recovery policy of [`handle_fault`] remains — forget the
    /// instance, recapture its throughput, retry the displaced batch.
    ///
    /// [`handle_fault`]: InflessPlatform::handle_fault
    fn handle_kill_directive(
        &mut self,
        id: InstanceId,
        tag: FaultTag,
        queue: &mut EventQueue<EngineEvent>,
    ) {
        let Some((f, displaced)) = self.engine.apply_kill_directive(id, tag) else {
            return;
        };
        let st = &mut self.fns[f];
        let lost = if let Some(e) = st.dispatch.remove_by_id(id) {
            e.window.r_up()
        } else {
            st.parked.retain(|p| p.id != id);
            0.0
        };
        if self.deferred_scaling {
            // Epoch mode: recapture the lost throughput at the next
            // barrier flush; displaced requests that no surviving
            // instance can take wait there too.
            self.fns[f].pending_lost_rate += lost;
            for req in displaced {
                self.retry_displaced(req, RetryMode::Defer, queue);
            }
            return;
        }
        if lost > 0.0 {
            let startup = self.startup_kind(f);
            self.scale_out(f, lost, startup, queue);
        }
        for req in displaced {
            self.retry_or_shed(req, queue);
        }
    }

    /// Re-dispatches a request displaced by a fault if its SLO budget
    /// still has room, otherwise sheds it. Displaced requests are not
    /// re-counted as arrivals: the load monitors already saw them once.
    ///
    /// A retry is *hopeless* when the remaining budget is smaller than
    /// the predicted execution time of every instance that could take
    /// it (dispatched or parked) — such a request is shed immediately
    /// instead of being counted as a doomed `retried`.
    fn retry_or_shed(&mut self, req: Request, queue: &mut EventQueue<EngineEvent>) {
        self.retry_displaced(req, RetryMode::Terminal, queue);
    }

    fn retry_displaced(
        &mut self,
        req: Request,
        mode: RetryMode,
        queue: &mut EventQueue<EngineEvent>,
    ) {
        let f = req.function.raw();
        let now = self.engine.now();
        let slo = self.engine.functions()[f].slo();
        let elapsed = now.saturating_since(req.arrival);
        let feasible = elapsed < slo && {
            let budget = slo - elapsed;
            // Autoregressive requests judge feasibility through the
            // two-phase estimate (re-prefill + remaining decode tokens
            // × per-step cost) — their one-shot `predicted_exec` would
            // wildly undershoot a long-generation retry.
            if let Some(estimate) = self.engine.llm_retry_estimate(&req) {
                budget >= estimate
            } else {
                let st = &self.fns[f];
                let fastest = st
                    .dispatch
                    .iter()
                    .map(|e| e.predicted_exec)
                    .chain(st.parked.iter().map(|p| p.predicted_exec))
                    .min();
                fastest.is_some_and(|exec| budget >= exec)
            }
        };
        if feasible
            && (self.dispatch(f, req, queue)
                || (self.unpark_one(f) && self.dispatch(f, req, queue)))
        {
            self.engine.record_retry(&req);
            return;
        }
        match mode {
            RetryMode::Terminal => self.shed_displaced(req),
            // Deferred: the barrier flush rebuilds the fleet first and
            // then retries terminally — a request that is hopeless now
            // may fit a fresh large-batch instance launched there.
            RetryMode::Defer => self.fns[f].pending.push(PendingRequest::Displaced(req)),
        }
    }

    /// Sheds a displaced request, mirroring the chain bookkeeping of the
    /// gateway drop path.
    fn shed_displaced(&mut self, req: Request) {
        self.engine.shed_request(&req);
        if let Some(chain) = self.chains.chain_of(req.function.raw()) {
            if self.chains.starts.remove(&req.id).is_some() {
                self.chains.reports[chain].lost += 1;
            }
        }
    }

    /// Non-uniform re-tuning (§3.1 ❺: the engine "adaptively tunes the
    /// new instance configurations … selecting from the optimized
    /// batch-resource decisions"). Gradual load ramps are absorbed by
    /// many small incremental instances; when a fresh Algorithm 1
    /// solution for the observed rate would be substantially more
    /// resource-efficient than the current dispatch set, replace the
    /// set: launch the optimized instances and park the old ones (they
    /// drain and are reaped by the keep-alive policy).
    fn maybe_consolidate(&mut self, f: usize, rps: f64, queue: &mut EventQueue<EngineEvent>) {
        const MIN_INTERVAL: SimDuration = SimDuration::from_secs(60);
        const MIN_GAIN: f64 = 1.5;
        let now = self.engine.now();
        if rps < 1.0
            || self.fns[f].dispatch.len() < 2
            || now.saturating_since(self.fns[f].last_consolidation) < MIN_INTERVAL
        {
            return;
        }
        let current_weight: f64 = self.fns[f]
            .dispatch
            .iter()
            .map(|e| {
                self.engine
                    .weighted_cost(self.engine.instance(e.id).config())
            })
            .sum();
        let current_capacity: f64 = self.fns[f].dispatch.iter().map(|e| e.window.r_up()).sum();
        if current_weight <= 0.0 {
            return;
        }
        let current_density = current_capacity / current_weight;
        let decisions_on = self.engine.decisions_enabled();
        if decisions_on {
            let mut ev = DecisionEvent::new(DecisionKind::Consolidate);
            ev.value = current_density;
            ev.aux = current_weight;
            self.engine.record_decision(f, ev);
        }

        // Dry-run Algorithm 1 inside a cluster transaction: the trial
        // allocations land on the *real* cluster and are either kept
        // (commit) or rolled back bit-identically — no whole-cluster
        // clone, and no second `schedule()` call whose placements could
        // diverge from the dry run's.
        let function = self.engine.functions()[f].clone();
        // With the tier enabled the dry run needs the startup-cost
        // term up front. The residency check refreshes keep-alive
        // windows as a side effect, so the disabled path must not run
        // it here — a *failed* trial would otherwise perturb window
        // refresh timing that the pre-tier engine never touched.
        let (startup_cost, device_mb) = if self.config.residency.enabled {
            let startup = self.startup_kind(f);
            self.schedule_cost(f, startup)
        } else {
            (SimDuration::ZERO, 0.0)
        };
        self.engine.cluster_mut().begin_txn();
        let wall = Instant::now();
        let trial = self.scheduler.schedule_with_cost(
            &self.predictor,
            &function,
            rps,
            self.engine.cluster_mut(),
            startup_cost,
            device_mb,
        );
        let elapsed_us = wall.elapsed().as_secs_f64() * 1e6;
        self.engine.collector.sched_overhead(elapsed_us);
        if trial.unplaced_rps > rps * 0.05 || trial.instances.is_empty() {
            self.engine.cluster_mut().rollback_txn();
            if decisions_on {
                let mut ev = DecisionEvent::new(DecisionKind::ConsolidateRollback);
                ev.reason = DecisionReason::Unplaced;
                ev.value = trial.unplaced_rps;
                ev.aux = rps;
                self.engine.record_decision(f, ev);
            }
            return;
        }
        let fresh_weight: f64 = trial
            .instances
            .iter()
            .map(|i| self.engine.weighted_cost(i.config))
            .sum();
        let fresh_capacity: f64 = trial.instances.iter().map(|i| i.window.r_up()).sum();
        if fresh_weight <= 0.0 || fresh_capacity / fresh_weight < MIN_GAIN * current_density {
            self.engine.cluster_mut().rollback_txn();
            if decisions_on {
                let mut ev = DecisionEvent::new(DecisionKind::ConsolidateRollback);
                ev.reason = DecisionReason::InsufficientGain;
                ev.value = if fresh_weight > 0.0 {
                    fresh_capacity / fresh_weight
                } else {
                    0.0
                };
                ev.aux = MIN_GAIN * current_density;
                self.engine.record_decision(f, ev);
            }
            return;
        }

        // Commit: keep the dry run's own allocations (placed capacity
        // therefore equals promised capacity by construction), launch
        // the optimized instances and adopt them as the dispatch set.
        // The startup kind comes from the same residency check as the
        // fault-recovery path — not an unconditional PreWarmed.
        self.engine.cluster_mut().commit_txn();
        if decisions_on {
            let mut ev = DecisionEvent::new(DecisionKind::ConsolidateCommit);
            ev.value = fresh_capacity / fresh_weight;
            ev.aux = fresh_weight - current_weight;
            self.engine.record_decision(f, ev);
        }
        self.fns[f].last_consolidation = now;
        let startup = self.startup_kind(f);
        let slo = function.slo();
        let old = self.fns[f].dispatch.take_entries();
        for si in trial.instances {
            let budget = (slo - si.predicted_exec).max(SimDuration::from_millis(1));
            let id =
                self.engine
                    .launch_preallocated(f, si.config, si.placement, startup, budget, queue);
            self.fns[f].dispatch.push(RouterEntry {
                id,
                window: si.window,
                rate: si.window.r_up(),
                sent: 0,
                predicted_exec: si.predicted_exec,
            });
        }
        if self.config.residency.enabled {
            self.fns[f].host_copy_since = Some(now);
        }
        // Park the old set — but if the new set covers less than the
        // controller's target (the dry run tolerates ≤ 5 % unplaced),
        // keep just enough old instances dispatched to bridge the gap
        // instead of silently shrinking capacity.
        let mut covered = fresh_capacity;
        for e in old {
            if covered + 1e-9 >= rps {
                self.fns[f].parked.push(ParkedInstance {
                    id: e.id,
                    window: e.window,
                    predicted_exec: e.predicted_exec,
                });
            } else {
                covered += e.window.r_up();
                self.fns[f].dispatch.push(e);
            }
        }
    }

    /// Case (iii): parks the least resource-efficient instances until
    /// the controller no longer recommends release.
    fn park_excess(&mut self, f: usize, rps: f64) {
        loop {
            if self.fns[f].dispatch.len() <= 1 && rps > 0.0 {
                break; // keep one instance while traffic flows
            }
            let windows: Vec<RpsWindow> = self.fns[f].dispatch.iter().map(|e| e.window).collect();
            let plan = split_rate(rps, &windows, self.config.alpha);
            if !plan.release_recommended || self.fns[f].dispatch.is_empty() {
                // Final rates for the surviving set.
                self.fns[f].dispatch.retune(|entries| {
                    for (e, rate) in entries.iter_mut().zip(&plan.rates) {
                        e.rate = *rate;
                    }
                });
                break;
            }
            // Least efficient: lowest r_up per weighted resource.
            let idx = self.fns[f]
                .dispatch
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let wa = a.window.r_up()
                        / self
                            .engine
                            .weighted_cost(self.engine.instance(a.id).config());
                    let wb = b.window.r_up()
                        / self
                            .engine
                            .weighted_cost(self.engine.instance(b.id).config());
                    wa.partial_cmp(&wb).expect("finite")
                })
                .map(|(i, _)| i)
                .expect("non-empty dispatch set");
            let e = self.fns[f].dispatch.remove_at(idx);
            self.fns[f].parked.push(ParkedInstance {
                id: e.id,
                window: e.window,
                predicted_exec: e.predicted_exec,
            });
            if rps <= 0.0 && self.fns[f].dispatch.is_empty() {
                break;
            }
        }
    }

    /// Retires instances (parked or dispatched) idle past the policy's
    /// window. Pre-warm semantics (Shahrad et al.): with a non-zero
    /// pre-warm window the function is *unloaded* right after it goes
    /// idle (a short grace period for scaling hysteresis) and only the
    /// image comes back at `pre_warm`; with a zero pre-warm window the
    /// instances stay for the whole keep-alive window.
    fn reap(&mut self, f: usize, now: SimTime) {
        let windows = self.fns[f].cached_windows;
        let keep_alive = if windows.pre_warm.is_zero() {
            windows.keep_alive
        } else {
            SimDuration::from_secs(10)
        };
        let expired = |engine: &Engine, id: InstanceId| {
            engine.is_live(id) && engine.instance(id).idle_for(now) > keep_alive
        };
        let dead_parked: Vec<InstanceId> = self.fns[f]
            .parked
            .iter()
            .map(|p| p.id)
            .filter(|id| expired(&self.engine, *id))
            .collect();
        let dead_dispatch: Vec<InstanceId> = self.fns[f]
            .dispatch
            .iter()
            .map(|e| e.id)
            .filter(|id| expired(&self.engine, *id))
            .collect();
        let decisions_on = self.engine.decisions_enabled();
        for id in dead_parked.iter().chain(&dead_dispatch) {
            if decisions_on {
                let inst = self.engine.instance(*id);
                let mut ev = DecisionEvent::new(DecisionKind::Evict);
                ev.instance = self.engine.decision_instance_ordinal(*id);
                ev.server = inst.placement().server().raw() as i64;
                ev.value = keep_alive.as_secs_f64();
                ev.aux = inst.idle_for(now).as_secs_f64();
                self.engine.record_decision(f, ev);
            }
            self.engine.retire(*id);
        }
        self.fns[f].parked.retain(|p| !dead_parked.contains(&p.id));
        self.fns[f]
            .dispatch
            .retain(|e| !dead_dispatch.contains(&e.id));
    }

    // --- monitors & cold-start helpers -------------------------------------

    fn observe_idle(&mut self, f: usize, now: SimTime) {
        let st = &self.fns[f];
        if !st.had_activity {
            return;
        }
        let idle = now.saturating_since(st.last_activity);
        // Dense traffic produces thousands of sub-minute idle gaps
        // per minute, all landing in the histogram's first bin.
        // Rate-limit those to one sample per 5 s of simulated time
        // (preserving the bin-0 mass), but always record long gaps —
        // they are the informative tail. Both checks are cheap and
        // side-effect-free, so they run *before* the O(instances) busy
        // scan: on the hot path (dense traffic) nothing would be
        // recorded and the scan is skipped entirely.
        let rate_limited = now.saturating_since(st.last_idle_recorded) < SimDuration::from_secs(5);
        if idle.is_zero() || (idle < SimDuration::from_secs(60) && rate_limited) {
            return;
        }
        // Function-level idleness: no instance has queued or running work.
        let busy = self.engine.instances_of(f).iter().any(|id| {
            let inst = self.engine.instance(*id);
            inst.queue_len() > 0
                || matches!(inst.state(), infless_cluster::InstanceState::Busy { .. })
        });
        if !busy {
            self.fns[f].coldstart.record_idle(now, idle);
            self.fns[f].last_idle_recorded = now;
        }
    }

    /// Recomputes the pre-warm/keep-alive windows at most once per
    /// minute — histogram quantiles drift slowly, and rebuilding them
    /// every scaler tick would dominate long runs.
    fn refresh_windows(&mut self, f: usize, now: SimTime) {
        let stale = self.fns[f]
            .windows_refreshed
            .is_none_or(|t| now.saturating_since(t) >= SimDuration::from_secs(60));
        if stale {
            self.fns[f].cached_windows = self.fns[f].coldstart.windows(now);
            self.fns[f].windows_refreshed = Some(now);
        }
    }

    fn prune_monitor(&mut self, f: usize, now: SimTime) {
        let horizon = now.saturating_sub(self.config.monitor_window);
        let st = &mut self.fns[f];
        while let Some(&t) = st.recent_arrivals.front() {
            if t < horizon {
                st.recent_arrivals.pop_front();
            } else {
                break;
            }
        }
    }

    fn observed_rps(&mut self, f: usize, now: SimTime) -> f64 {
        self.prune_monitor(f, now);
        let window = self
            .config
            .monitor_window
            .min(now.saturating_since(SimTime::ZERO))
            .as_secs_f64()
            .max(1.0);
        self.fns[f].recent_arrivals.len() as f64 / window
    }

    fn drop_dead_entries(&mut self, f: usize) {
        let engine = &self.engine;
        self.fns[f].dispatch.retain(|e| engine.is_live(e.id));
        self.fns[f].parked.retain(|p| engine.is_live(p.id));
    }

    /// `true` when a new instance would start from a warm image: the
    /// function already has live instances (image resident on a node)
    /// or the pre-warm window has loaded it in anticipation.
    fn image_warm_since(&mut self, f: usize, last_activity: SimTime, had_activity: bool) -> bool {
        let now = self.engine.now();
        if !self.engine.instances_of(f).is_empty() {
            return true;
        }
        if !had_activity {
            return false;
        }
        self.refresh_windows(f, now);
        let w = self.fns[f].cached_windows;
        let since = now.saturating_since(last_activity);
        since >= w.pre_warm && since < w.pre_warm + w.keep_alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::Application;
    use infless_workload::{FunctionLoad, TracePattern};

    fn run_constant(app: Application, rps: f64, secs: u64) -> RunReport {
        let loads: Vec<FunctionLoad> = app
            .functions()
            .iter()
            .map(|_| FunctionLoad::constant(rps, SimDuration::from_secs(secs)))
            .collect();
        let workload = Workload::build(&loads, 17);
        InflessPlatform::new(
            ClusterSpec::testbed(),
            app.functions().to_vec(),
            InflessConfig::default(),
            17,
        )
        .run(&workload)
    }

    #[test]
    fn qa_robot_serves_constant_load_within_slo() {
        let report = run_constant(Application::qa_robot(), 50.0, 60);
        assert!(report.total_completed() > 0);
        let served = report.total_completed() as f64
            / (report.total_completed() + report.total_dropped()) as f64;
        assert!(served > 0.9, "served fraction {served}");
        assert!(
            report.violation_rate() < 0.10,
            "violation rate {} too high",
            report.violation_rate()
        );
    }

    #[test]
    fn osvt_serves_constant_load_within_slo() {
        let report = run_constant(Application::osvt(), 40.0, 60);
        assert!(
            report.violation_rate() < 0.10,
            "violation rate {}",
            report.violation_rate()
        );
        // Steady load after warmup: almost everything completes.
        assert!(report.total_completed() > report.total_dropped() * 10);
    }

    #[test]
    fn uses_batching_under_load() {
        let report = run_constant(Application::osvt(), 100.0, 40);
        let resnet = report
            .functions
            .iter()
            .find(|f| f.name == "ResNet-50")
            .unwrap();
        let batched: u64 = resnet
            .per_batch_completed
            .iter()
            .filter(|(b, _)| **b > 1)
            .map(|(_, n)| *n)
            .sum();
        assert!(
            batched > resnet.completed / 2,
            "expected mostly batched execution, got {batched}/{}",
            resnet.completed
        );
    }

    #[test]
    fn scales_in_when_load_vanishes() {
        // Periodic trace: provisioning should follow the load down.
        let app = Application::osvt();
        let loads: Vec<FunctionLoad> = app
            .functions()
            .iter()
            .map(|_| {
                FunctionLoad::trace(TracePattern::Periodic, 30.0, SimDuration::from_mins(20), 3)
            })
            .collect();
        let workload = Workload::build(&loads, 3);
        let report = InflessPlatform::new(
            ClusterSpec::testbed(),
            app.functions().to_vec(),
            InflessConfig::default(),
            3,
        )
        .run(&workload);
        assert!(report.retirements > 0, "no instance was ever scaled in");
        let peak = report
            .provisioning
            .iter()
            .map(|(_, u)| *u)
            .fold(0.0, f64::max);
        let min_after_peak = report
            .provisioning
            .iter()
            .skip_while(|(_, u)| *u < peak)
            .map(|(_, u)| *u)
            .fold(f64::MAX, f64::min);
        assert!(
            min_after_peak < peak,
            "provisioning never decreased: peak {peak}, later min {min_after_peak}"
        );
    }

    #[test]
    fn run_is_deterministic() {
        let a = run_constant(Application::qa_robot(), 30.0, 20);
        let b = run_constant(Application::qa_robot(), 30.0, 20);
        assert_eq!(a.total_completed(), b.total_completed());
        assert_eq!(a.total_dropped(), b.total_dropped());
        assert_eq!(a.launches, b.launches);
    }

    #[test]
    fn empty_workload_is_a_noop() {
        let app = Application::qa_robot();
        let workload = Workload::build(&[], 0);
        let report = InflessPlatform::new(
            ClusterSpec::testbed(),
            app.functions().to_vec(),
            InflessConfig::default(),
            0,
        )
        .run(&workload);
        assert_eq!(report.total_completed(), 0);
        assert_eq!(report.launches, 0);
    }
}

#[cfg(test)]
mod chain_tests {
    use super::*;
    use crate::chains::ChainSpec;
    use infless_models::ModelId;
    use infless_workload::{FunctionLoad, Workload};

    fn chain_platform(e2e_ms: u64) -> (InflessPlatform, Workload) {
        // detection -> classification pipeline plus one standalone fn.
        let functions = vec![
            FunctionInfo::new(ModelId::Ssd.spec(), SimDuration::from_millis(200)),
            FunctionInfo::new(ModelId::ResNet50.spec(), SimDuration::from_millis(200)),
            FunctionInfo::new(ModelId::Mnist.spec(), SimDuration::from_millis(50)),
        ];
        let chains = vec![ChainSpec::new(
            "detect-classify",
            vec![0, 1],
            SimDuration::from_millis(e2e_ms),
        )];
        // Load only enters the chain head and the standalone function.
        let loads = vec![
            FunctionLoad::constant(40.0, SimDuration::from_secs(40)),
            FunctionLoad::constant(0.001, SimDuration::from_secs(1)),
            FunctionLoad::constant(20.0, SimDuration::from_secs(40)),
        ];
        let workload = Workload::build(&loads, 77);
        let platform = InflessPlatform::with_chains(
            ClusterSpec::testbed(),
            functions,
            chains,
            InflessConfig::default(),
            77,
        );
        (platform, workload)
    }

    #[test]
    fn chain_relays_and_measures_end_to_end() {
        let (platform, workload) = chain_platform(400);
        let report = platform.run(&workload);
        assert_eq!(report.chains.len(), 1);
        let chain = &report.chains[0];
        assert!(
            chain.completed > 1000,
            "chain completed {}",
            chain.completed
        );
        // Every entry-stage completion must traverse to the second stage:
        // the classifier saw (almost) as many requests as the detector.
        let detector = report.functions[0].completed;
        let classifier = report.functions[1].completed;
        assert!(
            classifier as f64 > detector as f64 * 0.95,
            "relays lost: {detector} -> {classifier}"
        );
        // End-to-end latency exceeds each stage's own latency.
        let e2e = &chain.e2e_ms;
        let e2e_p50 = e2e.quantile(0.5).unwrap();
        let s0 = report.functions[0].latency_ms.clone();
        assert!(e2e_p50 > s0.quantile(0.5).unwrap());
    }

    #[test]
    fn chain_meets_relaxed_e2e_slo() {
        let (platform, workload) = chain_platform(500);
        let report = platform.run(&workload);
        let chain = &report.chains[0];
        assert!(
            chain.violation_rate() < 0.10,
            "chain violation rate {:.2}%",
            chain.violation_rate() * 100.0
        );
    }

    #[test]
    fn stage_slos_are_overridden_by_the_split() {
        let (platform, _) = chain_platform(400);
        let slos: Vec<SimDuration> = platform
            .engine
            .functions()
            .iter()
            .map(|f| f.slo())
            .collect();
        // Stages 0 and 1 now carry split SLOs summing to ~400 ms.
        let total = slos[0].as_millis_f64() + slos[1].as_millis_f64();
        assert!((total - 400.0).abs() < 1.0, "split total {total}");
        // The standalone function keeps its own SLO.
        assert_eq!(slos[2], SimDuration::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "more than one chain")]
    fn overlapping_chains_rejected() {
        let functions = vec![
            FunctionInfo::new(ModelId::Mnist.spec(), SimDuration::from_millis(100)),
            FunctionInfo::new(ModelId::TextCnn69.spec(), SimDuration::from_millis(100)),
            FunctionInfo::new(ModelId::Dssm2365.spec(), SimDuration::from_millis(100)),
        ];
        let chains = vec![
            ChainSpec::new("a", vec![0, 1], SimDuration::from_millis(100)),
            ChainSpec::new("b", vec![1, 2], SimDuration::from_millis(100)),
        ];
        let _ = InflessPlatform::with_chains(
            ClusterSpec::testbed(),
            functions,
            chains,
            InflessConfig::default(),
            1,
        );
    }
}

#[cfg(test)]
mod autoscaler_tests {
    use super::*;
    use infless_workload::{FunctionLoad, RateSeries, Workload};

    /// A load pulse that rises gradually and falls back — the scenario
    /// where incremental emergency scaling accumulates small instances
    /// on the rise and the consolidation pass must replace them with
    /// large-batch configs (which then drain on the decline).
    fn ramp_workload(peak_rps: f64, mins: usize) -> Workload {
        let rates: Vec<f64> = (0..mins)
            .map(|i| {
                let x = i as f64 / mins as f64;
                (peak_rps * (std::f64::consts::PI * x).sin()).max(1.0)
            })
            .collect();
        let series = RateSeries::new(SimDuration::from_mins(1), rates);
        Workload::build(&[FunctionLoad::poisson(series)], 7)
    }

    fn run_ramp(config: InflessConfig) -> RunReport {
        let functions = vec![FunctionInfo::new(
            infless_models::ModelId::ResNet50.spec(),
            SimDuration::from_millis(200),
        )];
        InflessPlatform::new(ClusterSpec::testbed(), functions, config, 7)
            .run(&ramp_workload(800.0, 14))
    }

    #[test]
    fn consolidation_upgrades_ramp_grown_fleets() {
        let report = run_ramp(InflessConfig::default());
        // After consolidation, large-batch instances must exist…
        let max_batch = report
            .config_launches
            .keys()
            .map(|(_, cfg)| cfg.batch())
            .max()
            .unwrap_or(0);
        assert!(
            max_batch >= 8,
            "no large-batch consolidation: max b={max_batch}"
        );
        // …and the replaced small instances must drain on the decline.
        assert!(
            report.retirements as f64 >= report.launches as f64 * 0.3,
            "old instances were not drained: {} retired of {}",
            report.retirements,
            report.launches
        );
    }

    #[test]
    fn consolidation_reduces_resource_footprint() {
        // The same ramp with consolidation disabled (gain threshold can
        // never be met because the interval never elapses — emulate by
        // comparing against a very large MIN_INTERVAL via short run).
        // Direct comparison: consolidated run must not use more
        // resources than the paper-naive incremental fleet would; we
        // check the absolute density instead of an ablation switch.
        let report = run_ramp(InflessConfig::default());
        let density = report.throughput_per_resource();
        assert!(
            density > 1.0,
            "ramp-grown fleet stayed inefficient: {density:.2} req/unit·s"
        );
    }

    #[test]
    fn parked_instances_are_reused_before_new_launches() {
        // Two identical bursts separated by a lull shorter than the
        // keep-alive: the second burst must reuse parked capacity, not
        // cold-start a fresh fleet.
        let mins = 9;
        let rates: Vec<f64> = (0..mins)
            .map(|i| if !(3..6).contains(&i) { 400.0 } else { 2.0 })
            .collect();
        let workload = Workload::build(
            &[FunctionLoad::poisson(RateSeries::new(
                SimDuration::from_mins(1),
                rates,
            ))],
            8,
        );
        let functions = vec![FunctionInfo::new(
            infless_models::ModelId::Ssd.spec(),
            SimDuration::from_millis(200),
        )];
        let report = InflessPlatform::new(
            ClusterSpec::testbed(),
            functions,
            InflessConfig::default(),
            8,
        )
        .run(&workload);
        // Serving ~150k requests across two bursts should not need a
        // launch count anywhere near "fleet per burst".
        assert!(
            report.cold_launches <= 3,
            "second burst cold-started a fresh fleet: {} cold launches",
            report.cold_launches
        );
        assert!(report.violation_rate() < 0.05);
    }

    #[test]
    fn consolidation_preserves_promised_capacity() {
        // Regression: the committed consolidation set used to be a
        // *second* schedule() run that could place less than the dry-run
        // promised, silently shrinking dispatch capacity below the
        // observed rate. The txn-based rewrite keeps the dry run's own
        // allocations and bridges any gap with kept old instances.
        let functions = vec![FunctionInfo::new(
            infless_models::ModelId::ResNet50.spec(),
            SimDuration::from_millis(200),
        )];
        let mut p = InflessPlatform::new(
            ClusterSpec::testbed(),
            functions,
            InflessConfig::default(),
            7,
        );
        let mut queue = EventQueue::new();
        // A fragmented fleet, as incremental emergency scaling grows it:
        // many tiny-residual rounds instead of one big one — each round
        // can only pick small batches (the saturation bound blocks large
        // ones), so the fleet ends far below the jointly-optimal density.
        for _ in 0..85 {
            p.scale_out(0, 3.0, StartupKind::Cold, &mut queue);
        }
        let rps = 400.0;
        let before: f64 = p.fns[0].dispatch.iter().map(|e| e.window.r_up()).sum();
        assert!(before >= rps, "setup fleet too small: {before} < {rps}");

        p.engine.advance(SimTime::ZERO + SimDuration::from_secs(61));
        p.maybe_consolidate(0, rps, &mut queue);
        assert!(
            p.fns[0].last_consolidation > SimTime::ZERO,
            "consolidation did not trigger on a fragmented fleet"
        );
        assert!(
            !p.engine.cluster().in_txn(),
            "consolidation left a cluster transaction open"
        );
        let after: f64 = p.fns[0].dispatch.iter().map(|e| e.window.r_up()).sum();
        assert!(
            after + 1e-6 >= rps,
            "consolidation lost promised capacity: {after:.1} < {rps:.1}"
        );
    }

    #[test]
    fn startup_kind_tracks_image_warmth() {
        // Regression: consolidation used to launch its optimized set as
        // PreWarmed unconditionally, even for a function whose image was
        // never loaded anywhere. The shared warm check must report Cold
        // for a fresh function and PreWarmed once instances exist.
        let functions = vec![FunctionInfo::new(
            infless_models::ModelId::ResNet50.spec(),
            SimDuration::from_millis(200),
        )];
        let mut p = InflessPlatform::new(
            ClusterSpec::testbed(),
            functions,
            InflessConfig::default(),
            7,
        );
        let mut queue = EventQueue::new();
        assert_eq!(
            p.startup_kind(0),
            StartupKind::Cold,
            "no instance and no activity: the image cannot be warm"
        );
        p.scale_out(0, 20.0, StartupKind::Cold, &mut queue);
        assert_eq!(
            p.startup_kind(0),
            StartupKind::PreWarmed,
            "live instances keep the image resident"
        );
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::apps::Application;
    use infless_faults::FaultPlan;
    use infless_workload::FunctionLoad;

    fn constant_workload(app: &Application, rps: f64, secs: u64) -> Workload {
        let loads: Vec<FunctionLoad> = app
            .functions()
            .iter()
            .map(|_| FunctionLoad::constant(rps, SimDuration::from_secs(secs)))
            .collect();
        Workload::build(&loads, 17)
    }

    fn platform(app: &Application) -> InflessPlatform {
        InflessPlatform::new(
            ClusterSpec::testbed(),
            app.functions().to_vec(),
            InflessConfig::default(),
            17,
        )
    }

    fn faulted_run(seed: u64) -> RunReport {
        let app = Application::qa_robot();
        let workload = constant_workload(&app, 40.0, 40);
        let schedule = FaultSchedule::generate(
            &FaultPlan::sweep(2.0),
            ClusterSpec::testbed().servers,
            SimDuration::from_secs(40),
            seed,
        );
        platform(&app).with_fault_schedule(schedule).run(&workload)
    }

    /// Deterministic fingerprint of the per-function results. HashMap
    /// debug order varies between two maps built in the same process,
    /// so order-dependent fields are sorted before formatting.
    pub(super) fn fn_fingerprint(report: &RunReport) -> String {
        use std::collections::BTreeMap;
        report
            .functions
            .iter()
            .map(|f| {
                let batches: BTreeMap<u32, u64> = f
                    .per_batch_completed
                    .iter()
                    .map(|(k, v)| (*k, *v))
                    .collect();
                format!(
                    "{} {:?} {} {} {} {} {:?} {:?} {:?} {:?} {:?};",
                    f.name,
                    f.slo,
                    f.completed,
                    f.dropped,
                    f.violations,
                    f.cold_requests,
                    f.latency_ms,
                    f.queue_ms,
                    f.exec_ms,
                    f.cold_ms,
                    batches
                )
            })
            .collect()
    }

    /// The zero-cost-when-disabled acceptance gate: attaching an empty
    /// schedule must leave the run bit-identical to a platform that
    /// never heard of the fault subsystem (deterministic fields only —
    /// wall-clock timings naturally differ between runs).
    #[test]
    fn empty_schedule_is_bit_identical() {
        let app = Application::qa_robot();
        let workload = constant_workload(&app, 30.0, 20);
        let plain = platform(&app).run(&workload);
        let faultless = platform(&app)
            .with_fault_schedule(FaultSchedule::empty())
            .run(&workload);
        assert_eq!(fn_fingerprint(&plain), fn_fingerprint(&faultless));
        assert_eq!(plain.launches, faultless.launches);
        assert_eq!(plain.cold_launches, faultless.cold_launches);
        assert_eq!(plain.prewarmed_launches, faultless.prewarmed_launches);
        assert_eq!(plain.retirements, faultless.retirements);
        assert_eq!(
            plain.weighted_resource_seconds.to_bits(),
            faultless.weighted_resource_seconds.to_bits()
        );
        assert_eq!(
            format!("{:?}", plain.provisioning),
            format!("{:?}", faultless.provisioning)
        );
        assert_eq!(plain.config_launches, faultless.config_launches);
        assert_eq!(plain.failures, faultless.failures);
        assert!(!plain.failures.any());
    }

    /// Faulted runs are reproducible: same seeds, same report.
    #[test]
    fn faulted_run_is_deterministic() {
        let a = faulted_run(99);
        let b = faulted_run(99);
        assert_eq!(fn_fingerprint(&a), fn_fingerprint(&b));
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.launches, b.launches);
    }

    /// Under an aggressive sweep the platform actually exercises the
    /// recovery path, and every displaced request reaches exactly one
    /// terminal outcome.
    #[test]
    fn recovery_conserves_displaced_requests() {
        let report = faulted_run(99);
        let f = &report.failures;
        assert!(f.any(), "sweep injected nothing");
        assert!(
            f.server_crashes > 0 || f.instances_killed > 0,
            "no capacity-losing fault fired: {f:?}"
        );
        assert_eq!(
            f.requests_displaced,
            f.requests_retried + f.requests_shed,
            "displaced requests leaked: {f:?}"
        );
        // The run still terminates with every request accounted for.
        assert!(report.total_completed() > 0);
    }

    /// Regression: a displaced request whose remaining SLO budget is
    /// smaller than the predicted execution time of *every* instance
    /// that could take it used to be retried anyway — a guaranteed
    /// violation counted as a recovery. It must be shed immediately.
    #[test]
    fn hopeless_displaced_requests_are_shed_not_retried() {
        let app = Application::qa_robot();
        let mut p = platform(&app);
        let mut queue = EventQueue::new();
        p.scale_out(0, 30.0, StartupKind::Cold, &mut queue);
        let fastest = p.fns[0]
            .dispatch
            .iter()
            .map(|e| e.predicted_exec)
            .min()
            .expect("scale-out launched instances");
        let slo = p.engine.functions()[0].slo();
        let req = p.engine.mint_request(0); // arrives at t = 0

        // Advance to where even the fastest instance cannot finish
        // within the SLO (budget = fastest/2), but the SLO itself has
        // not yet expired.
        let elapsed = slo - fastest.mul_f64(0.5);
        p.engine.advance(SimTime::ZERO + elapsed);
        p.engine.collector.displaced(1);
        p.retry_or_shed(req, &mut queue);

        let report = p.engine.finish();
        let f = &report.failures;
        assert_eq!(f.requests_shed, 1, "hopeless retry was not shed: {f:?}");
        assert_eq!(f.requests_retried, 0, "doomed request was retried: {f:?}");
        assert_eq!(f.requests_displaced, f.requests_retried + f.requests_shed);
    }
}

#[cfg(test)]
mod telemetry_tests {
    use super::*;
    use crate::apps::Application;
    use infless_faults::FaultPlan;
    use infless_telemetry::{FaultTag, MemorySink, NullSink, SpanKind};
    use infless_workload::FunctionLoad;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn constant_workload(app: &Application, rps: f64, secs: u64) -> Workload {
        let loads: Vec<FunctionLoad> = app
            .functions()
            .iter()
            .map(|_| FunctionLoad::constant(rps, SimDuration::from_secs(secs)))
            .collect();
        Workload::build(&loads, 17)
    }

    fn platform(app: &Application) -> InflessPlatform {
        InflessPlatform::new(
            ClusterSpec::testbed(),
            app.functions().to_vec(),
            InflessConfig::default(),
            17,
        )
    }

    /// The disabled-telemetry acceptance gate, mirroring the
    /// empty-fault-schedule invariant: a run with the default no-op
    /// sink is bit-identical to one that never heard of telemetry —
    /// and, because span emission is purely passive (no RNG draws, no
    /// event scheduling), so is a run with a *recording* sink attached.
    #[test]
    fn telemetry_sinks_are_bit_identical() {
        let app = Application::qa_robot();
        let workload = constant_workload(&app, 30.0, 20);
        let plain = platform(&app).run(&workload);
        let null = platform(&app)
            .with_telemetry(Box::new(NullSink))
            .run(&workload);
        let sink = MemorySink::new();
        let recorded = platform(&app)
            .with_telemetry(Box::new(sink.clone()))
            .run(&workload);
        for other in [&null, &recorded] {
            assert_eq!(
                super::fault_tests::fn_fingerprint(&plain),
                super::fault_tests::fn_fingerprint(other)
            );
            assert_eq!(plain.launches, other.launches);
            assert_eq!(plain.retirements, other.retirements);
            assert_eq!(
                plain.weighted_resource_seconds.to_bits(),
                other.weighted_resource_seconds.to_bits()
            );
            assert_eq!(
                format!("{:?}", plain.provisioning),
                format!("{:?}", other.provisioning)
            );
        }
        // The recording run actually captured the lifecycle.
        let store = sink.store();
        assert!(store.meta.as_ref().is_some_and(|m| m.platform == "INFless"));
        let arrivals = store
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Arrival)
            .count() as u64;
        assert_eq!(arrivals, plain.total_completed() + plain.total_dropped());
        assert!(!store.rows.is_empty(), "no gauge rows sampled");
    }

    /// Under faults, displaced spans carry their fault annotation and
    /// the displacement accounting recomputed from spans alone agrees
    /// with the collector's counters.
    #[test]
    fn displaced_spans_carry_fault_tags() {
        let app = Application::qa_robot();
        let workload = constant_workload(&app, 40.0, 40);
        let schedule = FaultSchedule::generate(
            &FaultPlan::sweep(2.0),
            ClusterSpec::testbed().servers,
            SimDuration::from_secs(40),
            99,
        );
        let sink = MemorySink::new();
        let report = platform(&app)
            .with_fault_schedule(schedule)
            .with_telemetry(Box::new(sink.clone()))
            .run(&workload);
        let store = sink.store();
        let count = |k: SpanKind| store.spans.iter().filter(|s| s.kind == k).count() as u64;
        assert!(
            report.failures.requests_displaced > 0,
            "sweep displaced nothing"
        );
        assert_eq!(
            count(SpanKind::Displaced),
            report.failures.requests_displaced
        );
        assert_eq!(count(SpanKind::Retried), report.failures.requests_retried);
        assert_eq!(
            count(SpanKind::Displaced),
            count(SpanKind::Retried) + count(SpanKind::Shed)
        );
        assert!(
            store
                .spans
                .iter()
                .filter(|s| s.kind == SpanKind::Displaced)
                .all(|s| s.fault != FaultTag::None),
            "a displaced span lost its fault annotation"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Span conservation over workload x fault intensity x seed:
        /// every arrival terminates in exactly one of completed /
        /// dropped / shed, and each request's span timestamps are
        /// monotone.
        #[test]
        fn spans_conserve_every_arrival(
            rps in 5.0f64..40.0,
            intensity in 0.0f64..4.0,
            seed in 0u64..1000,
        ) {
            let app = Application::qa_robot();
            let workload = constant_workload(&app, rps, 15);
            let schedule = FaultSchedule::generate(
                &FaultPlan::sweep(intensity),
                ClusterSpec::testbed().servers,
                SimDuration::from_secs(15),
                seed,
            );
            let sink = MemorySink::new();
            platform(&app)
                .with_fault_schedule(schedule)
                .with_telemetry(Box::new(sink.clone()))
                .run(&workload);
            let store = sink.store();
            let mut arrived: HashMap<u64, bool> = HashMap::new();
            let mut terminals: HashMap<u64, u32> = HashMap::new();
            let mut last_t: HashMap<u64, f64> = HashMap::new();
            for s in &store.spans {
                let prev = last_t.entry(s.request).or_insert(s.t_s);
                prop_assert!(
                    s.t_s >= *prev,
                    "request {} went back in time: {} < {}",
                    s.request, s.t_s, prev
                );
                *prev = s.t_s;
                match s.kind {
                    SpanKind::Arrival => {
                        prop_assert!(
                            arrived.insert(s.request, true).is_none(),
                            "request {} arrived twice",
                            s.request
                        );
                    }
                    SpanKind::Complete | SpanKind::Dropped | SpanKind::Shed => {
                        *terminals.entry(s.request).or_insert(0) += 1;
                    }
                    _ => {}
                }
            }
            for &req in arrived.keys() {
                prop_assert_eq!(
                    terminals.get(&req).copied().unwrap_or(0), 1,
                    "request {} did not terminate exactly once", req
                );
            }
            for &req in terminals.keys() {
                prop_assert!(
                    arrived.contains_key(&req),
                    "request {} terminated without arriving", req
                );
            }
        }
    }
}
