//! Combined Operator Profiling (COP, §3.3).
//!
//! Offline-profiling every model across every `⟨b, c, g⟩` configuration
//! would be prohibitively expensive when hundreds of models are deployed
//! or updated daily. COP instead profiles *operators* once (the
//! [`ProfileDatabase`]) and predicts a model's batch execution time by
//! combining the profiled operator times along the model's DAG:
//! sequence chains sum, parallel branches take the max — equivalently,
//! the weighted critical path. Known platform constants (framework
//! overhead, PCIe transfer, preprocessing) are added, and the result is
//! inflated by a safety offset (10 % by default, §3.3) to absorb what
//! per-operator profiles cannot see: imperfect branch overlap and
//! profiling noise.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use infless_models::{
    profile::ConfigGrid, HardwareModel, ModelId, ModelSpec, ProfileDatabase, ResourceConfig,
};
use infless_sim::SimDuration;

/// The default prediction inflation (§3.3: "we choose to increase the
/// prediction offset by 10% to reduce the risk of SLO violations").
pub const DEFAULT_OFFSET: f64 = 1.10;

/// The COP latency predictor.
///
/// # Example
///
/// ```
/// use infless_core::CopPredictor;
/// use infless_models::{profile::ConfigGrid, HardwareModel, ModelId, ProfileDatabase, ResourceConfig};
///
/// let hw = HardwareModel::default();
/// let specs = vec![ModelId::MobileNet.spec()];
/// // `cached` shares one database across every platform built with the
/// // same ⟨calibration, model set, grid, seed⟩; `profile` also works.
/// let db = ProfileDatabase::cached(&hw, &specs, &ConfigGrid::standard(), 1);
/// let predictor = CopPredictor::new(db, hw.clone());
///
/// let spec = ModelId::MobileNet.spec();
/// let cfg = ResourceConfig::new(1, 10);
/// let predicted = predictor.predict(&spec, 8, cfg).expect("profiled");
/// let actual = hw.model_latency(&spec, 8, cfg);
/// // Within the paper's error band (and biased safe by the offset).
/// let rel = (predicted.as_secs_f64() - actual.as_secs_f64()).abs() / actual.as_secs_f64();
/// assert!(rel < 0.25);
/// ```
#[derive(Debug)]
pub struct CopPredictor {
    /// Shared with the registry of [`ProfileDatabase::cached`] — many
    /// predictors (one per platform in a parallel sweep) read the same
    /// profiled grid without re-profiling or copying it.
    db: Arc<ProfileDatabase>,
    hardware: HardwareModel,
    offset: f64,
    cache: RefCell<HashMap<(ModelId, u32, ResourceConfig), Option<SimDuration>>>,
}

impl CopPredictor {
    /// Creates a predictor with the default 10 % safety offset. Accepts
    /// an owned database or an `Arc` from [`ProfileDatabase::cached`].
    pub fn new(db: impl Into<Arc<ProfileDatabase>>, hardware: HardwareModel) -> Self {
        Self::with_offset(db, hardware, DEFAULT_OFFSET)
    }

    /// Creates a predictor with a custom offset multiplier. The
    /// component-ablation experiment (Fig. 11, "OP1.5" / "OP2") passes
    /// 1.5 and 2.0 here.
    ///
    /// # Panics
    ///
    /// Panics if `offset < 1.0` — deflating predictions would defeat
    /// the SLO guarantee.
    pub fn with_offset(
        db: impl Into<Arc<ProfileDatabase>>,
        hardware: HardwareModel,
        offset: f64,
    ) -> Self {
        assert!(offset >= 1.0, "prediction offset must not deflate");
        CopPredictor {
            db: db.into(),
            hardware,
            offset,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The offset multiplier in use.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// The profiled configuration grid.
    pub fn grid(&self) -> &ConfigGrid {
        self.db.grid()
    }

    /// The β CPU↔GPU conversion factor of the underlying hardware.
    pub fn beta(&self) -> f64 {
        self.hardware.beta()
    }

    /// Steady-state memory footprint (MB) of one instance of `spec` —
    /// the third resource dimension the scheduler's fit checks cover.
    pub fn instance_memory_mb(&self, spec: &ModelSpec) -> f64 {
        self.hardware.instance_memory_mb(spec)
    }

    /// Predicts the batch execution time `f(b, c, g)` of `spec`, or
    /// `None` if some operator or the configuration was never profiled.
    ///
    /// Predictions are memoized per `(model, b, config)`.
    pub fn predict(
        &self,
        spec: &ModelSpec,
        batch: u32,
        cfg: ResourceConfig,
    ) -> Option<SimDuration> {
        let key = (spec.id(), batch, cfg);
        if let Some(hit) = self.cache.borrow().get(&key) {
            return *hit;
        }
        let result = self.predict_uncached(spec, batch, cfg);
        self.cache.borrow_mut().insert(key, result);
        result
    }

    /// Predicted prefill latency of `prompt_tokens` total tokens under
    /// `cfg`, inflated by the safety offset — the TTFT side of the
    /// two-phase cost model.
    pub fn prefill_latency(
        &self,
        spec: &ModelSpec,
        prompt_tokens: u64,
        cfg: ResourceConfig,
    ) -> SimDuration {
        SimDuration::from_secs_f64(
            self.hardware
                .prefill_latency(spec, prompt_tokens, cfg)
                .as_secs_f64()
                * self.offset,
        )
    }

    /// Predicted single-decode-step latency with `seqs` active
    /// sequences and `kv_mb` resident KV-cache, inflated by the safety
    /// offset — the TPOT side of the two-phase cost model.
    pub fn decode_step_latency(
        &self,
        spec: &ModelSpec,
        seqs: u32,
        kv_mb: f64,
        cfg: ResourceConfig,
    ) -> SimDuration {
        SimDuration::from_secs_f64(
            self.hardware
                .decode_step_latency(spec, seqs, kv_mb, cfg)
                .as_secs_f64()
                * self.offset,
        )
    }

    /// The raw (un-inflated) combination of operator profiles, exposed
    /// for the Fig. 8 prediction-error experiment.
    pub fn combine_raw(&self, spec: &ModelSpec, batch: u32, cfg: ResourceConfig) -> Option<f64> {
        // Critical path over the profiled per-operator times. A missing
        // profile entry aborts the combination.
        let dag = spec.dag();
        let mut finish = vec![0.0f64; dag.len()];
        let mut best = 0.0f64;
        for (id, op) in dag.iter() {
            let t = self.db.op_time_s(op, batch, cfg)?;
            let start = dag
                .predecessors(id)
                .map(|p| finish[p.index()])
                .fold(0.0f64, f64::max);
            finish[id.index()] = start + t;
            best = best.max(finish[id.index()]);
        }
        // Known platform constants: framework overhead, transfer,
        // preprocessing (the template instruments these, so the
        // predictor may use them directly).
        let cal = self.hardware.calibration();
        let mut total = best + cal.framework_base_s + cal.framework_per_sample_s * f64::from(batch);
        if !cfg.is_cpu_only() {
            total += f64::from(batch) * spec.input_kb() / cal.pcie_kb_per_s;
            total += f64::from(batch) * cal.preproc_per_sample_s / f64::from(cfg.cpu_cores());
        }
        Some(total)
    }

    fn predict_uncached(
        &self,
        spec: &ModelSpec,
        batch: u32,
        cfg: ResourceConfig,
    ) -> Option<SimDuration> {
        self.combine_raw(spec, batch, cfg)
            .map(|raw| SimDuration::from_secs_f64(raw * self.offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infless_models::profile::ConfigGrid;

    fn predictor() -> (CopPredictor, HardwareModel) {
        let hw = HardwareModel::default();
        let specs: Vec<ModelSpec> = ModelId::all().iter().map(|id| id.spec()).collect();
        let db = ProfileDatabase::cached(&hw, &specs, &ConfigGrid::standard(), 11);
        (CopPredictor::new(db, hw.clone()), hw)
    }

    #[test]
    fn prediction_error_is_within_paper_band() {
        // Fig. 8: COP achieves < 10% average prediction error. Check the
        // same three models the paper plots, over the whole grid.
        let (p, hw) = predictor();
        for id in [ModelId::ResNet50, ModelId::MobileNet, ModelId::Lstm2365] {
            let spec = id.spec();
            let mut total_err = 0.0;
            let mut n = 0;
            for (b, cfg) in ConfigGrid::standard().points() {
                let raw = p.combine_raw(&spec, b, cfg).expect("profiled");
                let actual = hw.model_latency_s(&spec, b, cfg);
                total_err += (raw - actual).abs() / actual;
                n += 1;
            }
            let avg = total_err / f64::from(n);
            assert!(
                avg < 0.15,
                "{id}: average raw prediction error {:.1}% too high",
                avg * 100.0
            );
        }
    }

    #[test]
    fn lstm_error_exceeds_resnet_error() {
        // The paper attributes LSTM-2365's highest error to its
        // overlapping execution paths; our contention model reproduces
        // the ordering.
        let (p, hw) = predictor();
        let avg_err = |id: ModelId| {
            let spec = id.spec();
            let mut total = 0.0;
            let mut n = 0;
            for (b, cfg) in ConfigGrid::standard().points() {
                let raw = p.combine_raw(&spec, b, cfg).unwrap();
                let actual = hw.model_latency_s(&spec, b, cfg);
                total += (raw - actual).abs() / actual;
                n += 1;
            }
            total / f64::from(n)
        };
        assert!(avg_err(ModelId::Lstm2365) > avg_err(ModelId::VggNet));
    }

    #[test]
    fn offset_inflates_predictions() {
        let (p, _) = predictor();
        let spec = ModelId::ResNet50.spec();
        let cfg = ResourceConfig::new(2, 20);
        let raw = p.combine_raw(&spec, 8, cfg).unwrap();
        let inflated = p.predict(&spec, 8, cfg).unwrap().as_secs_f64();
        // SimDuration rounds to whole microseconds, so allow that slack.
        assert!((inflated / raw - DEFAULT_OFFSET).abs() < 1e-3);
    }

    #[test]
    fn predictions_are_safe_upper_bounds_mostly() {
        // With the 10% offset, predictions should rarely underestimate.
        let (p, hw) = predictor();
        let mut under = 0;
        let mut total = 0;
        for id in ModelId::all() {
            let spec = id.spec();
            for (b, cfg) in ConfigGrid::standard().points() {
                let pred = p.predict(&spec, b, cfg).unwrap().as_secs_f64();
                let actual = hw.model_latency_s(&spec, b, cfg);
                if pred < actual {
                    under += 1;
                }
                total += 1;
            }
        }
        let frac = f64::from(under) / f64::from(total);
        assert!(
            frac < 0.20,
            "{:.1}% of predictions underestimate",
            frac * 100.0
        );
    }

    #[test]
    fn unprofiled_config_returns_none() {
        let (p, _) = predictor();
        let spec = ModelId::Mnist.spec();
        assert!(p.predict(&spec, 8, ResourceConfig::cpu(7)).is_none());
        assert!(p.predict(&spec, 3, ResourceConfig::cpu(1)).is_none());
    }

    #[test]
    fn cache_returns_identical_results() {
        let (p, _) = predictor();
        let spec = ModelId::Ssd.spec();
        let cfg = ResourceConfig::new(2, 10);
        let a = p.predict(&spec, 4, cfg);
        let b = p.predict(&spec, 4, cfg);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "deflate")]
    fn deflating_offset_rejected() {
        let hw = HardwareModel::default();
        let db = ProfileDatabase::cached(&hw, &[ModelId::Mnist.spec()], &ConfigGrid::standard(), 0);
        CopPredictor::with_offset(db, hw, 0.9);
    }
}
