//! Model residency tiers: Torpor-style model swapping between host
//! RAM and GPU device memory.
//!
//! A deployed model occupies one of three tiers at any time:
//!
//! - **Cold** — the weights live nowhere; a launch pays the full
//!   container boot plus model load from disk.
//! - **HostCached** — the weights are pinned in a server's host RAM; a
//!   launch pays only the (pipelined) PCIe swap-in.
//! - **GpuResident** — the weights sit in device memory behind a live
//!   instance; a launch is a pre-warmed container attach.
//!
//! The tier a fresh launch starts from is decided per function by the
//! platform's cold-start manager: live instances ⇒ `GpuResident`
//! (pre-warmed), an unexpired host copy ⇒ `HostCached` (swap-in),
//! otherwise `Cold`. Host copies expire on the *host* keep-alive
//! window — the LSTH deep-tail window of
//! [`ColdStartPolicy::host_keep_alive`](crate::coldstart::ColdStartPolicy::host_keep_alive),
//! which always outlasts the device-tier keep-alive — so a model whose
//! idle-time histogram shows long gaps is demoted from RAM earlier
//! than one with a heavy recurrence tail.
//!
//! Everything here is opt-in: with [`ResidencyConfig::enabled`] left
//! `false` (the default) the platform is bit-identical to one built
//! before the tier existed — no device-memory booking, no swap
//! launches, no startup-cost term in Algorithm 1.

use serde::{Deserialize, Serialize};

/// Default per-function host-cache budget, MB (64 GB-class servers
/// leave plenty of RAM next to the largest deployed models).
pub const DEFAULT_HOST_CACHE_MB: f64 = 16.0 * 1024.0;

/// Residency knobs for the GPU memory tier. `Copy` so it can ride
/// inside [`InflessConfig`](crate::platform::InflessConfig).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ResidencyConfig {
    /// Master switch. `false` (the default) keeps runs bit-identical
    /// to the pre-tier engine.
    #[serde(default)]
    pub enabled: bool,
    /// Host-RAM budget a single model may occupy, MB. A model larger
    /// than this is never host-cached (its relaunches stay cold).
    #[serde(default = "default_host_cache_mb")]
    pub host_cache_mb: f64,
    /// Multiplier on the policy's host keep-alive window (1.0 =
    /// use the tiered-LSTH window as computed).
    #[serde(default = "default_host_retention")]
    pub host_retention: f64,
}

fn default_host_cache_mb() -> f64 {
    DEFAULT_HOST_CACHE_MB
}

fn default_host_retention() -> f64 {
    1.0
}

impl Default for ResidencyConfig {
    fn default() -> Self {
        ResidencyConfig {
            enabled: false,
            host_cache_mb: DEFAULT_HOST_CACHE_MB,
            host_retention: 1.0,
        }
    }
}

impl ResidencyConfig {
    /// The tier enabled with default knobs — what the Torpor baseline
    /// and the `fig_swap` sweeps run.
    pub fn enabled() -> Self {
        ResidencyConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let cfg = ResidencyConfig::default();
        assert!(!cfg.enabled);
        assert_eq!(cfg.host_cache_mb, DEFAULT_HOST_CACHE_MB);
        assert_eq!(cfg.host_retention, 1.0);
    }

    #[test]
    fn serde_round_trip_and_defaults() {
        let cfg = ResidencyConfig::enabled();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ResidencyConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        // An empty block deserializes to the defaults.
        let empty: ResidencyConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, ResidencyConfig::default());
    }
}
