//! Indexed deficit router: the request hot path.
//!
//! The dispatcher (§3.2 ❷) routes every arrival to the dispatch-set
//! instance whose target rate is least satisfied — the instance with
//! the lowest *credit* `sent / rate`. The original implementation
//! rebuilt and sorted a candidate `Vec` per request, an O(n log n)
//! allocation on the hottest path in the simulator. [`DeficitRouter`]
//! replaces it with a keyed binary min-heap over the same credits:
//!
//! * **Allocation-free in steady state.** The heap, its position
//!   index and the retry scratch buffer are reused across dispatches;
//!   after warm-up a dispatch performs no allocation.
//! * **O(log n) per dispatch.** One pop + one reinsert when the best
//!   instance accepts; instances whose pending batch is full are set
//!   aside in a scratch buffer and reinserted after the decision.
//! * **Identical routing order.** The heap orders by
//!   `(credit, insertion index)`, exactly the order a stable sort by
//!   credit produces, so routing decisions match the straightforward
//!   reference implementation request for request (pinned by a
//!   property test below).
//!
//! Credit staleness fix: credits are *relative* — an entry added to a
//! set whose veterans carry large `sent` counters would have credit 0
//! and absorb nearly all traffic until it "caught up". The router
//! therefore resets every credit to zero whenever the dispatch-set
//! membership changes (push, removal, restore), so routing always
//! tracks the *current* target rates rather than stale history.

use infless_cluster::InstanceId;
use infless_sim::SimDuration;

use crate::batching::RpsWindow;

/// An instance in the dispatch set with its controller state.
#[derive(Debug, Clone, Copy)]
pub struct RouterEntry {
    /// The engine instance this entry routes to.
    pub id: InstanceId,
    /// The instance's feasible-rate window (Eq. 6).
    pub window: RpsWindow,
    /// Target dispatch rate from the three-case controller; entries
    /// with a non-positive rate are excluded from routing.
    pub rate: f64,
    /// Requests sent since the last credit reset (deficit counter).
    pub sent: u64,
    /// The COP-predicted execution latency of this instance's
    /// configuration — carried so fault recovery can tell a hopeless
    /// retry (budget < fastest instance) from a viable one.
    pub predicted_exec: SimDuration,
}

impl RouterEntry {
    fn credit(&self) -> f64 {
        self.sent as f64 / self.rate
    }
}

/// Marker for "not in the heap" in the position index.
const ABSENT: u32 = u32::MAX;

/// Keyed min-heap over dispatch-set credits. See the module docs.
#[derive(Debug, Default)]
pub struct DeficitRouter {
    /// Entries in insertion order (the tie-break order).
    entries: Vec<RouterEntry>,
    /// Binary min-heap of indices into `entries`, keyed by
    /// `(credit, index)`.
    heap: Vec<u32>,
    /// `pos[i]` = slot of entry `i` in `heap`, or [`ABSENT`].
    pos: Vec<u32>,
    /// Entries popped as full during the current dispatch, awaiting
    /// reinsertion. Reused across calls.
    scratch: Vec<u32>,
    /// When set, the heap is rebuilt lazily before the next dispatch
    /// (membership or rate changes invalidate it wholesale).
    dirty: bool,
}

impl DeficitRouter {
    /// An empty router.
    pub fn new() -> Self {
        DeficitRouter::default()
    }

    /// Number of entries in the dispatch set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the dispatch set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &RouterEntry> {
        self.entries.iter()
    }

    /// Adds an instance to the dispatch set. Membership changed, so
    /// every credit resets — see the module docs.
    pub fn push(&mut self, entry: RouterEntry) {
        self.entries.push(entry);
        self.reset_credits();
    }

    /// Removes and returns the entry at `index` (insertion order).
    /// Remaining credits reset.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn remove_at(&mut self, index: usize) -> RouterEntry {
        let e = self.entries.remove(index);
        self.reset_credits();
        e
    }

    /// Removes the entry for `id`, if present. Credits reset on
    /// removal.
    pub fn remove_by_id(&mut self, id: InstanceId) -> Option<RouterEntry> {
        let pos = self.entries.iter().position(|e| e.id == id)?;
        Some(self.remove_at(pos))
    }

    /// Keeps only the entries matching `pred` (insertion order
    /// preserved). Credits reset if anything was dropped.
    pub fn retain(&mut self, pred: impl FnMut(&RouterEntry) -> bool) {
        let before = self.entries.len();
        self.entries.retain(pred);
        if self.entries.len() != before {
            self.reset_credits();
        }
    }

    /// Takes the whole dispatch set out (consolidation), leaving the
    /// router empty but with its buffers intact.
    pub fn take_entries(&mut self) -> Vec<RouterEntry> {
        self.dirty = true;
        std::mem::take(&mut self.entries)
    }

    /// Applies controller re-tuning (rates, credit zeroing) to the
    /// entries in insertion order, then re-indexes.
    pub fn retune(&mut self, f: impl FnOnce(&mut [RouterEntry])) {
        f(&mut self.entries);
        self.dirty = true;
    }

    /// Zeroes every deficit counter and re-indexes.
    pub fn reset_credits(&mut self) {
        for e in &mut self.entries {
            e.sent = 0;
        }
        self.dirty = true;
    }

    /// Routes one request: offers instances in ascending credit order
    /// (ties: insertion order) until `try_enqueue` accepts one, charges
    /// that instance's deficit counter, and returns its id. Returns
    /// `None` when every positive-rate instance refuses (pending batch
    /// full).
    pub fn dispatch(
        &mut self,
        mut try_enqueue: impl FnMut(InstanceId) -> bool,
    ) -> Option<InstanceId> {
        if self.dirty {
            self.rebuild();
        }
        debug_assert!(self.scratch.is_empty());
        let mut hit = None;
        while let Some(idx) = self.pop_min() {
            if try_enqueue(self.entries[idx as usize].id) {
                self.entries[idx as usize].sent += 1;
                hit = Some(self.entries[idx as usize].id);
                self.insert(idx);
                break;
            }
            self.scratch.push(idx);
        }
        while let Some(idx) = self.scratch.pop() {
            self.insert(idx);
        }
        hit
    }

    // --- heap internals ----------------------------------------------------

    fn rebuild(&mut self) {
        self.heap.clear();
        self.pos.clear();
        self.pos.resize(self.entries.len(), ABSENT);
        for i in 0..self.entries.len() {
            if self.entries[i].rate > 0.0 {
                self.insert(i as u32);
            }
        }
        self.dirty = false;
    }

    /// `(credit, index)` strict ordering; finite because `rate > 0`.
    fn less(&self, a: u32, b: u32) -> bool {
        let ca = self.entries[a as usize].credit();
        let cb = self.entries[b as usize].credit();
        match ca.partial_cmp(&cb).expect("credits are finite") {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a < b,
        }
    }

    fn insert(&mut self, idx: u32) {
        let slot = self.heap.len();
        self.heap.push(idx);
        self.pos[idx as usize] = slot as u32;
        self.sift_up(slot);
    }

    fn pop_min(&mut self) -> Option<u32> {
        let min = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[min as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0);
        }
        Some(min)
    }

    fn sift_up(&mut self, mut slot: usize) {
        while slot > 0 {
            let parent = (slot - 1) / 2;
            if self.less(self.heap[slot], self.heap[parent]) {
                self.swap_slots(slot, parent);
                slot = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut slot: usize) {
        loop {
            let left = 2 * slot + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let mut best = left;
            if right < self.heap.len() && self.less(self.heap[right], self.heap[left]) {
                best = right;
            }
            if self.less(self.heap[best], self.heap[slot]) {
                self.swap_slots(slot, best);
                slot = best;
            } else {
                break;
            }
        }
    }

    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as u32;
        self.pos[self.heap[b] as usize] = b as u32;
    }
}

/// Reusable least-loaded ordering scratch for the baseline routers.
///
/// OpenFaaS+ (fallback path) and BATCH both route by ascending queue
/// length; each previously collected and sorted a fresh `Vec` per
/// request/pump. This helper reuses one buffer and keeps the exact
/// stable-sort semantics (ties preserve the input order).
#[derive(Debug, Default)]
pub struct LeastLoadedScratch {
    ids: Vec<InstanceId>,
}

impl LeastLoadedScratch {
    /// An empty scratch.
    pub fn new() -> Self {
        LeastLoadedScratch::default()
    }

    /// Copies `ids` into the scratch, stable-sorts by `load` ascending,
    /// and returns the ordered slice (valid until the next call).
    pub fn order(
        &mut self,
        ids: &[InstanceId],
        mut load: impl FnMut(InstanceId) -> usize,
    ) -> &[InstanceId] {
        self.ids.clear();
        self.ids.extend_from_slice(ids);
        self.ids.sort_by_key(|&id| load(id));
        &self.ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infless_sim::SimDuration;
    use proptest::prelude::*;

    fn entry(id: u64, rate: f64) -> RouterEntry {
        RouterEntry {
            id: InstanceId::new(id),
            window: RpsWindow::for_instance(
                SimDuration::from_millis(10),
                SimDuration::from_millis(100),
                1,
            )
            .expect("feasible window"),
            rate,
            sent: 0,
            predicted_exec: SimDuration::from_millis(10),
        }
    }

    /// The straightforward reference: filter positive rates, stable
    /// sort by credit, first acceptor wins — with the same
    /// reset-credits-on-membership-change rule as the indexed router.
    #[derive(Default)]
    struct ReferenceRouter {
        entries: Vec<RouterEntry>,
    }

    impl ReferenceRouter {
        fn push(&mut self, e: RouterEntry) {
            self.entries.push(e);
            self.reset();
        }

        fn remove_at(&mut self, i: usize) -> RouterEntry {
            let e = self.entries.remove(i);
            self.reset();
            e
        }

        fn reset(&mut self) {
            for e in &mut self.entries {
                e.sent = 0;
            }
        }

        fn dispatch(
            &mut self,
            mut try_enqueue: impl FnMut(InstanceId) -> bool,
        ) -> Option<InstanceId> {
            let mut order: Vec<usize> = (0..self.entries.len())
                .filter(|&i| self.entries[i].rate > 0.0)
                .collect();
            order.sort_by(|&a, &b| {
                let ka = self.entries[a].credit();
                let kb = self.entries[b].credit();
                ka.partial_cmp(&kb).expect("finite")
            });
            for i in order {
                if try_enqueue(self.entries[i].id) {
                    self.entries[i].sent += 1;
                    return Some(self.entries[i].id);
                }
            }
            None
        }
    }

    #[test]
    fn routes_to_lowest_credit_first() {
        let mut r = DeficitRouter::new();
        r.push(entry(0, 10.0));
        r.push(entry(1, 10.0));
        // Equal credits: insertion order breaks the tie.
        assert_eq!(r.dispatch(|_| true), Some(InstanceId::new(0)));
        // 0 now has credit 1/10; 1 still 0.
        assert_eq!(r.dispatch(|_| true), Some(InstanceId::new(1)));
        // Both at 1/10 — back to insertion order.
        assert_eq!(r.dispatch(|_| true), Some(InstanceId::new(0)));
    }

    #[test]
    fn rate_proportional_sharing() {
        let mut r = DeficitRouter::new();
        r.push(entry(0, 30.0));
        r.push(entry(1, 10.0));
        let mut counts = [0u64; 2];
        for _ in 0..400 {
            let id = r.dispatch(|_| true).unwrap();
            counts[id.raw() as usize] += 1;
        }
        assert_eq!(counts[0], 300);
        assert_eq!(counts[1], 100);
    }

    #[test]
    fn full_instances_fall_through() {
        let mut r = DeficitRouter::new();
        r.push(entry(0, 100.0));
        r.push(entry(1, 1.0));
        // Instance 0 (lowest credit) refuses; 1 takes it.
        assert_eq!(
            r.dispatch(|id| id != InstanceId::new(0)),
            Some(InstanceId::new(1))
        );
        // Everyone refuses.
        assert_eq!(r.dispatch(|_| false), None);
        // Refused entries were reinserted: a normal dispatch still works.
        assert_eq!(r.dispatch(|_| true), Some(InstanceId::new(0)));
    }

    #[test]
    fn zero_rate_entries_are_skipped() {
        let mut r = DeficitRouter::new();
        r.push(entry(0, 0.0));
        assert_eq!(r.dispatch(|_| true), None);
        r.retune(|es| es[0].rate = 5.0);
        assert_eq!(r.dispatch(|_| true), Some(InstanceId::new(0)));
    }

    /// Satellite bugfix pin: a newcomer joining veterans with large
    /// deficit counters must NOT absorb a flood of requests while it
    /// "catches up" — membership change resets every credit.
    #[test]
    fn late_instance_is_not_flooded() {
        let mut r = DeficitRouter::new();
        r.push(entry(0, 10.0));
        r.push(entry(1, 10.0));
        // Steady load: veterans accumulate large sent counters.
        for _ in 0..10_000 {
            r.dispatch(|_| true).unwrap();
        }
        // A third instance joins late with the same target rate.
        r.push(entry(2, 10.0));
        let mut counts = [0u64; 3];
        for _ in 0..300 {
            let id = r.dispatch(|_| true).unwrap();
            counts[id.raw() as usize] += 1;
        }
        // Fair three-way split from the moment it joined — not ~300
        // requests in a row to the newcomer (the stale-credit bug).
        assert_eq!(counts, [100, 100, 100]);
    }

    #[test]
    fn least_loaded_scratch_matches_stable_sort() {
        let ids: Vec<InstanceId> = (0..6).map(InstanceId::new).collect();
        let load = |id: InstanceId| [3usize, 1, 2, 1, 0, 1][id.raw() as usize];
        let mut scratch = LeastLoadedScratch::new();
        let got: Vec<u64> = scratch.order(&ids, load).iter().map(|i| i.raw()).collect();
        // Stable: the three load-1 instances keep their input order.
        assert_eq!(got, vec![4, 1, 3, 5, 2, 0]);
    }

    #[derive(Debug, Clone)]
    enum Op {
        Push { rate: f64 },
        RemoveAt(usize),
        Retune { rates: Vec<f64> },
        ResetCredits,
        Dispatch { salt: u64 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (1u64..200).prop_map(|r| Op::Push { rate: r as f64 }),
            (0usize..8).prop_map(Op::RemoveAt),
            prop::collection::vec(0u64..50, 0..8).prop_map(|rs| Op::Retune {
                rates: rs.iter().map(|&r| r as f64).collect()
            }),
            Just(Op::ResetCredits),
            (0u64..20).prop_map(|salt| Op::Dispatch { salt }),
        ]
    }

    proptest! {
        /// Tentpole pin: over random dispatch-set churn the indexed
        /// router emits the identical request→instance sequence as the
        /// reference implementation, and both end in the same state.
        #[test]
        fn prop_router_matches_reference(ops in prop::collection::vec(op_strategy(), 1..120)) {
            let mut indexed = DeficitRouter::new();
            let mut reference = ReferenceRouter::default();
            let mut next_id = 0u64;
            for op in ops {
                match op {
                    Op::Push { rate } => {
                        indexed.push(entry(next_id, rate));
                        reference.push(entry(next_id, rate));
                        next_id += 1;
                    }
                    Op::RemoveAt(i) => {
                        if i < indexed.len() {
                            let a = indexed.remove_at(i);
                            let b = reference.remove_at(i);
                            prop_assert_eq!(a.id, b.id);
                        }
                    }
                    Op::Retune { rates } => {
                        let apply = |es: &mut [RouterEntry]| {
                            for (e, r) in es.iter_mut().zip(&rates) {
                                e.rate = *r;
                            }
                        };
                        indexed.retune(apply);
                        apply(&mut reference.entries);
                    }
                    Op::ResetCredits => {
                        indexed.reset_credits();
                        reference.reset();
                    }
                    Op::Dispatch { salt } => {
                        // Acceptance must be a pure function of the
                        // instance id so both routers see the same
                        // "queue full" answers.
                        let accept = |id: InstanceId| !(id.raw() + salt).is_multiple_of(4);
                        let a = indexed.dispatch(accept);
                        let b = reference.dispatch(accept);
                        prop_assert_eq!(a, b);
                    }
                }
                // State equivalence after every op.
                prop_assert_eq!(indexed.len(), reference.entries.len());
                for (x, y) in indexed.iter().zip(&reference.entries) {
                    prop_assert_eq!(x.id, y.id);
                    prop_assert_eq!(x.sent, y.sent);
                    prop_assert_eq!(x.rate, y.rate);
                }
            }
        }
    }
}
