//! The unified execution API: one [`RunConfig`] builder instead of a
//! `run_*` method per feature combination.
//!
//! Every way of running a workload — sharded or single-core, with or
//! without fault injection, telemetry, or the GPU memory tier — is a
//! knob on [`RunConfig`]. Entry points take it by value (the telemetry
//! sink is an owned trait object):
//!
//! ```ignore
//! let report = scenario.execute(RunConfig::new().shards(4))?;
//! let report = System::Torpor.execute(&workload, functions, cluster,
//!     RunConfig::new().fault_schedule(faults));
//! ```
//!
//! Leaving every knob at its default runs the classic single-shard,
//! fault-free, telemetry-free, residency-free simulation —
//! bit-identical to the pre-`RunConfig` `run()` path.

use std::fmt;
use std::path::PathBuf;

use infless_faults::FaultSchedule;
use infless_llm::LlmConfig;
use infless_telemetry::TelemetrySink;

use crate::residency::ResidencyConfig;

/// Execution knobs for a single simulation run.
///
/// Not `Clone` (the telemetry sink is an owned trait object); build
/// one per run.
#[derive(Default)]
pub struct RunConfig {
    /// Simulation shards. Zero (the default) means unset: the classic
    /// single-core event loop. Any explicit count — including 1 —
    /// runs the deterministic epoch-barrier sharded driver, whose
    /// report is byte-identical for every shard count (but not to the
    /// single-core loop, which schedules eagerly rather than at epoch
    /// barriers).
    pub shards: usize,
    /// Faults to inject. `None` is bit-identical to an empty schedule.
    pub fault_schedule: Option<FaultSchedule>,
    /// Telemetry sink. `None` is bit-identical to a `NullSink`.
    pub telemetry: Option<Box<dyn TelemetrySink>>,
    /// GPU memory tier knobs. `None` leaves the tier disabled (the
    /// pre-tier engine, bit-identical).
    pub residency: Option<ResidencyConfig>,
    /// Autoregressive (LLM) serving knobs. `None` — or a config with
    /// `enabled: false` — is bit-identical to the pre-LLM engine.
    pub llm: Option<LlmConfig>,
    /// Where to write the decision trace (JSONL). Unlike `telemetry`
    /// this works with sharding: the driver buffers decisions per
    /// shard and merges them deterministically at epoch barriers.
    pub decisions_out: Option<PathBuf>,
    /// Where to write the Prometheus text-format metrics snapshot at
    /// the end of the run. Works at every shard count.
    pub metrics_out: Option<PathBuf>,
    /// Where the flight recorder appends its postmortem dumps: a
    /// bounded ring of recent spans, flushed when a fault burst hits.
    /// Rides the span channel, so — like `telemetry` — single-core
    /// runs only.
    pub flight_out: Option<PathBuf>,
}

impl fmt::Debug for RunConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunConfig")
            .field("shards", &self.effective_shards())
            .field("fault_schedule", &self.fault_schedule)
            .field("telemetry", &self.telemetry.is_some())
            .field("residency", &self.residency)
            .field("llm", &self.llm)
            .field("decisions_out", &self.decisions_out)
            .field("metrics_out", &self.metrics_out)
            .field("flight_out", &self.flight_out)
            .finish()
    }
}

/// What [`RunConfig::validate`] rejects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunConfigError {
    /// `shards` was set to zero explicitly (the `Default` zero means
    /// "unset" and resolves to 1; this error fires only via
    /// [`RunConfig::shards`]-built configs round-tripped through
    /// descriptor files that say `"shards": 0`).
    ZeroShards,
    /// Telemetry sinks attach to the single-core event loop only; the
    /// sharded driver (any explicit shard count, even 1) has no span
    /// ordering to offer.
    ShardedTelemetry,
}

impl fmt::Display for RunConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunConfigError::ZeroShards => write!(f, "shards must be >= 1"),
            RunConfigError::ShardedTelemetry => {
                write!(
                    f,
                    "telemetry requires the single-core run (leave shards unset)"
                )
            }
        }
    }
}

impl std::error::Error for RunConfigError {}

impl RunConfig {
    /// A default config: single shard, no faults, no telemetry, no
    /// residency tier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an explicit shard count, opting into the epoch-barrier
    /// sharded driver — even at 1 shard. Leave unset for the classic
    /// single-core event loop.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Attaches a fault schedule.
    pub fn fault_schedule(mut self, faults: FaultSchedule) -> Self {
        self.fault_schedule = Some(faults);
        self
    }

    /// Attaches a telemetry sink (single-shard runs only).
    pub fn telemetry(mut self, sink: Box<dyn TelemetrySink>) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Enables the GPU memory tier with the given knobs.
    pub fn residency(mut self, residency: ResidencyConfig) -> Self {
        self.residency = Some(residency);
        self
    }

    /// Sets the autoregressive (LLM) serving knobs.
    pub fn llm(mut self, llm: LlmConfig) -> Self {
        self.llm = Some(llm);
        self
    }

    /// Writes a decision trace (JSONL) to `path`. Valid at every shard
    /// count — sharded runs merge per-shard buffers at epoch barriers
    /// into a byte-identical trace.
    pub fn decisions_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.decisions_out = Some(path.into());
        self
    }

    /// Writes an end-of-run Prometheus text-format metrics snapshot to
    /// `path`. Valid at every shard count.
    pub fn metrics_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.metrics_out = Some(path.into());
        self
    }

    /// Appends flight-recorder dumps (a bounded span ring flushed on
    /// fault bursts) to `path`. Single-core runs only, like
    /// [`telemetry`](Self::telemetry).
    pub fn flight_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.flight_out = Some(path.into());
        self
    }

    /// The shard count to run with: an unset (`Default`) zero means 1.
    pub fn effective_shards(&self) -> usize {
        if self.shards == 0 {
            1
        } else {
            self.shards
        }
    }

    /// Whether an explicit shard count was set — the opt-in to the
    /// epoch-barrier sharded driver (shard-count-invariant, but not
    /// byte-identical to the eager single-core loop).
    pub fn is_sharded(&self) -> bool {
        self.shards != 0
    }

    /// Checks the knob combination. Every executor calls this first;
    /// callers that want a friendly error before spending simulation
    /// time can call it themselves.
    pub fn validate(&self) -> Result<(), RunConfigError> {
        if self.is_sharded() && (self.telemetry.is_some() || self.flight_out.is_some()) {
            return Err(RunConfigError::ShardedTelemetry);
        }
        Ok(())
    }

    /// Like [`validate`](Self::validate), but for configs deserialized
    /// from descriptor files where an explicit `"shards": 0` is a user
    /// error rather than "unset".
    pub fn validate_explicit_shards(shards: usize) -> Result<(), RunConfigError> {
        if shards == 0 {
            return Err(RunConfigError::ZeroShards);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infless_telemetry::NullSink;

    #[test]
    fn default_is_single_shard_and_valid() {
        let cfg = RunConfig::new();
        assert_eq!(cfg.effective_shards(), 1);
        assert!(cfg.fault_schedule.is_none());
        assert!(cfg.telemetry.is_none());
        assert!(cfg.residency.is_none());
        assert!(cfg.llm.is_none());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn sharded_telemetry_is_rejected() {
        let cfg = RunConfig::new().shards(4).telemetry(Box::new(NullSink));
        assert_eq!(cfg.validate(), Err(RunConfigError::ShardedTelemetry));
        // An explicit shard count — even 1 — opts into the sharded
        // driver, which carries no telemetry.
        let cfg = RunConfig::new().shards(1).telemetry(Box::new(NullSink));
        assert_eq!(cfg.validate(), Err(RunConfigError::ShardedTelemetry));
        // Telemetry on the default single-core loop is fine.
        let cfg = RunConfig::new().telemetry(Box::new(NullSink));
        assert!(cfg.validate().is_ok());
        assert!(!RunConfig::new().is_sharded());
        assert!(RunConfig::new().shards(1).is_sharded());
        // The decisions/metrics channels, by contrast, are merged at
        // epoch barriers and therefore valid at every shard count.
        let cfg = RunConfig::new()
            .shards(4)
            .decisions_out("decisions.jsonl")
            .metrics_out("metrics.prom");
        assert!(cfg.validate().is_ok());
        // The flight recorder rides the span channel, so it shares the
        // single-core-only restriction.
        let cfg = RunConfig::new().shards(4).flight_out("flight.jsonl");
        assert_eq!(cfg.validate(), Err(RunConfigError::ShardedTelemetry));
        assert!(RunConfig::new()
            .flight_out("flight.jsonl")
            .validate()
            .is_ok());
    }

    #[test]
    fn explicit_zero_shards_is_rejected() {
        assert_eq!(
            RunConfig::validate_explicit_shards(0),
            Err(RunConfigError::ZeroShards)
        );
        assert!(RunConfig::validate_explicit_shards(1).is_ok());
    }

    #[test]
    fn builder_round_trip() {
        let cfg = RunConfig::new()
            .shards(4)
            .fault_schedule(FaultSchedule::empty())
            .residency(crate::residency::ResidencyConfig::enabled())
            .llm(infless_llm::LlmConfig::continuous());
        assert_eq!(cfg.effective_shards(), 4);
        assert!(cfg.fault_schedule.is_some());
        assert!(cfg.llm.is_some_and(|l| l.enabled));
        assert!(cfg.residency.is_some_and(|r| r.enabled));
        assert!(RunConfig::new().validate().is_ok());
    }
}
