//! The greedy SLO-aware scheduler — Algorithm 1 of §3.4.
//!
//! Given the residual request rate of a function, the scheduler
//! repeatedly creates one instance at a time: it tries batchsizes in
//! descending order (batching contributes most to throughput), collects
//! every resource configuration whose *predicted* execution time keeps
//! the SLO feasible (`AvailableConfig`), and then jointly picks the
//! configuration and the server maximizing the resource-efficiency
//! metric of Eq. 10:
//!
//! ```text
//! e_ij = (r_up / (β·c + g)) / (1 − (β·c + g) / (β·C_j + G_j))
//! ```
//!
//! — throughput per unit of hybrid resource, divided by the fragment the
//! placement would leave on server `j` (`C_j`, `G_j` are the server's
//! *free* resources). A placement that exactly fills a server leaves no
//! fragment and is preferred unconditionally.

use std::collections::HashMap;

use infless_cluster::{ClusterState, InstanceConfig, Placement, ServerId};
use infless_llm::LlmClass;
use infless_models::{ModelSpec, ResourceConfig};
use infless_sim::SimDuration;
use infless_telemetry::{DecisionEvent, DecisionKind, DecisionReason};
use serde::{Deserialize, Serialize};

use crate::batching::RpsWindow;
use crate::engine::FunctionInfo;
use crate::predictor::CopPredictor;

/// How the scheduler chooses the server (and, for the ablations, the
/// configuration) for each new instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// The paper's joint config/server choice by Eq. 10.
    Efficiency,
    /// Ablation (RS off, Fig. 11): pick the configuration with the
    /// highest absolute throughput `r_up`, place it first-fit —
    /// fragmentation-oblivious.
    MaxThroughput,
    /// Ablation: first feasible configuration on the first fitting
    /// server.
    FirstFit,
}

/// Scheduler knobs (§3.4 defaults plus ablation switches).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Server/config selection strategy.
    pub placement: PlacementStrategy,
    /// Try batchsizes in descending order (the paper's choice). The
    /// greedy-order ablation flips this.
    pub largest_batch_first: bool,
    /// Cap on the batchsizes considered (1 disables batching — the
    /// "BB off" ablation of Fig. 11).
    pub max_batch: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            placement: PlacementStrategy::Efficiency,
            largest_batch_first: true,
            max_batch: u32::MAX,
        }
    }
}

/// One instance the scheduler decided to launch (resources already
/// allocated on the cluster).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledInstance {
    /// Batchsize and resources.
    pub config: InstanceConfig,
    /// The chosen server.
    pub server: ServerId,
    /// The resource allocation made on the cluster (release it when the
    /// instance retires).
    pub placement: Placement,
    /// The feasible arrival-rate window (Eq. 1) under the predicted
    /// execution time.
    pub window: RpsWindow,
    /// The COP-predicted batch execution time.
    pub predicted_exec: SimDuration,
}

/// The result of one scheduling round.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScheduleOutcome {
    /// Instances created, in creation order.
    pub instances: Vec<ScheduledInstance>,
    /// Residual RPS that could not be placed (cluster exhausted or no
    /// feasible configuration) — the paper's simulator reports this as
    /// unserved load.
    pub unplaced_rps: f64,
}

/// The Algorithm 1 scheduler. Each call works against the predictor and
/// mutates the cluster's resource accounting. Decisions depend only on
/// the arguments; the struct's state is a pure memo: the feasible
/// `⟨b, c, g⟩` candidate sets per (model, SLO, batch cap), which the
/// predictor determines once per function rather than once per
/// scheduling round. The memo assumes the predictor handed to
/// `schedule` is stable for a given model — true throughout a platform
/// run, where one `CopPredictor` serves the whole simulation.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    config: SchedulerConfig,
    /// Memoized rk-independent candidates (prediction + Eq. 1 window
    /// feasibility) keyed by (model name, SLO, effective batch cap,
    /// autoregressive-class discriminant). The last component keeps a
    /// chat and a summarization function sharing one model from
    /// aliasing each other's two-phase feasibility sets.
    cache: HashMap<(&'static str, SimDuration, u32, Option<LlmKey>), CachedCandidates>,
    /// Per-round scratch: the rk-filtered view of the cached masters,
    /// reused across rounds and calls so the steady state allocates
    /// nothing.
    sets: Vec<Vec<Candidate>>,
}

/// The hashable fingerprint of an [`LlmClass`] for the candidate memo:
/// every field the two-phase feasibility check reads, in integer form.
type LlmKey = (u32, u32, SimDuration, SimDuration, u64);

fn llm_key(llm: &LlmClass) -> LlmKey {
    (
        llm.prompt_tokens_mean,
        llm.output_tokens_mean,
        llm.ttft_slo,
        llm.tpot_slo,
        llm.arena_capacity_tokens(),
    )
}

/// The memoized candidate sets for one (model, SLO, cap) key, in the
/// configured batch preference order.
#[derive(Debug, Clone)]
struct CachedCandidates {
    batches: Vec<u32>,
    masters: Vec<Vec<Candidate>>,
}

impl Scheduler {
    /// Creates a scheduler with the given knobs.
    pub fn new(config: SchedulerConfig) -> Self {
        Scheduler {
            config,
            cache: HashMap::new(),
            sets: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> SchedulerConfig {
        self.config
    }

    /// `Schedule(R_k, B, M, t_slo)`: creates instances for `residual_rps`
    /// of `function`, allocating on `cluster`. The batchsize set `B` is
    /// the profiled grid capped by both the scheduler's ablation switch
    /// and the function's own `maxBatchsize` template field.
    ///
    /// Resources for every returned instance are already allocated; the
    /// caller launches them and must release them on retirement.
    pub fn schedule(
        &mut self,
        predictor: &CopPredictor,
        function: &FunctionInfo,
        residual_rps: f64,
        cluster: &mut ClusterState,
    ) -> ScheduleOutcome {
        self.schedule_with_cost(
            predictor,
            function,
            residual_rps,
            cluster,
            SimDuration::ZERO,
            0.0,
        )
    }

    /// [`schedule`](Self::schedule) with Algorithm 1's startup-cost
    /// term: `startup_cost` is the launch delay every instance of this
    /// round will pay (cold boot ≫ host-RAM swap-in ≫ pre-warmed
    /// attach), discounting each candidate's *useful* throughput by the
    /// fraction of its serving life spent starting up; `device_mb` is
    /// the GPU device memory a GPU-resident instance books for its
    /// weights. `(ZERO, 0.0)` — what `schedule` passes — is exactly the
    /// pre-tier scheduler, bit for bit.
    pub fn schedule_with_cost(
        &mut self,
        predictor: &CopPredictor,
        function: &FunctionInfo,
        residual_rps: f64,
        cluster: &mut ClusterState,
        startup_cost: SimDuration,
        device_mb: f64,
    ) -> ScheduleOutcome {
        self.schedule_with_cost_traced(
            predictor,
            function,
            residual_rps,
            cluster,
            startup_cost,
            device_mb,
            None,
        )
    }

    /// Re-walks the full ⟨b, c, g⟩ grid for `function` and appends one
    /// decision record per candidate: [`DecisionKind::Candidate`] for
    /// survivors of the residual-independent feasibility checks (with
    /// the efficiency density `r_up / (β·c + g)` as `value` and the
    /// predicted execution latency in ms as `aux`), or a
    /// [`DecisionKind::Reject`] carrying the reason the check failed.
    /// Deliberately independent of the candidate memo (which is shared
    /// across functions with equal `(model, SLO)` keys), so the events
    /// a function emits do not depend on which function warmed the
    /// cache — the property that keeps decision traces byte-identical
    /// across shard layouts. The caller stamps `t_s`/`function`/`seq`.
    pub fn trace_candidates(
        &self,
        predictor: &CopPredictor,
        function: &FunctionInfo,
        out: &mut Vec<DecisionEvent>,
    ) {
        let spec = function.spec();
        let slo = function.slo();
        let cap = self.config.max_batch.min(function.max_batch());
        let beta = predictor.beta();
        let mut batches: Vec<u32> = predictor
            .grid()
            .batches()
            .iter()
            .copied()
            .filter(|b| *b <= cap)
            .collect();
        batches.sort_unstable();
        if self.config.largest_batch_first {
            batches.reverse();
        }
        for b in batches {
            for &cfg in predictor.grid().configs() {
                let mut ev = DecisionEvent::new(DecisionKind::Candidate);
                ev.batch = b;
                ev.cpu = cfg.cpu_cores();
                ev.gpu = cfg.gpu_pct();
                if let Some(llm) = function.llm() {
                    // Two-phase feasibility, mirroring
                    // `llm_master_candidates` check for check.
                    if cfg.gpu_pct() == 0 {
                        ev.kind = DecisionKind::Reject;
                        ev.reason = DecisionReason::Memory;
                        out.push(ev);
                        continue;
                    }
                    let prompt = u64::from(llm.prompt_tokens_mean);
                    let n_cap = b.min(llm.max_concurrent_seqs());
                    let kv_mb = (f64::from(n_cap)
                        * f64::from(llm.prompt_tokens_mean + llm.output_tokens_mean)
                        * llm.kv_mb_per_token)
                        .min(llm.kv_arena_mb);
                    let prefill =
                        predictor.prefill_latency(spec, prompt.saturating_mul(u64::from(b)), cfg);
                    if prefill > llm.ttft_slo {
                        ev.kind = DecisionKind::Reject;
                        ev.reason = DecisionReason::Ttft;
                        ev.value = prefill.as_millis_f64();
                        out.push(ev);
                        continue;
                    }
                    let step = predictor.decode_step_latency(spec, n_cap, kv_mb, cfg);
                    if step > llm.tpot_slo {
                        ev.kind = DecisionKind::Reject;
                        ev.reason = DecisionReason::Tpot;
                        ev.value = step.as_millis_f64();
                        out.push(ev);
                        continue;
                    }
                    let t_exec = prefill + step.mul_f64(f64::from(llm.output_tokens_mean));
                    let Some(window) = RpsWindow::for_instance(t_exec, slo, b) else {
                        ev.kind = DecisionKind::Reject;
                        ev.reason = DecisionReason::Window;
                        ev.value = t_exec.as_millis_f64();
                        out.push(ev);
                        continue;
                    };
                    ev.value = window.r_up() / weighted(cfg, beta);
                    ev.aux = t_exec.as_millis_f64();
                    out.push(ev);
                } else {
                    let Some(t_exec) = predictor.predict(spec, b, cfg) else {
                        ev.kind = DecisionKind::Reject;
                        ev.reason = DecisionReason::NoProfile;
                        out.push(ev);
                        continue;
                    };
                    let Some(window) = RpsWindow::for_instance(t_exec, slo, b) else {
                        ev.kind = DecisionKind::Reject;
                        ev.reason = DecisionReason::Window;
                        ev.value = t_exec.as_millis_f64();
                        out.push(ev);
                        continue;
                    };
                    ev.value = window.r_up() / weighted(cfg, beta);
                    ev.aux = t_exec.as_millis_f64();
                    out.push(ev);
                }
            }
        }
    }

    /// [`schedule_with_cost`](Self::schedule_with_cost) with an
    /// optional decision trace: per round, the chosen configuration
    /// (effective density and startup discount), batchsizes whose
    /// candidate set the residual-rate saturation bound emptied, sets
    /// that were feasible but placeable nowhere, and the residual that
    /// stayed unplaced at the end. `None` is the exact untraced path.
    /// The caller stamps `t_s`/`function`/`seq` on the appended events.
    #[allow(clippy::too_many_arguments)]
    pub fn schedule_with_cost_traced(
        &mut self,
        predictor: &CopPredictor,
        function: &FunctionInfo,
        residual_rps: f64,
        cluster: &mut ClusterState,
        startup_cost: SimDuration,
        device_mb: f64,
        mut trace: Option<&mut Vec<DecisionEvent>>,
    ) -> ScheduleOutcome {
        let discount = 1.0 / (1.0 + STARTUP_KAPPA * startup_cost.as_secs_f64());
        let spec = function.spec();
        let slo = function.slo();
        let cap = self.config.max_batch.min(function.max_batch());
        let config = self.config;
        let llm = function.llm().copied();
        let plan = self
            .cache
            .entry((spec.name(), slo, cap, llm.as_ref().map(llm_key)))
            .or_insert_with(|| {
                let mut batches: Vec<u32> = predictor
                    .grid()
                    .batches()
                    .iter()
                    .copied()
                    .filter(|b| *b <= cap)
                    .collect();
                batches.sort_unstable();
                if config.largest_batch_first {
                    batches.reverse();
                }
                let masters = batches
                    .iter()
                    .map(|&b| match &llm {
                        Some(l) => llm_master_candidates(predictor, spec, slo, b, l),
                        None => master_candidates(predictor, spec, slo, b),
                    })
                    .collect();
                CachedCandidates { batches, masters }
            });
        let plan = &*plan;
        let sets = &mut self.sets;
        if sets.len() < plan.batches.len() {
            sets.resize_with(plan.batches.len(), Vec::new);
        }

        let mut out = ScheduleOutcome::default();
        let mut rk = residual_rps;
        let beta = predictor.beta();
        let mem_mb = predictor.instance_memory_mb(spec);
        'outer: while rk > 1e-9 {
            // Candidate sets per batchsize, in the configured preference
            // order — the cached masters narrowed by the one residual-
            // dependent constraint (`AvailableConfig(b, R_k, t_slo)`'s
            // saturation bound: a b > 1 batch must fill before its
            // timeout, i.e. rk >= r_low). The batch-order preference is
            // a heuristic for the Eq. 2 objective (minimize occupied
            // resources), and it can betray that objective: at a
            // residual just past a small batch's r_up, the next
            // batchsize up may be feasible only on near-server-sized
            // configurations (the Eq. 1 saturation bound admits large
            // batches only when t_exec is tiny). Guard against that by
            // skipping any batchsize whose best configuration is
            // drastically less resource-dense than the best available at
            // any other batchsize; a second pass without the guard keeps
            // feasibility intact when only the wasteful batches can
            // still be placed.
            for (i, master) in plan.masters.iter().enumerate() {
                let b = plan.batches[i];
                let set = &mut sets[i];
                set.clear();
                set.extend(
                    master
                        .iter()
                        .filter(|c| !(b > 1 && rk < c.window.r_low()))
                        .copied(),
                );
                if set.is_empty() && !master.is_empty() {
                    if let Some(tr) = trace.as_deref_mut() {
                        let mut ev = DecisionEvent::new(DecisionKind::Reject);
                        ev.reason = DecisionReason::ResidualCap;
                        ev.batch = b;
                        ev.value = rk;
                        ev.aux = master
                            .iter()
                            .map(|c| c.window.r_low())
                            .fold(f64::INFINITY, f64::min);
                        tr.push(ev);
                    }
                }
            }
            let live = &sets[..plan.batches.len()];
            let density_of = |set: &[Candidate]| {
                set.iter()
                    .map(|c| c.density(beta, rk, discount))
                    .fold(0.0f64, f64::max)
            };
            let best_density = live.iter().map(|s| density_of(s)).fold(0.0f64, f64::max);
            if best_density <= 0.0 {
                break;
            }
            for guarded_pass in [true, false] {
                for set in live {
                    if set.is_empty() {
                        continue;
                    }
                    let passes = density_of(set) >= DENSITY_GUARD * best_density;
                    if passes != guarded_pass {
                        continue;
                    }
                    if let Some(placed) =
                        place(config, set, cluster, beta, mem_mb, device_mb, rk, discount)
                    {
                        if let Some(tr) = trace.as_deref_mut() {
                            let mut ev = DecisionEvent::new(DecisionKind::Chosen);
                            ev.server = placed.server.raw() as i64;
                            ev.batch = placed.config.batch();
                            ev.cpu = placed.config.resources().cpu_cores();
                            ev.gpu = placed.config.resources().gpu_pct();
                            ev.value = (placed.window.r_up() * discount).min(rk)
                                / weighted(placed.config.resources(), beta);
                            ev.aux = discount;
                            tr.push(ev);
                        }
                        rk -= placed.window.r_up();
                        out.instances.push(placed);
                        continue 'outer;
                    }
                    // Feasible configs exist but nowhere fits: a smaller
                    // batchsize may still fit (it admits smaller configs).
                    if let Some(tr) = trace.as_deref_mut() {
                        let mut ev = DecisionEvent::new(DecisionKind::Reject);
                        ev.reason = DecisionReason::Memory;
                        ev.batch = set[0].batch;
                        ev.value = rk;
                        tr.push(ev);
                    }
                }
            }
            break; // nothing feasible/placeable remains
        }
        out.unplaced_rps = rk.max(0.0);
        if out.unplaced_rps > 1e-9 {
            if let Some(tr) = trace {
                let mut ev = DecisionEvent::new(DecisionKind::Reject);
                ev.reason = DecisionReason::Unplaced;
                ev.value = out.unplaced_rps;
                tr.push(ev);
            }
        }
        out
    }
}

/// The residual-independent part of `AvailableConfig(b, R_k, t_slo)`:
/// every configuration whose predicted execution time keeps the SLO
/// feasible at batchsize `b`. The residual-rate saturation bound is
/// applied per round by `schedule`.
fn master_candidates(
    predictor: &CopPredictor,
    spec: &ModelSpec,
    slo: SimDuration,
    b: u32,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    for &cfg in predictor.grid().configs() {
        let Some(t_exec) = predictor.predict(spec, b, cfg) else {
            continue;
        };
        let Some(window) = RpsWindow::for_instance(t_exec, slo, b) else {
            continue;
        };
        out.push(Candidate {
            batch: b,
            cfg,
            window,
            t_exec,
        });
    }
    out
}

/// The two-phase `AvailableConfig` for autoregressive functions —
/// Algorithm 1's feasibility check split along the prefill/decode
/// boundary. A configuration survives only when
///
/// 1. a full batch of mean-length prompts prefills within the TTFT
///    SLO (the compute-bound phase sets time-to-first-token), and
/// 2. one decode step at the arena-capped concurrent-sequence
///    capacity — the worst KV-cache pressure an admitted batch can
///    reach — stays within the TPOT SLO.
///
/// The Eq. 1 window then uses the *effective* batch service time,
/// prefill plus `output_tokens_mean` decode steps, so the arrival-rate
/// bounds reflect the whole episode rather than a single pass.
fn llm_master_candidates(
    predictor: &CopPredictor,
    spec: &ModelSpec,
    slo: SimDuration,
    b: u32,
    llm: &LlmClass,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    let prompt = u64::from(llm.prompt_tokens_mean);
    // Concurrency is capped by both the batch knob and the KV arena.
    let n_cap = b.min(llm.max_concurrent_seqs());
    let kv_mb = (f64::from(n_cap)
        * f64::from(llm.prompt_tokens_mean + llm.output_tokens_mean)
        * llm.kv_mb_per_token)
        .min(llm.kv_arena_mb);
    for &cfg in predictor.grid().configs() {
        // The KV arena lives in device memory: autoregressive
        // instances are GPU-resident by construction.
        if cfg.gpu_pct() == 0 {
            continue;
        }
        let prefill = predictor.prefill_latency(spec, prompt.saturating_mul(u64::from(b)), cfg);
        if prefill > llm.ttft_slo {
            continue;
        }
        let step = predictor.decode_step_latency(spec, n_cap, kv_mb, cfg);
        if step > llm.tpot_slo {
            continue;
        }
        let t_exec = prefill + step.mul_f64(f64::from(llm.output_tokens_mean));
        let Some(window) = RpsWindow::for_instance(t_exec, slo, b) else {
            continue;
        };
        out.push(Candidate {
            batch: b,
            cfg,
            window,
            t_exec,
        });
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn place(
    config: SchedulerConfig,
    candidates: &[Candidate],
    cluster: &mut ClusterState,
    beta: f64,
    mem_mb: f64,
    device_mb: f64,
    rk: f64,
    discount: f64,
) -> Option<ScheduledInstance> {
    let chosen: Option<(Candidate, ServerId)> = match config.placement {
        PlacementStrategy::Efficiency => {
            choose_by_efficiency(candidates, cluster, beta, mem_mb, device_mb, rk, discount)
        }
        PlacementStrategy::MaxThroughput => {
            // Highest-throughput config, first server it fits on.
            let mut sorted: Vec<&Candidate> = candidates.iter().collect();
            sorted.sort_by(|a, b| {
                b.window
                    .r_up()
                    .partial_cmp(&a.window.r_up())
                    .expect("rates are finite")
            });
            sorted
                .iter()
                .find_map(|c| first_fit(cluster, c.cfg, mem_mb, device_mb).map(|s| (**c, s)))
        }
        PlacementStrategy::FirstFit => candidates
            .iter()
            .find_map(|c| first_fit(cluster, c.cfg, mem_mb, device_mb).map(|s| (*c, s))),
    };
    let (cand, server) = chosen?;
    let placement = cluster
        .allocate_on_with_split(server, cand.cfg, mem_mb, device_demand(cand.cfg, device_mb))
        .expect("server was checked to fit");
    Some(ScheduledInstance {
        config: InstanceConfig::new(cand.batch, cand.cfg),
        server,
        placement,
        window: cand.window,
        predicted_exec: cand.t_exec,
    })
}

/// The device-memory demand a configuration books: the model's weights
/// occupy device memory only when the instance holds a GPU slice.
fn device_demand(cfg: ResourceConfig, device_mb: f64) -> f64 {
    if cfg.gpu_pct() > 0 {
        device_mb
    } else {
        0.0
    }
}

/// A batchsize is skipped on the first selection pass when its best
/// configuration delivers less than this fraction of the useful
/// throughput per weighted resource achievable at another batchsize.
const DENSITY_GUARD: f64 = 0.5;

/// Amortization constant for the startup-cost term of
/// [`Scheduler::schedule_with_cost`]: a candidate's throughput is
/// discounted by `1 / (1 + κ·startup_secs)`, i.e. the share of a
/// nominal ~60 s serving life the instance spends starting up. A cold
/// boot (seconds) discounts visibly; a host-RAM swap-in (hundreds of
/// ms) barely at all — which is exactly the gap Algorithm 1 must see
/// to prefer swap-capable placements under churn.
const STARTUP_KAPPA: f64 = 1.0 / 60.0;

#[derive(Debug, Clone, Copy)]
struct Candidate {
    batch: u32,
    cfg: ResourceConfig,
    window: RpsWindow,
    t_exec: SimDuration,
}

impl Candidate {
    /// *Useful* throughput per weighted resource unit — the Eq. 2
    /// objective for this scheduling round. Capacity beyond the residual
    /// rate `rk` serves nothing, so it must not inflate a candidate's
    /// efficiency: an over-provisioned GPU slice with a huge `r_up` is
    /// exactly the resource waste Eq. 2 minimizes. The startup
    /// `discount` (1.0 without a cost term) shaves the throughput an
    /// instance loses to its launch delay *before* the cap, so a round
    /// that must boot cold values exactly-sized candidates below
    /// slightly over-provisioned ones.
    fn density(&self, beta: f64, rk: f64, discount: f64) -> f64 {
        (self.window.r_up() * discount).min(rk) / weighted(self.cfg, beta)
    }
}

fn first_fit(
    cluster: &ClusterState,
    cfg: ResourceConfig,
    mem_mb: f64,
    device_mb: f64,
) -> Option<ServerId> {
    cluster
        .servers()
        .iter()
        .find(|s| s.fits_with_split(cfg, mem_mb, device_demand(cfg, device_mb)))
        .map(|s| s.id())
}

#[allow(clippy::too_many_arguments)]
fn choose_by_efficiency(
    candidates: &[Candidate],
    cluster: &ClusterState,
    beta: f64,
    mem_mb: f64,
    device_mb: f64,
    rk: f64,
    discount: f64,
) -> Option<(Candidate, ServerId)> {
    // Normalizer for the RPS/resource numerator. The numerator counts
    // only *useful* throughput (capped at the residual rate): without
    // the cap, a config with a massively over-provisioned r_up can
    // out-score an adequate one purely through Eq. 10's fragment term.
    let max_density = candidates
        .iter()
        .map(|c| c.density(beta, rk, discount))
        .fold(0.0f64, f64::max);
    if max_density <= 0.0 {
        return None;
    }
    let mut best: Option<(f64, Candidate, ServerId)> = None;
    for c in candidates {
        let density = c.density(beta, rk, discount) / max_density;
        for server in cluster.servers() {
            if !server.fits_with_split(c.cfg, mem_mb, device_demand(c.cfg, device_mb)) {
                continue;
            }
            let free = beta * f64::from(server.cpu_free()) + f64::from(server.gpu_free_total());
            let frag = 1.0 - weighted(c.cfg, beta) / free;
            // A perfect fill (frag → 0) gets an effectively infinite
            // score; ties between perfect fills break on density.
            let e = if frag <= 1e-9 {
                1e12 * density
            } else {
                density / frag
            };
            if best.as_ref().is_none_or(|(b, ..)| e > *b) {
                best = Some((e, *c, server.id()));
            }
        }
    }
    best.map(|(_, c, s)| (c, s))
}

fn weighted(cfg: ResourceConfig, beta: f64) -> f64 {
    beta * f64::from(cfg.cpu_cores()) + f64::from(cfg.gpu_pct())
}

#[cfg(test)]
mod tests {
    use super::*;
    use infless_cluster::ClusterSpec;
    use infless_models::{profile::ConfigGrid, HardwareModel, ModelId, ProfileDatabase};

    fn predictor() -> CopPredictor {
        let hw = HardwareModel::default();
        let specs: Vec<ModelSpec> = ModelId::all().iter().map(|id| id.spec()).collect();
        let db = ProfileDatabase::cached(&hw, &specs, &ConfigGrid::standard(), 5);
        CopPredictor::new(db, hw)
    }

    fn slo_ms(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn schedules_enough_capacity_for_residual() {
        let p = predictor();
        let mut cluster = ClusterSpec::testbed().build();
        let spec = ModelId::ResNet50.spec();
        let out = Scheduler::new(SchedulerConfig::default()).schedule(
            &p,
            &FunctionInfo::new(spec.clone(), slo_ms(200)),
            300.0,
            &mut cluster,
        );
        assert_eq!(out.unplaced_rps, 0.0);
        let capacity: f64 = out.instances.iter().map(|i| i.window.r_up()).sum();
        assert!(capacity >= 300.0, "capacity {capacity} < residual 300");
        assert!(!out.instances.is_empty());
    }

    #[test]
    fn every_instance_meets_predicted_slo() {
        let p = predictor();
        let mut cluster = ClusterSpec::testbed().build();
        let spec = ModelId::Ssd.spec();
        let slo = slo_ms(200);
        let out = Scheduler::new(SchedulerConfig::default()).schedule(
            &p,
            &FunctionInfo::new(spec, slo),
            500.0,
            &mut cluster,
        );
        for inst in &out.instances {
            if inst.config.batch() > 1 {
                assert!(inst.predicted_exec.as_secs_f64() <= slo.as_secs_f64() / 2.0 + 1e-9);
            } else {
                assert!(inst.predicted_exec <= slo);
            }
        }
    }

    #[test]
    fn prefers_large_batches_under_high_load() {
        let p = predictor();
        let mut cluster = ClusterSpec::testbed().build();
        let spec = ModelId::ResNet50.spec();
        let out = Scheduler::new(SchedulerConfig::default()).schedule(
            &p,
            &FunctionInfo::new(spec.clone(), slo_ms(200)),
            2000.0,
            &mut cluster,
        );
        let max_batch = out
            .instances
            .iter()
            .map(|i| i.config.batch())
            .max()
            .unwrap();
        assert!(
            max_batch >= 8,
            "expected large batches, got max {max_batch}"
        );
    }

    #[test]
    fn low_residual_uses_small_batches() {
        // A residual of 3 RPS cannot saturate big batches within the SLO
        // for a slow model, so small batchsizes must be chosen.
        let p = predictor();
        let mut cluster = ClusterSpec::testbed().build();
        let spec = ModelId::BertV1.spec();
        let out = Scheduler::new(SchedulerConfig::default()).schedule(
            &p,
            &FunctionInfo::new(spec.clone(), slo_ms(200)),
            3.0,
            &mut cluster,
        );
        assert!(!out.instances.is_empty());
        for inst in &out.instances {
            assert!(
                inst.config.batch() <= 4,
                "batch {} cannot saturate at 3 RPS",
                inst.config.batch()
            );
        }
    }

    #[test]
    fn moderate_residual_avoids_wasteful_batch_upgrade() {
        // Regression: at a residual just above one b=1 instance's r_up,
        // largest-batch-first used to jump to the next batchsize — for
        // SSD at 200 ms that batch is feasible only on near-server-sized
        // configurations (~50 weighted units for ~14 RPS), ~20× less
        // throughput per resource than two b=1 instances. The density
        // guard must keep the allocation on the efficient configs.
        let p = predictor();
        let beta = p.beta();
        let mut cluster = ClusterSpec::testbed().build();
        let spec = ModelId::Ssd.spec();
        let out = Scheduler::new(SchedulerConfig::default()).schedule(
            &p,
            &FunctionInfo::new(spec, slo_ms(200)),
            14.3,
            &mut cluster,
        );
        assert!(out.unplaced_rps <= 1e-9, "14.3 RPS must be placeable");
        let capacity: f64 = out.instances.iter().map(|i| i.window.r_up()).sum();
        let density = capacity / cluster.weighted_in_use(beta);
        assert!(
            density > 5.0,
            "wasteful batch upgrade: {capacity:.1} RPS on {:.1} weighted units",
            cluster.weighted_in_use(beta)
        );
    }

    #[test]
    fn disabling_batching_caps_batch_at_one() {
        let p = predictor();
        let mut cluster = ClusterSpec::testbed().build();
        let spec = ModelId::ResNet50.spec();
        let cfg = SchedulerConfig {
            max_batch: 1,
            ..SchedulerConfig::default()
        };
        let out = Scheduler::new(cfg).schedule(
            &p,
            &FunctionInfo::new(spec.clone(), slo_ms(200)),
            200.0,
            &mut cluster,
        );
        assert!(out.instances.iter().all(|i| i.config.batch() == 1));
    }

    #[test]
    fn batching_improves_capacity_per_resource() {
        // The BB ablation (Fig. 11): with batching disabled, each unit
        // of hybrid resource provides substantially less serving
        // capacity.
        let p = predictor();
        let spec = ModelId::ResNet50.spec();
        let beta = p.beta();

        let density = |max_batch: u32| {
            let mut cluster = ClusterSpec::testbed().build();
            let out = Scheduler::new(SchedulerConfig {
                max_batch,
                ..SchedulerConfig::default()
            })
            .schedule(
                &p,
                &FunctionInfo::new(spec.clone(), slo_ms(200)),
                400.0,
                &mut cluster,
            );
            let capacity: f64 = out.instances.iter().map(|i| i.window.r_up()).sum();
            capacity / cluster.weighted_in_use(beta)
        };

        let batched = density(u32::MAX);
        let unbatched = density(1);
        assert!(
            batched > unbatched * 1.3,
            "batching should raise capacity density: {batched} vs {unbatched}"
        );
    }

    #[test]
    fn reports_unplaced_when_cluster_exhausted() {
        let p = predictor();
        let mut cluster = ClusterSpec {
            servers: 1,
            cores_per_server: 2,
            gpus_per_server: 0,
            mem_per_server_mb: 128.0 * 1024.0,
            gpu_mem_per_device_mb: 0.0,
        }
        .build();
        let spec = ModelId::BertV1.spec();
        // BERT cannot meet 200ms on <=2 CPU cores at all.
        let out = Scheduler::new(SchedulerConfig::default()).schedule(
            &p,
            &FunctionInfo::new(spec.clone(), slo_ms(200)),
            100.0,
            &mut cluster,
        );
        assert!(out.unplaced_rps > 0.0);
    }

    #[test]
    fn scheduling_is_deterministic() {
        let p = predictor();
        let spec = ModelId::TextCnn69.spec();
        let run = || {
            let mut cluster = ClusterSpec::testbed().build();
            Scheduler::new(SchedulerConfig::default()).schedule(
                &p,
                &FunctionInfo::new(spec.clone(), slo_ms(50)),
                800.0,
                &mut cluster,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn efficiency_placement_wins_at_saturation() {
        // The RS claim (Figs. 11/17b): when the cluster is driven to
        // saturation across a mixed set of functions, the Eq. 10
        // efficiency placement extracts at least as much total serving
        // capacity from the same hardware as throughput-greedy
        // placement.
        let p = predictor();
        let specs = [
            ModelId::ResNet50.spec(),
            ModelId::Ssd.spec(),
            ModelId::MobileNet.spec(),
            ModelId::VggNet.spec(),
        ];

        let capacity_of = |placement: PlacementStrategy| {
            let mut cluster = ClusterSpec::testbed().build();
            let mut sched = Scheduler::new(SchedulerConfig {
                placement,
                ..SchedulerConfig::default()
            });
            let mut capacity = 0.0;
            for spec in &specs {
                let out = sched.schedule(
                    &p,
                    &FunctionInfo::new(spec.clone(), slo_ms(200)),
                    1e5,
                    &mut cluster,
                );
                capacity += out.instances.iter().map(|i| i.window.r_up()).sum::<f64>();
            }
            capacity
        };

        let eff = capacity_of(PlacementStrategy::Efficiency);
        let naive = capacity_of(PlacementStrategy::MaxThroughput);
        assert!(
            eff >= naive * 0.98,
            "Eq. 10 placement should not lose capacity: {eff} vs {naive}"
        );
    }

    #[test]
    fn zero_residual_schedules_nothing() {
        let p = predictor();
        let mut cluster = ClusterSpec::testbed().build();
        let spec = ModelId::Mnist.spec();
        let out = Scheduler::new(SchedulerConfig::default()).schedule(
            &p,
            &FunctionInfo::new(spec.clone(), slo_ms(50)),
            0.0,
            &mut cluster,
        );
        assert!(out.instances.is_empty());
        assert_eq!(out.unplaced_rps, 0.0);
        assert_eq!(cluster.cpu_in_use(), 0);
    }

    #[test]
    fn memory_constrained_cluster_limits_placement() {
        // Same cores/GPUs as the testbed, but only enough memory on the
        // whole cluster for a couple of Bert-v1 instances (~541 MB
        // each): the scheduler must stop at the memory wall instead of
        // over-packing.
        let p = predictor();
        let mem_needed = p.instance_memory_mb(&ModelId::BertV1.spec());
        let mut cluster = ClusterSpec {
            servers: 1,
            cores_per_server: 32,
            gpus_per_server: 2,
            mem_per_server_mb: mem_needed * 2.5,
            gpu_mem_per_device_mb: 0.0,
        }
        .build();
        let spec = ModelId::BertV1.spec();
        let out = Scheduler::new(SchedulerConfig::default()).schedule(
            &p,
            &FunctionInfo::new(spec.clone(), slo_ms(350)),
            1e4,
            &mut cluster,
        );
        assert!(
            out.instances.len() <= 2,
            "memory allows at most 2 instances, got {}",
            out.instances.len()
        );
        assert!(out.unplaced_rps > 0.0, "the memory wall must be reported");
        assert!(cluster.mem_in_use_mb() <= cluster.mem_capacity_mb());
    }

    #[test]
    fn zero_cost_schedule_is_bit_identical_to_classic() {
        // `schedule` delegates to `schedule_with_cost(ZERO, 0.0)`; the
        // discount is then exactly 1.0 and no device memory is booked,
        // so both entry points must produce the same placements.
        let p = predictor();
        let spec = ModelId::ResNet50.spec();
        let run = |with_cost: bool| {
            let mut cluster = ClusterSpec::testbed().build();
            let mut sched = Scheduler::new(SchedulerConfig::default());
            let f = FunctionInfo::new(spec.clone(), slo_ms(200));
            let out = if with_cost {
                sched.schedule_with_cost(&p, &f, 300.0, &mut cluster, SimDuration::ZERO, 0.0)
            } else {
                sched.schedule(&p, &f, 300.0, &mut cluster)
            };
            (out, cluster.gpu_mem_in_use_mb())
        };
        let (classic, classic_dev) = run(false);
        let (costed, costed_dev) = run(true);
        assert_eq!(classic, costed);
        assert_eq!(classic_dev, 0.0);
        assert_eq!(costed_dev, 0.0);
    }

    #[test]
    fn device_memory_is_booked_for_gpu_placements() {
        let p = predictor();
        let mut cluster = ClusterSpec::testbed().build();
        let spec = ModelId::ResNet50.spec();
        let device_mb = spec.size_mb();
        let out = Scheduler::new(SchedulerConfig::default()).schedule_with_cost(
            &p,
            &FunctionInfo::new(spec.clone(), slo_ms(200)),
            300.0,
            &mut cluster,
            SimDuration::from_millis(250),
            device_mb,
        );
        let gpu_instances = out
            .instances
            .iter()
            .filter(|i| i.config.resources().gpu_pct() > 0)
            .count() as f64;
        assert_eq!(cluster.gpu_mem_in_use_mb(), gpu_instances * device_mb);
        // Releasing every placement returns the device books to zero.
        for inst in &out.instances {
            cluster.release(inst.config.resources(), inst.placement);
        }
        assert_eq!(cluster.gpu_mem_in_use_mb(), 0.0);
    }

    #[test]
    fn startup_cost_discounts_exactly_sized_candidates() {
        // The discount only changes decisions through the rk cap: with
        // a multi-second cold boot the effective throughput of an
        // exactly-sized candidate drops below the residual while an
        // over-provisioned one stays capped — the ranking can flip.
        // Contract here: the cost-aware round still covers the residual
        // and never regresses into unplaced load on an empty testbed.
        let p = predictor();
        let mut cluster = ClusterSpec::testbed().build();
        let spec = ModelId::ResNet50.spec();
        let out = Scheduler::new(SchedulerConfig::default()).schedule_with_cost(
            &p,
            &FunctionInfo::new(spec.clone(), slo_ms(200)),
            300.0,
            &mut cluster,
            SimDuration::from_secs(8),
            0.0,
        );
        assert_eq!(out.unplaced_rps, 0.0);
        let capacity: f64 = out.instances.iter().map(|i| i.window.r_up()).sum();
        assert!(capacity >= 300.0, "cost-aware round under-provisioned");
    }

    #[test]
    fn llm_two_phase_feasibility_gates_configs() {
        // Autoregressive functions route through the two-phase cost
        // model: every chosen configuration must be GPU-resident (the
        // KV arena lives in device memory), prefill a full batch of
        // mean prompts within the TTFT SLO, and hold the decode step
        // under the TPOT SLO at arena-capped concurrency.
        let p = predictor();
        let mut cluster = ClusterSpec::testbed().build();
        let spec = ModelId::BertV1.spec();
        let llm = LlmClass::chat();
        let f = FunctionInfo::new(spec.clone(), slo_ms(5_000)).with_llm(llm);
        let out = Scheduler::new(SchedulerConfig::default()).schedule(&p, &f, 50.0, &mut cluster);
        assert!(!out.instances.is_empty(), "chat load must be placeable");
        for inst in &out.instances {
            let cfg = inst.config.resources();
            assert!(cfg.gpu_pct() > 0, "LLM instances must hold a GPU slice");
            let b = inst.config.batch();
            let prefill =
                p.prefill_latency(&spec, u64::from(llm.prompt_tokens_mean) * u64::from(b), cfg);
            assert!(
                prefill <= llm.ttft_slo,
                "prefill {prefill:?} breaches TTFT SLO {:?}",
                llm.ttft_slo
            );
            let n_cap = b.min(llm.max_concurrent_seqs());
            let kv_mb = (f64::from(n_cap)
                * f64::from(llm.prompt_tokens_mean + llm.output_tokens_mean)
                * llm.kv_mb_per_token)
                .min(llm.kv_arena_mb);
            let step = p.decode_step_latency(&spec, n_cap, kv_mb, cfg);
            assert!(
                step <= llm.tpot_slo,
                "decode step {step:?} breaches TPOT SLO {:?}",
                llm.tpot_slo
            );
        }
    }

    #[test]
    fn impossible_tpot_slo_yields_no_instances() {
        // A TPOT target no configuration can meet must surface as
        // unplaced load, not as instances that will melt their SLO.
        let p = predictor();
        let mut cluster = ClusterSpec::testbed().build();
        let spec = ModelId::BertV1.spec();
        let mut llm = LlmClass::chat();
        llm.tpot_slo = SimDuration::from_micros(1);
        let f = FunctionInfo::new(spec, slo_ms(5_000)).with_llm(llm);
        let out = Scheduler::new(SchedulerConfig::default()).schedule(&p, &f, 50.0, &mut cluster);
        assert!(out.instances.is_empty());
        assert!(out.unplaced_rps > 0.0);
    }

    #[test]
    fn llm_and_oneshot_candidates_do_not_alias() {
        // Same model, same SLO, same batch cap — one function one-shot,
        // one autoregressive. The memo key's class discriminant must
        // keep their candidate sets apart (the LLM set is GPU-only).
        let p = predictor();
        let spec = ModelId::BertV1.spec();
        let mut sched = Scheduler::new(SchedulerConfig::default());
        let mut cluster = ClusterSpec::testbed().build();
        let oneshot = sched.schedule(
            &p,
            &FunctionInfo::new(spec.clone(), slo_ms(5_000)),
            10.0,
            &mut cluster,
        );
        let llm = sched.schedule(
            &p,
            &FunctionInfo::new(spec, slo_ms(5_000)).with_llm(LlmClass::chat()),
            10.0,
            &mut cluster,
        );
        assert!(!oneshot.instances.is_empty());
        assert!(!llm.instances.is_empty());
        assert!(llm
            .instances
            .iter()
            .all(|i| i.config.resources().gpu_pct() > 0));
    }

    #[test]
    fn allocations_match_outcome() {
        let p = predictor();
        let mut cluster = ClusterSpec::testbed().build();
        let spec = ModelId::MobileNet.spec();
        let out = Scheduler::new(SchedulerConfig::default()).schedule(
            &p,
            &FunctionInfo::new(spec.clone(), slo_ms(50)),
            300.0,
            &mut cluster,
        );
        assert!(!out.instances.is_empty(), "the demand must be placeable");
        let expected_cpu: u64 = out
            .instances
            .iter()
            .map(|i| u64::from(i.config.resources().cpu_cores()))
            .sum();
        let expected_gpu: u64 = out
            .instances
            .iter()
            .map(|i| u64::from(i.config.resources().gpu_pct()))
            .sum();
        assert_eq!(cluster.cpu_in_use(), expected_cpu);
        assert_eq!(cluster.gpu_in_use(), expected_gpu);
        assert!(
            cluster.mem_in_use_mb() > 0.0,
            "placements hold model memory"
        );

        // Retiring every placed instance must return the cluster to a
        // completely clean slate on all three resource dimensions — a
        // leak here would starve later scale-ups of a long run.
        for inst in &out.instances {
            cluster.release(inst.config.resources(), inst.placement);
        }
        assert_eq!(cluster.cpu_in_use(), 0, "CPU cores leak after retirement");
        assert_eq!(cluster.gpu_in_use(), 0, "GPU share leaks after retirement");
        assert_eq!(
            cluster.mem_in_use_mb(),
            0.0,
            "instance memory leaks after retirement"
        );
    }
}
