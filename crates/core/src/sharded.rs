//! Sharded multi-core simulation with deterministic epoch barriers.
//!
//! [`ShardedInfless`] partitions the deployed functions across `S`
//! shards. Each shard runs a full [`InflessPlatform`] — its own event
//! queue, staged arrival stream, and *cluster replica* — over only the
//! functions it owns. Shards exchange cross-shard effects exclusively
//! at epoch barriers, so a run's result is a pure function of
//! `(workload, seed, configuration)` and **bit-identical across shard
//! counts**: `run(w, 1)` equals `run(w, 8)` byte for byte.
//!
//! # The barrier protocol
//!
//! Simulated time is cut into epochs of `scaler_period / 5` (200 ms at
//! the defaults — exactly the emergency-scaling backoff, so deferring
//! drop-triggered scale-outs to the next barrier respects the same
//! rate limit the legacy loop enforces). Between barriers a shard
//! touches *nothing* global:
//!
//! * **No mid-epoch allocation.** Platforms run in deferred-scaling
//!   mode ([`InflessPlatform::set_deferred_scaling`]): requests that no
//!   instance can take wait in a pending buffer instead of triggering
//!   an emergency launch, and throughput lost to kills accrues in a
//!   pending-rate account. Both are settled by the barrier flush.
//! * **Per-function RNG.** Execution-time noise comes from streams
//!   keyed by function identity, not shard layout
//!   ([`Engine::use_per_function_noise`]).
//! * **Snapshot interference.** MPS slowdown reads the cluster-wide GPU
//!   occupancy snapshot installed at the last barrier, not the live
//!   books of whichever functions happen to co-reside on this shard.
//!
//! At each barrier the single-threaded coordinator (a) replays every
//! replica's cluster journal onto the others, (b) sweeps functions in
//! function-major order — pending-buffer flush, scaler pass on scaler
//! barriers, journal replay, recapacity crediting — and (c)
//! pre-resolves the coming epoch's fault events into concrete
//! *directives* (`DirectiveKill` / `DirectiveStraggler`) pushed into
//! the owning shards' queues. Victim selection therefore always sees
//! the same global, function-major candidate order regardless of how
//! functions are sharded.
//!
//! With more than one shard, epochs execute on scoped worker threads
//! (`std::thread::scope`) — no async runtime, no unordered channels;
//! determinism needs no locks because shards share nothing mid-epoch.

use std::collections::{HashSet, VecDeque};

use infless_cluster::{ClusterOp, ClusterSpec, InstanceId, ServerHealth, ServerId};
use infless_faults::{FaultEvent, FaultSchedule};
use infless_sim::{EventQueue, SimDuration, SimTime, StagedStream};
use infless_telemetry::{DecisionBufferSink, DecisionRecord, FaultTag, MetricsHandle};
use infless_workload::Workload;

use crate::chains::{ChainReport, ChainSpec};
use crate::engine::{EngineEvent, FunctionInfo};
use crate::metrics::RunReport;
use crate::platform::{InflessConfig, InflessPlatform};

/// Builder for sharded INFless runs. Holds the deployment description
/// (not a built platform), so one builder can drive several runs —
/// e.g. the shard-invariance tests compare `run(w, 1)` against
/// `run(w, 4)` from the same builder.
#[derive(Debug, Clone)]
pub struct ShardedInfless {
    cluster: ClusterSpec,
    functions: Vec<FunctionInfo>,
    chain_specs: Vec<ChainSpec>,
    config: InflessConfig,
    seed: u64,
    faults: FaultSchedule,
    metrics: Option<MetricsHandle>,
}

/// One shard: a full platform over a cluster replica, plus its private
/// event queue and arrival stream.
struct Shard<'a> {
    platform: InflessPlatform,
    queue: EventQueue<EngineEvent>,
    stream: StagedStream<'a, usize>,
    /// Function indices this shard owns (ascending).
    owned: Vec<usize>,
}

impl ShardedInfless {
    /// Builds the sharded runner for a plain (chainless) deployment.
    pub fn new(
        cluster: ClusterSpec,
        functions: Vec<FunctionInfo>,
        config: InflessConfig,
        seed: u64,
    ) -> Self {
        Self::with_chains(cluster, functions, Vec::new(), config, seed)
    }

    /// Builds the sharded runner with declared function chains. A
    /// chain's stages always land on the same shard (stage relays are
    /// ordinary same-shard deliveries), so chaining never constrains
    /// the barrier protocol.
    pub fn with_chains(
        cluster: ClusterSpec,
        functions: Vec<FunctionInfo>,
        chain_specs: Vec<ChainSpec>,
        config: InflessConfig,
        seed: u64,
    ) -> Self {
        ShardedInfless {
            cluster,
            functions,
            chain_specs,
            config,
            seed,
            faults: FaultSchedule::empty(),
            metrics: None,
        }
    }

    /// Attaches a fault schedule; the coordinator pre-resolves its
    /// events into per-shard directives at epoch barriers.
    pub fn with_fault_schedule(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a shared metrics registry; barrier-time gauge sums are
    /// fed into it from shard 0 (the cross-shard totals, so readings
    /// are shard-count-invariant).
    pub fn with_metrics(mut self, handle: MetricsHandle) -> Self {
        self.metrics = Some(handle);
        self
    }

    /// Runs the workload on `shards` shards and returns the merged
    /// report. The report is bit-identical for every `shards >= 1`
    /// (wall-clock fields excepted; see
    /// [`RunReport::canonical_json`]).
    pub fn run(&self, workload: &Workload, shards: usize) -> RunReport {
        self.run_inner(workload, shards, None)
    }

    /// Like [`run`](Self::run), but taps every shard's decision stream
    /// through a [`DecisionBufferSink`] and returns the merged records,
    /// sorted by [`DecisionRecord::sort_key`]. Because decision values
    /// derive only from shard-invariant quantities and `(t_s, function,
    /// seq)` is a total order, the returned trace is byte-identical for
    /// every shard count.
    pub fn run_with_decisions(
        &self,
        workload: &Workload,
        shards: usize,
    ) -> (RunReport, Vec<DecisionRecord>) {
        let mut records = Vec::new();
        let report = self.run_inner(workload, shards, Some(&mut records));
        records.sort_by(|a, b| {
            let (ta, fa, sa) = a.sort_key();
            let (tb, fb, sb) = b.sort_key();
            ta.total_cmp(&tb).then(fa.cmp(&fb)).then(sa.cmp(&sb))
        });
        (report, records)
    }

    fn run_inner(
        &self,
        workload: &Workload,
        shards: usize,
        mut decisions: Option<&mut Vec<DecisionRecord>>,
    ) -> RunReport {
        let s_count = shards.max(1);
        let (owner_of_fn, owned_by_shard) = self.partition(s_count);

        // Per-shard arrival slices: each shard stages only the arrivals
        // of functions it owns, preserving global order within a shard.
        let per_shard_arrivals: Vec<Vec<(SimTime, usize)>> = (0..s_count)
            .map(|s| {
                workload
                    .arrivals()
                    .iter()
                    .filter(|(_, f)| owner_of_fn[*f] == s)
                    .copied()
                    .collect()
            })
            .collect();

        let mut shards_v: Vec<Shard<'_>> = (0..s_count)
            .map(|s| {
                let mut platform = InflessPlatform::with_chains(
                    self.cluster,
                    self.functions.clone(),
                    self.chain_specs.clone(),
                    self.config,
                    self.seed,
                );
                platform.set_deferred_scaling();
                platform.engine.use_per_function_noise(self.seed);
                platform.engine.use_interference_snapshot();
                platform.engine.use_external_recapacity();
                platform.engine.cluster_mut().enable_journal();
                Shard {
                    platform,
                    queue: EventQueue::new(),
                    stream: StagedStream::new(&per_shard_arrivals[s]),
                    owned: owned_by_shard[s].clone(),
                }
            })
            .collect();

        // Decision tap: one buffer sink per shard. The sink reports
        // `enabled() == false`, so span/gauge construction stays off
        // and the run is bit-identical to an untapped one.
        let taps: Vec<DecisionBufferSink> = if decisions.is_some() {
            shards_v
                .iter_mut()
                .map(|sh| {
                    let tap = DecisionBufferSink::new();
                    sh.platform.engine.set_telemetry(Box::new(tap.clone()));
                    tap
                })
                .collect()
        } else {
            Vec::new()
        };
        if let Some(handle) = &self.metrics {
            shards_v[0].platform.engine.set_metrics(handle.clone());
        }

        let epoch = self.config.scaler_period / 5;
        assert!(
            epoch > SimDuration::ZERO,
            "scaler_period too short to derive an epoch length"
        );
        let tick_horizon = workload.end_time() + SimDuration::from_secs(5);
        let fault_events = self.faults.events();
        let mut fault_idx = 0usize;
        // Coordinator-owned time-to-recapacity probes: (since, remaining
        // weighted capacity). Launches credit them in function-major
        // barrier order, which no shard layout can perturb.
        let mut probes: VecDeque<(SimTime, f64)> = VecDeque::new();
        let mut tombstones: HashSet<(usize, InstanceId)> = HashSet::new();

        let mut t_prev = SimTime::ZERO;
        if !workload.is_empty() || !fault_events.is_empty() {
            let mut k = 0u64;
            loop {
                let has_events = shards_v
                    .iter()
                    .any(|sh| sh.stream.peek_time(&sh.queue).is_some());
                // `k % 5 == 0`: stop only on a scaler barrier, mirroring
                // the legacy loop whose final event is the first scaler
                // tick at or past the horizon.
                if !has_events
                    && fault_idx >= fault_events.len()
                    && t_prev >= tick_horizon
                    && k.is_multiple_of(5)
                {
                    break;
                }
                k += 1;
                let t_b = SimTime::ZERO + epoch * k;

                // Pre-resolve the coming epoch's faults into directives.
                fault_idx = self.resolve_faults(
                    &mut shards_v,
                    fault_events,
                    fault_idx,
                    t_b,
                    &owner_of_fn,
                    &mut probes,
                    &mut tombstones,
                );

                // Drain the epoch — in parallel when sharded.
                if s_count == 1 {
                    let sh = &mut shards_v[0];
                    sh.platform.epoch_drain(&mut sh.stream, &mut sh.queue, t_b);
                } else {
                    std::thread::scope(|scope| {
                        for sh in shards_v.iter_mut() {
                            let busy = sh.stream.peek_time(&sh.queue).is_some_and(|t| t <= t_b);
                            if busy {
                                scope.spawn(move || {
                                    sh.platform.epoch_drain(&mut sh.stream, &mut sh.queue, t_b);
                                });
                            } else {
                                // Nothing to deliver: just advance the clock.
                                sh.platform.epoch_drain(&mut sh.stream, &mut sh.queue, t_b);
                            }
                        }
                    });
                }

                self.barrier_sweep(&mut shards_v, &owner_of_fn, k, t_b, &mut probes);
                if let Some(acc) = decisions.as_deref_mut() {
                    for tap in &taps {
                        acc.extend(tap.drain());
                    }
                }
                t_prev = t_b;
            }
        }
        if let Some(acc) = decisions {
            for tap in &taps {
                acc.extend(tap.drain());
            }
        }

        self.merge(shards_v, t_prev)
    }

    /// Chain-aware ownership: every chain is one indivisible group,
    /// every unchained function its own group; groups round-robin onto
    /// shards. The mapping depends only on the deployment, never on
    /// runtime state.
    fn partition(&self, s_count: usize) -> (Vec<usize>, Vec<Vec<usize>>) {
        let n = self.functions.len();
        let mut group_of_fn: Vec<Option<usize>> = vec![None; n];
        let mut groups = 0usize;
        for chain in &self.chain_specs {
            for &stage in chain.stages() {
                group_of_fn[stage] = Some(groups);
            }
            groups += 1;
        }
        for slot in group_of_fn.iter_mut() {
            if slot.is_none() {
                *slot = Some(groups);
                groups += 1;
            }
        }
        let owner_of_fn: Vec<usize> = group_of_fn
            .iter()
            .map(|g| g.expect("every function grouped") % s_count)
            .collect();
        let mut owned_by_shard = vec![Vec::new(); s_count];
        for (f, &s) in owner_of_fn.iter().enumerate() {
            owned_by_shard[s].push(f);
        }
        (owner_of_fn, owned_by_shard)
    }

    /// The single-threaded barrier: journal sync, function-major sweep
    /// (flush + scaler pass + replica replay + recapacity crediting),
    /// cluster-wide sampling, and the interference snapshot refresh.
    fn barrier_sweep(
        &self,
        shards: &mut [Shard<'_>],
        owner_of_fn: &[usize],
        k: u64,
        t_b: SimTime,
        probes: &mut VecDeque<(SimTime, f64)>,
    ) {
        let n = self.functions.len();
        let scaler_barrier = k.is_multiple_of(5);

        // Mid-epoch cluster mutations (kill-directive releases) are the
        // only journal entries accumulated since the last barrier;
        // releases of distinct instances commute, so replaying shard by
        // shard reaches the same replica state for every layout.
        for s in 0..shards.len() {
            let ops = shards[s].platform.engine.cluster_mut().take_journal();
            if ops.is_empty() {
                continue;
            }
            for (r, sh) in shards.iter_mut().enumerate() {
                if r != s {
                    sh.platform.engine.cluster_mut().apply_ops(&ops);
                }
            }
        }

        for (f, &s) in owner_of_fn.iter().enumerate().take(n) {
            {
                let sh = &mut shards[s];
                sh.platform.barrier_flush_fn(f, &mut sh.queue);
                if scaler_barrier {
                    sh.platform.scaler_pass_fn(f, &mut sh.queue);
                }
            }
            // Replicate this function's barrier-time allocations before
            // the next function's scheduler runs, so placement always
            // happens against the fully-synchronised global state.
            let ops = shards[s].platform.engine.cluster_mut().take_journal();
            if !ops.is_empty() {
                for (r, sh) in shards.iter_mut().enumerate() {
                    if r != s {
                        sh.platform.engine.cluster_mut().apply_ops(&ops);
                    }
                }
            }
            // Credit outstanding capacity-loss probes from this
            // function's launches (function-major order).
            let log = shards[s].platform.engine.take_launch_log();
            for (ready_at, w) in log {
                let mut credit = w;
                while credit > 0.0 {
                    let Some(front) = probes.front_mut() else {
                        break;
                    };
                    let used = credit.min(front.1);
                    front.1 -= used;
                    credit -= used;
                    if front.1 <= 1e-9 {
                        let (since, _) = probes.pop_front().expect("probe exists");
                        shards[0]
                            .platform
                            .engine
                            .collector
                            .recapacity_sample(ready_at.saturating_since(since).as_millis_f64());
                    }
                }
            }
        }

        if scaler_barrier {
            // Cluster-wide gauges: raw counts summed across shards,
            // occupancies from shard 0's (now fully synced) replica.
            let mut instances = 0u64;
            let mut starting = 0u64;
            let mut queue_depth = 0u64;
            let mut in_flight = 0u64;
            let mut kv_resident = 0u64;
            let mut host_cache_mb = 0.0;
            let mut per_fn = vec![0u64; n];
            for sh in shards.iter_mut() {
                let (i, st, q, b) = sh.platform.engine.gauge_counts();
                instances += i;
                starting += st;
                queue_depth += q;
                in_flight += b;
                kv_resident += sh.platform.engine.kv_resident_bytes();
                host_cache_mb += sh.platform.host_cache_mb_now();
                for (acc, v) in per_fn
                    .iter_mut()
                    .zip(sh.platform.engine.per_function_live_counts())
                {
                    *acc += v;
                }
            }
            let e0 = &mut shards[0].platform.engine;
            let beta = e0.beta();
            let frag = e0.cluster().fragment_ratio(beta);
            e0.collector.fragment_sample(frag);
            let used = e0.cluster().weighted_in_use(beta);
            e0.collector.provision_point(t_b, used);
            e0.record_gauges(
                instances,
                starting,
                queue_depth,
                in_flight,
                kv_resident,
                host_cache_mb,
                per_fn,
            );
        }

        // Refresh the interference snapshot: cluster-wide GPU occupancy
        // is the element-wise sum of every shard's live books.
        let devices = shards[0].platform.engine.gpu_busy_totals().len();
        let mut totals = vec![0u32; devices];
        for sh in shards.iter() {
            for (acc, v) in totals.iter_mut().zip(sh.platform.engine.gpu_busy_totals()) {
                *acc += v;
            }
        }
        for sh in shards.iter_mut() {
            sh.platform.engine.refresh_interference_snapshot(&totals);
        }
    }

    /// Pre-resolves every fault event with timestamp `<= until` into
    /// concrete directives on the owning shards' queues. Selection runs
    /// against the global function-major instance order; `tombstones`
    /// keeps one fault from picking a victim an earlier directive in
    /// the same window already claimed (instance ids are per-shard, so
    /// the key includes the function).
    #[allow(clippy::too_many_arguments)]
    fn resolve_faults(
        &self,
        shards: &mut [Shard<'_>],
        events: &[(SimTime, FaultEvent)],
        mut idx: usize,
        until: SimTime,
        owner_of_fn: &[usize],
        probes: &mut VecDeque<(SimTime, f64)>,
        tombstones: &mut HashSet<(usize, InstanceId)>,
    ) -> usize {
        if idx >= events.len() || events[idx].0 > until {
            return idx;
        }
        tombstones.clear();
        let n = self.functions.len();
        while idx < events.len() && events[idx].0 <= until {
            let (t, ev) = events[idx];
            idx += 1;
            match ev {
                FaultEvent::ServerCrash { server } => {
                    if shards[0].platform.engine.cluster().health(server) != ServerHealth::Up {
                        continue;
                    }
                    let mut lost = 0.0;
                    for f in 0..n {
                        let sh = &mut shards[owner_of_fn[f]];
                        let victims: Vec<InstanceId> = sh
                            .platform
                            .engine
                            .instances_of(f)
                            .iter()
                            .copied()
                            .filter(|&id| {
                                sh.platform.engine.instance(id).placement().server() == server
                                    && !tombstones.contains(&(f, id))
                            })
                            .collect();
                        for id in victims {
                            lost += sh
                                .platform
                                .engine
                                .weighted_cost(sh.platform.engine.instance(id).config());
                            tombstones.insert((f, id));
                            sh.queue
                                .schedule(t, EngineEvent::DirectiveKill(id, FaultTag::ServerCrash));
                        }
                    }
                    Self::set_health_everywhere(shards, server, ServerHealth::Down);
                    shards[0].platform.engine.collector.server_crash();
                    if lost > 0.0 {
                        probes.push_back((t, lost));
                    }
                }
                FaultEvent::ServerRecoveryBegin { server } => {
                    if shards[0].platform.engine.cluster().health(server) == ServerHealth::Down {
                        Self::set_health_everywhere(shards, server, ServerHealth::Recovering);
                    }
                }
                FaultEvent::ServerUp { server } => {
                    if shards[0].platform.engine.cluster().health(server)
                        == ServerHealth::Recovering
                    {
                        Self::set_health_everywhere(shards, server, ServerHealth::Up);
                        shards[0].platform.engine.collector.server_recovered();
                    }
                }
                FaultEvent::InstanceKill { selector } => {
                    self.kill_by_selector(
                        shards,
                        owner_of_fn,
                        selector,
                        t,
                        FaultTag::InstanceKill,
                        |_, _| true,
                        probes,
                        tombstones,
                    );
                }
                FaultEvent::ColdStartFailure { selector } => {
                    self.kill_by_selector(
                        shards,
                        owner_of_fn,
                        selector,
                        t,
                        FaultTag::ColdStartFailure,
                        |sh, id| sh.platform.engine.instance(id).is_starting(t),
                        probes,
                        tombstones,
                    );
                }
                FaultEvent::StragglerStart {
                    server,
                    slowdown_pct,
                    duration,
                } => {
                    // Every shard must slow its own batches on that
                    // server; the episode is tallied once.
                    for sh in shards.iter_mut() {
                        sh.queue.schedule(
                            t,
                            EngineEvent::DirectiveStraggler {
                                server,
                                slowdown_pct,
                                duration,
                            },
                        );
                    }
                    shards[0].platform.engine.collector.straggler();
                }
            }
        }
        idx
    }

    /// Global victim pick for `InstanceKill` / `ColdStartFailure`:
    /// candidates in function-major order across all shards, filtered
    /// by `eligible`, indexed by `selector % len` — the same rule the
    /// unsharded engine applies to its single global instance table.
    #[allow(clippy::too_many_arguments)]
    fn kill_by_selector(
        &self,
        shards: &mut [Shard<'_>],
        owner_of_fn: &[usize],
        selector: u64,
        t: SimTime,
        tag: FaultTag,
        eligible: impl Fn(&Shard<'_>, InstanceId) -> bool,
        probes: &mut VecDeque<(SimTime, f64)>,
        tombstones: &mut HashSet<(usize, InstanceId)>,
    ) {
        let n = self.functions.len();
        let mut candidates: Vec<(usize, InstanceId)> = Vec::new();
        for f in 0..n {
            let sh = &shards[owner_of_fn[f]];
            for &id in sh.platform.engine.instances_of(f) {
                if !tombstones.contains(&(f, id)) && eligible(sh, id) {
                    candidates.push((f, id));
                }
            }
        }
        if candidates.is_empty() {
            return;
        }
        let (f, id) = candidates[(selector % candidates.len() as u64) as usize];
        let sh = &mut shards[owner_of_fn[f]];
        let lost = sh
            .platform
            .engine
            .weighted_cost(sh.platform.engine.instance(id).config());
        tombstones.insert((f, id));
        sh.queue.schedule(t, EngineEvent::DirectiveKill(id, tag));
        if lost > 0.0 {
            probes.push_back((t, lost));
        }
    }

    fn set_health_everywhere(shards: &mut [Shard<'_>], server: ServerId, health: ServerHealth) {
        // Applied via `apply_ops` so no replica re-journals (and thus
        // re-replays) the transition.
        let ops = [ClusterOp::SetHealth { server, health }];
        for sh in shards.iter_mut() {
            sh.platform.engine.cluster_mut().apply_ops(&ops);
        }
    }

    /// Folds the worker shards' collectors and chain reports into shard
    /// 0's and freezes one report at the final barrier.
    fn merge(&self, shards: Vec<Shard<'_>>, t_end: SimTime) -> RunReport {
        let owner_of_chain: Vec<usize> = {
            let (owner_of_fn, _) = self.partition(shards.len());
            self.chain_specs
                .iter()
                .map(|c| owner_of_fn[c.stages()[0]])
                .collect()
        };
        let mut chain_parts: Vec<Vec<ChainReport>> = Vec::with_capacity(shards.len());
        let mut collector = None;
        for mut sh in shards {
            chain_parts.push(sh.platform.take_chain_reports());
            let shard_collector = sh.platform.engine.into_collector();
            match collector.as_mut() {
                None => collector = Some(shard_collector),
                Some(main) => main.absorb(shard_collector, &sh.owned),
            }
        }
        let collector = collector.expect("at least one shard");
        let mut report = collector.finish(t_end);
        report.chains = owner_of_chain
            .iter()
            .enumerate()
            .map(|(ci, &s)| {
                std::mem::replace(
                    &mut chain_parts[s][ci],
                    ChainReport::new(&self.chain_specs[ci]),
                )
            })
            .collect();
        report
    }
}
