//! Property-based state-machine test of the shared platform engine:
//! arbitrary interleavings of launches, enqueues, event deliveries and
//! retirements must never break the engine's accounting invariants.

use std::collections::HashMap;

use infless_cluster::{ClusterSpec, InstanceConfig, InstanceId, InstanceState};
use infless_core::engine::{Engine, EngineEvent, FunctionInfo};
use infless_core::metrics::StartupKind;
use infless_models::{HardwareModel, ModelId, ResourceConfig};
use infless_sim::{EventQueue, SimDuration};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Launch an instance for function `f` with batch `b` and config
    /// index `cfg` (cold or prewarmed).
    Launch {
        f: usize,
        b: u32,
        cfg: usize,
        cold: bool,
    },
    /// Mint a request for `f` and enqueue it on the `i`-th live
    /// instance of `f` (drop it if rejected or none live).
    Enqueue { f: usize, i: usize },
    /// Deliver the next pending engine event.
    Step,
    /// Retire the `i`-th live instance of `f` if it is idle and empty.
    Retire { f: usize, i: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            0usize..2,
            prop::sample::select(vec![1u32, 2, 4, 8]),
            0usize..3,
            any::<bool>()
        )
            .prop_map(|(f, b, cfg, cold)| Op::Launch { f, b, cfg, cold }),
        (0usize..2, 0usize..4).prop_map(|(f, i)| Op::Enqueue { f, i }),
        Just(Op::Step),
        (0usize..2, 0usize..4).prop_map(|(f, i)| Op::Retire { f, i }),
    ]
}

fn configs() -> [ResourceConfig; 3] {
    [
        ResourceConfig::cpu(2),
        ResourceConfig::new(1, 10),
        ResourceConfig::new(2, 25),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_invariants_hold_under_arbitrary_operations(
        ops in prop::collection::vec(op_strategy(), 1..120)
    ) {
        let functions = vec![
            FunctionInfo::new(ModelId::MobileNet.spec(), SimDuration::from_millis(100)),
            FunctionInfo::new(ModelId::TextCnn69.spec(), SimDuration::from_millis(100)),
        ];
        let mut engine = Engine::new(
            "proptest",
            ClusterSpec::testbed(),
            HardwareModel::default(),
            functions,
            99,
        );
        let mut queue: EventQueue<EngineEvent> = EventQueue::new();
        let mut minted = 0u64;
        let mut dropped = 0u64;
        // Our own model of what each live instance holds.
        let mut expected_cpu: HashMap<InstanceId, u32> = HashMap::new();

        for op in ops {
            match op {
                Op::Launch { f, b, cfg, cold } => {
                    let config = InstanceConfig::new(b, configs()[cfg]);
                    let kind = if cold { StartupKind::Cold } else { StartupKind::PreWarmed };
                    if let Ok(id) = engine.launch_anywhere(
                        f,
                        config,
                        kind,
                        SimDuration::from_millis(40),
                        &mut queue,
                    ) {
                        expected_cpu.insert(id, config.resources().cpu_cores());
                    }
                }
                Op::Enqueue { f, i } => {
                    let ids = engine.instances_of(f).to_vec();
                    let req = engine.mint_request(f);
                    minted += 1;
                    match ids.get(i % ids.len().max(1)) {
                        Some(id) if !ids.is_empty() => {
                            if !engine.enqueue(*id, req, &mut queue) {
                                engine.drop_request(&req);
                                dropped += 1;
                            }
                        }
                        _ => {
                            engine.drop_request(&req);
                            dropped += 1;
                        }
                    }
                }
                Op::Step => {
                    if let Some((t, ev)) = queue.pop() {
                        engine.advance(t);
                        match ev {
                            EngineEvent::InstanceReady(id) => engine.on_instance_ready(id, &mut queue),
                            EngineEvent::SwapComplete(id) => engine.on_swap_complete(id, &mut queue),
                            EngineEvent::BatchTimeout(id) => engine.on_batch_timeout(id, &mut queue),
                            EngineEvent::BatchComplete(id) => {
                                engine.on_batch_complete(id, &mut queue);
                            }
                            EngineEvent::DecodeStep(id) => {
                                engine.on_decode_step(id, &mut queue);
                            }
                            EngineEvent::Arrival(_)
                            | EngineEvent::ScalerTick
                            | EngineEvent::DirectiveKill(..)
                            | EngineEvent::DirectiveStraggler { .. } => {}
                            EngineEvent::Fault(f) => {
                                engine.on_fault(f);
                            }
                        }
                    }
                }
                Op::Retire { f, i } => {
                    let ids = engine.instances_of(f).to_vec();
                    if let Some(id) = ids.get(i % ids.len().max(1)) {
                        if !ids.is_empty() {
                            let inst = engine.instance(*id);
                            let idle = inst.queue_len() == 0
                                && !matches!(inst.state(), InstanceState::Busy { .. });
                            if idle {
                                engine.retire(*id);
                                expected_cpu.remove(id);
                            }
                        }
                    }
                }
            }
            // Invariant: the cluster's CPU books match the live set.
            let expected: u64 = expected_cpu.values().map(|c| u64::from(*c)).sum();
            prop_assert_eq!(engine.cluster().cpu_in_use(), expected);
        }

        // Drain everything so all in-flight work completes.
        while let Some((t, ev)) = queue.pop() {
            engine.advance(t);
            match ev {
                EngineEvent::InstanceReady(id) => engine.on_instance_ready(id, &mut queue),
                EngineEvent::SwapComplete(id) => engine.on_swap_complete(id, &mut queue),
                EngineEvent::BatchTimeout(id) => engine.on_batch_timeout(id, &mut queue),
                EngineEvent::BatchComplete(id) => {
                    engine.on_batch_complete(id, &mut queue);
                }
                EngineEvent::DecodeStep(id) => {
                    engine.on_decode_step(id, &mut queue);
                }
                EngineEvent::Arrival(_)
                | EngineEvent::ScalerTick
                | EngineEvent::DirectiveKill(..)
                | EngineEvent::DirectiveStraggler { .. } => {}
                EngineEvent::Fault(f) => {
                    engine.on_fault(f);
                }
            }
        }
        // Remaining queued requests (on instances whose timeout budget
        // already fired before they were enqueued) stay pending; count
        // them as accounted.
        let still_queued: u64 = (0..2)
            .flat_map(|f| engine.instances_of(f).to_vec())
            .map(|id| engine.instance(id).queue_len() as u64)
            .sum();

        let report = engine.finish();
        // Conservation: every minted request is completed, dropped, or
        // still queued — never lost or double-counted.
        prop_assert_eq!(
            report.total_completed() + dropped + still_queued,
            minted,
            "completed {} + dropped {} + queued {} != minted {}",
            report.total_completed(),
            dropped,
            still_queued,
            minted
        );
        prop_assert_eq!(report.total_dropped(), dropped);
    }
}
