//! Shard invariance: a sharded run's report must be **byte-identical**
//! for every shard count — `run(w, 1) == run(w, 2) == run(w, 8)` on the
//! canonical JSON rendering — including fault accounting, and (on a
//! barrier-aligned scenario with the epoch deltas configured inert)
//! identical to the legacy single-loop engine.

use infless_cluster::ClusterSpec;
use infless_core::apps::Application;
use infless_core::chains::ChainSpec;
use infless_core::platform::{InflessConfig, InflessPlatform};
use infless_core::ShardedInfless;
use infless_faults::{FaultPlan, FaultSchedule};
use infless_sim::{SimDuration, SimTime};
use infless_workload::{FunctionLoad, TracePattern, Workload};

fn bursty_workload(app: &Application, seed: u64, secs: u64) -> Workload {
    let loads: Vec<FunctionLoad> = app
        .functions()
        .iter()
        .enumerate()
        .map(|(i, _)| {
            FunctionLoad::trace(
                TracePattern::Bursty,
                40.0,
                SimDuration::from_secs(secs),
                seed + i as u64,
            )
        })
        .collect();
    Workload::build(&loads, seed)
}

#[test]
fn report_is_byte_identical_across_shard_counts() {
    let app = Application::osvt();
    let w = bursty_workload(&app, 41, 30);
    let sharded = ShardedInfless::new(
        ClusterSpec::testbed(),
        app.functions().to_vec(),
        InflessConfig::default(),
        41,
    );
    let base = sharded.run(&w, 1).canonical_json();
    for s in [2, 4, 8] {
        let other = sharded.run(&w, s).canonical_json();
        assert_eq!(base, other, "S=1 vs S={s} reports diverge");
    }
}

#[test]
fn chained_run_is_byte_identical_across_shard_counts() {
    let app = Application::osvt();
    let chains = vec![ChainSpec::new(
        "detect-classify",
        vec![0, 1],
        SimDuration::from_millis(400),
    )];
    let w = bursty_workload(&app, 43, 30);
    let sharded = ShardedInfless::with_chains(
        ClusterSpec::testbed(),
        app.functions().to_vec(),
        chains,
        InflessConfig::default(),
        43,
    );
    let base = sharded.run(&w, 1).canonical_json();
    for s in [2, 4] {
        let other = sharded.run(&w, s).canonical_json();
        assert_eq!(base, other, "chained S=1 vs S={s} reports diverge");
    }
}

/// Satellite: fault victim selection must run against the *global*
/// coordinator view — the same victim falls for every shard layout, so
/// the whole `FailureReport` (and everything downstream of the kill)
/// is byte-identical between S=1 and S=4.
#[test]
fn faulted_run_is_byte_identical_across_shard_counts() {
    let app = Application::osvt();
    let cluster = ClusterSpec::testbed();
    let horizon = SimDuration::from_secs(30);
    let faults = FaultSchedule::generate(&FaultPlan::sweep(1.0), cluster.servers, horizon, 47);
    assert!(!faults.is_empty(), "sweep plan must inject faults");
    let w = bursty_workload(&app, 47, 30);
    let sharded = ShardedInfless::new(
        cluster,
        app.functions().to_vec(),
        InflessConfig::default(),
        47,
    )
    .with_fault_schedule(faults);
    let r1 = sharded.run(&w, 1);
    let r4 = sharded.run(&w, 4);
    assert!(r1.failures.any(), "faulted run must record failures");
    assert_eq!(r1.failures, r4.failures, "failure accounting diverges");
    assert_eq!(
        r1.canonical_json(),
        r4.canonical_json(),
        "faulted S=1 vs S=4 reports diverge"
    );
}

/// With the epoch-mode deltas configured inert (zero execution noise,
/// zero MPS interference) and every arrival landing exactly on an
/// epoch barrier, the sharded path at S=1 reproduces the legacy
/// single-loop engine byte for byte: deferred emergency scaling fires
/// at the same simulated instants the legacy loop's inline emergency
/// path would.
#[test]
fn shard1_matches_legacy_on_barrier_aligned_quiet_scenario() {
    let app = Application::qa_robot();
    let mut config = InflessConfig::default();
    config.hardware.noise_sigma = 0.0;
    config.hardware.mps_interference = 0.0;
    // A 1.25 s scaler period makes the epoch 250 ms, so the fixed
    // 200 ms pre-warm never ripens exactly on a barrier: an
    // InstanceReady colliding with an arrival timestamp is the one
    // spot where the legacy heap (arrivals win ties) and the epoch
    // drain (all events land before the flush) order differently.
    config.scaler_period = SimDuration::from_millis(1250);
    // Arrivals at k * 250 ms, k >= 1 — every timestamp is a barrier.
    // Multiples of the scaler period are skipped: at those instants the
    // legacy heap pops the (earlier-scheduled) scaler tick before
    // same-time batch events, while the barrier protocol by design
    // runs the scaler after the epoch fully drains — the one ordering
    // delta that is inherent to barriers rather than configurable.
    let epoch = config.scaler_period / 5;
    let loads: Vec<FunctionLoad> = app
        .functions()
        .iter()
        .map(|_| {
            FunctionLoad::explicit(
                (1..=60u64)
                    .filter(|k| k % 5 != 0)
                    .map(|k| SimTime::ZERO + epoch * k)
                    .collect(),
            )
        })
        .collect();
    let w = Workload::build(&loads, 53);

    let legacy = InflessPlatform::new(ClusterSpec::testbed(), app.functions().to_vec(), config, 53)
        .run(&w)
        .canonical_json();
    let sharded = ShardedInfless::new(ClusterSpec::testbed(), app.functions().to_vec(), config, 53)
        .run(&w, 1)
        .canonical_json();
    assert_eq!(legacy, sharded, "S=1 diverges from the pre-shard engine");
}

/// Satellite: per-function noise streams are keyed by function
/// identity, so one function's execution-time draws do not shift when
/// a neighbour's traffic changes (with interference zeroed, the only
/// cross-function coupling left is cluster capacity, which ample
/// testbed headroom keeps slack).
#[test]
fn per_function_noise_isolates_neighbour_traffic() {
    let app = Application::qa_robot();
    let mut config = InflessConfig::default();
    config.hardware.mps_interference = 0.0;
    let dur = SimDuration::from_secs(20);
    let run = |f1_rps: f64| {
        let loads = vec![
            FunctionLoad::constant(30.0, dur),
            FunctionLoad::constant(f1_rps, dur),
        ];
        let w = Workload::build(&loads, 59);
        let r = ShardedInfless::new(ClusterSpec::testbed(), app.functions().to_vec(), config, 59)
            .run(&w, 2);
        let v: serde_json::Value = serde_json::from_str(&r.canonical_json()).unwrap();
        v.get("functions")
            .and_then(serde_json::Value::as_array)
            .and_then(|fs| fs.first())
            .cloned()
            .expect("functions[0] present")
    };
    assert_eq!(
        run(10.0),
        run(40.0),
        "function 0's report shifted with function 1's traffic"
    );
}
