//! Deterministic fault injection for the INFless simulation.
//!
//! The paper assumes every server, instance launch, and cold start
//! succeeds. This crate supplies the missing failure model: a
//! seed-driven [`FaultSchedule`] sampled up front from a [`FaultPlan`],
//! so a run with faults is exactly as reproducible as a run without.
//! Four fault classes are modelled:
//!
//! * whole-server crashes with an outage and a recovery boot delay
//!   ([`FaultEvent::ServerCrash`] → `ServerRecoveryBegin` → `ServerUp`),
//! * individual instance deaths ([`FaultEvent::InstanceKill`]),
//! * cold-start failures — an instance dies while still starting
//!   ([`FaultEvent::ColdStartFailure`]),
//! * execution stragglers — a server runs batches slower for a while
//!   ([`FaultEvent::StragglerStart`]).
//!
//! Events carry *selectors* rather than concrete instance ids because
//! the schedule is generated before the run: the platform resolves a
//! selector against the set of live instances at delivery time, in a
//! deterministic order. All sampling goes through
//! [`infless_sim::rng::stream`] on `"faults/..."` labels, so adding a
//! fault schedule never perturbs the arrival or execution-noise
//! streams: an empty plan yields a bit-identical run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use infless_cluster::ServerId;
use infless_sim::rng::stream;
use infless_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Rates and shapes of the faults to inject, the unit the scenario
/// files and benches configure. All rates are cluster-wide Poisson
/// rates; a rate of zero disables that fault class.
///
/// # Example
///
/// ```
/// use infless_faults::{FaultPlan, FaultSchedule};
/// use infless_sim::SimDuration;
///
/// let plan = FaultPlan::none();
/// assert!(plan.is_empty());
/// let schedule = FaultSchedule::generate(&plan, 8, SimDuration::from_mins(10), 42);
/// assert!(schedule.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default, deny_unknown_fields)]
pub struct FaultPlan {
    /// Whole-server crashes per hour across the cluster.
    pub server_crashes_per_hour: f64,
    /// Mean outage after a crash (exponentially distributed, floored at
    /// one second), seconds.
    pub crash_outage_secs: f64,
    /// Fixed boot delay between `ServerRecoveryBegin` and `ServerUp`,
    /// seconds.
    pub recovery_boot_secs: f64,
    /// Individual instance deaths per hour across the cluster.
    pub instance_kills_per_hour: f64,
    /// Cold-start failures per hour across the cluster (each kills one
    /// currently-starting instance, if any).
    pub coldstart_failures_per_hour: f64,
    /// Straggler episodes per hour across the cluster.
    pub stragglers_per_hour: f64,
    /// Execution slowdown during a straggler episode, percent added on
    /// top of the modelled latency (100 ⇒ batches take 2×).
    pub straggler_slowdown_pct: u32,
    /// Length of one straggler episode, seconds.
    pub straggler_duration_secs: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            server_crashes_per_hour: 0.0,
            crash_outage_secs: 60.0,
            recovery_boot_secs: 10.0,
            instance_kills_per_hour: 0.0,
            coldstart_failures_per_hour: 0.0,
            stragglers_per_hour: 0.0,
            straggler_slowdown_pct: 100,
            straggler_duration_secs: 20.0,
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// `true` when every fault class is disabled.
    pub fn is_empty(&self) -> bool {
        self.server_crashes_per_hour <= 0.0
            && self.instance_kills_per_hour <= 0.0
            && self.coldstart_failures_per_hour <= 0.0
            && self.stragglers_per_hour <= 0.0
    }

    /// The reference failure sweep used by the `fig_failure_slo` bench:
    /// all four classes scaled together by `intensity` (1.0 ≈ a rough
    /// but busy day; 0.0 ⇒ no faults).
    pub fn sweep(intensity: f64) -> Self {
        FaultPlan {
            server_crashes_per_hour: 20.0 * intensity,
            crash_outage_secs: 60.0,
            recovery_boot_secs: 10.0,
            instance_kills_per_hour: 60.0 * intensity,
            coldstart_failures_per_hour: 30.0 * intensity,
            stragglers_per_hour: 30.0 * intensity,
            straggler_slowdown_pct: 150,
            straggler_duration_secs: 20.0,
        }
    }
}

/// One injected fault, delivered through the platform's event queue.
///
/// All payloads are integers so the enum stays `Copy + Eq`, matching
/// the other engine events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// A server fails: every instance on it dies, its allocations are
    /// force-released, and it accepts no placements until `ServerUp`.
    ServerCrash {
        /// The crashed server.
        server: ServerId,
    },
    /// The outage ends and the server begins rebooting.
    ServerRecoveryBegin {
        /// The recovering server.
        server: ServerId,
    },
    /// The server is healthy again and accepts placements.
    ServerUp {
        /// The recovered server.
        server: ServerId,
    },
    /// One live instance dies. `selector` is resolved modulo the number
    /// of live instances at delivery time (deterministic order).
    InstanceKill {
        /// Pre-sampled selector for the victim instance.
        selector: u64,
    },
    /// One currently-starting instance fails to boot. No-op if nothing
    /// is starting when the event fires.
    ColdStartFailure {
        /// Pre-sampled selector for the victim instance.
        selector: u64,
    },
    /// A server starts straggling: batches begun on it while the
    /// episode lasts run `1 + slowdown_pct/100` times slower.
    StragglerStart {
        /// The straggling server.
        server: ServerId,
        /// Added execution latency, percent.
        slowdown_pct: u32,
        /// Episode length.
        duration: SimDuration,
    },
}

/// A fully materialised, time-sorted fault schedule for one run.
///
/// Generated once before the simulation starts; the platform feeds the
/// events into its [`infless_sim::EventQueue`] alongside arrivals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<(SimTime, FaultEvent)>,
}

impl FaultSchedule {
    /// A schedule with no events (faults disabled).
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    /// Samples a schedule over `[0, horizon)` for a cluster of
    /// `servers` machines. Each fault class draws from its own labelled
    /// RNG stream derived from `seed`, so two classes never perturb
    /// each other and the same `(plan, servers, horizon, seed)` always
    /// yields the same schedule.
    pub fn generate(plan: &FaultPlan, servers: usize, horizon: SimDuration, seed: u64) -> Self {
        let mut events: Vec<(SimTime, FaultEvent)> = Vec::new();
        let horizon_secs = horizon.as_secs_f64();
        if servers == 0 || horizon_secs <= 0.0 || plan.is_empty() {
            return FaultSchedule { events };
        }

        // Server crashes: keep at most one outstanding outage per
        // server (a crash sampled while the machine is already down is
        // skipped), so the Down → Recovering → Up transitions never
        // interleave on one machine.
        if plan.server_crashes_per_hour > 0.0 {
            let mut rng = stream(seed, "faults/server-crash");
            let rate = plan.server_crashes_per_hour / 3600.0;
            let boot = plan.recovery_boot_secs.max(0.0);
            let mut down_until = vec![0.0f64; servers];
            let mut t = 0.0;
            loop {
                t += exp_sample(&mut rng, rate);
                if t >= horizon_secs {
                    break;
                }
                let victim = (rng.gen::<u64>() % servers as u64) as usize;
                let outage = exp_sample(&mut rng, 1.0 / plan.crash_outage_secs.max(1.0)).max(1.0);
                if t < down_until[victim] {
                    continue;
                }
                down_until[victim] = t + outage + boot;
                let server = ServerId::new(victim);
                events.push((at(t), FaultEvent::ServerCrash { server }));
                events.push((at(t + outage), FaultEvent::ServerRecoveryBegin { server }));
                events.push((at(t + outage + boot), FaultEvent::ServerUp { server }));
            }
        }

        if plan.instance_kills_per_hour > 0.0 {
            let mut rng = stream(seed, "faults/instance-kill");
            let rate = plan.instance_kills_per_hour / 3600.0;
            let mut t = 0.0;
            loop {
                t += exp_sample(&mut rng, rate);
                if t >= horizon_secs {
                    break;
                }
                let selector = rng.gen::<u64>();
                events.push((at(t), FaultEvent::InstanceKill { selector }));
            }
        }

        if plan.coldstart_failures_per_hour > 0.0 {
            let mut rng = stream(seed, "faults/coldstart-failure");
            let rate = plan.coldstart_failures_per_hour / 3600.0;
            let mut t = 0.0;
            loop {
                t += exp_sample(&mut rng, rate);
                if t >= horizon_secs {
                    break;
                }
                let selector = rng.gen::<u64>();
                events.push((at(t), FaultEvent::ColdStartFailure { selector }));
            }
        }

        if plan.stragglers_per_hour > 0.0 && plan.straggler_slowdown_pct > 0 {
            let mut rng = stream(seed, "faults/straggler");
            let rate = plan.stragglers_per_hour / 3600.0;
            let duration = SimDuration::from_secs_f64(plan.straggler_duration_secs.max(0.0));
            let mut t = 0.0;
            loop {
                t += exp_sample(&mut rng, rate);
                if t >= horizon_secs {
                    break;
                }
                let server = ServerId::new((rng.gen::<u64>() % servers as u64) as usize);
                events.push((
                    at(t),
                    FaultEvent::StragglerStart {
                        server,
                        slowdown_pct: plan.straggler_slowdown_pct,
                        duration,
                    },
                ));
            }
        }

        // Stable sort: classes were generated in a fixed order, so
        // equal-timestamp events keep a deterministic relative order.
        events.sort_by_key(|(t, _)| *t);
        FaultSchedule { events }
    }

    /// The schedule, sorted by delivery time.
    pub fn events(&self) -> &[(SimTime, FaultEvent)] {
        &self.events
    }

    /// `true` when the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

/// Inverse-CDF exponential sample with mean `1/rate_per_sec`.
fn exp_sample(rng: &mut StdRng, rate_per_sec: f64) -> f64 {
    // The vendored rand_distr only ships Poisson, so draw the
    // exponential inter-arrival directly: u ∈ [0, 1) ⇒ 1-u ∈ (0, 1].
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / rate_per_sec
}

fn at(secs: f64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs_f64(secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn busy_plan() -> FaultPlan {
        FaultPlan {
            server_crashes_per_hour: 120.0,
            instance_kills_per_hour: 240.0,
            coldstart_failures_per_hour: 120.0,
            stragglers_per_hour: 120.0,
            ..FaultPlan::default()
        }
    }

    #[test]
    fn empty_plan_generates_no_events() {
        let s = FaultSchedule::generate(&FaultPlan::none(), 8, SimDuration::from_hours(1), 7);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s, FaultSchedule::empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let plan = busy_plan();
        let a = FaultSchedule::generate(&plan, 8, SimDuration::from_mins(30), 42);
        let b = FaultSchedule::generate(&plan, 8, SimDuration::from_mins(30), 42);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = FaultSchedule::generate(&plan, 8, SimDuration::from_mins(30), 43);
        assert_ne!(a, c, "different seeds must give different schedules");
    }

    #[test]
    fn schedule_is_time_sorted() {
        let s = FaultSchedule::generate(&busy_plan(), 8, SimDuration::from_mins(30), 1);
        for w in s.events().windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn crash_transitions_never_interleave_per_server() {
        let plan = FaultPlan {
            server_crashes_per_hour: 600.0, // force skipped overlaps
            crash_outage_secs: 120.0,
            ..FaultPlan::default()
        };
        let s = FaultSchedule::generate(&plan, 2, SimDuration::from_mins(30), 5);
        // Per server, the event sequence must be a clean repetition of
        // Crash, RecoveryBegin, Up.
        for sv in 0..2 {
            let server = ServerId::new(sv);
            let mut phase = 0u8; // 0 = up, 1 = down, 2 = recovering
            for (_, ev) in s.events() {
                match ev {
                    FaultEvent::ServerCrash { server: s } if *s == server => {
                        assert_eq!(phase, 0, "crash while not up");
                        phase = 1;
                    }
                    FaultEvent::ServerRecoveryBegin { server: s } if *s == server => {
                        assert_eq!(phase, 1, "recovery while not down");
                        phase = 2;
                    }
                    FaultEvent::ServerUp { server: s } if *s == server => {
                        assert_eq!(phase, 2, "up while not recovering");
                        phase = 0;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn sweep_scales_rates() {
        assert!(FaultPlan::sweep(0.0).is_empty());
        let one = FaultPlan::sweep(1.0);
        let two = FaultPlan::sweep(2.0);
        assert!((two.server_crashes_per_hour - 2.0 * one.server_crashes_per_hour).abs() < 1e-12);
        assert!(!one.is_empty());
    }

    #[test]
    fn plan_deserializes_with_defaults() {
        let plan: FaultPlan = serde_json::from_str("{\"server_crashes_per_hour\": 5.0}").unwrap();
        assert!((plan.server_crashes_per_hour - 5.0).abs() < 1e-12);
        assert!((plan.recovery_boot_secs - 10.0).abs() < 1e-12);
        assert!(!plan.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every sampled event lands inside the horizon (recovery
        /// events may spill past it — outages end when they end).
        #[test]
        fn prop_primary_events_within_horizon(seed in 0u64..1000, mins in 1u64..60) {
            let horizon = SimDuration::from_mins(mins);
            let s = FaultSchedule::generate(&busy_plan(), 4, horizon, seed);
            let end = SimTime::ZERO + horizon;
            for (t, ev) in s.events() {
                match ev {
                    FaultEvent::ServerRecoveryBegin { .. } | FaultEvent::ServerUp { .. } => {}
                    _ => prop_assert!(*t < end, "{ev:?} at {t:?} past horizon {end:?}"),
                }
            }
        }
    }
}
