//! Autoregressive (LLM) serving: the token-level function class.
//!
//! INFless models one-shot DNN inference; this crate adds the
//! vocabulary for *autoregressive* functions, where a request carries a
//! prompt and generates output tokens one decode step at a time:
//!
//! * **Prefill** — one batch-wide, compute-bound pass over every
//!   admitted prompt. Its latency sets the time-to-first-token (TTFT).
//! * **Decode** — an iteration-level loop producing one token per
//!   active sequence per step, memory-bound on model weights + KV-cache
//!   traffic. The per-step latency sets the time-per-output-token
//!   (TPOT).
//! * **KV-cache** — a per-instance GPU-memory arena that grows with
//!   every decoded token and is freed when a sequence completes or is
//!   displaced. Admission into a running batch is gated on arena
//!   headroom.
//!
//! The execution engine, the two-phase extension of Algorithm 1, and
//! the TTFT/TPOT report plumbing live in `infless-core`; this crate
//! only defines the class parameters ([`LlmClass`]), the batching
//! discipline ([`LlmBatching`]) and the run knob ([`LlmConfig`]) so
//! that every layer (descriptor, RunConfig, engine, scheduler, bench)
//! shares one definition.

use infless_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// How an autoregressive instance forms decode batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum LlmBatching {
    /// Iteration-level (Orca/vLLM-style): queued requests join the
    /// running batch at decode-step boundaries, completed sequences
    /// leave immediately.
    Continuous,
    /// Run-to-completion: a batch is formed once and holds the
    /// instance until every sequence in it finishes decoding.
    #[default]
    Static,
}

/// The autoregressive class parameters of one function.
///
/// Token counts are *means* of the per-request geometric-ish
/// distributions sampled by the engine's deterministic per-function
/// streams; SLOs are the two-phase targets Algorithm 1 checks
/// (`ttft_slo` against prefill latency, `tpot_slo` against the decode
/// step at max concurrent-sequence capacity). The function's existing
/// end-to-end SLO still applies on top.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlmClass {
    /// Mean prompt length, tokens.
    pub prompt_tokens_mean: u32,
    /// Mean generated-output length, tokens.
    pub output_tokens_mean: u32,
    /// Time-to-first-token SLO (arrival → end of prefill).
    pub ttft_slo: SimDuration,
    /// Time-per-output-token SLO (mean decode-step interval).
    pub tpot_slo: SimDuration,
    /// KV-cache footprint per token, MB (all layers, both K and V).
    pub kv_mb_per_token: f64,
    /// Per-instance KV arena, MB — booked against the instance's GPU
    /// device memory at placement time.
    pub kv_arena_mb: f64,
}

impl LlmClass {
    /// A chat-style class: short prompts, short outputs, tight TTFT and
    /// TPOT (interactive).
    pub fn chat() -> Self {
        LlmClass {
            prompt_tokens_mean: 256,
            output_tokens_mean: 64,
            ttft_slo: SimDuration::from_millis(300),
            tpot_slo: SimDuration::from_millis(40),
            kv_mb_per_token: 0.05,
            kv_arena_mb: 2048.0,
        }
    }

    /// A batch-summarization class: long prompts, long outputs, loose
    /// per-token targets (throughput-oriented; the e2e SLO dominates).
    pub fn summarize() -> Self {
        LlmClass {
            prompt_tokens_mean: 1024,
            output_tokens_mean: 256,
            ttft_slo: SimDuration::from_secs(5),
            tpot_slo: SimDuration::from_millis(200),
            kv_mb_per_token: 0.05,
            kv_arena_mb: 2048.0,
        }
    }

    /// KV bytes held by one token (exact integer, used by the
    /// conservation accounting).
    pub fn kv_bytes_per_token(&self) -> u64 {
        (self.kv_mb_per_token * 1_048_576.0) as u64
    }

    /// Total KV arena capacity in tokens (floor). Admission reserves
    /// `prompt + output` tokens per sequence against this.
    pub fn arena_capacity_tokens(&self) -> u64 {
        if self.kv_mb_per_token <= 0.0 {
            return u64::MAX;
        }
        (self.kv_arena_mb / self.kv_mb_per_token).floor() as u64
    }

    /// The maximum number of sequences the arena can hold
    /// concurrently, assuming every sequence reaches its mean total
    /// length (prompt + output). At least 1.
    pub fn max_concurrent_seqs(&self) -> u32 {
        let per_seq =
            f64::from(self.prompt_tokens_mean + self.output_tokens_mean) * self.kv_mb_per_token;
        if per_seq <= 0.0 {
            return 1;
        }
        ((self.kv_arena_mb / per_seq).floor() as u32).max(1)
    }
}

fn default_batching() -> LlmBatching {
    LlmBatching::Static
}

/// The run-level LLM knob: disabled by default, which is pinned (like
/// the residency tier) to be bit-identical to the pre-LLM engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct LlmConfig {
    /// Master switch. `false` leaves every LLM code path dormant.
    #[serde(default)]
    pub enabled: bool,
    /// Decode-batch discipline for autoregressive instances.
    #[serde(default = "default_batching")]
    pub batching: LlmBatching,
}

impl Default for LlmConfig {
    fn default() -> Self {
        LlmConfig {
            enabled: false,
            batching: LlmBatching::Static,
        }
    }
}

impl LlmConfig {
    /// An enabled config with the default (static) batching.
    pub fn enabled() -> Self {
        LlmConfig {
            enabled: true,
            ..Self::default()
        }
    }

    /// An enabled config with continuous (iteration-level) batching.
    pub fn continuous() -> Self {
        LlmConfig {
            enabled: true,
            batching: LlmBatching::Continuous,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_static() {
        let cfg = LlmConfig::default();
        assert!(!cfg.enabled);
        assert_eq!(cfg.batching, LlmBatching::Static);
        assert!(LlmConfig::enabled().enabled);
        assert_eq!(LlmConfig::continuous().batching, LlmBatching::Continuous);
    }

    #[test]
    fn serde_round_trip_and_defaults() {
        let cfg = LlmConfig::continuous();
        let text = serde_json::to_string(&cfg).expect("serializes");
        let back: LlmConfig = serde_json::from_str(&text).expect("parses");
        assert_eq!(back, cfg);
        // An empty object is the disabled default.
        let empty: LlmConfig = serde_json::from_str("{}").expect("parses");
        assert_eq!(empty, LlmConfig::default());
        // Unknown fields are rejected.
        assert!(serde_json::from_str::<LlmConfig>("{\"nope\": 1}").is_err());
    }

    #[test]
    fn class_capacity_math() {
        let chat = LlmClass::chat();
        // 2048 MB / (320 tokens * 0.05 MB) = 128 sequences.
        assert_eq!(chat.max_concurrent_seqs(), 128);
        assert_eq!(chat.kv_bytes_per_token(), 52_428);
        let s = LlmClass::summarize();
        assert!(s.max_concurrent_seqs() >= 1);
    }
}
