//! Operator task graphs.
//!
//! The paper (§3.3) models an inference function as a task graph
//! `G = (O, E)` of operators, decomposable into *sequence chains* (times
//! add) and *parallel branches* (times max). [`OperatorDag`] is a general
//! DAG; for weighted nodes the chain/branch combination rule equals the
//! weighted critical path, which [`OperatorDag::critical_path`] computes
//! directly, so COP works on arbitrary DAGs, not just series-parallel
//! ones.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::operator::{OpKind, Operator};

/// Identifier of a node inside one [`OperatorDag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(usize);

impl NodeId {
    /// The node's index in [`OperatorDag::nodes`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// A validated operator DAG.
///
/// Construct with [`DagBuilder`]; the builder enforces acyclicity by
/// construction (edges only point from existing nodes to newer ones).
///
/// # Example
///
/// ```
/// use infless_models::{DagBuilder, OpKind, Operator};
///
/// // input -> two parallel conv branches -> concat
/// let mut b = DagBuilder::new();
/// let root = b.node(Operator::new(OpKind::Embedding, 0.01), &[]);
/// let c1 = b.node(Operator::new(OpKind::Conv2d, 0.2), &[root]);
/// let c2 = b.node(Operator::new(OpKind::Conv2d, 0.3), &[root]);
/// let _out = b.node(Operator::new(OpKind::ConcatV2, 0.001), &[c1, c2]);
/// let dag = b.build();
/// assert_eq!(dag.len(), 4);
/// // Critical path takes the heavier branch.
/// let cp = dag.critical_path(|op| op.gflops());
/// assert!((cp - (0.01 + 0.3 + 0.001)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorDag {
    nodes: Vec<Operator>,
    /// `preds[i]` lists the predecessors of node `i`; every entry is < i,
    /// so node order is already a topological order.
    preds: Vec<Vec<usize>>,
}

impl OperatorDag {
    /// Number of operator call sites in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The operators in topological order.
    pub fn nodes(&self) -> &[Operator] {
        &self.nodes
    }

    /// Predecessors of `node`.
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.preds[node.0].iter().map(|&i| NodeId(i))
    }

    /// Iterates `(NodeId, &Operator)` in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Operator)> {
        self.nodes.iter().enumerate().map(|(i, op)| (NodeId(i), op))
    }

    /// Total work: the sum of `weight` over all nodes.
    ///
    /// With `weight = |op| op.gflops()` this is the model's total GFLOPs;
    /// with a latency function it is the serialized execution time.
    pub fn total<W: Fn(&Operator) -> f64>(&self, weight: W) -> f64 {
        self.nodes.iter().map(weight).sum()
    }

    /// Weighted critical path: the longest weight-sum over any
    /// source→sink path. For series-parallel graphs this equals the
    /// paper's chain-sum / branch-max combination rule.
    pub fn critical_path<W: Fn(&Operator) -> f64>(&self, weight: W) -> f64 {
        let mut finish = vec![0.0f64; self.nodes.len()];
        let mut best: f64 = 0.0;
        for (i, op) in self.nodes.iter().enumerate() {
            let start = self.preds[i]
                .iter()
                .map(|&p| finish[p])
                .fold(0.0f64, f64::max);
            finish[i] = start + weight(op);
            best = best.max(finish[i]);
        }
        best
    }

    /// The slack between serialized and critical-path execution:
    /// `total - critical_path`, i.e. how much work runs on parallel
    /// branches off the longest path. Zero for a pure chain.
    pub fn parallel_slack<W: Fn(&Operator) -> f64 + Copy>(&self, weight: W) -> f64 {
        (self.total(weight) - self.critical_path(weight)).max(0.0)
    }

    /// Counts call sites per distinct operator kind (paper Fig. 7 shows
    /// these counts for LSTM-2365 and ResNet-50).
    pub fn kind_counts(&self) -> HashMap<OpKind, usize> {
        let mut m = HashMap::new();
        for op in &self.nodes {
            *m.entry(op.kind()).or_insert(0) += 1;
        }
        m
    }

    /// Aggregates `weight` per operator kind — e.g. the share of total
    /// execution time attributable to `Conv2D` (Fig. 7b).
    pub fn kind_totals<W: Fn(&Operator) -> f64>(&self, weight: W) -> HashMap<OpKind, f64> {
        let mut m = HashMap::new();
        for op in &self.nodes {
            *m.entry(op.kind()).or_insert(0.0) += weight(op);
        }
        m
    }
}

/// Incremental builder for [`OperatorDag`].
///
/// Acyclic by construction: a node's predecessors must already exist, so
/// edges always point forward in insertion order.
#[derive(Debug, Clone, Default)]
pub struct DagBuilder {
    nodes: Vec<Operator>,
    preds: Vec<Vec<usize>>,
}

impl DagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        DagBuilder::default()
    }

    /// Adds a node with the given predecessors and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if any predecessor id does not refer to an existing node
    /// or appears twice.
    pub fn node(&mut self, op: Operator, preds: &[NodeId]) -> NodeId {
        let mut ps: Vec<usize> = preds.iter().map(|p| p.0).collect();
        ps.sort_unstable();
        for w in ps.windows(2) {
            assert_ne!(w[0], w[1], "duplicate predecessor");
        }
        for &p in &ps {
            assert!(p < self.nodes.len(), "predecessor does not exist yet");
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(op);
        self.preds.push(ps);
        id
    }

    /// Appends a chain of operators, each depending on the previous one;
    /// the first depends on `after` (or is a source if `after` is `None`).
    /// Returns the id of the last node, or `after` if `ops` is empty.
    pub fn chain<I>(&mut self, after: Option<NodeId>, ops: I) -> Option<NodeId>
    where
        I: IntoIterator<Item = Operator>,
    {
        let mut tail = after;
        for op in ops {
            let preds: Vec<NodeId> = tail.into_iter().collect();
            tail = Some(self.node(op, &preds));
        }
        tail
    }

    /// Adds a join node depending on all of `branch_tails`.
    pub fn join(&mut self, op: Operator, branch_tails: &[NodeId]) -> NodeId {
        self.node(op, branch_tails)
    }

    /// Current number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no nodes have been added yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finalizes the graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty — every model computes something.
    pub fn build(self) -> OperatorDag {
        assert!(!self.nodes.is_empty(), "a model DAG cannot be empty");
        OperatorDag {
            nodes: self.nodes,
            preds: self.preds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::OpKind;
    use proptest::prelude::*;

    fn op(gf: f64) -> Operator {
        Operator::new(OpKind::MatMul, gf)
    }

    #[test]
    fn chain_critical_path_is_sum() {
        let mut b = DagBuilder::new();
        b.chain(None, [op(1.0), op(2.0), op(3.0)]);
        let dag = b.build();
        assert_eq!(dag.len(), 3);
        assert_eq!(dag.critical_path(|o| o.gflops()), 6.0);
        assert_eq!(dag.parallel_slack(|o| o.gflops()), 0.0);
    }

    #[test]
    fn branches_take_max() {
        let mut b = DagBuilder::new();
        let root = b.node(op(1.0), &[]);
        let left = b.chain(Some(root), [op(5.0)]).unwrap();
        let right = b.chain(Some(root), [op(2.0), op(2.0)]).unwrap();
        b.join(op(1.0), &[left, right]);
        let dag = b.build();
        assert_eq!(dag.critical_path(|o| o.gflops()), 1.0 + 5.0 + 1.0);
        assert_eq!(dag.total(|o| o.gflops()), 11.0);
        assert_eq!(dag.parallel_slack(|o| o.gflops()), 4.0);
    }

    #[test]
    fn kind_statistics() {
        let mut b = DagBuilder::new();
        let a = b.node(Operator::new(OpKind::Conv2d, 2.0), &[]);
        let c = b.node(Operator::new(OpKind::Conv2d, 3.0), &[a]);
        b.node(Operator::new(OpKind::Relu, 0.1), &[c]);
        let dag = b.build();
        let counts = dag.kind_counts();
        assert_eq!(counts[&OpKind::Conv2d], 2);
        assert_eq!(counts[&OpKind::Relu], 1);
        let totals = dag.kind_totals(|o| o.gflops());
        assert_eq!(totals[&OpKind::Conv2d], 5.0);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn forward_edges_only() {
        let mut b = DagBuilder::new();
        // NodeId can only be obtained from the builder, so fake a stale
        // one via a second builder.
        let mut other = DagBuilder::new();
        let x = other.node(op(1.0), &[]);
        let _y = other.node(op(1.0), &[x]);
        // `b` has no nodes: using `x` from `other` must panic.
        b.node(op(1.0), &[x]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_predecessor_rejected() {
        let mut b = DagBuilder::new();
        let a = b.node(op(1.0), &[]);
        b.node(op(1.0), &[a, a]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dag_rejected() {
        DagBuilder::new().build();
    }

    #[test]
    fn empty_chain_returns_after() {
        let mut b = DagBuilder::new();
        let a = b.node(op(1.0), &[]);
        assert_eq!(b.chain(Some(a), std::iter::empty()), Some(a));
    }

    proptest! {
        /// Critical path is bounded by total work and by the max single node.
        #[test]
        fn prop_critical_path_bounds(gfs in prop::collection::vec(0.0f64..10.0, 1..50)) {
            let mut b = DagBuilder::new();
            // Random-ish fan structure: node i depends on node i/2.
            let mut ids: Vec<NodeId> = Vec::new();
            for (i, gf) in gfs.iter().enumerate() {
                let preds: Vec<NodeId> = if i == 0 { vec![] } else { vec![ids[i / 2]] };
                ids.push(b.node(op(*gf), &preds));
            }
            let dag = b.build();
            let cp = dag.critical_path(|o| o.gflops());
            let total = dag.total(|o| o.gflops());
            let max_node = gfs.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(cp <= total + 1e-9);
            prop_assert!(cp >= max_node - 1e-9);
            prop_assert!(dag.parallel_slack(|o| o.gflops()) >= 0.0);
        }

        /// For a pure chain, critical path == total exactly.
        #[test]
        fn prop_chain_equality(gfs in prop::collection::vec(0.0f64..10.0, 1..50)) {
            let mut b = DagBuilder::new();
            b.chain(None, gfs.iter().map(|&g| op(g)));
            let dag = b.build();
            let cp = dag.critical_path(|o| o.gflops());
            let total = dag.total(|o| o.gflops());
            prop_assert!((cp - total).abs() < 1e-9);
        }
    }
}
