//! The analytic hardware model: the stand-in for the paper's testbed
//! (2× Xeon Silver-4215, 16× RTX 2080Ti, TensorFlow Serving).
//!
//! Execution time comes from a roofline-style model:
//!
//! * **CPU**: a core sustains [`HardwareCalibration::cpu_core_gflops`]
//!   GFLOPS at peak; multi-core scaling is slightly sublinear
//!   (`c^scaling_exponent`); each operator kind sustains a fraction of
//!   peak given by its arithmetic-intensity class.
//! * **GPU**: SMs are partitioned by percentage (CUDA MPS style). A 1 %
//!   SM slice sustains `gpu_pct_gflops` GFLOPS at peak, but only once
//!   the batch saturates the slice: `util(b) = b / (b + k)` with a
//!   per-operator-kind half-saturation constant `k`. Each launched
//!   kernel also pays a fixed launch overhead, and batches pay PCIe
//!   transfer plus CPU-side preprocessing.
//!
//! Whole-model *ground truth* latency is the critical path over the DAG
//! plus effects the paper's Combined Operator Profiling cannot see from
//! per-operator profiles: imperfect overlap of parallel branches and a
//! framework overhead per batch. Those terms are exactly why COP shows a
//! 5–10 % prediction error (Fig. 8) and why INFless inflates predictions
//! by 10 % (§3.3).

use infless_sim::SimDuration;
use rand::Rng;
use rand_like_lognormal::lognormal_factor;
use serde::{Deserialize, Serialize};

use crate::operator::Operator;
use crate::zoo::ModelSpec;

/// The discrete batchsizes INFless considers (`b ∈ {2^0 … 2^max}`,
/// capped at 32 as in the paper's §5.1 workloads).
pub const BATCH_SIZES: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// Hybrid resource allocation of one function instance: CPU cores plus a
/// GPU streaming-multiprocessor share in percent (0 = CPU-only).
///
/// # Example
///
/// ```
/// use infless_models::ResourceConfig;
///
/// let cfg = ResourceConfig::new(2, 20);
/// assert_eq!(cfg.cpu_cores(), 2);
/// assert_eq!(cfg.gpu_pct(), 20);
/// assert!(ResourceConfig::cpu(4).is_cpu_only());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct ResourceConfig {
    cpu_cores: u32,
    gpu_pct: u32,
}

impl ResourceConfig {
    /// Creates a hybrid allocation.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_cores` is zero (every instance needs a core to
    /// serve requests) or `gpu_pct` exceeds 100.
    pub fn new(cpu_cores: u32, gpu_pct: u32) -> Self {
        assert!(cpu_cores >= 1, "an instance needs at least one CPU core");
        assert!(gpu_pct <= 100, "a GPU share cannot exceed one device");
        ResourceConfig { cpu_cores, gpu_pct }
    }

    /// A CPU-only allocation.
    pub fn cpu(cpu_cores: u32) -> Self {
        ResourceConfig::new(cpu_cores, 0)
    }

    /// Number of CPU cores bound to the instance (cgroup cpuset).
    pub fn cpu_cores(self) -> u32 {
        self.cpu_cores
    }

    /// GPU SM share in percent of one device (CUDA MPS partition).
    pub fn gpu_pct(self) -> u32 {
        self.gpu_pct
    }

    /// `true` if no GPU share is attached.
    pub fn is_cpu_only(self) -> bool {
        self.gpu_pct == 0
    }
}

impl std::fmt::Display for ResourceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}c+{}g", self.cpu_cores, self.gpu_pct)
    }
}

/// Calibration constants of the analytic hardware model.
///
/// Defaults are tuned so the zoo reproduces the paper's observations:
/// BERT/ResNet-50/VGG exceed 200 ms on CPU-only allocations (Obs. #1)
/// while small models respond within 50 ms, and GPU slices deliver
/// order-of-magnitude speedups that improve with batchsize.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareCalibration {
    /// Peak sustained GFLOPS of one CPU core.
    pub cpu_core_gflops: f64,
    /// Multi-core scaling exponent (`effective cores = c^exp`).
    pub cpu_scaling_exponent: f64,
    /// Peak GFLOPS of a 1 % SM slice of one GPU (2080Ti-class:
    /// 13.45 TFLOPS / 100).
    pub gpu_pct_gflops: f64,
    /// Kernel launch overhead per operator on CPU, seconds.
    pub cpu_launch_s: f64,
    /// Kernel launch overhead per operator on GPU, seconds.
    pub gpu_launch_s: f64,
    /// PCIe effective bandwidth, KB per second.
    pub pcie_kb_per_s: f64,
    /// CPU-side preprocessing per sample, seconds (divided by cores).
    pub preproc_per_sample_s: f64,
    /// Fixed framework overhead per batch invocation, seconds.
    pub framework_base_s: f64,
    /// Per-sample framework overhead (batch assembly), seconds.
    pub framework_per_sample_s: f64,
    /// Fraction of off-critical-path work that leaks into the makespan
    /// (imperfect branch overlap). COP cannot observe this term.
    pub branch_contention: f64,
    /// Log-normal sigma of per-invocation execution noise.
    pub noise_sigma: f64,
    /// Interference between MPS-partitioned instances sharing a
    /// physical GPU: fractional slowdown per 100 percentage points of
    /// co-resident *active* SM share. CUDA MPS partitions compute but
    /// memory bandwidth and L2 stay shared, so perfect isolation is
    /// optimistic (GSLICE measures comparable effects).
    pub mps_interference: f64,
    /// Container + runtime boot time on a cold start, seconds.
    pub coldstart_base_s: f64,
    /// Model-load bandwidth from local SSD, MB per second.
    pub model_load_mb_per_s: f64,
    /// Fixed overhead of swapping a host-cached model onto a GPU,
    /// seconds: CUDA context attach + pinned-buffer setup. Distinctly
    /// above the 200 ms pre-warmed attach (the weights still move), far
    /// below a container boot.
    pub swap_base_s: f64,
    /// Fraction of the host→device weight transfer hidden behind
    /// pipelined layer-by-layer upload (Torpor/FaaSwap overlap the copy
    /// of later layers with the execution of earlier ones).
    pub swap_overlap: f64,
    /// GPU device-memory bandwidth, MB per second (2080Ti-class:
    /// 616 GB/s). A decode step streams the weights plus the resident
    /// KV-cache once, so it is bound by this number, not by FLOPS.
    #[serde(default = "default_gpu_mem_bw_mb_per_s")]
    pub gpu_mem_bw_mb_per_s: f64,
    /// Autoregressive compute cost: GFLOPs per token per MB of model
    /// weights (≈ 2 FLOPs per parameter, fp16 weights).
    #[serde(default = "default_token_gflops_per_mb")]
    pub token_gflops_per_mb: f64,
    /// Fixed per-decode-step overhead, seconds: kernel launches,
    /// sampling, KV bookkeeping.
    #[serde(default = "default_decode_overhead_s")]
    pub decode_overhead_s: f64,
}

fn default_gpu_mem_bw_mb_per_s() -> f64 {
    616_000.0
}

fn default_token_gflops_per_mb() -> f64 {
    5e-4
}

fn default_decode_overhead_s() -> f64 {
    1.5e-3
}

impl Default for HardwareCalibration {
    fn default() -> Self {
        HardwareCalibration {
            cpu_core_gflops: 69.4,
            cpu_scaling_exponent: 0.95,
            gpu_pct_gflops: 134.5,
            cpu_launch_s: 80e-6,
            gpu_launch_s: 30e-6,
            pcie_kb_per_s: 12e6,
            preproc_per_sample_s: 0.05e-3,
            framework_base_s: 0.8e-3,
            framework_per_sample_s: 0.04e-3,
            branch_contention: 0.15,
            noise_sigma: 0.03,
            mps_interference: 0.12,
            coldstart_base_s: 1.2,
            model_load_mb_per_s: 250.0,
            swap_base_s: 0.25,
            swap_overlap: 0.5,
            gpu_mem_bw_mb_per_s: default_gpu_mem_bw_mb_per_s(),
            token_gflops_per_mb: default_token_gflops_per_mb(),
            decode_overhead_s: default_decode_overhead_s(),
        }
    }
}

/// The analytic hardware model. See the [module docs](self) for the
/// formulas; all methods are pure functions of their arguments, so
/// latency lookups are deterministic and cacheable.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HardwareModel {
    calibration: HardwareCalibration,
}

impl HardwareModel {
    /// Creates a model with custom calibration.
    pub fn new(calibration: HardwareCalibration) -> Self {
        HardwareModel { calibration }
    }

    /// The calibration in use.
    pub fn calibration(&self) -> &HardwareCalibration {
        &self.calibration
    }

    /// Conversion factor β between CPU cores and GPU percentage points,
    /// derived from their FLOPS ratio as in §3.4: one core is worth
    /// `β` GPU-percent units in the objective `β·C + G`.
    pub fn beta(&self) -> f64 {
        self.calibration.cpu_core_gflops / self.calibration.gpu_pct_gflops
    }

    /// Execution time of one operator at batch `b` under `cfg`,
    /// in seconds. Runs on the GPU slice if one is attached, else on CPU.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn op_latency_s(&self, op: &Operator, batch: u32, cfg: ResourceConfig) -> f64 {
        assert!(batch >= 1, "batch must be at least 1");
        let cal = &self.calibration;
        let work = op.gflops() * f64::from(batch);
        if cfg.is_cpu_only() {
            let rate = cal.cpu_core_gflops
                * f64::from(cfg.cpu_cores()).powf(cal.cpu_scaling_exponent)
                * op.kind().cpu_efficiency();
            cal.cpu_launch_s + work / rate
        } else {
            let k = op.kind().gpu_saturation_batch();
            let util = f64::from(batch) / (f64::from(batch) + k);
            let rate =
                cal.gpu_pct_gflops * f64::from(cfg.gpu_pct()) * op.kind().gpu_efficiency() * util;
            cal.gpu_launch_s + work / rate
        }
    }

    /// Ground-truth latency of a whole model batch: DAG critical path
    /// plus branch contention, framework overhead, preprocessing and
    /// (for GPU configs) PCIe transfer. Deterministic; see
    /// [`Self::model_latency_noisy`] for the per-invocation jitter.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn model_latency(&self, spec: &ModelSpec, batch: u32, cfg: ResourceConfig) -> SimDuration {
        SimDuration::from_secs_f64(self.model_latency_s(spec, batch, cfg))
    }

    /// [`Self::model_latency`] in raw seconds.
    pub fn model_latency_s(&self, spec: &ModelSpec, batch: u32, cfg: ResourceConfig) -> f64 {
        assert!(batch >= 1, "batch must be at least 1");
        let cal = &self.calibration;
        let lat = |op: &Operator| self.op_latency_s(op, batch, cfg);
        let dag = spec.dag();
        let critical = dag.critical_path(lat);
        let contention = cal.branch_contention * dag.parallel_slack(lat);
        let framework = cal.framework_base_s + cal.framework_per_sample_s * f64::from(batch);
        let mut total = critical + contention + framework;
        if !cfg.is_cpu_only() {
            total += f64::from(batch) * spec.input_kb() / cal.pcie_kb_per_s;
            total += f64::from(batch) * cal.preproc_per_sample_s / f64::from(cfg.cpu_cores());
        }
        total
    }

    /// Ground-truth latency with per-invocation log-normal jitter, the
    /// irreducible measurement noise a real testbed exhibits.
    pub fn model_latency_noisy<R: Rng + ?Sized>(
        &self,
        spec: &ModelSpec,
        batch: u32,
        cfg: ResourceConfig,
        rng: &mut R,
    ) -> SimDuration {
        let base = self.model_latency_s(spec, batch, cfg);
        let factor = lognormal_factor(rng, self.calibration.noise_sigma);
        SimDuration::from_secs_f64(base * factor)
    }

    /// One log-normal noise factor draw (median 1, the calibration's
    /// sigma) — the same jitter [`Self::model_latency_noisy`] applies.
    /// Autoregressive episodes draw one factor at prefill and apply it
    /// to every phase, so noise cannot re-order decode steps.
    pub fn noise_factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        lognormal_factor(rng, self.calibration.noise_sigma)
    }

    /// Ground-truth latency on a *fractional* CPU allocation — the AWS
    /// Lambda model, where CPU power is proportional to the configured
    /// memory (≈1 vCPU per 1769 MB). Used by the Fig. 2 motivation
    /// experiments; the cluster platforms bind whole cores instead.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or `vcpus` is not strictly positive.
    pub fn model_latency_cpu_fractional(&self, spec: &ModelSpec, batch: u32, vcpus: f64) -> f64 {
        assert!(batch >= 1, "batch must be at least 1");
        assert!(vcpus > 0.0 && vcpus.is_finite(), "vCPUs must be positive");
        let cal = &self.calibration;
        let lat = |op: &Operator| {
            let work = op.gflops() * f64::from(batch);
            let rate = cal.cpu_core_gflops
                * vcpus.powf(cal.cpu_scaling_exponent)
                * op.kind().cpu_efficiency();
            cal.cpu_launch_s + work / rate
        };
        let dag = spec.dag();
        dag.critical_path(lat)
            + cal.branch_contention * dag.parallel_slack(lat)
            + cal.framework_base_s
            + cal.framework_per_sample_s * f64::from(batch)
    }

    /// Cold-start duration for a model: container boot plus loading the
    /// model artifact from local disk (§3.5 — for inference functions the
    /// cold start often exceeds the query execution time).
    pub fn cold_start(&self, spec: &ModelSpec) -> SimDuration {
        let cal = &self.calibration;
        let secs = cal.coldstart_base_s + spec.size_mb() / cal.model_load_mb_per_s;
        SimDuration::from_secs_f64(secs)
    }

    /// Swap-in duration for a model whose weights are already resident
    /// in host memory: pinned-buffer setup plus the non-overlapped part
    /// of the PCIe host→device transfer. Always cheaper than
    /// [`Self::cold_start`] (no container boot, no disk load), always
    /// dearer than a pre-warmed attach (the weights still cross PCIe).
    pub fn swap_in(&self, spec: &ModelSpec) -> SimDuration {
        let cal = &self.calibration;
        let transfer_s = spec.size_mb() * 1024.0 / cal.pcie_kb_per_s;
        let secs = cal.swap_base_s + transfer_s * (1.0 - cal.swap_overlap);
        SimDuration::from_secs_f64(secs)
    }

    /// Steady-state memory footprint of a loaded instance in MB
    /// (model artifact plus serving runtime), used for idle-waste
    /// accounting in the cold-start experiments.
    pub fn instance_memory_mb(&self, spec: &ModelSpec) -> f64 {
        spec.size_mb() + 150.0
    }

    /// Prefill latency of an autoregressive batch: one compute-bound
    /// pass over `prompt_tokens` total tokens (summed across the
    /// admitted sequences). Sets the time-to-first-token.
    ///
    /// # Panics
    ///
    /// Panics if `prompt_tokens` is zero.
    pub fn prefill_latency(
        &self,
        spec: &ModelSpec,
        prompt_tokens: u64,
        cfg: ResourceConfig,
    ) -> SimDuration {
        assert!(prompt_tokens >= 1, "prefill needs at least one token");
        let cal = &self.calibration;
        let work = cal.token_gflops_per_mb * spec.size_mb() * prompt_tokens as f64;
        let rate = if cfg.is_cpu_only() {
            cal.cpu_core_gflops * f64::from(cfg.cpu_cores()).powf(cal.cpu_scaling_exponent)
        } else {
            cal.gpu_pct_gflops * f64::from(cfg.gpu_pct())
        };
        SimDuration::from_secs_f64(cal.framework_base_s + work / rate)
    }

    /// Latency of one decode step: every active sequence produces one
    /// token. On a GPU slice the step is memory-bound — the weights
    /// plus the resident KV-cache stream through device memory once per
    /// step, throttled by the slice's bandwidth share — so it is nearly
    /// flat in `seqs` (that flatness is what makes batching decode
    /// nearly free and continuous batching worthwhile). On CPU it is
    /// compute-bound on `seqs` tokens of work.
    ///
    /// # Panics
    ///
    /// Panics if `seqs` is zero.
    pub fn decode_step_latency(
        &self,
        spec: &ModelSpec,
        seqs: u32,
        kv_mb: f64,
        cfg: ResourceConfig,
    ) -> SimDuration {
        assert!(seqs >= 1, "a decode step needs at least one sequence");
        let cal = &self.calibration;
        let secs = if cfg.is_cpu_only() {
            let work = cal.token_gflops_per_mb * spec.size_mb() * f64::from(seqs);
            let rate =
                cal.cpu_core_gflops * f64::from(cfg.cpu_cores()).powf(cal.cpu_scaling_exponent);
            cal.decode_overhead_s + work / rate
        } else {
            let bw = cal.gpu_mem_bw_mb_per_s * f64::from(cfg.gpu_pct()) / 100.0;
            cal.decode_overhead_s + (spec.size_mb() + kv_mb.max(0.0)) / bw
        };
        SimDuration::from_secs_f64(secs)
    }
}

/// Small helper module so the log-normal draw stays dependency-light
/// (avoids pulling a full distribution crate into this crate's API).
mod rand_like_lognormal {
    use rand::Rng;

    /// A log-normal multiplicative factor with median 1 and the given
    /// sigma, via Box-Muller on two uniform draws.
    pub fn lognormal_factor<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ModelId;
    use infless_sim::rng::stream;
    use proptest::prelude::*;

    fn hw() -> HardwareModel {
        HardwareModel::default()
    }

    #[test]
    fn resource_config_accessors() {
        let cfg = ResourceConfig::new(4, 30);
        assert_eq!(cfg.cpu_cores(), 4);
        assert_eq!(cfg.gpu_pct(), 30);
        assert!(!cfg.is_cpu_only());
        assert_eq!(cfg.to_string(), "4c+30g");
    }

    #[test]
    #[should_panic(expected = "at least one CPU core")]
    fn zero_cores_rejected() {
        ResourceConfig::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "one device")]
    fn oversized_gpu_share_rejected() {
        ResourceConfig::new(1, 101);
    }

    #[test]
    fn more_cores_is_faster() {
        let hw = hw();
        let spec = ModelId::ResNet50.spec();
        let t1 = hw.model_latency(&spec, 1, ResourceConfig::cpu(1));
        let t4 = hw.model_latency(&spec, 1, ResourceConfig::cpu(4));
        let t16 = hw.model_latency(&spec, 1, ResourceConfig::cpu(16));
        assert!(t1 > t4 && t4 > t16);
    }

    #[test]
    fn more_gpu_is_faster() {
        let hw = hw();
        let spec = ModelId::BertV1.spec();
        let g10 = hw.model_latency(&spec, 4, ResourceConfig::new(1, 10));
        let g50 = hw.model_latency(&spec, 4, ResourceConfig::new(1, 50));
        assert!(g50 < g10);
    }

    #[test]
    fn gpu_beats_cpu_for_large_models() {
        let hw = hw();
        for id in [ModelId::BertV1, ModelId::ResNet50, ModelId::VggNet] {
            let spec = id.spec();
            let cpu = hw.model_latency(&spec, 1, ResourceConfig::cpu(16));
            let gpu = hw.model_latency(&spec, 1, ResourceConfig::new(1, 50));
            assert!(gpu < cpu, "{id:?}: gpu {gpu} !< cpu {cpu}");
        }
    }

    #[test]
    fn big_models_miss_200ms_on_cpu() {
        // Paper Observation #1: Bert-v1 / ResNet-50 / VGG exceed 200 ms
        // even at the largest Lambda allocation (~1.7 vCPU).
        let hw = hw();
        for id in [ModelId::BertV1, ModelId::ResNet50, ModelId::VggNet] {
            let t = hw.model_latency(&id.spec(), 1, ResourceConfig::cpu(2));
            assert!(
                t.as_millis_f64() > 150.0,
                "{id:?} unexpectedly fast on 2 cores: {t}"
            );
        }
    }

    #[test]
    fn small_models_meet_50ms_on_cpu() {
        let hw = hw();
        for id in [ModelId::Mnist, ModelId::MobileNet, ModelId::Dssm2365] {
            let t = hw.model_latency(&id.spec(), 1, ResourceConfig::cpu(2));
            assert!(t.as_millis_f64() < 50.0, "{id:?} too slow: {t}");
        }
    }

    #[test]
    fn batching_improves_gpu_throughput() {
        let hw = hw();
        let spec = ModelId::ResNet50.spec();
        let cfg = ResourceConfig::new(1, 20);
        let mut last_thpt = 0.0;
        for b in BATCH_SIZES {
            let t = hw.model_latency(&spec, b, cfg).as_secs_f64();
            let thpt = f64::from(b) / t;
            assert!(
                thpt > last_thpt,
                "throughput should rise with batch, b={b}: {thpt} !> {last_thpt}"
            );
            last_thpt = thpt;
        }
    }

    #[test]
    fn latency_grows_with_batch() {
        let hw = hw();
        let spec = ModelId::TextCnn69.spec();
        for cfg in [ResourceConfig::cpu(2), ResourceConfig::new(1, 10)] {
            let mut last = SimDuration::ZERO;
            for b in BATCH_SIZES {
                let t = hw.model_latency(&spec, b, cfg);
                assert!(t > last);
                last = t;
            }
        }
    }

    #[test]
    fn beta_reflects_flops_ratio() {
        let hw = hw();
        let beta = hw.beta();
        assert!(
            beta > 0.0 && beta < 1.0,
            "a core is worth less than 1% of a 2080Ti: {beta}"
        );
    }

    #[test]
    fn cold_start_scales_with_model_size() {
        let hw = hw();
        let small = hw.cold_start(&ModelId::Mnist.spec());
        let large = hw.cold_start(&ModelId::BertV1.spec());
        assert!(large > small);
        assert!(
            small.as_secs_f64() >= 1.0,
            "cold start includes container boot"
        );
        assert!(
            large.as_secs_f64() < 10.0,
            "cold start stays in the seconds range"
        );
    }

    #[test]
    fn prefill_is_compute_bound_and_decode_is_memory_bound() {
        let hw = hw();
        let spec = ModelId::BertV1.spec();
        let cfg = ResourceConfig::new(2, 40);
        // Prefill grows linearly with prompt tokens.
        let p256 = hw.prefill_latency(&spec, 256, cfg);
        let p512 = hw.prefill_latency(&spec, 512, cfg);
        assert!(p512 > p256);
        // ... sublinearly (the fixed framework term amortizes).
        assert!(p512.as_secs_f64() < 2.0 * p256.as_secs_f64());
        // Decode is nearly flat in the sequence count (memory-bound):
        // quadrupling the batch costs well under 2x per step.
        let d1 = hw.decode_step_latency(&spec, 1, 100.0, cfg);
        let d4 = hw.decode_step_latency(&spec, 4, 100.0, cfg);
        assert!(d4.as_secs_f64() < 2.0 * d1.as_secs_f64());
        // More resident KV means more bytes streamed per step.
        let heavy = hw.decode_step_latency(&spec, 4, 2000.0, cfg);
        assert!(heavy > d4);
        // A bigger GPU slice speeds both phases up.
        let fat = ResourceConfig::new(2, 80);
        assert!(hw.prefill_latency(&spec, 512, fat) < p512);
        assert!(hw.decode_step_latency(&spec, 4, 100.0, fat) < d4);
        // CPU-only decode is compute-bound: it scales with seqs.
        let cpu = ResourceConfig::cpu(4);
        let c1 = hw.decode_step_latency(&spec, 1, 0.0, cpu);
        let c8 = hw.decode_step_latency(&spec, 8, 0.0, cpu);
        assert!(c8 > c1);
    }

    #[test]
    fn noise_is_reproducible_and_small() {
        let hw = hw();
        let spec = ModelId::Ssd.spec();
        let cfg = ResourceConfig::new(2, 10);
        let a = hw.model_latency_noisy(&spec, 4, cfg, &mut stream(9, "x"));
        let b = hw.model_latency_noisy(&spec, 4, cfg, &mut stream(9, "x"));
        assert_eq!(a, b);
        let base = hw.model_latency(&spec, 4, cfg).as_secs_f64();
        assert!((a.as_secs_f64() / base - 1.0).abs() < 0.25);
    }

    proptest! {
        /// Latency is positive and monotone in batch for any model/config.
        #[test]
        fn prop_latency_monotone_in_batch(
            model_idx in 0usize..12,
            cores in 1u32..16,
            gpu in prop::sample::select(vec![0u32, 5, 10, 20, 50]),
        ) {
            let hw = HardwareModel::default();
            let spec = ModelId::all()[model_idx].spec();
            let cfg = ResourceConfig::new(cores, gpu);
            let mut last = 0.0;
            for b in BATCH_SIZES {
                let t = hw.model_latency_s(&spec, b, cfg);
                prop_assert!(t > 0.0);
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// More resources never slow a model down.
        #[test]
        fn prop_latency_monotone_in_resources(
            model_idx in 0usize..12,
            b in prop::sample::select(BATCH_SIZES.to_vec()),
            cores in 1u32..8,
            gpu in 1u32..50,
        ) {
            let hw = HardwareModel::default();
            let spec = ModelId::all()[model_idx].spec();
            let lo_cpu = hw.model_latency_s(&spec, b, ResourceConfig::cpu(cores));
            let hi_cpu = hw.model_latency_s(&spec, b, ResourceConfig::cpu(cores * 2));
            prop_assert!(hi_cpu <= lo_cpu);
            let lo_gpu = hw.model_latency_s(&spec, b, ResourceConfig::new(cores, gpu));
            let hi_gpu = hw.model_latency_s(&spec, b, ResourceConfig::new(cores, gpu * 2));
            prop_assert!(hi_gpu <= lo_gpu);
        }
    }
}
