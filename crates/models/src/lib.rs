//! Operator DAGs, the Table-1 model zoo and the analytic hardware model
//! for the INFless reproduction.
//!
//! The original paper runs real TensorFlow models on an 8-node cluster
//! with 16 RTX 2080Ti GPUs. This crate replaces that testbed with an
//! *analytic* substrate that preserves the behaviours INFless's design
//! exploits:
//!
//! * inference models are DAGs of a small shared operator vocabulary,
//!   with execution time dominated by a few compute-heavy operators
//!   (paper Observation #6, Fig. 7);
//! * execution time falls with more CPU cores / GPU SMs and grows
//!   sub-linearly with batchsize, so larger batches buy throughput
//!   (Fig. 2, Fig. 3b);
//! * GPUs are far faster than CPUs for large models but need batch to
//!   saturate, and carry launch + PCIe-transfer overheads;
//! * cold starts cost seconds and scale with model size (§3.5).
//!
//! The layers:
//!
//! * [`operator`] — the operator vocabulary ([`OpKind`]) and per-node
//!   [`Operator`] descriptors (FLOPs, arithmetic-intensity class).
//! * [`dag`] — [`OperatorDag`]: a validated DAG with topological order,
//!   critical path and work aggregates.
//! * [`hardware`] — [`HardwareModel`]: maps `(operator, batch, resources)`
//!   to execution time, and whole-DAG ground-truth latency including the
//!   cross-operator effects (branch contention, framework overhead) that
//!   the paper's Combined Operator Profiling can only approximate.
//! * [`zoo`] — the eleven Table-1 models (plus DSSM-2389 used by the Q&A
//!   robot application) as concrete DAGs.
//! * [`profile`] — the operator profile database (❸ in Fig. 4): offline
//!   "measurements" of each distinct operator over a `(b, c, g)` grid.
//!
//! # Example
//!
//! ```
//! use infless_models::{HardwareModel, ModelId, ResourceConfig};
//!
//! let hw = HardwareModel::default();
//! let model = ModelId::ResNet50.spec();
//! let cpu_only = hw.model_latency(&model, 1, ResourceConfig::cpu(2));
//! let with_gpu = hw.model_latency(&model, 8, ResourceConfig::new(2, 20));
//! // A 20% GPU slice runs a ResNet-50 batch of 8 faster than two CPU
//! // cores run a single sample.
//! assert!(with_gpu < cpu_only);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
pub mod hardware;
pub mod operator;
pub mod profile;
pub mod zoo;

pub use dag::{DagBuilder, NodeId, OperatorDag};
pub use hardware::{HardwareCalibration, HardwareModel, ResourceConfig};
pub use operator::{OpClass, OpKind, Operator};
pub use profile::{CacheOutcome, CacheStats, OpSignature, ProfileDatabase, ProfileKey};
pub use zoo::{ModelId, ModelSpec};
