//! The operator vocabulary.
//!
//! The paper's Observation #6: across the 11 benchmark models there are
//! more than 1 000 operator *calls* but only 71 *distinct* operators, and
//! a handful (MatMul, FusedMatMul, Conv2D) dominate execution time.
//! We model each DAG node as an [`Operator`]: an [`OpKind`] plus the
//! amount of work it performs per input sample.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The kinds of DNN operators appearing in the model zoo.
///
/// The set is modelled on the TensorFlow op names the paper reports in
/// Fig. 7 (`MatMul`, `FusedMatMul`, `Conv2D`, `ConcatV2`, `Mul`, `Sum`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names mirror the TF op names directly
pub enum OpKind {
    MatMul,
    FusedMatMul,
    Conv2d,
    DepthwiseConv2d,
    LstmCell,
    Attention,
    Embedding,
    Relu,
    Gelu,
    Sigmoid,
    Tanh,
    Softmax,
    BatchNorm,
    LayerNorm,
    MaxPool,
    AvgPool,
    Add,
    Mul,
    Sum,
    ConcatV2,
    Reshape,
    Transpose,
    Gather,
}

/// Arithmetic-intensity class of an operator.
///
/// Determines what fraction of peak FLOPS the operator sustains: dense
/// linear algebra comes close to peak, element-wise and data-movement
/// operators are memory-bound and sustain only a small fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Dense compute (GEMM/conv): high fraction of peak FLOPS.
    Compute,
    /// Recurrent cells: compute-heavy but with serialization overheads.
    Recurrent,
    /// Element-wise / normalization: memory-bound.
    ElementWise,
    /// Pure data movement (reshape/transpose/concat/gather).
    DataMovement,
}

impl OpKind {
    /// The arithmetic-intensity class of this operator kind.
    pub fn class(self) -> OpClass {
        use OpKind::*;
        match self {
            MatMul | FusedMatMul | Conv2d | DepthwiseConv2d | Attention => OpClass::Compute,
            LstmCell => OpClass::Recurrent,
            Relu | Gelu | Sigmoid | Tanh | Softmax | BatchNorm | LayerNorm | MaxPool | AvgPool
            | Add | Mul | Sum | Embedding => OpClass::ElementWise,
            Reshape | Transpose | Gather | ConcatV2 => OpClass::DataMovement,
        }
    }

    /// Fraction of peak CPU FLOPS this kind sustains. Inference on CPUs
    /// sustains a far smaller share of peak than on GPUs with saturated
    /// batches — which is exactly why hybrid scheduling prefers GPU
    /// slices once batching is available.
    pub fn cpu_efficiency(self) -> f64 {
        match self.class() {
            OpClass::Compute => 0.18,
            OpClass::Recurrent => 0.115,
            OpClass::ElementWise => 0.052,
            OpClass::DataMovement => 0.026,
        }
    }

    /// Fraction of peak GPU FLOPS this kind sustains once the batch has
    /// saturated the device.
    pub fn gpu_efficiency(self) -> f64 {
        match self.class() {
            OpClass::Compute => 0.35,
            OpClass::Recurrent => 0.20,
            OpClass::ElementWise => 0.08,
            OpClass::DataMovement => 0.05,
        }
    }

    /// Batch half-saturation constant `k`: the GPU reaches half its
    /// sustained rate at batch `k` (`util(b) = b / (b + k)`). Dense ops
    /// need more batch to fill the SMs than element-wise ones.
    pub fn gpu_saturation_batch(self) -> f64 {
        match self.class() {
            OpClass::Compute => 8.0,
            OpClass::Recurrent => 10.0,
            OpClass::ElementWise => 3.0,
            OpClass::DataMovement => 2.0,
        }
    }

    /// Iterator over every operator kind (used when seeding profile
    /// databases and in exhaustiveness tests).
    pub fn all() -> impl Iterator<Item = OpKind> {
        use OpKind::*;
        [
            MatMul,
            FusedMatMul,
            Conv2d,
            DepthwiseConv2d,
            LstmCell,
            Attention,
            Embedding,
            Relu,
            Gelu,
            Sigmoid,
            Tanh,
            Softmax,
            BatchNorm,
            LayerNorm,
            MaxPool,
            AvgPool,
            Add,
            Mul,
            Sum,
            ConcatV2,
            Reshape,
            Transpose,
            Gather,
        ]
        .into_iter()
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// One operator call site in a model DAG: a kind plus the work it does.
///
/// `gflops` is the work per *single input sample*; batched execution
/// multiplies it by the batchsize. This mirrors the paper's operator
/// 5-tuple `⟨p, b, c, g, t⟩` — the input-size `p` dependence is folded
/// into `gflops` because our zoo fixes each model's input shape.
///
/// # Example
///
/// ```
/// use infless_models::{OpKind, Operator};
///
/// let conv = Operator::new(OpKind::Conv2d, 0.25);
/// assert_eq!(conv.kind(), OpKind::Conv2d);
/// assert_eq!(conv.gflops(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    kind: OpKind,
    gflops: f64,
}

impl Operator {
    /// Creates an operator of `kind` doing `gflops` GFLOPs per sample.
    ///
    /// # Panics
    ///
    /// Panics if `gflops` is negative or non-finite.
    pub fn new(kind: OpKind, gflops: f64) -> Self {
        assert!(
            gflops.is_finite() && gflops >= 0.0,
            "operator work must be a non-negative finite GFLOP count"
        );
        Operator { kind, gflops }
    }

    /// The operator kind.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Work per input sample, in GFLOPs.
    pub fn gflops(&self) -> f64 {
        self.gflops
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({:.4} GF)", self.kind, self.gflops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_partition_kinds() {
        // Every kind maps to exactly one class and the efficiencies are
        // sane probabilities.
        for kind in OpKind::all() {
            assert!(kind.cpu_efficiency() > 0.0 && kind.cpu_efficiency() <= 1.0);
            assert!(kind.gpu_efficiency() > 0.0 && kind.gpu_efficiency() <= 1.0);
            assert!(kind.gpu_saturation_batch() > 0.0);
        }
    }

    #[test]
    fn compute_ops_beat_elementwise_efficiency() {
        assert!(OpKind::MatMul.cpu_efficiency() > OpKind::Relu.cpu_efficiency());
        assert!(OpKind::Conv2d.gpu_efficiency() > OpKind::ConcatV2.gpu_efficiency());
    }

    #[test]
    fn all_kinds_are_distinct() {
        let kinds: Vec<_> = OpKind::all().collect();
        let mut dedup = kinds.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(kinds.len(), dedup.len());
        assert_eq!(kinds.len(), 23);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_work_rejected() {
        let _ = Operator::new(OpKind::Add, -1.0);
    }

    #[test]
    fn display_is_informative() {
        let op = Operator::new(OpKind::MatMul, 1.5);
        assert_eq!(op.to_string(), "MatMul(1.5000 GF)");
    }
}
