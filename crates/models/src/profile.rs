//! The operator profile database (❸ in the paper's Fig. 4).
//!
//! INFless profiles *operators*, not whole models: since inference
//! functions share a small operator vocabulary, profiling the ~71
//! distinct operators once is far cheaper than profiling hundreds of
//! models offline (§3.3). A profile entry is the paper's 5-tuple
//! `⟨p, b, c, g, t⟩`; here the input-size `p` dependence is folded into
//! the operator signature (our zoo fixes each model's input shape).
//!
//! Distinct operators are identified by an [`OpSignature`]: the operator
//! kind plus a logarithmically-quantized work bucket. Quantization is
//! deliberate — it is what makes the database *shared* across models
//! (two MatMuls of nearly equal size hit the same entry) and it
//! introduces the small, realistic profiling error that the Combined
//! Operator Profiling evaluation (Fig. 8) measures.

use std::collections::HashMap;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::hardware::{HardwareModel, ResourceConfig, BATCH_SIZES};
use crate::operator::{OpKind, Operator};
use crate::zoo::ModelSpec;

/// Work-bucket resolution: buckets per doubling of GFLOPs. Eight buckets
/// per octave bounds the quantization error at ±4.4 %.
const BUCKETS_PER_OCTAVE: f64 = 8.0;

/// Identity of a distinct operator in the profile database.
///
/// # Example
///
/// ```
/// use infless_models::{OpKind, Operator, OpSignature};
///
/// let a = OpSignature::of(&Operator::new(OpKind::MatMul, 0.100));
/// let b = OpSignature::of(&Operator::new(OpKind::MatMul, 0.0995));
/// let c = OpSignature::of(&Operator::new(OpKind::MatMul, 0.200));
/// assert_eq!(a, b); // near-equal work shares a bucket
/// assert_ne!(a, c); // doubling the work does not
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpSignature {
    kind: OpKind,
    bucket: i32,
}

impl OpSignature {
    /// The signature of an operator call site.
    pub fn of(op: &Operator) -> Self {
        let gf = op.gflops().max(1e-9);
        OpSignature {
            kind: op.kind(),
            bucket: (gf.log2() * BUCKETS_PER_OCTAVE).round() as i32,
        }
    }

    /// The operator kind.
    pub fn kind(self) -> OpKind {
        self.kind
    }

    /// The bucket's representative operator: same kind, work equal to
    /// the bucket's center. Profile measurements run this representative.
    pub fn representative(self) -> Operator {
        Operator::new(self.kind, self.representative_gflops())
    }

    /// The bucket-center work in GFLOPs.
    pub fn representative_gflops(self) -> f64 {
        (f64::from(self.bucket) / BUCKETS_PER_OCTAVE).exp2()
    }
}

/// A single profile lookup key: which operator, at which batchsize,
/// under which resource configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProfileKey {
    /// The distinct operator.
    pub signature: OpSignature,
    /// The profiled batchsize.
    pub batch: u32,
    /// The profiled resource configuration.
    pub config: ResourceConfig,
}

/// The discrete configuration grid profiled offline and searched by the
/// scheduler (`AvailableConfig` in Algorithm 1 iterates it).
///
/// # Example
///
/// ```
/// use infless_models::profile::ConfigGrid;
///
/// let grid = ConfigGrid::standard();
/// assert!(grid.configs().len() > 10);
/// assert!(grid.batches().contains(&32));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigGrid {
    configs: Vec<ResourceConfig>,
    batches: Vec<u32>,
}

impl ConfigGrid {
    /// The grid used throughout the evaluation: 1–4 CPU cores crossed
    /// with GPU shares from none to half a device, and power-of-two
    /// batchsizes up to 32.
    pub fn standard() -> Self {
        let mut configs = Vec::new();
        for &cpu in &[1u32, 2, 4] {
            configs.push(ResourceConfig::cpu(cpu));
            for &gpu in &[5u32, 10, 15, 20, 25, 30, 40, 50] {
                configs.push(ResourceConfig::new(cpu, gpu));
            }
        }
        ConfigGrid {
            configs,
            batches: BATCH_SIZES.to_vec(),
        }
    }

    /// A custom grid.
    ///
    /// # Panics
    ///
    /// Panics if either list is empty.
    pub fn new(configs: Vec<ResourceConfig>, batches: Vec<u32>) -> Self {
        assert!(!configs.is_empty(), "grid needs at least one config");
        assert!(!batches.is_empty(), "grid needs at least one batchsize");
        ConfigGrid { configs, batches }
    }

    /// The resource configurations in the grid.
    pub fn configs(&self) -> &[ResourceConfig] {
        &self.configs
    }

    /// The batchsizes in the grid.
    pub fn batches(&self) -> &[u32] {
        &self.batches
    }

    /// Iterates all `(batch, config)` pairs.
    pub fn points(&self) -> impl Iterator<Item = (u32, ResourceConfig)> + '_ {
        self.batches
            .iter()
            .flat_map(move |&b| self.configs.iter().map(move |&c| (b, c)))
    }
}

/// The operator profile database: offline "measurements" of every
/// distinct operator across the configuration grid.
///
/// Measurements are taken by running the bucket representative on the
/// [`HardwareModel`] and perturbing the result with a small profiling
/// noise — the same imperfection a real profiler exhibits run-to-run.
///
/// # Example
///
/// ```
/// use infless_models::{HardwareModel, ModelId, ProfileDatabase};
/// use infless_models::profile::ConfigGrid;
///
/// let hw = HardwareModel::default();
/// let specs = [ModelId::ResNet50.spec()];
/// let db = ProfileDatabase::profile(&hw, &specs, &ConfigGrid::standard(), 42);
/// assert!(db.len() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileDatabase {
    entries: HashMap<ProfileKey, f64>,
    grid: ConfigGrid,
}

impl ProfileDatabase {
    /// Profiling noise sigma (relative): run-to-run variance of offline
    /// operator measurements.
    const PROFILING_NOISE: f64 = 0.02;

    /// Profiles every distinct operator appearing in `specs` across the
    /// whole `grid`. `seed` makes the measurement noise reproducible.
    pub fn profile(
        hardware: &HardwareModel,
        specs: &[ModelSpec],
        grid: &ConfigGrid,
        seed: u64,
    ) -> Self {
        let mut signatures: Vec<OpSignature> = specs
            .iter()
            .flat_map(|s| s.dag().nodes().iter().map(OpSignature::of))
            .collect();
        signatures.sort();
        signatures.dedup();

        let mut entries = HashMap::new();
        for sig in signatures {
            let rep = sig.representative();
            let mut rng = infless_sim::rng::stream(
                seed,
                &format!("profile/{:?}/{}", sig.kind(), sig.representative_gflops()),
            );
            for (batch, config) in grid.points() {
                let true_t = hardware.op_latency_s(&rep, batch, config);
                let noise = 1.0 + Self::PROFILING_NOISE * gaussian(&mut rng);
                entries.insert(
                    ProfileKey {
                        signature: sig,
                        batch,
                        config,
                    },
                    true_t * noise.max(0.5),
                );
            }
        }
        ProfileDatabase {
            entries,
            grid: grid.clone(),
        }
    }

    /// Looks up the measured execution time (seconds) of the operator
    /// `op` at `(batch, config)`, or `None` if the operator or the
    /// configuration was never profiled.
    pub fn op_time_s(&self, op: &Operator, batch: u32, config: ResourceConfig) -> Option<f64> {
        self.entries
            .get(&ProfileKey {
                signature: OpSignature::of(op),
                batch,
                config,
            })
            .copied()
    }

    /// The configuration grid this database covers.
    pub fn grid(&self) -> &ConfigGrid {
        &self.grid
    }

    /// Number of profile entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the database holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct operators profiled.
    pub fn distinct_operators(&self) -> usize {
        let mut sigs: Vec<OpSignature> = self.entries.keys().map(|k| k.signature).collect();
        sigs.sort();
        sigs.dedup();
        sigs.len()
    }
}

/// Standard-normal draw via Box-Muller (keeps this crate independent of
/// a distributions crate).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ModelId;
    use proptest::prelude::*;

    fn db() -> ProfileDatabase {
        let hw = HardwareModel::default();
        let specs: Vec<ModelSpec> = ModelId::all().iter().map(|id| id.spec()).collect();
        ProfileDatabase::profile(&hw, &specs, &ConfigGrid::standard(), 7)
    }

    #[test]
    fn signature_quantization_groups_neighbours() {
        let a = OpSignature::of(&Operator::new(OpKind::Conv2d, 0.100));
        let b = OpSignature::of(&Operator::new(OpKind::Conv2d, 0.0995));
        assert_eq!(a, b);
        let c = OpSignature::of(&Operator::new(OpKind::Conv2d, 0.150));
        assert_ne!(a, c);
        let d = OpSignature::of(&Operator::new(OpKind::MatMul, 0.100));
        assert_ne!(a, d, "kind is part of the identity");
    }

    #[test]
    fn representative_is_close_to_members() {
        let op = Operator::new(OpKind::MatMul, 0.37);
        let sig = OpSignature::of(&op);
        let rep = sig.representative_gflops();
        assert!((rep / 0.37 - 1.0).abs() < 0.05, "rep {rep} vs 0.37");
    }

    #[test]
    fn database_covers_all_zoo_operators() {
        let db = db();
        let hw = HardwareModel::default();
        let _ = hw;
        for id in ModelId::all() {
            let spec = id.spec();
            for op in spec.dag().nodes() {
                for (b, cfg) in ConfigGrid::standard().points() {
                    assert!(
                        db.op_time_s(op, b, cfg).is_some(),
                        "{id}: missing profile for {op} at b={b} cfg={cfg}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharing_keeps_database_small() {
        // Observation #6: distinct operators are far fewer than call
        // sites. The whole zoo needs well under 100 distinct profiles.
        let db = db();
        let distinct = db.distinct_operators();
        assert!(
            (20..=120).contains(&distinct),
            "distinct operators: {distinct}"
        );
    }

    #[test]
    fn measurements_are_near_truth() {
        let hw = HardwareModel::default();
        let db = db();
        let op = Operator::new(OpKind::Conv2d, 0.070);
        let cfg = ResourceConfig::new(1, 20);
        let measured = db.op_time_s(&op, 8, cfg).unwrap();
        let truth = hw.op_latency_s(&op, 8, cfg);
        assert!(
            (measured / truth - 1.0).abs() < 0.15,
            "measured {measured} vs truth {truth}"
        );
    }

    #[test]
    fn profiling_is_reproducible() {
        let hw = HardwareModel::default();
        let specs = [ModelId::Mnist.spec()];
        let grid = ConfigGrid::standard();
        let a = ProfileDatabase::profile(&hw, &specs, &grid, 3);
        let b = ProfileDatabase::profile(&hw, &specs, &grid, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_config_returns_none() {
        let db = db();
        let op = Operator::new(OpKind::Conv2d, 0.070);
        // 7 cores is not in the standard grid.
        assert!(db.op_time_s(&op, 8, ResourceConfig::cpu(7)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one config")]
    fn empty_grid_rejected() {
        ConfigGrid::new(vec![], vec![1]);
    }

    proptest! {
        /// Signature bucketing is monotone: more work never lands in a
        /// smaller bucket.
        #[test]
        fn prop_buckets_monotone(a in 1e-6f64..100.0, b in 1e-6f64..100.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let sa = OpSignature::of(&Operator::new(OpKind::MatMul, lo));
            let sb = OpSignature::of(&Operator::new(OpKind::MatMul, hi));
            prop_assert!(sa <= sb);
        }

        /// The representative work is always within one bucket width of
        /// the original.
        #[test]
        fn prop_representative_close(gf in 1e-6f64..100.0) {
            let sig = OpSignature::of(&Operator::new(OpKind::MatMul, gf));
            let rel = (sig.representative_gflops() / gf).log2().abs();
            prop_assert!(rel <= 0.5 / BUCKETS_PER_OCTAVE + 1e-9);
        }
    }
}
