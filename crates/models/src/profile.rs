//! The operator profile database (❸ in the paper's Fig. 4).
//!
//! INFless profiles *operators*, not whole models: since inference
//! functions share a small operator vocabulary, profiling the ~71
//! distinct operators once is far cheaper than profiling hundreds of
//! models offline (§3.3). A profile entry is the paper's 5-tuple
//! `⟨p, b, c, g, t⟩`; here the input-size `p` dependence is folded into
//! the operator signature (our zoo fixes each model's input shape).
//!
//! Distinct operators are identified by an [`OpSignature`]: the operator
//! kind plus a logarithmically-quantized work bucket. Quantization is
//! deliberate — it is what makes the database *shared* across models
//! (two MatMuls of nearly equal size hit the same entry) and it
//! introduces the small, realistic profiling error that the Combined
//! Operator Profiling evaluation (Fig. 8) measures.
//!
//! Profiling the standard grid takes long enough that doing it once per
//! platform construction dominates test and bench time. The database is
//! therefore *content-addressable*: [`ProfileDatabase::cached`] keys the
//! result by a stable hash of ⟨hardware calibration, config grid,
//! distinct operator set, seed⟩, shares it process-wide behind a
//! `OnceLock` registry, and snapshots it to `target/cop-cache/` so
//! sibling test processes reuse it too.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::hardware::{HardwareModel, ResourceConfig, BATCH_SIZES};
use crate::operator::{OpKind, Operator};
use crate::zoo::ModelSpec;

/// Work-bucket resolution: buckets per doubling of GFLOPs. Eight buckets
/// per octave bounds the quantization error at ±4.4 %.
const BUCKETS_PER_OCTAVE: f64 = 8.0;

/// Identity of a distinct operator in the profile database.
///
/// # Example
///
/// ```
/// use infless_models::{OpKind, Operator, OpSignature};
///
/// let a = OpSignature::of(&Operator::new(OpKind::MatMul, 0.100));
/// let b = OpSignature::of(&Operator::new(OpKind::MatMul, 0.0995));
/// let c = OpSignature::of(&Operator::new(OpKind::MatMul, 0.200));
/// assert_eq!(a, b); // near-equal work shares a bucket
/// assert_ne!(a, c); // doubling the work does not
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpSignature {
    kind: OpKind,
    bucket: i32,
}

impl OpSignature {
    /// The signature of an operator call site.
    pub fn of(op: &Operator) -> Self {
        let gf = op.gflops().max(1e-9);
        OpSignature {
            kind: op.kind(),
            bucket: (gf.log2() * BUCKETS_PER_OCTAVE).round() as i32,
        }
    }

    /// The operator kind.
    pub fn kind(self) -> OpKind {
        self.kind
    }

    /// The bucket's representative operator: same kind, work equal to
    /// the bucket's center. Profile measurements run this representative.
    pub fn representative(self) -> Operator {
        Operator::new(self.kind, self.representative_gflops())
    }

    /// The bucket-center work in GFLOPs.
    pub fn representative_gflops(self) -> f64 {
        (f64::from(self.bucket) / BUCKETS_PER_OCTAVE).exp2()
    }
}

/// A single profile lookup key: which operator, at which batchsize,
/// under which resource configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProfileKey {
    /// The distinct operator.
    pub signature: OpSignature,
    /// The profiled batchsize.
    pub batch: u32,
    /// The profiled resource configuration.
    pub config: ResourceConfig,
}

/// The discrete configuration grid profiled offline and searched by the
/// scheduler (`AvailableConfig` in Algorithm 1 iterates it).
///
/// # Example
///
/// ```
/// use infless_models::profile::ConfigGrid;
///
/// let grid = ConfigGrid::standard();
/// assert!(grid.configs().len() > 10);
/// assert!(grid.batches().contains(&32));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigGrid {
    configs: Vec<ResourceConfig>,
    batches: Vec<u32>,
}

impl ConfigGrid {
    /// The grid used throughout the evaluation: 1–4 CPU cores crossed
    /// with GPU shares from none to half a device, and power-of-two
    /// batchsizes up to 32.
    pub fn standard() -> Self {
        let mut configs = Vec::new();
        for &cpu in &[1u32, 2, 4] {
            configs.push(ResourceConfig::cpu(cpu));
            for &gpu in &[5u32, 10, 15, 20, 25, 30, 40, 50] {
                configs.push(ResourceConfig::new(cpu, gpu));
            }
        }
        ConfigGrid {
            configs,
            batches: BATCH_SIZES.to_vec(),
        }
    }

    /// A custom grid.
    ///
    /// # Panics
    ///
    /// Panics if either list is empty.
    pub fn new(configs: Vec<ResourceConfig>, batches: Vec<u32>) -> Self {
        assert!(!configs.is_empty(), "grid needs at least one config");
        assert!(!batches.is_empty(), "grid needs at least one batchsize");
        ConfigGrid { configs, batches }
    }

    /// The resource configurations in the grid.
    pub fn configs(&self) -> &[ResourceConfig] {
        &self.configs
    }

    /// The batchsizes in the grid.
    pub fn batches(&self) -> &[u32] {
        &self.batches
    }

    /// Iterates all `(batch, config)` pairs.
    pub fn points(&self) -> impl Iterator<Item = (u32, ResourceConfig)> + '_ {
        self.batches
            .iter()
            .flat_map(move |&b| self.configs.iter().map(move |&c| (b, c)))
    }
}

/// The operator profile database: offline "measurements" of every
/// distinct operator across the configuration grid.
///
/// Measurements are taken by running the bucket representative on the
/// [`HardwareModel`] and perturbing the result with a small profiling
/// noise — the same imperfection a real profiler exhibits run-to-run.
///
/// # Example
///
/// ```
/// use infless_models::{HardwareModel, ModelId, ProfileDatabase};
/// use infless_models::profile::ConfigGrid;
///
/// let hw = HardwareModel::default();
/// let specs = [ModelId::ResNet50.spec()];
/// let db = ProfileDatabase::profile(&hw, &specs, &ConfigGrid::standard(), 42);
/// assert!(db.len() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileDatabase {
    entries: HashMap<ProfileKey, f64>,
    grid: ConfigGrid,
}

impl ProfileDatabase {
    /// Profiling noise sigma (relative): run-to-run variance of offline
    /// operator measurements.
    const PROFILING_NOISE: f64 = 0.02;

    /// Profiles every distinct operator appearing in `specs` across the
    /// whole `grid`. `seed` makes the measurement noise reproducible.
    pub fn profile(
        hardware: &HardwareModel,
        specs: &[ModelSpec],
        grid: &ConfigGrid,
        seed: u64,
    ) -> Self {
        let signatures = Self::distinct_signatures(specs);
        let mut entries = HashMap::new();
        for sig in signatures {
            let rep = sig.representative();
            let mut rng = infless_sim::rng::stream(
                seed,
                &format!("profile/{:?}/{}", sig.kind(), sig.representative_gflops()),
            );
            for (batch, config) in grid.points() {
                let true_t = hardware.op_latency_s(&rep, batch, config);
                let noise = 1.0 + Self::PROFILING_NOISE * gaussian(&mut rng);
                entries.insert(
                    ProfileKey {
                        signature: sig,
                        batch,
                        config,
                    },
                    true_t * noise.max(0.5),
                );
            }
        }
        ProfileDatabase {
            entries,
            grid: grid.clone(),
        }
    }

    /// Looks up the measured execution time (seconds) of the operator
    /// `op` at `(batch, config)`, or `None` if the operator or the
    /// configuration was never profiled.
    pub fn op_time_s(&self, op: &Operator, batch: u32, config: ResourceConfig) -> Option<f64> {
        self.entries
            .get(&ProfileKey {
                signature: OpSignature::of(op),
                batch,
                config,
            })
            .copied()
    }

    /// The configuration grid this database covers.
    pub fn grid(&self) -> &ConfigGrid {
        &self.grid
    }

    /// Number of profile entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the database holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct operators profiled.
    pub fn distinct_operators(&self) -> usize {
        let mut sigs: Vec<OpSignature> = self.entries.keys().map(|k| k.signature).collect();
        sigs.sort();
        sigs.dedup();
        sigs.len()
    }

    /// The sorted, deduplicated operator signatures of a model set —
    /// exactly what [`ProfileDatabase::profile`] measures, and therefore
    /// exactly what the cache key must cover.
    fn distinct_signatures(specs: &[ModelSpec]) -> Vec<OpSignature> {
        let mut signatures: Vec<OpSignature> = specs
            .iter()
            .flat_map(|s| s.dag().nodes().iter().map(OpSignature::of))
            .collect();
        signatures.sort();
        signatures.dedup();
        signatures
    }

    /// The content hash addressing a profiling run: every input that
    /// [`ProfileDatabase::profile`] reads — the hardware calibration, the
    /// grid, the distinct operator set, and the noise seed — serialized
    /// canonically and FNV-hashed. Two calls agreeing on this key would
    /// profile byte-identical databases. `CACHE_FORMAT_VERSION` is mixed
    /// in so changes to the profiling procedure itself invalidate old
    /// snapshots.
    pub fn cache_key(
        hardware: &HardwareModel,
        specs: &[ModelSpec],
        grid: &ConfigGrid,
        seed: u64,
    ) -> u64 {
        let doc = serde_json::json!({
            "version": Self::CACHE_FORMAT_VERSION,
            "calibration": hardware.calibration(),
            "grid": grid,
            "signatures": Self::distinct_signatures(specs),
            "seed": seed,
        });
        let text = serde_json::to_string(&doc).expect("cache-key document serializes");
        fnv1a(text.as_bytes())
    }

    /// Content-addressed, process-wide cached profiling.
    ///
    /// Returns the shared database for this ⟨calibration, model set,
    /// grid, seed⟩. Within a process each distinct key is profiled at
    /// most once (concurrent callers of the same key block on the
    /// winner); across processes a `target/cop-cache/<key>.json`
    /// snapshot written by the first builder is reloaded instead of
    /// re-profiled.
    pub fn cached(
        hardware: &HardwareModel,
        specs: &[ModelSpec],
        grid: &ConfigGrid,
        seed: u64,
    ) -> Arc<Self> {
        Self::cached_with_outcome(hardware, specs, grid, seed).0
    }

    /// Like [`ProfileDatabase::cached`], also reporting how the lookup
    /// was satisfied (platforms surface this per run through
    /// `RunReport::profile_cache`).
    pub fn cached_with_outcome(
        hardware: &HardwareModel,
        specs: &[ModelSpec],
        grid: &ConfigGrid,
        seed: u64,
    ) -> (Arc<Self>, CacheOutcome) {
        let key = Self::cache_key(hardware, specs, grid, seed);
        // Per-key slots so concurrent builds of *different* keys proceed
        // in parallel; the global lock is only held to fetch the slot.
        let slot = Arc::clone(lock_registry().slots.entry(key).or_default());
        let mut outcome = CacheOutcome::MemoryHit;
        let db = Arc::clone(slot.get_or_init(|| {
            if let Some(db) = load_snapshot(key, grid) {
                outcome = CacheOutcome::DiskHit;
                Arc::new(db)
            } else {
                outcome = CacheOutcome::Built;
                let db = Arc::new(Self::profile(hardware, specs, grid, seed));
                store_snapshot(key, &db);
                db
            }
        }));
        let mut reg = lock_registry();
        match outcome {
            CacheOutcome::MemoryHit => reg.stats.memory_hits += 1,
            CacheOutcome::DiskHit => reg.stats.disk_hits += 1,
            CacheOutcome::Built => {
                reg.stats.builds += 1;
                *reg.builds_per_key.entry(key).or_insert(0) += 1;
            }
        }
        (db, outcome)
    }

    /// This process's registry counters.
    pub fn cache_stats() -> CacheStats {
        lock_registry().stats
    }

    /// How many times this process actually profiled (rather than
    /// reused) the database addressed by `key`. The exactly-once
    /// invariant the cache exists for is `builds_for(key) <= 1`.
    pub fn builds_for(key: u64) -> u64 {
        lock_registry()
            .builds_per_key
            .get(&key)
            .copied()
            .unwrap_or(0)
    }

    /// Bump when the profiling procedure (noise model, RNG stream
    /// labelling, entry layout) changes: old disk snapshots no longer
    /// describe what `profile()` would produce.
    const CACHE_FORMAT_VERSION: u32 = 1;
}

/// How a [`ProfileDatabase::cached`] lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheOutcome {
    /// Another lookup in this process already held the database.
    MemoryHit,
    /// A snapshot written by an earlier process was reloaded from
    /// `target/cop-cache/`.
    DiskHit,
    /// The grid was profiled from scratch (and snapshotted to disk).
    Built,
}

/// Counters of the process-wide profile registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the in-process registry.
    pub memory_hits: u64,
    /// Lookups served by reloading a disk snapshot.
    pub disk_hits: u64,
    /// Lookups that profiled from scratch.
    pub builds: u64,
}

impl CacheStats {
    /// Total lookups served.
    pub fn lookups(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.builds
    }
}

#[derive(Default)]
struct Registry {
    /// One lazily-built slot per cache key. `OnceLock` serializes
    /// same-key builders without holding the registry lock.
    slots: HashMap<u64, Arc<OnceLock<Arc<ProfileDatabase>>>>,
    builds_per_key: HashMap<u64, u64>,
    stats: CacheStats,
}

fn lock_registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// 64-bit FNV-1a over the canonical key document.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The on-disk snapshot directory: `$COP_CACHE_DIR` when set, otherwise
/// `target/cop-cache/` under the workspace root.
fn cache_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("COP_CACHE_DIR") {
        return PathBuf::from(dir);
    }
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.join("target").join("cop-cache")
}

fn snapshot_path(key: u64) -> PathBuf {
    cache_dir().join(format!("{key:016x}.json"))
}

fn load_snapshot(key: u64, grid: &ConfigGrid) -> Option<ProfileDatabase> {
    let text = std::fs::read_to_string(snapshot_path(key)).ok()?;
    let db: ProfileDatabase = serde_json::from_str(&text).ok()?;
    // Guards against truncated writes and (vanishingly unlikely) key
    // collisions: the snapshot must cover the grid that was asked for.
    (db.grid == *grid && !db.is_empty()).then_some(db)
}

/// Best-effort snapshot write: a unique temp file renamed into place, so
/// concurrent processes never observe a torn snapshot. Failures are
/// ignored — the cache degrades to per-process profiling.
fn store_snapshot(key: u64, db: &ProfileDatabase) {
    let dir = cache_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let Ok(text) = serde_json::to_string(db) else {
        return;
    };
    let tmp = dir.join(format!("{key:016x}.json.{}.tmp", std::process::id()));
    if std::fs::write(&tmp, text).is_err() {
        return;
    }
    let _ = std::fs::rename(&tmp, snapshot_path(key));
}

/// Standard-normal draw via Box-Muller (keeps this crate independent of
/// a distributions crate).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ModelId;
    use proptest::prelude::*;

    fn db() -> ProfileDatabase {
        let hw = HardwareModel::default();
        let specs: Vec<ModelSpec> = ModelId::all().iter().map(|id| id.spec()).collect();
        ProfileDatabase::profile(&hw, &specs, &ConfigGrid::standard(), 7)
    }

    #[test]
    fn signature_quantization_groups_neighbours() {
        let a = OpSignature::of(&Operator::new(OpKind::Conv2d, 0.100));
        let b = OpSignature::of(&Operator::new(OpKind::Conv2d, 0.0995));
        assert_eq!(a, b);
        let c = OpSignature::of(&Operator::new(OpKind::Conv2d, 0.150));
        assert_ne!(a, c);
        let d = OpSignature::of(&Operator::new(OpKind::MatMul, 0.100));
        assert_ne!(a, d, "kind is part of the identity");
    }

    #[test]
    fn representative_is_close_to_members() {
        let op = Operator::new(OpKind::MatMul, 0.37);
        let sig = OpSignature::of(&op);
        let rep = sig.representative_gflops();
        assert!((rep / 0.37 - 1.0).abs() < 0.05, "rep {rep} vs 0.37");
    }

    #[test]
    fn database_covers_all_zoo_operators() {
        let db = db();
        let hw = HardwareModel::default();
        let _ = hw;
        for id in ModelId::all() {
            let spec = id.spec();
            for op in spec.dag().nodes() {
                for (b, cfg) in ConfigGrid::standard().points() {
                    assert!(
                        db.op_time_s(op, b, cfg).is_some(),
                        "{id}: missing profile for {op} at b={b} cfg={cfg}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharing_keeps_database_small() {
        // Observation #6: distinct operators are far fewer than call
        // sites. The whole zoo needs well under 100 distinct profiles.
        let db = db();
        let distinct = db.distinct_operators();
        assert!(
            (20..=120).contains(&distinct),
            "distinct operators: {distinct}"
        );
    }

    #[test]
    fn measurements_are_near_truth() {
        let hw = HardwareModel::default();
        let db = db();
        let op = Operator::new(OpKind::Conv2d, 0.070);
        let cfg = ResourceConfig::new(1, 20);
        let measured = db.op_time_s(&op, 8, cfg).unwrap();
        let truth = hw.op_latency_s(&op, 8, cfg);
        assert!(
            (measured / truth - 1.0).abs() < 0.15,
            "measured {measured} vs truth {truth}"
        );
    }

    #[test]
    fn profiling_is_reproducible() {
        let hw = HardwareModel::default();
        let specs = [ModelId::Mnist.spec()];
        let grid = ConfigGrid::standard();
        let a = ProfileDatabase::profile(&hw, &specs, &grid, 3);
        let b = ProfileDatabase::profile(&hw, &specs, &grid, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_config_returns_none() {
        let db = db();
        let op = Operator::new(OpKind::Conv2d, 0.070);
        // 7 cores is not in the standard grid.
        assert!(db.op_time_s(&op, 8, ResourceConfig::cpu(7)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one config")]
    fn empty_grid_rejected() {
        ConfigGrid::new(vec![], vec![1]);
    }

    /// A small grid no other test shares, so these cache tests own their
    /// keys outright.
    fn private_grid(gpu: u32) -> ConfigGrid {
        ConfigGrid::new(
            vec![ResourceConfig::new(1, gpu), ResourceConfig::cpu(2)],
            vec![1, 4],
        )
    }

    #[test]
    fn cached_profiles_each_key_at_most_once() {
        let hw = HardwareModel::default();
        let specs = [ModelId::Mnist.spec()];
        let grid = private_grid(35);
        let key = ProfileDatabase::cache_key(&hw, &specs, &grid, 9100);

        let (a, first) = ProfileDatabase::cached_with_outcome(&hw, &specs, &grid, 9100);
        let before = ProfileDatabase::cache_stats();
        let (b, second) = ProfileDatabase::cached_with_outcome(&hw, &specs, &grid, 9100);
        let after = ProfileDatabase::cache_stats();

        assert!(Arc::ptr_eq(&a, &b), "same key must share one database");
        // Cold target/: built here (then snapshotted). Warm target/: the
        // snapshot of an earlier run is reloaded. Either way this
        // process never profiles the key twice.
        assert!(matches!(first, CacheOutcome::Built | CacheOutcome::DiskHit));
        assert_eq!(second, CacheOutcome::MemoryHit);
        assert!(after.memory_hits > before.memory_hits);
        assert!(ProfileDatabase::builds_for(key) <= 1);
        assert_eq!(a.grid(), &grid);
        assert!(!a.is_empty());
    }

    #[test]
    fn cached_matches_direct_profiling() {
        let hw = HardwareModel::default();
        let specs = [ModelId::Ssd.spec()];
        let grid = private_grid(40);
        let direct = ProfileDatabase::profile(&hw, &specs, &grid, 9200);
        let cached = ProfileDatabase::cached(&hw, &specs, &grid, 9200);
        // Identical whether built fresh or round-tripped through a JSON
        // snapshot (f64 serialization is shortest-roundtrip exact).
        assert_eq!(*cached, direct);
    }

    #[test]
    fn cached_under_contention_builds_once() {
        let hw = HardwareModel::default();
        let specs = [ModelId::TextCnn69.spec()];
        let grid = private_grid(45);
        let key = ProfileDatabase::cache_key(&hw, &specs, &grid, 9300);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| ProfileDatabase::cached(&hw, &specs, &grid, 9300));
            }
        });
        assert!(ProfileDatabase::builds_for(key) <= 1);
    }

    #[test]
    fn cache_key_covers_every_profiling_input() {
        let hw = HardwareModel::default();
        let specs = [ModelId::Mnist.spec()];
        let grid = ConfigGrid::standard();
        let base = ProfileDatabase::cache_key(&hw, &specs, &grid, 1);

        assert_eq!(base, ProfileDatabase::cache_key(&hw, &specs, &grid, 1));
        assert_ne!(
            base,
            ProfileDatabase::cache_key(&hw, &specs, &grid, 2),
            "seed"
        );
        let other_grid = private_grid(30);
        assert_ne!(
            base,
            ProfileDatabase::cache_key(&hw, &specs, &other_grid, 1),
            "grid"
        );
        let more_specs = [ModelId::Mnist.spec(), ModelId::ResNet50.spec()];
        assert_ne!(
            base,
            ProfileDatabase::cache_key(&hw, &more_specs, &grid, 1),
            "model set"
        );
        let mut cal = *hw.calibration();
        cal.noise_sigma += 0.001;
        let other_hw = HardwareModel::new(cal);
        assert_ne!(
            base,
            ProfileDatabase::cache_key(&other_hw, &specs, &grid, 1),
            "calibration"
        );
    }

    #[test]
    fn cache_key_ignores_model_duplication() {
        // Two copies of a model profile the same operator set, so they
        // must share the cache entry with one copy.
        let hw = HardwareModel::default();
        let one = [ModelId::VggNet.spec()];
        let two = [ModelId::VggNet.spec(), ModelId::VggNet.spec()];
        let grid = ConfigGrid::standard();
        assert_eq!(
            ProfileDatabase::cache_key(&hw, &one, &grid, 5),
            ProfileDatabase::cache_key(&hw, &two, &grid, 5)
        );
    }

    proptest! {
        /// Signature bucketing is monotone: more work never lands in a
        /// smaller bucket.
        #[test]
        fn prop_buckets_monotone(a in 1e-6f64..100.0, b in 1e-6f64..100.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let sa = OpSignature::of(&Operator::new(OpKind::MatMul, lo));
            let sb = OpSignature::of(&Operator::new(OpKind::MatMul, hi));
            prop_assert!(sa <= sb);
        }

        /// The representative work is always within one bucket width of
        /// the original.
        #[test]
        fn prop_representative_close(gf in 1e-6f64..100.0) {
            let sig = OpSignature::of(&Operator::new(OpKind::MatMul, gf));
            let rel = (sig.representative_gflops() / gf).log2().abs();
            prop_assert!(rel <= 0.5 / BUCKETS_PER_OCTAVE + 1e-9);
        }
    }
}
