//! The model zoo: the eleven inference models of the paper's Table 1
//! plus DSSM-2389 (used by the Q&A-robot application in §5.1), each as a
//! concrete operator DAG.
//!
//! Sizes and GFLOP counts follow Table 1; DAG shapes follow the
//! published architectures closely enough to reproduce the paper's
//! structural observations: ResNet-50 uses few distinct operator kinds
//! with `Conv2D` dominating execution time, LSTM-2365 calls `MatMul`
//! ~80 times across many small parallel branches (Fig. 7), and the
//! total per-sample work matches the Table 1 GFLOPs within a few
//! percent.

use serde::{Deserialize, Serialize};

use crate::dag::{DagBuilder, NodeId, OperatorDag};
use crate::operator::{OpKind, Operator};

/// Identifiers of the models in the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ModelId {
    /// BERT (language processing, 391 MB, 22.2 GFLOPs).
    BertV1,
    /// ResNet-50 (image classification, 98 MB, 3.89 GFLOPs).
    ResNet50,
    /// VGGNet (feature localisation, 69 MB, 5.55 GFLOPs).
    VggNet,
    /// LSTM-2365 (text Q&A, 39 MB, 0.10 GFLOPs).
    Lstm2365,
    /// ResNet-20 (image classification, 36 MB, 1.55 GFLOPs).
    ResNet20,
    /// SSD (object detection, 29 MB, 2.02 GFLOPs).
    Ssd,
    /// DSSM-2365 (text Q&A, 25 MB, 0.13 GFLOPs).
    Dssm2365,
    /// DSSM-2389 (text Q&A variant used by the Q&A robot, 26 MB).
    Dssm2389,
    /// DeepSpeech (speech recognition, 17 MB, 1.60 GFLOPs).
    DeepSpeech,
    /// MobileNet (mobile vision, 17 MB, 0.05 GFLOPs).
    MobileNet,
    /// TextCNN-69 (text classification, 11 MB, 0.53 GFLOPs).
    TextCnn69,
    /// MNIST MLP (number recognition, 72 kB, 0.01 GFLOPs).
    Mnist,
}

impl ModelId {
    /// All models in the zoo, largest first (Table 1 order).
    pub fn all() -> [ModelId; 12] {
        [
            ModelId::BertV1,
            ModelId::ResNet50,
            ModelId::VggNet,
            ModelId::Lstm2365,
            ModelId::ResNet20,
            ModelId::Ssd,
            ModelId::Dssm2365,
            ModelId::Dssm2389,
            ModelId::DeepSpeech,
            ModelId::MobileNet,
            ModelId::TextCnn69,
            ModelId::Mnist,
        ]
    }

    /// The model's display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::BertV1 => "Bert-v1",
            ModelId::ResNet50 => "ResNet-50",
            ModelId::VggNet => "VGGNet",
            ModelId::Lstm2365 => "LSTM-2365",
            ModelId::ResNet20 => "ResNet-20",
            ModelId::Ssd => "SSD",
            ModelId::Dssm2365 => "DSSM-2365",
            ModelId::Dssm2389 => "DSSM-2389",
            ModelId::DeepSpeech => "DeepSpeech",
            ModelId::MobileNet => "MobileNet",
            ModelId::TextCnn69 => "TextCNN-69",
            ModelId::Mnist => "MNIST",
        }
    }

    /// Builds the full specification (metadata + operator DAG).
    pub fn spec(self) -> ModelSpec {
        match self {
            ModelId::BertV1 => bert(),
            ModelId::ResNet50 => resnet50(),
            ModelId::VggNet => vggnet(),
            ModelId::Lstm2365 => lstm2365(),
            ModelId::ResNet20 => resnet20(),
            ModelId::Ssd => ssd(),
            ModelId::Dssm2365 => dssm(ModelId::Dssm2365, 25.0, 0.060),
            ModelId::Dssm2389 => dssm(ModelId::Dssm2389, 26.0, 0.065),
            ModelId::DeepSpeech => deepspeech(),
            ModelId::MobileNet => mobilenet(),
            ModelId::TextCnn69 => textcnn(),
            ModelId::Mnist => mnist(),
        }
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a model name does not match the zoo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    name: String,
}

impl std::fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown model {:?} (see ModelId::all for the zoo)",
            self.name
        )
    }
}

impl std::error::Error for ParseModelError {}

impl std::str::FromStr for ModelId {
    type Err = ParseModelError;

    /// Parses a model by its display name, case-insensitively and
    /// ignoring separators (`"resnet50"` and `"ResNet-50"` both work).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = |x: &str| {
            x.chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_ascii_lowercase()
        };
        let wanted = norm(s);
        ModelId::all()
            .into_iter()
            .find(|id| norm(id.name()) == wanted)
            .ok_or_else(|| ParseModelError {
                name: s.to_string(),
            })
    }
}

/// A fully-specified inference model: Table 1 metadata plus its
/// operator DAG.
///
/// # Example
///
/// ```
/// use infless_models::ModelId;
///
/// let spec = ModelId::ResNet50.spec();
/// assert_eq!(spec.name(), "ResNet-50");
/// // Total DAG work matches Table 1's 3.89 GFLOPs within a few percent.
/// assert!((spec.gflops() - 3.89).abs() / 3.89 < 0.10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    id: ModelId,
    size_mb: f64,
    input_kb: f64,
    dag: OperatorDag,
}

impl ModelSpec {
    fn new(id: ModelId, size_mb: f64, input_kb: f64, dag: OperatorDag) -> Self {
        ModelSpec {
            id,
            size_mb,
            input_kb,
            dag,
        }
    }

    /// The model's identifier.
    pub fn id(&self) -> ModelId {
        self.id
    }

    /// The model's display name.
    pub fn name(&self) -> &'static str {
        self.id.name()
    }

    /// The model artifact size in MB (Table 1 "Network Size").
    pub fn size_mb(&self) -> f64 {
        self.size_mb
    }

    /// Input payload size per sample in KB (drives PCIe transfer time).
    pub fn input_kb(&self) -> f64 {
        self.input_kb
    }

    /// The operator DAG.
    pub fn dag(&self) -> &OperatorDag {
        &self.dag
    }

    /// Total per-sample work in GFLOPs (sum over the DAG).
    pub fn gflops(&self) -> f64 {
        self.dag.total(|op| op.gflops())
    }
}

// --- small construction helpers ------------------------------------------

fn op(kind: OpKind, gflops: f64) -> Operator {
    Operator::new(kind, gflops)
}

/// A tiny elementwise epsilon used for activation/normalization nodes.
const EW: f64 = 5e-5;

fn mnist() -> ModelSpec {
    let mut b = DagBuilder::new();
    b.chain(
        None,
        [
            op(OpKind::Reshape, EW),
            op(OpKind::MatMul, 0.0045),
            op(OpKind::Relu, EW),
            op(OpKind::MatMul, 0.0040),
            op(OpKind::Relu, EW),
            op(OpKind::MatMul, 0.0012),
            op(OpKind::Softmax, EW),
        ],
    );
    ModelSpec::new(ModelId::Mnist, 0.072, 0.6, b.build())
}

fn textcnn() -> ModelSpec {
    let mut b = DagBuilder::new();
    let embed = b.node(op(OpKind::Embedding, 0.005), &[]);
    // Three parallel convolution branches with kernel sizes 3/4/5.
    let mut tails = Vec::new();
    for _ in 0..3 {
        let tail = b
            .chain(
                Some(embed),
                [
                    op(OpKind::Conv2d, 0.148),
                    op(OpKind::Relu, EW),
                    op(OpKind::MaxPool, 0.001),
                ],
            )
            .expect("non-empty chain");
        tails.push(tail);
    }
    let cat = b.join(op(OpKind::ConcatV2, 0.001), &tails);
    b.chain(
        Some(cat),
        [
            op(OpKind::MatMul, 0.060),
            op(OpKind::Relu, EW),
            op(OpKind::MatMul, 0.012),
            op(OpKind::Softmax, EW),
        ],
    );
    ModelSpec::new(ModelId::TextCnn69, 11.0, 2.0, b.build())
}

fn mobilenet() -> ModelSpec {
    let mut b = DagBuilder::new();
    let mut tail = b.chain(
        None,
        [
            op(OpKind::Conv2d, 0.005),
            op(OpKind::BatchNorm, EW),
            op(OpKind::Relu, EW),
        ],
    );
    for _ in 0..13 {
        tail = b.chain(
            tail,
            [
                op(OpKind::DepthwiseConv2d, 0.0008),
                op(OpKind::BatchNorm, EW),
                op(OpKind::Relu, EW),
                op(OpKind::Conv2d, 0.0024),
                op(OpKind::BatchNorm, EW),
                op(OpKind::Relu, EW),
            ],
        );
    }
    b.chain(
        tail,
        [
            op(OpKind::AvgPool, 0.0002),
            op(OpKind::MatMul, 0.002),
            op(OpKind::Softmax, EW),
        ],
    );
    ModelSpec::new(ModelId::MobileNet, 17.0, 150.0, b.build())
}

fn dssm(id: ModelId, size_mb: f64, tower_gf: f64) -> ModelSpec {
    // Two parallel towers (query / document) followed by a cosine head.
    let mut b = DagBuilder::new();
    let mut tails = Vec::new();
    for _ in 0..2 {
        let embed = b.node(op(OpKind::Embedding, 0.002), &[]);
        let tail = b
            .chain(
                Some(embed),
                [
                    op(OpKind::MatMul, tower_gf * 0.5),
                    op(OpKind::Tanh, EW),
                    op(OpKind::MatMul, tower_gf * 0.33),
                    op(OpKind::Tanh, EW),
                    op(OpKind::MatMul, tower_gf * 0.17),
                    op(OpKind::Tanh, EW),
                ],
            )
            .expect("non-empty chain");
        tails.push(tail);
    }
    let mul = b.join(op(OpKind::Mul, 0.002), &tails);
    b.chain(Some(mul), [op(OpKind::Sum, 0.001), op(OpKind::Sigmoid, EW)]);
    ModelSpec::new(id, size_mb, 2.0, b.build())
}

fn lstm2365() -> ModelSpec {
    // An attention LSTM for question answering. Each of the 20 time
    // steps computes the four gate projections as parallel MatMuls, then
    // joins them element-wise — this is what gives LSTM-2365 its ~80
    // MatMul call sites and its overlap-heavy DAG (the paper notes it
    // has the highest COP prediction error for exactly this reason).
    let mut b = DagBuilder::new();
    let mut tail = b.node(op(OpKind::Embedding, 0.002), &[]);
    for _ in 0..20 {
        let mut gates = Vec::new();
        for _ in 0..4 {
            gates.push(b.node(op(OpKind::MatMul, 0.0008), &[tail]));
        }
        let add = b.join(op(OpKind::Add, EW), &gates);
        tail = b
            .chain(
                Some(add),
                [
                    op(OpKind::Sigmoid, EW),
                    op(OpKind::Tanh, EW),
                    op(OpKind::Mul, EW),
                ],
            )
            .expect("non-empty chain");
    }
    // Attention head: three parallel projections, softmax, context matmul.
    let q = b.node(op(OpKind::MatMul, 0.007), &[tail]);
    let k = b.node(op(OpKind::MatMul, 0.007), &[tail]);
    let v = b.node(op(OpKind::MatMul, 0.007), &[tail]);
    let att = b.join(op(OpKind::Attention, 0.006), &[q, k, v]);
    b.chain(
        Some(att),
        [
            op(OpKind::Softmax, EW),
            op(OpKind::MatMul, 0.009),
            op(OpKind::Softmax, EW),
        ],
    );
    ModelSpec::new(ModelId::Lstm2365, 39.0, 2.0, b.build())
}

fn deepspeech() -> ModelSpec {
    let mut b = DagBuilder::new();
    let tail = b.chain(
        None,
        [
            op(OpKind::Conv2d, 0.15),
            op(OpKind::Relu, EW),
            op(OpKind::Conv2d, 0.15),
            op(OpKind::Relu, EW),
        ],
    );
    let tail = b.chain(tail, (0..5).map(|_| op(OpKind::LstmCell, 0.20)));
    b.chain(tail, [op(OpKind::MatMul, 0.20), op(OpKind::Softmax, EW)]);
    ModelSpec::new(ModelId::DeepSpeech, 17.0, 100.0, b.build())
}

fn ssd() -> ModelSpec {
    let mut b = DagBuilder::new();
    // VGG-style backbone.
    let mut tail: Option<NodeId> = None;
    for i in 0..10 {
        tail = b.chain(tail, [op(OpKind::Conv2d, 0.15), op(OpKind::Relu, EW)]);
        if i % 3 == 2 {
            tail = b.chain(tail, [op(OpKind::MaxPool, 0.0005)]);
        }
    }
    let backbone = tail.expect("backbone is non-empty");
    // Six detection heads at different scales, run in parallel.
    let mut heads = Vec::new();
    for _ in 0..6 {
        let h = b
            .chain(
                Some(backbone),
                [op(OpKind::Conv2d, 0.06), op(OpKind::Conv2d, 0.02)],
            )
            .expect("non-empty chain");
        heads.push(h);
    }
    let cat = b.join(op(OpKind::ConcatV2, 0.002), &heads);
    b.chain(Some(cat), [op(OpKind::Softmax, EW)]);
    ModelSpec::new(ModelId::Ssd, 29.0, 150.0, b.build())
}

fn residual_stack(
    b: &mut DagBuilder,
    mut tail: NodeId,
    blocks: usize,
    convs_per_block: &[(OpKind, f64)],
    downsample_every: usize,
    downsample_gf: f64,
) -> NodeId {
    for i in 0..blocks {
        let mut main = tail;
        for &(kind, gf) in convs_per_block {
            main = b.node(op(kind, gf), &[main]);
            main = b.node(op(OpKind::BatchNorm, EW), &[main]);
            main = b.node(op(OpKind::Relu, EW), &[main]);
        }
        // Shortcut branch: identity, or a 1x1 conv on downsampling blocks.
        let shortcut = if downsample_every > 0 && i % downsample_every == 0 {
            b.node(op(OpKind::Conv2d, downsample_gf), &[tail])
        } else {
            b.node(op(OpKind::Reshape, 0.0), &[tail])
        };
        let add = b.join(op(OpKind::Add, EW), &[main, shortcut]);
        tail = b.node(op(OpKind::Relu, EW), &[add]);
    }
    tail
}

fn resnet20() -> ModelSpec {
    let mut b = DagBuilder::new();
    let stem = b
        .chain(
            None,
            [
                op(OpKind::Conv2d, 0.10),
                op(OpKind::BatchNorm, EW),
                op(OpKind::Relu, EW),
            ],
        )
        .expect("non-empty chain");
    let body = residual_stack(
        &mut b,
        stem,
        9,
        &[(OpKind::Conv2d, 0.072), (OpKind::Conv2d, 0.072)],
        3,
        0.015,
    );
    b.chain(
        Some(body),
        [
            op(OpKind::AvgPool, 0.0002),
            op(OpKind::MatMul, 0.05),
            op(OpKind::Softmax, EW),
        ],
    );
    ModelSpec::new(ModelId::ResNet20, 36.0, 150.0, b.build())
}

fn resnet50() -> ModelSpec {
    let mut b = DagBuilder::new();
    let stem = b
        .chain(
            None,
            [
                op(OpKind::Conv2d, 0.24),
                op(OpKind::BatchNorm, EW),
                op(OpKind::Relu, EW),
                op(OpKind::MaxPool, 0.0005),
            ],
        )
        .expect("non-empty chain");
    let body = residual_stack(
        &mut b,
        stem,
        16,
        &[
            (OpKind::Conv2d, 0.070),
            (OpKind::Conv2d, 0.070),
            (OpKind::Conv2d, 0.070),
        ],
        4,
        0.020,
    );
    b.chain(
        Some(body),
        [
            op(OpKind::AvgPool, 0.0002),
            op(OpKind::MatMul, 0.004),
            op(OpKind::Softmax, EW),
        ],
    );
    ModelSpec::new(ModelId::ResNet50, 98.0, 150.0, b.build())
}

fn vggnet() -> ModelSpec {
    let mut b = DagBuilder::new();
    let mut tail: Option<NodeId> = None;
    for i in 0..13 {
        tail = b.chain(tail, [op(OpKind::Conv2d, 0.38), op(OpKind::Relu, EW)]);
        if [1, 3, 6, 9, 12].contains(&i) {
            tail = b.chain(tail, [op(OpKind::MaxPool, 0.0005)]);
        }
    }
    b.chain(
        tail,
        [
            op(OpKind::MatMul, 0.25),
            op(OpKind::Relu, EW),
            op(OpKind::MatMul, 0.20),
            op(OpKind::Relu, EW),
            op(OpKind::MatMul, 0.10),
            op(OpKind::Softmax, EW),
        ],
    );
    ModelSpec::new(ModelId::VggNet, 69.0, 150.0, b.build())
}

fn bert() -> ModelSpec {
    let mut b = DagBuilder::new();
    let mut tail = b
        .chain(
            None,
            [op(OpKind::Embedding, 0.010), op(OpKind::LayerNorm, EW)],
        )
        .expect("non-empty chain");
    for _ in 0..12 {
        // Self-attention: parallel Q/K/V projections.
        let q = b.node(op(OpKind::FusedMatMul, 0.13), &[tail]);
        let k = b.node(op(OpKind::FusedMatMul, 0.13), &[tail]);
        let v = b.node(op(OpKind::FusedMatMul, 0.13), &[tail]);
        let att = b.join(op(OpKind::Attention, 0.25), &[q, k, v]);
        let proj = b
            .chain(
                Some(att),
                [op(OpKind::Softmax, EW), op(OpKind::MatMul, 0.13)],
            )
            .expect("non-empty chain");
        let res1 = b.join(op(OpKind::Add, EW), &[proj, tail]);
        let norm1 = b.node(op(OpKind::LayerNorm, EW), &[res1]);
        // Feed-forward block.
        let ffn = b
            .chain(
                Some(norm1),
                [
                    op(OpKind::MatMul, 0.50),
                    op(OpKind::Gelu, EW),
                    op(OpKind::MatMul, 0.50),
                ],
            )
            .expect("non-empty chain");
        let res2 = b.join(op(OpKind::Add, EW), &[ffn, norm1]);
        tail = b.node(op(OpKind::LayerNorm, EW), &[res2]);
    }
    b.chain(
        Some(tail),
        [
            op(OpKind::Gather, EW),
            op(OpKind::MatMul, 0.06),
            op(OpKind::Tanh, EW),
        ],
    );
    ModelSpec::new(ModelId::BertV1, 391.0, 4.0, b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 GFLOPs targets.
    fn table1_gflops(id: ModelId) -> f64 {
        match id {
            ModelId::BertV1 => 22.2,
            ModelId::ResNet50 => 3.89,
            ModelId::VggNet => 5.55,
            ModelId::Lstm2365 => 0.10,
            ModelId::ResNet20 => 1.55,
            ModelId::Ssd => 2.02,
            ModelId::Dssm2365 => 0.13,
            ModelId::Dssm2389 => 0.14,
            ModelId::DeepSpeech => 1.60,
            ModelId::MobileNet => 0.05,
            ModelId::TextCnn69 => 0.53,
            ModelId::Mnist => 0.01,
        }
    }

    #[test]
    fn gflops_match_table1_within_10pct() {
        for id in ModelId::all() {
            let spec = id.spec();
            let target = table1_gflops(id);
            let rel = (spec.gflops() - target).abs() / target;
            assert!(
                rel < 0.10,
                "{id}: DAG work {:.4} GF vs Table 1 {:.4} GF ({:.1}% off)",
                spec.gflops(),
                target,
                rel * 100.0
            );
        }
    }

    #[test]
    fn sizes_are_table1_ordered() {
        // Table 1 lists models in descending size; `all()` follows it
        // except for the appended DSSM-2389 variant.
        let sizes: Vec<f64> = ModelId::all()
            .iter()
            .filter(|id| **id != ModelId::Dssm2389)
            .map(|id| id.spec().size_mb())
            .collect();
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "sizes out of order: {w:?}");
        }
    }

    #[test]
    fn lstm_has_many_matmul_calls() {
        // Paper Fig. 7a: MatMul is called 81 times in LSTM-2365.
        let spec = ModelId::Lstm2365.spec();
        let counts = spec.dag().kind_counts();
        let matmuls = counts[&OpKind::MatMul];
        assert!(
            (75..=90).contains(&matmuls),
            "expected ~81 MatMul call sites, got {matmuls}"
        );
    }

    #[test]
    fn resnet50_uses_few_distinct_kinds() {
        // Paper Fig. 7b: ResNet-50 contains 8 distinct operators.
        let spec = ModelId::ResNet50.spec();
        let distinct = spec.dag().kind_counts().len();
        assert!(
            (7..=10).contains(&distinct),
            "expected ~8 distinct kinds, got {distinct}"
        );
    }

    #[test]
    fn conv_dominates_resnet50_work() {
        // Paper: >95% of ResNet-50 execution time is Conv2D.
        let spec = ModelId::ResNet50.spec();
        let totals = spec.dag().kind_totals(|op| op.gflops());
        let conv = totals[&OpKind::Conv2d];
        assert!(conv / spec.gflops() > 0.90);
    }

    #[test]
    fn matmul_dominates_lstm_work() {
        let spec = ModelId::Lstm2365.spec();
        let totals = spec.dag().kind_totals(|op| op.gflops());
        let mm = totals[&OpKind::MatMul] + totals.get(&OpKind::Attention).unwrap_or(&0.0);
        assert!(mm / spec.gflops() > 0.75);
    }

    #[test]
    fn lstm_is_the_most_overlapped_small_model() {
        // Parallel slack relative to total work should be largest for
        // LSTM-2365 among the Q&A models — the paper's explanation for
        // its highest COP error.
        let rel_slack = |id: ModelId| {
            let spec = id.spec();
            spec.dag().parallel_slack(|op| op.gflops()) / spec.gflops()
        };
        assert!(rel_slack(ModelId::Lstm2365) > rel_slack(ModelId::TextCnn69));
        assert!(rel_slack(ModelId::Lstm2365) > rel_slack(ModelId::MobileNet));
    }

    #[test]
    fn model_names_parse_back() {
        for id in ModelId::all() {
            assert_eq!(id.name().parse::<ModelId>().unwrap(), id);
        }
        assert_eq!("resnet50".parse::<ModelId>().unwrap(), ModelId::ResNet50);
        assert_eq!("LSTM_2365".parse::<ModelId>().unwrap(), ModelId::Lstm2365);
        let err = "inception".parse::<ModelId>().unwrap_err();
        assert!(err.to_string().contains("unknown model"));
    }

    #[test]
    fn every_spec_builds_and_reports_metadata() {
        for id in ModelId::all() {
            let spec = id.spec();
            assert_eq!(spec.id(), id);
            assert!(!spec.name().is_empty());
            assert!(spec.size_mb() > 0.0);
            assert!(spec.input_kb() > 0.0);
            assert!(!spec.dag().is_empty());
            assert_eq!(spec.name(), id.to_string());
        }
    }

    #[test]
    fn distinct_operator_vocabulary_is_shared() {
        // Paper Observation #6: ~1000 call sites but only ~71 distinct
        // operators across models. Our zoo shares a small vocabulary.
        let mut call_sites = 0;
        let mut kinds = std::collections::HashSet::new();
        for id in ModelId::all() {
            let spec = id.spec();
            call_sites += spec.dag().len();
            kinds.extend(spec.dag().kind_counts().into_keys());
        }
        assert!(call_sites > 500, "zoo has {call_sites} call sites");
        assert!(kinds.len() < 30, "vocabulary of {} kinds", kinds.len());
    }
}
