//! A stable, timestamped event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// An event scheduled in an [`EventQueue`].
///
/// Ordering is by time first, then by insertion sequence, so that events
/// scheduled for the same instant are delivered in FIFO order. This
/// stability matters: platform behaviour (which batch fills first, which
/// instance a request lands on) must not depend on heap internals.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> ScheduledEvent<E> {
    /// The instant the event fires.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// The event payload.
    pub fn payload(&self) -> &E {
        &self.payload
    }
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    // Reversed so the BinaryHeap (a max-heap) pops the earliest event.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list: the heart of the discrete-event simulator.
///
/// Events are arbitrary payloads `E` tagged with a [`SimTime`]. Popping
/// always yields the earliest pending event; ties break in insertion
/// order. There is no global clock object — the caller advances its own
/// notion of "now" to each popped event's timestamp, which makes it
/// impossible for time to drift or run backwards.
///
/// # Example
///
/// ```
/// use infless_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(3), "c");
/// q.schedule(SimTime::from_millis(1), "a");
/// q.schedule(SimTime::from_millis(1), "b"); // same instant, FIFO
///
/// let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedules `payload` to fire at `time`.
    ///
    /// Scheduling in the past (before the last popped event) is allowed at
    /// the API level — the event simply fires "now" from the caller's
    /// perspective because it becomes the earliest entry — but it is
    /// almost always a logic error, so debug builds assert against it.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        debug_assert!(
            time >= self.last_popped,
            "scheduled an event at {time} before the simulation clock {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` when the run is
    /// complete.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        self.last_popped = ev.time;
        Some((ev.time, ev.payload))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(ScheduledEvent::time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the most recently popped event — the current simulated
    /// instant from the queue's point of view.
    pub fn now(&self) -> SimTime {
        self.last_popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A pre-sorted event stream merged *ahead of* an [`EventQueue`].
///
/// Workloads are generated as one time-sorted arrival list; pushing
/// every arrival into the heap up front makes each heap operation pay
/// `O(log total_arrivals)` on a multi-million-entry, cache-hostile
/// structure. A `StagedStream` keeps the sorted slice as a cursor
/// instead and merges it with the live queue at pop time, so the heap
/// only ever holds the (small) set of genuinely dynamic events.
///
/// Tie-breaking matches the convention every platform used when
/// arrivals were pre-scheduled: all arrivals were pushed before any
/// other event, so their sequence numbers were lowest and an arrival
/// always won an equal-timestamp tie. Here the staged entry is
/// delivered whenever its time is `<=` the heap's head, which is the
/// same order — runs are bit-identical to the pre-scheduled form.
///
/// # Example
///
/// ```
/// use infless_sim::{EventQueue, SimTime, StagedStream};
///
/// let arrivals = [(SimTime::from_millis(1), 0usize), (SimTime::from_millis(5), 1)];
/// let mut staged = StagedStream::new(&arrivals);
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(1), "tick");
///
/// // The staged arrival wins the t=1ms tie.
/// let (_, first) = staged.next(&mut q, |f| if f == 0 { "a0" } else { "a1" }).unwrap();
/// assert_eq!(first, "a0");
/// ```
#[derive(Debug, Clone)]
pub struct StagedStream<'a, P> {
    staged: &'a [(SimTime, P)],
    cursor: usize,
}

impl<'a, P: Copy> StagedStream<'a, P> {
    /// Wraps a time-sorted slice of `(time, payload)` pairs.
    ///
    /// # Panics
    ///
    /// Debug builds assert the slice is sorted by time.
    pub fn new(staged: &'a [(SimTime, P)]) -> Self {
        debug_assert!(
            staged.windows(2).all(|w| w[0].0 <= w[1].0),
            "staged events must be time-sorted"
        );
        StagedStream { staged, cursor: 0 }
    }

    /// Pops the earliest event across the staged slice and the queue,
    /// wrapping staged payloads with `wrap`. Staged entries win
    /// equal-timestamp ties. Returns `None` when both are exhausted.
    pub fn next<E>(
        &mut self,
        queue: &mut EventQueue<E>,
        wrap: impl FnOnce(P) -> E,
    ) -> Option<(SimTime, E)> {
        match self.staged.get(self.cursor) {
            Some(&(t, p)) if queue.peek_time().is_none_or(|h| t <= h) => {
                self.cursor += 1;
                Some((t, wrap(p)))
            }
            _ => queue.pop(),
        }
    }

    /// Like [`next`], but only delivers events with `time <= until`.
    ///
    /// This is the epoch-barrier primitive of the sharded runner: each
    /// shard drains its merged stream up to the barrier instant and
    /// stops, leaving strictly-later events (staged or queued) intact
    /// for the next epoch. Tie-breaking is identical to [`next`] —
    /// events *at* the barrier still fire inside the epoch, so a
    /// barrier at `t` is equivalent to pausing a sequential run right
    /// after the last event with `time <= t`.
    ///
    /// [`next`]: StagedStream::next
    pub fn next_until<E>(
        &mut self,
        queue: &mut EventQueue<E>,
        until: SimTime,
        wrap: impl FnOnce(P) -> E,
    ) -> Option<(SimTime, E)> {
        match self.peek_time(queue) {
            Some(t) if t <= until => self.next(queue, wrap),
            _ => None,
        }
    }

    /// The timestamp of the next event across the staged slice and the
    /// queue, without consuming it. `None` when both are exhausted.
    pub fn peek_time<E>(&self, queue: &EventQueue<E>) -> Option<SimTime> {
        let staged = self.staged.get(self.cursor).map(|&(t, _)| t);
        match (staged, queue.peek_time()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of staged entries not yet delivered.
    pub fn remaining(&self) -> usize {
        self.staged.len() - self.cursor
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (t, e) in iter {
            self.schedule(t, e);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (SimTime::from_millis(10), 1),
                (SimTime::from_millis(20), 2),
                (SimTime::from_millis(30), 3)
            ]
        );
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    /// Pins the tie-break contract the fault subsystem depends on:
    /// among equal-timestamp events, delivery order is *insertion*
    /// order — even when popping is interleaved with new same-instant
    /// scheduling, and regardless of heap internals. Recovery
    /// correctness needs this: a crash scheduled before a dispatch at
    /// the same tick must be delivered before that dispatch.
    #[test]
    fn same_instant_fifo_survives_interleaved_scheduling() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(t, "crash");
        q.schedule(t, "dispatch");
        assert_eq!(q.pop(), Some((t, "crash")));
        // Handling the crash schedules more work at the same instant; it
        // must land *behind* the already-pending dispatch.
        q.schedule(t, "rescale");
        q.schedule(t, "retry");
        assert_eq!(q.pop(), Some((t, "dispatch")));
        assert_eq!(q.pop(), Some((t, "rescale")));
        assert_eq!(q.pop(), Some((t, "retry")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_secs(2), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
    }

    /// `next_until` pauses a merged stream exactly where a sequential
    /// drain would be after the last event at the barrier instant —
    /// inclusive of barrier-time events, exclusive of anything later.
    #[test]
    fn next_until_stops_at_the_barrier_inclusively() {
        let arrivals = [
            (SimTime::from_millis(1), 0usize),
            (SimTime::from_millis(5), 1),
            (SimTime::from_millis(9), 2),
        ];
        let mut staged = StagedStream::new(&arrivals);
        let mut q: EventQueue<usize> = EventQueue::new();
        q.schedule(SimTime::from_millis(5), 10); // loses the t=5 tie
        q.schedule(SimTime::from_millis(7), 11);

        let barrier = SimTime::from_millis(5);
        let mut drained = Vec::new();
        while let Some((t, e)) = staged.next_until(&mut q, barrier, |p| p) {
            drained.push((t, e));
        }
        assert_eq!(
            drained,
            vec![
                (SimTime::from_millis(1), 0),
                (SimTime::from_millis(5), 1),
                (SimTime::from_millis(5), 10),
            ]
        );
        // Later events are untouched for the next epoch.
        assert_eq!(staged.remaining(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        // Resuming with the plain `next` drains the rest in order.
        assert_eq!(
            staged.next(&mut q, |p| p),
            Some((SimTime::from_millis(7), 11))
        );
        assert_eq!(
            staged.next(&mut q, |p| p),
            Some((SimTime::from_millis(9), 2))
        );
        assert_eq!(staged.next(&mut q, |p| p), None);
    }

    /// `peek_time` reports the merged head without consuming it.
    #[test]
    fn staged_peek_time_merges_both_sources() {
        let arrivals = [(SimTime::from_millis(4), 0usize)];
        let staged = StagedStream::new(&arrivals);
        let mut q: EventQueue<usize> = EventQueue::new();
        assert_eq!(staged.peek_time(&q), Some(SimTime::from_millis(4)));
        q.schedule(SimTime::from_millis(2), 1);
        assert_eq!(staged.peek_time(&q), Some(SimTime::from_millis(2)));
        assert_eq!(staged.remaining(), 1);
        assert_eq!(q.len(), 1);
    }

    proptest! {
        /// Epoch-chunked draining via `next_until` over arbitrary
        /// barriers yields the same event sequence as one sequential
        /// drain via `next`.
        #[test]
        fn prop_epoch_chunked_drain_equals_sequential(
            staged_times in prop::collection::vec(0u64..100, 0..40),
            queued_times in prop::collection::vec(0u64..100, 0..40),
            step in 1u64..30,
        ) {
            let mut staged_times = staged_times;
            staged_times.sort_unstable();
            let arrivals: Vec<(SimTime, usize)> = staged_times
                .iter()
                .enumerate()
                .map(|(i, &t)| (SimTime::from_millis(t), i))
                .collect();

            let build_queue = || -> EventQueue<usize> {
                let mut q = EventQueue::new();
                for (i, &t) in queued_times.iter().enumerate() {
                    q.schedule(SimTime::from_millis(t), 1000 + i);
                }
                q
            };

            let mut seq_stream = StagedStream::new(&arrivals);
            let mut seq_q = build_queue();
            let mut sequential = Vec::new();
            while let Some(ev) = seq_stream.next(&mut seq_q, |p| p) {
                sequential.push(ev);
            }

            let mut epoch_stream = StagedStream::new(&arrivals);
            let mut epoch_q = build_queue();
            let mut chunked = Vec::new();
            let mut barrier = SimTime::from_millis(step);
            let horizon = SimTime::from_millis(200);
            while barrier <= horizon {
                while let Some(ev) = epoch_stream.next_until(&mut epoch_q, barrier, |p| p) {
                    chunked.push(ev);
                }
                barrier += SimDuration::from_millis(step);
            }
            prop_assert_eq!(chunked, sequential);
        }
    }

    #[test]
    fn collects_from_iterator() {
        let q: EventQueue<u8> = (0..5u8)
            .map(|i| (SimTime::from_secs(i as u64), i))
            .collect();
        assert_eq!(q.len(), 5);
    }

    proptest! {
        /// Popped timestamps are non-decreasing regardless of insertion order.
        #[test]
        fn prop_pop_order_is_monotone(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// FIFO among equal timestamps for arbitrary time vectors: for
        /// any pair delivered at the same instant, the one scheduled
        /// first pops first.
        #[test]
        fn prop_equal_time_events_pop_in_insertion_order(
            times in prop::collection::vec(0u64..50, 1..200),
        ) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(*t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((lt, li)) = last {
                    if lt == t {
                        prop_assert!(li < i, "seq {li} and {i} swapped at {t}");
                    }
                }
                last = Some((t, i));
            }
        }

        /// Every scheduled event is delivered exactly once.
        #[test]
        fn prop_no_event_lost(times in prop::collection::vec(0u64..10_000, 1..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::ZERO + SimDuration::from_micros(*t), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
