//! Deterministic discrete-event simulation engine for the INFless
//! reproduction.
//!
//! The crate provides the minimal substrate every other crate in the
//! workspace builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time.
//!   The simulator never reads the wall clock, so every run is exactly
//!   reproducible from its seed.
//! * [`EventQueue`] — a stable priority queue of timestamped events.
//!   Events scheduled for the same instant pop in FIFO order, which keeps
//!   platform behaviour deterministic under ties.
//! * [`rng`] — seed-derivation helpers so that independent subsystems
//!   (workload generation, execution noise, …) draw from independent,
//!   reproducible streams.
//! * [`stats`] — streaming statistics (Welford mean/variance, percentile
//!   sketches, fixed-width histograms, time-weighted integrals) used by
//!   the schedulers, the LSTH/HHP cold-start policies and the benchmark
//!   harness.
//!
//! # Example
//!
//! ```
//! use infless_sim::{EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Arrive(u32), Done(u32) }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(10), Ev::Arrive(1));
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), Ev::Arrive(0));
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t, SimTime::from_millis(5));
//! assert_eq!(ev, Ev::Arrive(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod time;

pub mod rng;
pub mod stats;

pub use event::{EventQueue, ScheduledEvent, StagedStream};
pub use time::{SimDuration, SimTime};
