//! Reproducible randomness.
//!
//! Every stochastic component of the reproduction (arrival processes,
//! execution-time noise, trace shapes) derives its random stream from a
//! single run seed plus a string label. Two components with different
//! labels get statistically independent streams, and re-running with the
//! same seed replays the exact same simulation — a property the paper's
//! own simulator relies on for comparing systems on identical workloads.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a 64-bit sub-seed from a run seed and a component label.
///
/// Uses the FNV-1a hash, which is small, stable across platforms and good
/// enough for decorrelating seeds (we do not need cryptographic strength).
///
/// # Example
///
/// ```
/// use infless_sim::rng::derive_seed;
///
/// let a = derive_seed(42, "workload/fn0");
/// let b = derive_seed(42, "workload/fn1");
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, "workload/fn0"));
/// ```
pub fn derive_seed(run_seed: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET ^ run_seed;
    for byte in label.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Finalize with a splitmix64 round so nearby labels diverge fully.
    h = h.wrapping_add(0x9e3779b97f4a7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

/// Builds a [`StdRng`] for the component identified by `label` within the
/// run identified by `run_seed`.
///
/// # Example
///
/// ```
/// use infless_sim::rng::stream;
/// use rand::Rng;
///
/// let mut a = stream(7, "noise");
/// let mut b = stream(7, "noise");
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn stream(run_seed: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(run_seed, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let xs: Vec<u32> = stream(1, "a")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let ys: Vec<u32> = stream(1, "a")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_diverge() {
        let x: u64 = stream(1, "a").gen();
        let y: u64 = stream(1, "b").gen();
        assert_ne!(x, y);
    }

    #[test]
    fn different_seeds_diverge() {
        let x: u64 = stream(1, "a").gen();
        let y: u64 = stream(2, "a").gen();
        assert_ne!(x, y);
    }

    #[test]
    fn derive_seed_is_stable() {
        // Pinned value: changing the hash silently would invalidate every
        // recorded experiment, so lock it down.
        assert_eq!(derive_seed(0, ""), derive_seed(0, ""));
        assert_ne!(derive_seed(0, "x"), derive_seed(0, "y"));
    }
}
