//! Streaming statistics used across the reproduction.
//!
//! * [`Welford`] — numerically stable running mean / variance.
//! * [`Samples`] — exact quantiles over a retained sample set (the
//!   evaluation never stores more than a few million latencies, so exact
//!   quantiles are affordable and simpler to reason about than sketches).
//! * [`BinnedHistogram`] — fixed-width histogram over a bounded range;
//!   this is the structure the HHP/LSTH cold-start policies build over
//!   idle times (Shahrad et al. use 1-minute bins up to a 4-hour cap).
//! * [`TimeWeighted`] — the time integral of a step function, used for
//!   resource-seconds accounting (GB·s, core·s, SM·s).

use serde::{Deserialize, Serialize};

use crate::{SimDuration, SimTime};

/// Running mean and variance via Welford's algorithm.
///
/// # Example
///
/// ```
/// use infless_sim::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.add(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds an observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (dividing by n), or 0.0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }
}

/// An exact-quantile accumulator that retains every sample.
///
/// # Example
///
/// ```
/// use infless_sim::stats::Samples;
///
/// let mut s = Samples::new();
/// s.extend((1..=100).map(f64::from));
/// assert_eq!(s.quantile(0.5), Some(50.0));
/// assert_eq!(s.quantile(0.99), Some(99.0));
/// assert_eq!(s.max(), Some(100.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Samples {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Adds an observation. Non-finite values are ignored (they would
    /// poison every quantile).
    pub fn add(&mut self, x: f64) {
        if x.is_finite() {
            self.values.push(x);
            self.sorted = false;
        }
    }

    /// Number of retained observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no observations have been added.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `q`-quantile (nearest-rank), or `None` when empty.
    ///
    /// `q` is clamped to `[0, 1]`. On a [`Self::sort`]-ed sample set
    /// this is an index lookup; otherwise it selects in O(n) without
    /// mutating the set (reports pre-sort once at freeze time, so
    /// consumers never pay for repeated quantile reads).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.values.len() as f64 * q).ceil() as usize)
            .saturating_sub(1)
            .min(self.values.len() - 1);
        if self.sorted {
            return Some(self.values[idx]);
        }
        let mut tmp = self.values.clone();
        let (_, v, _) =
            tmp.select_nth_unstable_by(idx, |a, b| a.partial_cmp(b).expect("non-finite sample"));
        Some(*v)
    }

    /// Sorts the retained samples so subsequent [`Self::quantile`]
    /// reads are index lookups.
    pub fn sort(&mut self) {
        if !self.sorted {
            self.values
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
            self.sorted = true;
        }
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(a) => a.max(x),
            })
        })
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(a) => a.min(x),
            })
        })
    }

    /// Appends every observation of `other`, preserving `other`'s
    /// insertion order after this set's existing samples — the merge
    /// order shard-merging code relies on for determinism.
    pub fn merge_from(&mut self, other: &Samples) {
        if other.values.is_empty() {
            return;
        }
        self.values.extend_from_slice(&other.values);
        self.sorted = false;
    }

    /// Fraction of observations strictly greater than `threshold`
    /// (used for SLO-violation rates). Returns 0.0 when empty.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let n = self.values.iter().filter(|&&x| x > threshold).count();
        n as f64 / self.values.len() as f64
    }
}

impl Extend<f64> for Samples {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Samples::new();
        s.extend(iter);
        s
    }
}

/// A fixed-width histogram over `[0, bin_width * bins)` with an overflow
/// bucket, the structure HHP and LSTH build over function idle times.
///
/// # Example
///
/// ```
/// use infless_sim::stats::BinnedHistogram;
///
/// // 1-minute bins up to 4 hours, as in the hybrid histogram policy.
/// let mut h = BinnedHistogram::new(60.0, 240);
/// h.add(90.0);   // 1.5 min idle
/// h.add(150.0);  // 2.5 min idle
/// h.add(86_400.0); // a day: lands in the overflow bucket
/// assert_eq!(h.count(), 3);
/// // 5th percentile falls in the first occupied bin => its lower edge.
/// assert_eq!(h.quantile_lower_edge(0.05), Some(60.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedHistogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl BinnedHistogram {
    /// Creates a histogram with `bins` buckets of width `bin_width`
    /// (same unit as the values added, typically seconds).
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not strictly positive or `bins` is zero.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(bin_width > 0.0, "bin width must be positive");
        assert!(bins > 0, "need at least one bin");
        BinnedHistogram {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
        }
    }

    /// Adds an observation; negative values clamp into the first bin,
    /// values beyond the range land in the overflow bucket.
    pub fn add(&mut self, value: f64) {
        self.total += 1;
        if value < 0.0 {
            self.counts[0] += 1;
            return;
        }
        let idx = (value / self.bin_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total number of observations (including overflow).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Number of observations that fell past the last bin.
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// Fraction of observations in the overflow bucket.
    pub fn overflow_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.overflow as f64 / self.total as f64
        }
    }

    /// The *lower edge* of the bin containing the `q`-quantile, or the
    /// histogram's upper bound if the quantile falls in the overflow
    /// bucket. Returns `None` when the histogram is empty.
    ///
    /// HHP uses the head (5th percentile) lower edge as the pre-warm
    /// window and the tail (99th percentile) *upper* edge as the
    /// keep-alive window; see [`Self::quantile_upper_edge`].
    pub fn quantile_lower_edge(&self, q: f64) -> Option<f64> {
        self.quantile_bin(q).map(|b| b as f64 * self.bin_width)
    }

    /// The *upper edge* of the bin containing the `q`-quantile (a
    /// conservative over-estimate), or the histogram's range bound for
    /// overflow. Returns `None` when empty.
    pub fn quantile_upper_edge(&self, q: f64) -> Option<f64> {
        self.quantile_bin(q)
            .map(|b| (b + 1) as f64 * self.bin_width)
    }

    fn quantile_bin(&self, q: f64) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (self.total as f64 * q).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(i);
            }
        }
        // Quantile falls in the overflow bucket: treat as the last bin.
        Some(self.counts.len() - 1)
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different shapes.
    pub fn merge(&mut self, other: &BinnedHistogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin width mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Resets all buckets to zero.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.overflow = 0;
        self.total = 0;
    }

    /// The histogram's representable range upper bound.
    pub fn range_max(&self) -> f64 {
        self.bin_width * self.counts.len() as f64
    }
}

/// Integral of a right-continuous step function over simulated time;
/// used to account resource-seconds (e.g. core·s held by instances).
///
/// # Example
///
/// ```
/// use infless_sim::stats::TimeWeighted;
/// use infless_sim::SimTime;
///
/// let mut tw = TimeWeighted::new();
/// tw.set(SimTime::ZERO, 2.0);          // 2 cores from t=0
/// tw.set(SimTime::from_secs(10), 5.0); // 5 cores from t=10
/// assert_eq!(tw.integral_until(SimTime::from_secs(20)), 2.0 * 10.0 + 5.0 * 10.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    integral: f64,
}

impl TimeWeighted {
    /// Creates an accumulator starting at value 0 at `SimTime::ZERO`.
    pub fn new() -> Self {
        TimeWeighted::default()
    }

    /// Records that the tracked value becomes `value` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes an earlier update (time runs forward).
    pub fn set(&mut self, t: SimTime, value: f64) {
        let dt = (t - self.last_time).as_secs_f64();
        self.integral += self.last_value * dt;
        self.last_time = t;
        self.last_value = value;
    }

    /// Adds `delta` to the current value at time `t`.
    pub fn add(&mut self, t: SimTime, delta: f64) {
        let v = self.last_value + delta;
        self.set(t, v);
    }

    /// The current value of the step function.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// The integral up to time `t` (value·seconds).
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last update.
    pub fn integral_until(&self, t: SimTime) -> f64 {
        self.integral + self.last_value * (t - self.last_time).as_secs_f64()
    }

    /// The time-average of the value over `[ZERO, t]`, or 0.0 at t=0.
    pub fn average_until(&self, t: SimTime) -> f64 {
        let span = t.as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.integral_until(t) / span
        }
    }
}

/// Convenience: converts a slice of [`SimDuration`]s into a [`Samples`]
/// set of milliseconds, the unit every latency figure in the paper uses.
pub fn durations_to_millis(durations: &[SimDuration]) -> Samples {
    durations.iter().map(|d| d.as_millis_f64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.5, 3.5, 4.0, 100.0, -7.0];
        let mut w = Welford::new();
        xs.iter().for_each(|&x| w.add(x));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.population_variance() - var).abs() < 1e-9);
        assert_eq!(w.count(), xs.len() as u64);
    }

    #[test]
    fn empty_welford_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
    }

    #[test]
    fn samples_quantiles_nearest_rank() {
        let s: Samples = (1..=10).map(f64::from).collect();
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(0.1), Some(1.0));
        assert_eq!(s.quantile(0.5), Some(5.0));
        assert_eq!(s.quantile(1.0), Some(10.0));
        assert_eq!(s.quantile(2.0), Some(10.0)); // clamped
    }

    #[test]
    fn samples_ignore_non_finite() {
        let mut s = Samples::new();
        s.add(f64::NAN);
        s.add(f64::INFINITY);
        s.add(1.0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn fraction_above_counts_strictly() {
        let s: Samples = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.fraction_above(2.0), 0.5);
        assert_eq!(s.fraction_above(100.0), 0.0);
        assert_eq!(Samples::new().fraction_above(0.0), 0.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = BinnedHistogram::new(10.0, 5); // range [0, 50)
        h.add(0.0);
        h.add(9.99);
        h.add(10.0);
        h.add(49.99);
        h.add(50.0); // overflow
        h.add(-3.0); // clamps to first bin
        assert_eq!(h.count(), 6);
        assert_eq!(h.overflow_count(), 1);
        assert!((h.overflow_fraction() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantile_edges() {
        let mut h = BinnedHistogram::new(60.0, 240);
        for _ in 0..95 {
            h.add(120.0); // bin 2
        }
        for _ in 0..5 {
            h.add(30.0); // bin 0
        }
        assert_eq!(h.quantile_lower_edge(0.05), Some(0.0));
        assert_eq!(h.quantile_upper_edge(0.99), Some(180.0));
    }

    #[test]
    fn histogram_merge_and_clear() {
        let mut a = BinnedHistogram::new(1.0, 4);
        let mut b = BinnedHistogram::new(1.0, 4);
        a.add(0.5);
        b.add(2.5);
        b.add(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.overflow_count(), 1);
        a.clear();
        assert_eq!(a.count(), 0);
        assert_eq!(a.quantile_lower_edge(0.5), None);
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn histogram_merge_shape_mismatch_panics() {
        let mut a = BinnedHistogram::new(1.0, 4);
        let b = BinnedHistogram::new(2.0, 4);
        a.merge(&b);
    }

    #[test]
    fn time_weighted_integral() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::ZERO, 1.0);
        tw.add(SimTime::from_secs(5), 2.0); // value 3 from t=5
        assert_eq!(tw.current(), 3.0);
        assert_eq!(tw.integral_until(SimTime::from_secs(10)), 5.0 + 15.0);
        assert_eq!(tw.average_until(SimTime::from_secs(10)), 2.0);
        assert_eq!(TimeWeighted::new().average_until(SimTime::ZERO), 0.0);
    }

    proptest! {
        /// Quantiles are monotone in q.
        #[test]
        fn prop_sample_quantiles_monotone(
            xs in prop::collection::vec(-1e6f64..1e6, 1..300),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            let s: Samples = xs.into_iter().collect();
            let a = s.quantile(lo).unwrap();
            let b = s.quantile(hi).unwrap();
            prop_assert!(a <= b);
        }

        /// Histogram quantile edges are monotone in q and stay in range.
        #[test]
        fn prop_hist_quantiles_monotone(
            xs in prop::collection::vec(0.0f64..500.0, 1..300),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            let mut h = BinnedHistogram::new(10.0, 40);
            xs.iter().for_each(|&x| h.add(x));
            let a = h.quantile_lower_edge(lo).unwrap();
            let b = h.quantile_lower_edge(hi).unwrap();
            prop_assert!(a <= b);
            prop_assert!(b <= h.range_max());
        }

        /// The time-weighted integral of a constant function is value * span.
        #[test]
        fn prop_time_weighted_constant(v in -100.0f64..100.0, span in 1u64..10_000) {
            let mut tw = TimeWeighted::new();
            tw.set(SimTime::ZERO, v);
            let t = SimTime::from_secs(span);
            prop_assert!((tw.integral_until(t) - v * span as f64).abs() < 1e-6);
        }
    }
}
