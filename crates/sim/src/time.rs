//! Virtual time for the discrete-event simulator.
//!
//! Both types are thin newtypes over a microsecond count. Microsecond
//! resolution is fine-grained enough for sub-millisecond scheduling
//! overheads (Fig. 17a of the paper reports ~0.5 ms per instance) while a
//! `u64` still covers ~584 000 years of simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, measured in microseconds since the
/// start of the run.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. Durations
/// are added with `+`, and the distance between two instants is obtained
/// with `-` (which panics if the result would be negative — simulated time
/// never runs backwards).
///
/// # Example
///
/// ```
/// use infless_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(250);
/// assert_eq!(t.as_micros(), 250_000);
/// assert_eq!(t - SimTime::from_millis(100), SimDuration::from_millis(150));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
///
/// # Example
///
/// ```
/// use infless_sim::SimDuration;
///
/// let d = SimDuration::from_secs_f64(0.2);
/// assert_eq!(d.as_millis_f64(), 200.0);
/// assert_eq!(d * 3, SimDuration::from_millis(600));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel for deadlines that are disabled.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the start of the run.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the start of the run.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the start of the run.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration since `earlier`, or [`SimDuration::ZERO`] if `earlier`
    /// is in the future. The non-saturating form is the `-` operator.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The instant `d` before `self`, clamped at [`SimTime::ZERO`].
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable duration; used as an "effectively forever"
    /// keep-alive window.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000)
    }

    /// Creates a duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond and clamping negative inputs to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest microsecond and clamping negative inputs to zero.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// The duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// `true` if this is the empty duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a float factor, rounding to the nearest microsecond.
    /// Negative or non-finite factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`: elapsed time is never negative.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction went negative"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    /// Saturating: a longer duration subtracted from a shorter one is zero.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_millis(1_500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t.as_secs_f64(), 1.5);
        assert_eq!(t + SimDuration::from_millis(500), SimTime::from_secs(2));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(
            SimDuration::from_secs_f64(0.0005),
            SimDuration::from_micros(500)
        );
    }

    #[test]
    fn float_constructor_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn elapsed_time_is_a_duration() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(5);
        assert_eq!(b - a, SimDuration::from_secs(2));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_elapsed_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn duration_subtraction_saturates() {
        let short = SimDuration::from_millis(10);
        let long = SimDuration::from_millis(30);
        assert_eq!(short - long, SimDuration::ZERO);
        assert_eq!(long - short, SimDuration::from_millis(20));
    }

    #[test]
    fn mul_f64_rounds_to_microseconds() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(150));
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn min_max_helpers() {
        let a = SimDuration::from_millis(5);
        let b = SimDuration::from_millis(9);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
