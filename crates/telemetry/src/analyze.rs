//! Reading a decisions trace back: schema validation, decision
//! tallies, and SLO-violation attribution — the engine behind
//! `inflessctl trace analyze`.
//!
//! Attribution uses the per-request breakdown records: a completed
//! request whose end-to-end latency exceeded its SLO is attributed to
//! the decomposition stage (queueing / batch-wait / startup / execution
//! / interference) that consumed the most of its budget — the stage a
//! fix would have to shrink first.

use std::collections::BTreeMap;
use std::fmt;
use std::io::BufRead;
use std::path::Path;

use serde_json::Value;

use crate::decision::DecisionKind;

/// The five decomposition stages, in wire order.
pub const STAGES: [&str; 5] = [
    "queueing",
    "batch_wait",
    "startup",
    "execution",
    "interference",
];

/// Per-function violation attribution.
#[derive(Debug, Clone, Default)]
pub struct FunctionAttribution {
    /// Completed requests with a breakdown record.
    pub completed: u64,
    /// Requests whose end-to-end latency exceeded the SLO.
    pub violations: u64,
    /// Violations attributed to each stage (parallel to [`STAGES`]).
    pub attributed: [u64; 5],
    /// Mean fraction of the SLO the dominant stage consumed, over the
    /// function's violations.
    pub mean_dominant_share: f64,
}

impl FunctionAttribution {
    /// Index into [`STAGES`] of the stage dominating most violations,
    /// or `None` when the function had no violations.
    pub fn dominant_stage(&self) -> Option<usize> {
        if self.violations == 0 {
            return None;
        }
        let mut best = 0;
        for i in 1..5 {
            if self.attributed[i] > self.attributed[best] {
                best = i;
            }
        }
        Some(best)
    }
}

/// Everything `trace analyze` derives from a decisions trace.
#[derive(Debug, Clone, Default)]
pub struct DecisionAnalysis {
    /// Platform name from the metadata record.
    pub platform: String,
    /// Function names from the metadata record.
    pub functions: Vec<String>,
    /// Decision records parsed (excluding breakdowns and the metadata
    /// record).
    pub decisions: u64,
    /// Breakdown records parsed.
    pub breakdowns: u64,
    /// Decision records per kind (wire names).
    pub by_kind: BTreeMap<&'static str, u64>,
    /// Rejection reasons seen on `reject` records (wire names).
    pub reject_reasons: BTreeMap<String, u64>,
    /// Per-function violation attribution, indexed like `functions`.
    pub per_function: Vec<FunctionAttribution>,
}

impl DecisionAnalysis {
    /// Total SLO violations across functions.
    pub fn violations(&self) -> u64 {
        self.per_function.iter().map(|f| f.violations).sum()
    }

    /// Violations attributed to each stage, summed over functions.
    pub fn attributed_totals(&self) -> [u64; 5] {
        let mut out = [0u64; 5];
        for f in &self.per_function {
            for (total, n) in out.iter_mut().zip(f.attributed) {
                *total += n;
            }
        }
        out
    }
}

impl fmt::Display for DecisionAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "decisions: {} · {} decision records, {} breakdowns",
            self.platform, self.decisions, self.breakdowns
        )?;
        for (kind, n) in &self.by_kind {
            writeln!(f, "           {kind}: {n}")?;
        }
        if !self.reject_reasons.is_empty() {
            let reasons: Vec<String> = self
                .reject_reasons
                .iter()
                .map(|(r, n)| format!("{r} ×{n}"))
                .collect();
            writeln!(f, "rejects:   {}", reasons.join(", "))?;
        }
        writeln!(
            f,
            "violations: {} of {} completed requests exceeded their SLO",
            self.violations(),
            self.per_function.iter().map(|x| x.completed).sum::<u64>()
        )?;
        let totals = self.attributed_totals();
        if self.violations() > 0 {
            writeln!(
                f,
                "\ncritical path (violations attributed to their dominant stage):"
            )?;
            writeln!(
                f,
                "{:<14} {:>6} {:>9} {:>11} {:>8} {:>10} {:>13} {:>11}",
                "function",
                "viol",
                "queueing",
                "batch_wait",
                "startup",
                "execution",
                "interference",
                "slo share"
            )?;
            for (i, fa) in self.per_function.iter().enumerate() {
                if fa.violations == 0 {
                    continue;
                }
                let name = self
                    .functions
                    .get(i)
                    .map(String::as_str)
                    .unwrap_or("(unnamed)");
                writeln!(
                    f,
                    "{:<14} {:>6} {:>9} {:>11} {:>8} {:>10} {:>13} {:>10.0}%",
                    name,
                    fa.violations,
                    fa.attributed[0],
                    fa.attributed[1],
                    fa.attributed[2],
                    fa.attributed[3],
                    fa.attributed[4],
                    fa.mean_dominant_share * 100.0
                )?;
            }
            writeln!(
                f,
                "{:<14} {:>6} {:>9} {:>11} {:>8} {:>10} {:>13}",
                "total",
                self.violations(),
                totals[0],
                totals[1],
                totals[2],
                totals[3],
                totals[4]
            )?;
        }
        Ok(())
    }
}

fn field_f64(obj: &Value, key: &str, line_no: usize) -> Result<f64, String> {
    obj.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("line {line_no}: missing or non-numeric \"{key}\""))
}

fn field_u64(obj: &Value, key: &str, line_no: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("line {line_no}: missing or non-integer \"{key}\""))
}

fn field_str<'v>(obj: &'v Value, key: &str, line_no: usize) -> Result<&'v str, String> {
    obj.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {line_no}: missing or non-string \"{key}\""))
}

/// Parses and validates a decisions trace.
///
/// Validation is strict, like [`crate::summarize`]: the first line must
/// be the metadata record, every decision line must carry the fixed key
/// set with a known `kind` and `reason`, and every breakdown's five
/// components must sum to its recorded end-to-end latency (within float
/// tolerance). An empty or record-less file is an error.
///
/// # Errors
///
/// Returns a description of the first violated rule.
pub fn analyze<R: BufRead>(reader: R) -> Result<DecisionAnalysis, String> {
    let mut out = DecisionAnalysis::default();
    let mut dominant_share_sums: Vec<f64> = Vec::new();
    let mut saw_meta = false;
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line.map_err(|e| format!("line {line_no}: read error: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(&line)
            .map_err(|e| format!("line {line_no}: invalid JSON: {e}"))?;
        if line_no == 1 {
            let meta = value
                .get("meta")
                .ok_or_else(|| "line 1: expected the {\"meta\":…} record".to_string())?;
            out.platform = field_str(meta, "platform", line_no)?.to_string();
            let functions = meta
                .get("functions")
                .and_then(Value::as_array)
                .ok_or_else(|| "line 1: meta.functions must be an array".to_string())?;
            for f in functions {
                out.functions.push(
                    f.as_str()
                        .ok_or("line 1: non-string function name")?
                        .to_string(),
                );
            }
            out.per_function = vec![FunctionAttribution::default(); out.functions.len()];
            dominant_share_sums = vec![0.0; out.functions.len()];
            saw_meta = true;
            continue;
        }
        if !saw_meta {
            return Err(format!(
                "line {line_no}: records precede the {{\"meta\":…}} record"
            ));
        }
        let kind = field_str(&value, "kind", line_no)?;
        let function = field_u64(&value, "fn", line_no)? as usize;
        if function >= out.per_function.len() {
            out.per_function
                .resize(function + 1, FunctionAttribution::default());
            dominant_share_sums.resize(function + 1, 0.0);
        }
        if kind == "breakdown" {
            let slo_ms = field_f64(&value, "slo_ms", line_no)?;
            let parts = [
                field_f64(&value, "queue_ms", line_no)?,
                field_f64(&value, "batch_wait_ms", line_no)?,
                field_f64(&value, "startup_ms", line_no)?,
                field_f64(&value, "exec_ms", line_no)?,
                field_f64(&value, "interference_ms", line_no)?,
            ];
            let total = field_f64(&value, "total_ms", line_no)?;
            let sum: f64 = parts.iter().sum();
            let tol = 1e-6 * total.abs().max(1.0);
            if (sum - total).abs() > tol {
                return Err(format!(
                    "line {line_no}: breakdown components sum to {sum} but total_ms is {total}"
                ));
            }
            if parts.iter().any(|p| *p < -tol) {
                return Err(format!("line {line_no}: negative breakdown component"));
            }
            out.breakdowns += 1;
            let fa = &mut out.per_function[function];
            fa.completed += 1;
            if slo_ms > 0.0 && total > slo_ms {
                fa.violations += 1;
                let mut dominant = 0;
                for (s, p) in parts.iter().enumerate() {
                    if *p > parts[dominant] {
                        dominant = s;
                    }
                }
                fa.attributed[dominant] += 1;
                dominant_share_sums[function] += parts[dominant] / slo_ms;
            }
        } else {
            let parsed = DecisionKind::parse(kind)
                .ok_or_else(|| format!("line {line_no}: unknown decision kind {kind:?}"))?;
            let reason = field_str(&value, "reason", line_no)?;
            if crate::decision::DecisionReason::parse(reason).is_none() {
                return Err(format!("line {line_no}: unknown reason {reason:?}"));
            }
            field_f64(&value, "t_s", line_no)?;
            field_f64(&value, "value", line_no)?;
            field_f64(&value, "aux", line_no)?;
            out.decisions += 1;
            *out.by_kind.entry(parsed.name()).or_insert(0) += 1;
            if parsed == DecisionKind::Reject {
                *out.reject_reasons.entry(reason.to_string()).or_insert(0) += 1;
            }
        }
    }
    if !saw_meta {
        return Err("empty decisions trace: missing the {\"meta\":…} record".to_string());
    }
    if out.decisions + out.breakdowns == 0 {
        return Err("decisions trace contains no records after the metadata record".to_string());
    }
    for (i, fa) in out.per_function.iter_mut().enumerate() {
        if fa.violations > 0 {
            fa.mean_dominant_share = dominant_share_sums[i] / fa.violations as f64;
        }
    }
    Ok(out)
}

/// [`analyze`] over a file on disk.
///
/// # Errors
///
/// Returns the I/O error or the first schema violation, as text.
pub fn analyze_file(path: &Path) -> Result<DecisionAnalysis, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    analyze(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = concat!(
        "{\"meta\":{\"platform\":\"INFless\",\"functions\":[\"resnet\"]}}\n",
        "{\"t_s\":0.0,\"kind\":\"candidate\",\"fn\":0,\"seq\":0,\"req\":-1,\"inst\":-1,\"srv\":-1,\"batch\":4,\"cpu\":2,\"gpu\":0,\"reason\":\"none\",\"value\":0.5,\"aux\":12.0}\n",
        "{\"t_s\":0.0,\"kind\":\"reject\",\"fn\":0,\"seq\":1,\"req\":-1,\"inst\":-1,\"srv\":-1,\"batch\":32,\"cpu\":1,\"gpu\":0,\"reason\":\"window\",\"value\":0.0,\"aux\":0.0}\n",
        "{\"t_s\":0.1,\"kind\":\"chosen\",\"fn\":0,\"seq\":2,\"req\":-1,\"inst\":-1,\"srv\":-1,\"batch\":4,\"cpu\":2,\"gpu\":0,\"reason\":\"none\",\"value\":0.5,\"aux\":0.97}\n",
        "{\"t_s\":0.2,\"kind\":\"launch\",\"fn\":0,\"seq\":3,\"req\":-1,\"inst\":0,\"srv\":1,\"batch\":0,\"cpu\":0,\"gpu\":0,\"reason\":\"cold_boot\",\"value\":5.0,\"aux\":0.0}\n",
        // Violation dominated by startup: 120 > 100 SLO.
        "{\"t_s\":5.5,\"kind\":\"breakdown\",\"fn\":0,\"seq\":4,\"req\":0,\"slo_ms\":100,\"queue_ms\":5,\"batch_wait_ms\":5,\"startup_ms\":90,\"exec_ms\":18,\"interference_ms\":2,\"total_ms\":120}\n",
        // In-SLO request: not a violation.
        "{\"t_s\":5.6,\"kind\":\"breakdown\",\"fn\":0,\"seq\":5,\"req\":1,\"slo_ms\":100,\"queue_ms\":1,\"batch_wait_ms\":4,\"startup_ms\":0,\"exec_ms\":20,\"interference_ms\":5,\"total_ms\":30}\n",
    );

    #[test]
    fn good_trace_analyzes_and_attributes() {
        let a = analyze(GOOD.as_bytes()).unwrap();
        assert_eq!(a.platform, "INFless");
        assert_eq!(a.decisions, 4);
        assert_eq!(a.breakdowns, 2);
        assert_eq!(a.by_kind.get("candidate"), Some(&1));
        assert_eq!(a.reject_reasons.get("window"), Some(&1));
        assert_eq!(a.violations(), 1);
        let fa = &a.per_function[0];
        assert_eq!(fa.completed, 2);
        // Dominant stage of the one violation is startup (index 2).
        assert_eq!(fa.attributed, [0, 0, 1, 0, 0]);
        assert_eq!(fa.dominant_stage(), Some(2));
        assert!((fa.mean_dominant_share - 0.9).abs() < 1e-9);
        let text = a.to_string();
        assert!(text.contains("critical path"));
        assert!(text.contains("resnet"));
    }

    #[test]
    fn component_sum_mismatch_is_rejected() {
        let trace = concat!(
            "{\"meta\":{\"platform\":\"x\",\"functions\":[\"f\"]}}\n",
            "{\"t_s\":1.0,\"kind\":\"breakdown\",\"fn\":0,\"seq\":0,\"req\":0,\"slo_ms\":100,\
             \"queue_ms\":1,\"batch_wait_ms\":1,\"startup_ms\":1,\"exec_ms\":1,\
             \"interference_ms\":1,\"total_ms\":50}\n",
        );
        assert!(analyze(trace.as_bytes()).unwrap_err().contains("sum"));
    }

    #[test]
    fn unknown_kind_and_empty_trace_are_rejected() {
        let bad = concat!(
            "{\"meta\":{\"platform\":\"x\",\"functions\":[]}}\n",
            "{\"t_s\":1.0,\"kind\":\"mystery\",\"fn\":0,\"seq\":0,\"req\":-1,\"inst\":-1,\
             \"srv\":-1,\"batch\":0,\"cpu\":0,\"gpu\":0,\"reason\":\"none\",\"value\":0,\"aux\":0}\n",
        );
        assert!(analyze(bad.as_bytes()).unwrap_err().contains("unknown"));
        assert!(analyze("".as_bytes()).unwrap_err().contains("empty"));
        let meta_only = "{\"meta\":{\"platform\":\"x\",\"functions\":[]}}\n";
        assert!(analyze(meta_only.as_bytes())
            .unwrap_err()
            .contains("no records"));
    }
}
