//! Decision-level observability: why the platform did what it did.
//!
//! Lifecycle spans ([`crate::SpanEvent`]) say *what* happened to a
//! request; decision events say *why* the platform acted — which
//! ⟨b,c,g⟩ candidates Algorithm 1 rejected and for what reason, whether
//! a consolidation transaction committed or rolled back, which
//! keep-alive window expired an instance, whether a launch was a cold
//! boot / pre-warmed attach / host-cache swap-in, and why continuous
//! batching turned a joiner away. The same channel carries per-request
//! SLO latency decompositions ([`BreakdownEvent`]), so `trace analyze`
//! can attribute every violation to the stage that consumed the budget.
//!
//! The emission contract is the span contract: gated on
//! [`crate::TelemetrySink::decisions_enabled`], no RNG draws, no event
//! scheduling, `Copy` all-numeric records. Decision values are derived
//! from shard-invariant quantities, so a trace merged at epoch barriers
//! is byte-identical for every shard count.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use crate::sink::TraceMeta;

/// What kind of decision a [`DecisionEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionKind {
    /// Algorithm 1 evaluated one ⟨b,c,g⟩ grid candidate for a function
    /// (`value` = efficiency density `r_up / weighted`, `aux` = the
    /// candidate's predicted execution latency in ms). Emitted once per
    /// function, on its first traced scheduling pass.
    Candidate,
    /// A scheduling round chose a config (`value` = its effective
    /// density after the startup-cost discount, `aux` = the discount
    /// factor itself).
    Chosen,
    /// A scheduling round rejected a candidate set or left demand
    /// unplaced; `reason` says why (`value` is reason-specific, e.g.
    /// the residual RPS that stayed unplaced).
    Reject,
    /// One scale-out pass finished (`value` = instances launched,
    /// `aux` = residual RPS the pass was asked to place).
    ScaleOut,
    /// A consolidation transaction opened (`value` = the current
    /// deployment's capacity density it must beat).
    Consolidate,
    /// The consolidation transaction committed (`value` = the fresh
    /// deployment's density, `aux` = weighted-capacity delta).
    ConsolidateCommit,
    /// The consolidation transaction rolled back (`reason` says why;
    /// `value`/`aux` carry the rejected trial's numbers).
    ConsolidateRollback,
    /// A keep-alive window expired an instance (`value` = the LSTH
    /// tail-window keep-alive in seconds that triggered the eviction,
    /// `aux` = how long the instance had idled).
    Evict,
    /// An instance launch chose its startup path (`reason` =
    /// `cold_boot`/`pre_warmed`/`swap_in`, `value` = startup delay s).
    Launch,
    /// Continuous batching admitted a sequence (`value` = KV tokens
    /// reserved, `aux` = arena tokens still free afterwards).
    Admit,
    /// Continuous batching rejected a joiner on KV headroom
    /// (`value` = tokens the sequence needed, `aux` = tokens free).
    CacheFull,
}

impl DecisionKind {
    /// Stable wire name (the JSONL `kind` field).
    pub fn name(self) -> &'static str {
        match self {
            DecisionKind::Candidate => "candidate",
            DecisionKind::Chosen => "chosen",
            DecisionKind::Reject => "reject",
            DecisionKind::ScaleOut => "scale_out",
            DecisionKind::Consolidate => "consolidate_begin",
            DecisionKind::ConsolidateCommit => "consolidate_commit",
            DecisionKind::ConsolidateRollback => "consolidate_rollback",
            DecisionKind::Evict => "evict",
            DecisionKind::Launch => "launch",
            DecisionKind::Admit => "admit",
            DecisionKind::CacheFull => "cache_full",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "candidate" => DecisionKind::Candidate,
            "chosen" => DecisionKind::Chosen,
            "reject" => DecisionKind::Reject,
            "scale_out" => DecisionKind::ScaleOut,
            "consolidate_begin" => DecisionKind::Consolidate,
            "consolidate_commit" => DecisionKind::ConsolidateCommit,
            "consolidate_rollback" => DecisionKind::ConsolidateRollback,
            "evict" => DecisionKind::Evict,
            "launch" => DecisionKind::Launch,
            "admit" => DecisionKind::Admit,
            "cache_full" => DecisionKind::CacheFull,
            _ => return None,
        })
    }
}

/// Why a candidate, trial, or joiner was turned away (or which startup
/// path a launch took). [`DecisionReason::None`] everywhere a decision
/// needs no annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionReason {
    /// No annotation.
    None,
    /// The predictor has no profile for the candidate.
    NoProfile,
    /// No feasible RPS window: the candidate cannot meet the latency
    /// SLO at any supported rate.
    Window,
    /// The candidate's prefill latency exceeds the TTFT SLO.
    Ttft,
    /// The candidate's decode-step latency exceeds the TPOT SLO.
    Tpot,
    /// Placement failed: no server could fit the config's cores, SM
    /// share, and memory footprint.
    Memory,
    /// The batched candidate set was skipped because the residual RPS
    /// fell below the set's lower window bound.
    ResidualCap,
    /// Demand stayed unplaced at the end of the pass.
    Unplaced,
    /// Consolidation's trial deployment did not clear the density gain
    /// threshold.
    InsufficientGain,
    /// The launch is a cold boot.
    ColdBoot,
    /// The launch attaches to a pre-warmed container.
    PreWarmed,
    /// The launch swaps model weights in from the host cache.
    SwapIn,
}

impl DecisionReason {
    /// Stable wire name (the JSONL `reason` field).
    pub fn name(self) -> &'static str {
        match self {
            DecisionReason::None => "none",
            DecisionReason::NoProfile => "no_profile",
            DecisionReason::Window => "window",
            DecisionReason::Ttft => "ttft",
            DecisionReason::Tpot => "tpot",
            DecisionReason::Memory => "memory",
            DecisionReason::ResidualCap => "residual_cap",
            DecisionReason::Unplaced => "unplaced",
            DecisionReason::InsufficientGain => "insufficient_gain",
            DecisionReason::ColdBoot => "cold_boot",
            DecisionReason::PreWarmed => "pre_warmed",
            DecisionReason::SwapIn => "swap_in",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "none" => DecisionReason::None,
            "no_profile" => DecisionReason::NoProfile,
            "window" => DecisionReason::Window,
            "ttft" => DecisionReason::Ttft,
            "tpot" => DecisionReason::Tpot,
            "memory" => DecisionReason::Memory,
            "residual_cap" => DecisionReason::ResidualCap,
            "unplaced" => DecisionReason::Unplaced,
            "insufficient_gain" => DecisionReason::InsufficientGain,
            "cold_boot" => DecisionReason::ColdBoot,
            "pre_warmed" => DecisionReason::PreWarmed,
            "swap_in" => DecisionReason::SwapIn,
            _ => return None,
        })
    }
}

/// One decision. `Copy` and all-numeric like [`crate::SpanEvent`]:
/// recording one is a struct copy, never an allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionEvent {
    /// Simulated timestamp, seconds.
    pub t_s: f64,
    /// What was decided.
    pub kind: DecisionKind,
    /// Function index the decision concerns.
    pub function: u32,
    /// Per-function emission sequence number — with `(t_s, function)`
    /// it totally orders a merged multi-shard trace.
    pub seq: u64,
    /// Request id for request-scoped decisions (admit/cache_full), -1
    /// otherwise.
    pub request: i64,
    /// Instance id, or -1 when no instance is involved.
    pub instance: i64,
    /// Server id, or -1 when no server is involved.
    pub server: i64,
    /// Candidate/chosen batch size `b`, 0 when not config-scoped.
    pub batch: u32,
    /// Candidate/chosen CPU cores `c`.
    pub cpu: u32,
    /// Candidate/chosen GPU SM share `g` (percent).
    pub gpu: u32,
    /// Rejection reason or startup path.
    pub reason: DecisionReason,
    /// Kind-specific primary value (see [`DecisionKind`] docs).
    pub value: f64,
    /// Kind-specific secondary value.
    pub aux: f64,
}

impl DecisionEvent {
    /// A blank event of `kind`: all ids -1, numbers zero, reason
    /// [`DecisionReason::None`]. The emitter fills what applies;
    /// `t_s`/`function`/`seq` are stamped by the engine.
    pub fn new(kind: DecisionKind) -> Self {
        DecisionEvent {
            t_s: 0.0,
            kind,
            function: 0,
            seq: 0,
            request: -1,
            instance: -1,
            server: -1,
            batch: 0,
            cpu: 0,
            gpu: 0,
            reason: DecisionReason::None,
            value: 0.0,
            aux: 0.0,
        }
    }
}

/// Per-request SLO latency decomposition, emitted at completion. The
/// five components partition the end-to-end latency exactly:
/// `queue + batch_wait + startup + exec + interference == total`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakdownEvent {
    /// Completion timestamp, seconds.
    pub t_s: f64,
    /// Function index.
    pub function: u32,
    /// Per-function emission sequence number (shared counter with
    /// [`DecisionEvent::seq`]).
    pub seq: u64,
    /// Request id.
    pub request: u64,
    /// The function's latency SLO, ms.
    pub slo_ms: f64,
    /// Arrival → (final) instance enqueue: gateway dispatch, pending
    /// backlog, and fault-retry delay.
    pub queue_ms: f64,
    /// Enqueue → batch start, net of startup overlap: time spent
    /// waiting for the batch to fill or time out.
    pub batch_wait_ms: f64,
    /// Cold-start / swap-in time the request observed.
    pub startup_ms: f64,
    /// Execution at the profiled (noise-adjusted) speed.
    pub exec_ms: f64,
    /// Execution stretch from MPS co-residence and stragglers.
    pub interference_ms: f64,
    /// End-to-end latency — the same number the run report records.
    pub total_ms: f64,
}

/// One record on the decisions channel: a decision or a per-request
/// latency breakdown. Both land in the same JSONL artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecisionRecord {
    /// A platform decision.
    Decision(DecisionEvent),
    /// A completed request's latency decomposition.
    Breakdown(BreakdownEvent),
}

impl DecisionRecord {
    /// Timestamp, seconds.
    pub fn t_s(&self) -> f64 {
        match self {
            DecisionRecord::Decision(d) => d.t_s,
            DecisionRecord::Breakdown(b) => b.t_s,
        }
    }

    /// Function index.
    pub fn function(&self) -> u32 {
        match self {
            DecisionRecord::Decision(d) => d.function,
            DecisionRecord::Breakdown(b) => b.function,
        }
    }

    /// Per-function emission sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            DecisionRecord::Decision(d) => d.seq,
            DecisionRecord::Breakdown(b) => b.seq,
        }
    }

    /// The total order a merged multi-shard trace is sorted by:
    /// `(t_s, function, seq)`. Within one function `seq` is unique, so
    /// the order is total and merge output is byte-identical no matter
    /// which shard buffered which record.
    pub fn sort_key(&self) -> (f64, u32, u64) {
        (self.t_s(), self.function(), self.seq())
    }

    /// Renders the record as one JSONL line (no trailing newline) into
    /// `out`, which is cleared first.
    pub fn render(&self, out: &mut String) {
        out.clear();
        match self {
            DecisionRecord::Decision(d) => {
                write!(
                    out,
                    "{{\"t_s\":{},\"kind\":\"{}\",\"fn\":{},\"seq\":{},\"req\":{},\"inst\":{},\
                     \"srv\":{},\"batch\":{},\"cpu\":{},\"gpu\":{},\"reason\":\"{}\",\
                     \"value\":{},\"aux\":{}}}",
                    d.t_s,
                    d.kind.name(),
                    d.function,
                    d.seq,
                    d.request,
                    d.instance,
                    d.server,
                    d.batch,
                    d.cpu,
                    d.gpu,
                    d.reason.name(),
                    d.value,
                    d.aux,
                )
                .expect("write to String cannot fail");
            }
            DecisionRecord::Breakdown(b) => {
                write!(
                    out,
                    "{{\"t_s\":{},\"kind\":\"breakdown\",\"fn\":{},\"seq\":{},\"req\":{},\
                     \"slo_ms\":{},\"queue_ms\":{},\"batch_wait_ms\":{},\"startup_ms\":{},\
                     \"exec_ms\":{},\"interference_ms\":{},\"total_ms\":{}}}",
                    b.t_s,
                    b.function,
                    b.seq,
                    b.request,
                    b.slo_ms,
                    b.queue_ms,
                    b.batch_wait_ms,
                    b.startup_ms,
                    b.exec_ms,
                    b.interference_ms,
                    b.total_ms,
                )
                .expect("write to String cannot fail");
            }
        }
    }
}

/// Writes a complete decisions trace: the metadata record followed by
/// every record, in slice order. The sharded runner sorts its merged
/// buffer by [`DecisionRecord::sort_key`] first, which makes the file
/// byte-identical for every shard count.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_decision_trace(
    path: &Path,
    meta: &TraceMeta,
    records: &[DecisionRecord],
) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    let mut line = String::with_capacity(256);
    crate::sink::render_meta(meta, &mut line);
    out.write_all(line.as_bytes())?;
    for rec in records {
        rec.render(&mut line);
        line.push('\n');
        out.write_all(line.as_bytes())?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_names_round_trip() {
        for kind in [
            DecisionKind::Candidate,
            DecisionKind::Chosen,
            DecisionKind::Reject,
            DecisionKind::ScaleOut,
            DecisionKind::Consolidate,
            DecisionKind::ConsolidateCommit,
            DecisionKind::ConsolidateRollback,
            DecisionKind::Evict,
            DecisionKind::Launch,
            DecisionKind::Admit,
            DecisionKind::CacheFull,
        ] {
            assert_eq!(DecisionKind::parse(kind.name()), Some(kind));
        }
        for reason in [
            DecisionReason::None,
            DecisionReason::NoProfile,
            DecisionReason::Window,
            DecisionReason::Ttft,
            DecisionReason::Tpot,
            DecisionReason::Memory,
            DecisionReason::ResidualCap,
            DecisionReason::Unplaced,
            DecisionReason::InsufficientGain,
            DecisionReason::ColdBoot,
            DecisionReason::PreWarmed,
            DecisionReason::SwapIn,
        ] {
            assert_eq!(DecisionReason::parse(reason.name()), Some(reason));
        }
        assert_eq!(DecisionKind::parse("bogus"), None);
        assert_eq!(DecisionReason::parse("bogus"), None);
        // "breakdown" is a record discriminator, not a decision kind.
        assert_eq!(DecisionKind::parse("breakdown"), None);
    }

    #[test]
    fn render_is_fixed_key_json() {
        let mut d = DecisionEvent::new(DecisionKind::Chosen);
        d.t_s = 1.5;
        d.function = 2;
        d.seq = 7;
        d.batch = 8;
        d.cpu = 4;
        d.gpu = 20;
        d.value = 0.25;
        d.aux = 0.9;
        let mut line = String::new();
        DecisionRecord::Decision(d).render(&mut line);
        assert_eq!(
            line,
            "{\"t_s\":1.5,\"kind\":\"chosen\",\"fn\":2,\"seq\":7,\"req\":-1,\"inst\":-1,\
             \"srv\":-1,\"batch\":8,\"cpu\":4,\"gpu\":20,\"reason\":\"none\",\
             \"value\":0.25,\"aux\":0.9}"
        );
        let b = BreakdownEvent {
            t_s: 2.0,
            function: 0,
            seq: 9,
            request: 41,
            slo_ms: 100.0,
            queue_ms: 1.0,
            batch_wait_ms: 2.0,
            startup_ms: 0.0,
            exec_ms: 20.0,
            interference_ms: 3.0,
            total_ms: 26.0,
        };
        DecisionRecord::Breakdown(b).render(&mut line);
        assert!(line.contains("\"kind\":\"breakdown\""));
        assert!(line.contains("\"total_ms\":26"));
    }

    #[test]
    fn sort_key_orders_merged_records() {
        let mut a = DecisionEvent::new(DecisionKind::Launch);
        a.t_s = 1.0;
        a.function = 1;
        a.seq = 0;
        let mut b = a;
        b.function = 0;
        b.seq = 3;
        let mut records = [DecisionRecord::Decision(a), DecisionRecord::Decision(b)];
        records.sort_by(|x, y| {
            let (tx, fx, sx) = x.sort_key();
            let (ty, fy, sy) = y.sort_key();
            tx.total_cmp(&ty).then(fx.cmp(&fy)).then(sx.cmp(&sy))
        });
        assert_eq!(records[0].function(), 0);
    }
}
