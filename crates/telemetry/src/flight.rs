//! Flight recorder: a bounded ring of recent spans, dumped to JSONL
//! when a fault burst hits — the postmortem artifact for runs where the
//! interesting window is the seconds *before* things went wrong.
//!
//! [`FlightRecorder`] wraps any inner sink and forwards every call, so
//! it composes with a [`crate::FileSink`] or [`crate::NullSink`]
//! unchanged. It keeps the last [`FlightRecorder::capacity`] spans in a
//! ring; when at least `burst_threshold` fault-tagged spans land within
//! `burst_window` seconds, the whole ring is appended to the dump file
//! (a burst-header record followed by the spans), and the burst
//! detector re-arms. Dumps are capped so a pathological run cannot
//! fill the disk.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

use crate::decision::DecisionRecord;
use crate::sink::{FaultTag, SpanEvent, TelemetrySink, TraceMeta};
use crate::timeseries::GaugeRow;

/// Default ring capacity (spans kept for a postmortem dump).
pub const FLIGHT_RING_CAPACITY: usize = 2048;
/// Default burst threshold: fault-tagged spans within the window that
/// trigger a dump.
pub const FLIGHT_BURST_THRESHOLD: usize = 8;
/// Default burst window, simulated seconds.
pub const FLIGHT_BURST_WINDOW_S: f64 = 5.0;
/// Most dumps one run may write.
pub const FLIGHT_MAX_DUMPS: usize = 16;

/// See the [module docs](self).
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Box<dyn TelemetrySink>,
    ring: VecDeque<SpanEvent>,
    capacity: usize,
    /// Timestamps of recent fault-tagged spans, oldest first.
    fault_times: VecDeque<f64>,
    burst_threshold: usize,
    burst_window: f64,
    path: PathBuf,
    dumps: usize,
    line: String,
}

impl FlightRecorder {
    /// Wraps `inner`, dumping to `path` with the default ring size and
    /// burst parameters.
    pub fn new(inner: Box<dyn TelemetrySink>, path: PathBuf) -> Self {
        Self::with_params(
            inner,
            path,
            FLIGHT_RING_CAPACITY,
            FLIGHT_BURST_THRESHOLD,
            FLIGHT_BURST_WINDOW_S,
        )
    }

    /// Wraps `inner` with explicit ring capacity and burst parameters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `burst_threshold` is zero, or the window
    /// is not positive.
    pub fn with_params(
        inner: Box<dyn TelemetrySink>,
        path: PathBuf,
        capacity: usize,
        burst_threshold: usize,
        burst_window: f64,
    ) -> Self {
        assert!(capacity > 0, "flight ring must hold at least one span");
        assert!(burst_threshold > 0, "burst threshold must be positive");
        assert!(burst_window > 0.0, "burst window must be positive");
        FlightRecorder {
            inner,
            ring: VecDeque::with_capacity(capacity),
            capacity,
            fault_times: VecDeque::new(),
            burst_threshold,
            burst_window,
            path,
            dumps: 0,
            line: String::with_capacity(256),
        }
    }

    /// How many spans the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Dumps written so far.
    pub fn dumps(&self) -> usize {
        self.dumps
    }

    fn dump(&mut self, t_s: f64) {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .expect("open flight-recorder dump");
        let mut out = BufWriter::new(file);
        self.line.clear();
        writeln!(
            self.line,
            "{{\"burst\":{{\"t_s\":{t_s},\"faults\":{},\"spans\":{}}}}}",
            self.fault_times.len(),
            self.ring.len(),
        )
        .expect("write to String cannot fail");
        out.write_all(self.line.as_bytes())
            .expect("write flight-recorder dump");
        for span in &self.ring {
            self.line.clear();
            writeln!(
                self.line,
                "{{\"t_s\":{},\"kind\":\"{}\",\"req\":{},\"fn\":{},\"inst\":{},\"srv\":{},\
                 \"batch\":{},\"fault\":\"{}\"}}",
                span.t_s,
                span.kind.name(),
                span.request,
                span.function,
                span.instance,
                span.server,
                span.batch,
                span.fault.name(),
            )
            .expect("write to String cannot fail");
            out.write_all(self.line.as_bytes())
                .expect("write flight-recorder dump");
        }
        out.flush().expect("flush flight-recorder dump");
        self.dumps += 1;
    }
}

impl TelemetrySink for FlightRecorder {
    fn enabled(&self) -> bool {
        // The recorder needs spans even when the inner sink is off.
        true
    }

    fn begin(&mut self, meta: &TraceMeta) {
        self.inner.begin(meta);
    }

    fn record(&mut self, span: SpanEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(span);
        if span.fault != FaultTag::None {
            self.fault_times.push_back(span.t_s);
            while let Some(&front) = self.fault_times.front() {
                if span.t_s - front > self.burst_window {
                    self.fault_times.pop_front();
                } else {
                    break;
                }
            }
            if self.fault_times.len() >= self.burst_threshold && self.dumps < FLIGHT_MAX_DUMPS {
                self.dump(span.t_s);
                // Re-arm: a sustained fault storm produces one dump per
                // threshold-worth of new faults, not one per span.
                self.fault_times.clear();
            }
        }
        self.inner.record(span);
    }

    fn sample(&mut self, row: &GaugeRow) {
        self.inner.sample(row);
    }

    fn decisions_enabled(&self) -> bool {
        self.inner.decisions_enabled()
    }

    fn record_decision(&mut self, rec: &DecisionRecord) {
        self.inner.record_decision(rec);
    }

    fn finish(&mut self) {
        self.inner.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{MemorySink, SpanKind};

    fn span(t_s: f64, fault: FaultTag) -> SpanEvent {
        SpanEvent {
            t_s,
            kind: SpanKind::Displaced,
            request: 0,
            function: 0,
            instance: 0,
            server: 0,
            batch: 0,
            fault,
        }
    }

    #[test]
    fn burst_triggers_one_dump_and_forwards_to_inner() {
        let dir = std::env::temp_dir();
        let path = dir.join("infless-flight-test.jsonl");
        std::fs::remove_file(&path).ok();
        let inner = MemorySink::new();
        let mut rec =
            FlightRecorder::with_params(Box::new(inner.clone()), path.clone(), 16, 3, 5.0);
        // Background traffic, no faults: no dump.
        for i in 0..10 {
            rec.record(span(i as f64 * 0.1, FaultTag::None));
        }
        assert_eq!(rec.dumps(), 0);
        // Three fault spans inside the window: one dump, ring included.
        rec.record(span(2.0, FaultTag::ServerCrash));
        rec.record(span(2.1, FaultTag::InstanceKill));
        assert_eq!(rec.dumps(), 0);
        rec.record(span(2.2, FaultTag::InstanceKill));
        assert_eq!(rec.dumps(), 1);
        // Detector re-armed: the next lone fault does not dump again.
        rec.record(span(2.3, FaultTag::InstanceKill));
        assert_eq!(rec.dumps(), 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let first = text.lines().next().unwrap();
        assert!(first.contains("\"burst\""), "got {first}");
        assert!(first.contains("\"faults\":3"));
        // Ring capacity 16 ⇒ the dump holds the 13 spans recorded
        // so far (10 background + 3 faults), plus the header.
        assert_eq!(text.lines().count(), 14);
        // Every span still reached the inner sink.
        assert_eq!(inner.store().spans.len(), 14);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn faults_outside_the_window_do_not_accumulate() {
        let dir = std::env::temp_dir();
        let path = dir.join("infless-flight-window-test.jsonl");
        std::fs::remove_file(&path).ok();
        let mut rec =
            FlightRecorder::with_params(Box::new(crate::NullSink), path.clone(), 8, 2, 1.0);
        rec.record(span(0.0, FaultTag::ServerCrash));
        // 10 s later: the first fault left the window.
        rec.record(span(10.0, FaultTag::ServerCrash));
        assert_eq!(rec.dumps(), 0);
        rec.record(span(10.5, FaultTag::ServerCrash));
        assert_eq!(rec.dumps(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ring_is_bounded() {
        let dir = std::env::temp_dir();
        let path = dir.join("infless-flight-bound-test.jsonl");
        std::fs::remove_file(&path).ok();
        let mut rec =
            FlightRecorder::with_params(Box::new(crate::NullSink), path.clone(), 4, 1, 1.0);
        for i in 0..100 {
            rec.record(span(i as f64, FaultTag::None));
        }
        rec.record(span(100.0, FaultTag::ServerCrash));
        let text = std::fs::read_to_string(&path).unwrap();
        // Header + at most 4 ring spans.
        assert_eq!(text.lines().count(), 5);
        std::fs::remove_file(&path).ok();
    }
}
