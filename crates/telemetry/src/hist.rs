//! Log2-bucketed histogram with a documented relative-error bound.

use serde::{Deserialize, Serialize};

/// Sub-buckets per power of two. With 128 sub-buckets an octave, each
/// bucket spans a `2^(1/128)` ratio, so reporting the geometric
/// midpoint of a bucket is off from any member by at most
/// `2^(1/256) − 1 ≈ 0.27 %` — comfortably inside the advertised `2⁻⁷ ≈
/// 0.78 %` relative bound.
const SUB_BUCKETS: f64 = 128.0;

/// A log2-bucketed histogram over non-negative values.
///
/// Replaces the retain-every-sample-and-sort quantile path in the run
/// report: memory is bounded by the dynamic range (≈ 128 buckets per
/// factor of two, so a run whose latencies span 1 ms – 100 s needs at
/// most ~2 200 buckets regardless of request count), and
/// [`quantile`](Self::quantile) is a single cumulative walk.
///
/// Accuracy: quantiles are exact at the extremes (the true minimum and
/// maximum are tracked separately, so `quantile(0.0)` and
/// `quantile(1.0)` carry no bucketing error) and within a relative
/// error of `2^(1/256) − 1 < 2⁻⁷` everywhere else. [`mean`](Self::mean)
/// is exact (running sum). Non-finite values are ignored, mirroring
/// `Samples`; negative values clamp to zero and land in a dedicated
/// zero bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Log2Histogram {
    /// `(bucket index, count)`, sorted by index. The bucket with index
    /// `i` covers `[2^(i/128), 2^((i+1)/128))`.
    buckets: Vec<(i32, u64)>,
    /// Observations that were exactly zero (or clamped up to it).
    zero_count: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: Vec::new(),
            zero_count: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn index(v: f64) -> i32 {
        (v.log2() * SUB_BUCKETS).floor() as i32
    }

    /// Geometric midpoint of bucket `idx`.
    fn representative(idx: i32) -> f64 {
        ((f64::from(idx) + 0.5) / SUB_BUCKETS).exp2()
    }

    /// Adds an observation. Non-finite values are ignored; negative
    /// values clamp to zero.
    pub fn add(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let v = v.max(0.0);
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v == 0.0 {
            self.zero_count += 1;
            return;
        }
        let idx = Self::index(v);
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
    }

    /// Number of recorded observations.
    #[allow(clippy::len_without_is_empty)] // is_empty is defined below
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Number of recorded observations, as the counter itself.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean, or 0.0 when empty (mirroring `Welford::mean`).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum observation.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum observation.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Nearest-rank quantile, `q ∈ [0, 1]` (clamped). Exact at `q = 0`
    /// and `q = 1`; within `2⁻⁷` relative error elsewhere (see the type
    /// docs). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = self.zero_count;
        if target <= cum {
            return Some(0.0);
        }
        for &(idx, n) in &self.buckets {
            cum += n;
            if target <= cum {
                return Some(Self::representative(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for &(idx, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (idx, n)),
            }
        }
        self.zero_count += other.zero_count;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of distinct non-zero buckets in use (memory-bound checks).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The advertised relative-error bound.
    const BOUND: f64 = 1.0 / 128.0; // 2⁻⁷

    fn exact_nearest_rank(sorted: &[f64], q: f64) -> f64 {
        let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[target - 1]
    }

    #[test]
    fn empty_has_no_quantiles() {
        let h = Log2Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn extremes_are_exact() {
        let mut h = Log2Histogram::new();
        for v in [8.3, 120.7, 0.4, 55.5] {
            h.add(v);
        }
        assert_eq!(h.quantile(0.0), Some(0.4));
        assert_eq!(h.quantile(1.0), Some(120.7));
        assert_eq!(h.min(), Some(0.4));
        assert_eq!(h.max(), Some(120.7));
        let mean = (8.3 + 120.7 + 0.4 + 55.5) / 4.0;
        assert!((h.mean() - mean).abs() < 1e-12);
    }

    #[test]
    fn zeros_and_negatives_share_the_zero_bucket() {
        let mut h = Log2Histogram::new();
        h.add(0.0);
        h.add(-3.0);
        h.add(4.0);
        assert_eq!(h.len(), 3);
        assert_eq!(h.quantile(0.0), Some(0.0));
        // Rank 2 of 3 is still in the zero bucket.
        assert_eq!(h.quantile(0.5), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
    }

    #[test]
    fn non_finite_is_ignored() {
        let mut h = Log2Histogram::new();
        h.add(f64::NAN);
        h.add(f64::INFINITY);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_matches_combined_stream() {
        let (mut a, mut b, mut all) = (
            Log2Histogram::new(),
            Log2Histogram::new(),
            Log2Histogram::new(),
        );
        for i in 0..100 {
            let v = 1.0 + f64::from(i) * 3.7;
            if i % 2 == 0 {
                a.add(v);
            } else {
                b.add(v);
            }
            all.add(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn memory_is_bounded_by_dynamic_range() {
        let mut h = Log2Histogram::new();
        // A million values across 1 ms – 100 s: far fewer buckets than
        // samples (≈ 128 per octave, ~17 octaves).
        for i in 0..1_000_000u64 {
            h.add(1.0 + (i % 100_000) as f64);
        }
        assert!(h.bucket_count() < 2_300, "got {}", h.bucket_count());
    }

    proptest! {
        /// Any interior quantile of any positive sample set is within
        /// the documented 2⁻⁷ relative bound of the exact nearest-rank
        /// answer.
        #[test]
        fn quantile_error_is_bounded(
            values in proptest::collection::vec(0.001f64..1.0e6, 1..200),
            q in 0.0f64..1.0,
        ) {
            let mut h = Log2Histogram::new();
            for &v in &values {
                h.add(v);
            }
            let mut sorted = values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let exact = exact_nearest_rank(&sorted, q);
            let approx = h.quantile(q).unwrap();
            let rel = (approx - exact).abs() / exact;
            prop_assert!(rel <= BOUND, "q={q} exact={exact} approx={approx} rel={rel}");
        }

        /// Quantiles are monotone in q.
        #[test]
        fn quantiles_are_monotone(
            values in proptest::collection::vec(0.001f64..1.0e6, 1..100),
        ) {
            let mut h = Log2Histogram::new();
            for &v in &values {
                h.add(v);
            }
            let mut prev = f64::NEG_INFINITY;
            for i in 0..=20 {
                let q = f64::from(i) / 20.0;
                let v = h.quantile(q).unwrap();
                prop_assert!(v >= prev, "q={q}: {v} < {prev}");
                prev = v;
            }
        }
    }
}
