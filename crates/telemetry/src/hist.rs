//! Log2-bucketed histogram with a documented relative-error bound.

use serde::{Deserialize, Error, Map, Serialize, Value};

/// Sub-buckets per power of two. With 128 sub-buckets an octave, each
/// bucket spans a `2^(1/128)` ratio, so reporting the geometric
/// midpoint of a bucket is off from any member by at most
/// `2^(1/256) − 1 ≈ 0.27 %` — comfortably inside the advertised `2⁻⁷ ≈
/// 0.78 %` relative bound.
const SUB_BUCKETS: f64 = 128.0;

/// A log2-bucketed histogram over non-negative values.
///
/// Replaces the retain-every-sample-and-sort quantile path in the run
/// report: memory is bounded by the dynamic range (≈ 128 buckets per
/// factor of two, so a run whose latencies span 1 ms – 100 s needs at
/// most ~2 200 buckets regardless of request count), and
/// [`quantile`](Self::quantile) is a single cumulative walk.
///
/// Accuracy: quantiles are exact at the extremes (the true minimum and
/// maximum are tracked separately, so `quantile(0.0)` and
/// `quantile(1.0)` carry no bucketing error) and within a relative
/// error of `2^(1/256) − 1 < 2⁻⁷` everywhere else. [`mean`](Self::mean)
/// is exact (running sum). Non-finite values are ignored, mirroring
/// `Samples`; negative values clamp to zero and land in a dedicated
/// zero bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Log2Histogram {
    /// `(bucket index, count)`, sorted by index. The bucket with index
    /// `i` covers `[2^(i/128), 2^((i+1)/128))`.
    buckets: Vec<(i32, u64)>,
    /// Observations that were exactly zero (or clamped up to it).
    zero_count: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: Vec::new(),
            zero_count: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn index(v: f64) -> i32 {
        (v.log2() * SUB_BUCKETS).floor() as i32
    }

    /// Geometric midpoint of bucket `idx`.
    fn representative(idx: i32) -> f64 {
        ((f64::from(idx) + 0.5) / SUB_BUCKETS).exp2()
    }

    /// Adds an observation. Non-finite values are ignored; negative
    /// values clamp to zero.
    pub fn add(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let v = v.max(0.0);
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v == 0.0 {
            self.zero_count += 1;
            return;
        }
        let idx = Self::index(v);
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
    }

    /// Number of recorded observations.
    #[allow(clippy::len_without_is_empty)] // is_empty is defined below
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Number of recorded observations, as the counter itself.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean, or 0.0 when empty (mirroring `Welford::mean`).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum observation.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum observation.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Nearest-rank quantile, `q ∈ [0, 1]` (clamped). Exact at `q = 0`
    /// and `q = 1`; within `2⁻⁷` relative error elsewhere (see the type
    /// docs). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        // One sample: every quantile is that exact observation (min ==
        // max). Without this, interior quantiles returned the bucket
        // representative — p50 and p99 disagreed with the sample by up
        // to the bucket's relative error.
        if self.count == 1 {
            return Some(self.max);
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = self.zero_count;
        if target <= cum {
            return Some(0.0);
        }
        for &(idx, n) in &self.buckets {
            cum += n;
            if target <= cum {
                return Some(Self::representative(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for &(idx, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (idx, n)),
            }
        }
        self.zero_count += other.zero_count;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of distinct non-zero buckets in use (memory-bound checks).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

// Manual serde: the empty histogram's min/max sentinels (`+inf`/`-inf`)
// are not JSON-representable — the derived impl emitted them as `null`,
// which failed to deserialize and would silently corrupt any merge of a
// round-tripped empty histogram. Sharding makes merge the primary
// aggregation path, so the wire form omits min/max entirely when the
// histogram is empty and the reader restores the exact sentinels.
impl Serialize for Log2Histogram {
    fn serialize(&self) -> Value {
        let mut map = Map::new();
        map.insert("buckets".to_string(), self.buckets.serialize());
        map.insert("zero_count".to_string(), self.zero_count.serialize());
        map.insert("count".to_string(), self.count.serialize());
        map.insert("sum".to_string(), self.sum.serialize());
        if self.count > 0 {
            map.insert("min".to_string(), self.min.serialize());
            map.insert("max".to_string(), self.max.serialize());
        }
        Value::Object(map)
    }
}

impl Deserialize for Log2Histogram {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let field = |name: &str| -> Result<&Value, Error> {
            value
                .get(name)
                .ok_or_else(|| Error::custom(format!("Log2Histogram: missing field `{name}`")))
        };
        let count: u64 = Deserialize::deserialize(field("count")?)?;
        let extremum = |name: &str| -> Result<f64, Error> {
            match value.get(name) {
                Some(v) if !matches!(v, Value::Null) => Deserialize::deserialize(v),
                // Absent (new wire form) or `null` (legacy snapshots of
                // an empty histogram): only valid when nothing was
                // recorded, in which case the sentinel is restored by
                // the caller below.
                _ if count == 0 => Ok(f64::NAN),
                _ => Err(Error::custom(format!(
                    "Log2Histogram: non-empty histogram lacks `{name}`"
                ))),
            }
        };
        let min = extremum("min")?;
        let max = extremum("max")?;
        Ok(Log2Histogram {
            buckets: Deserialize::deserialize(field("buckets")?)?,
            zero_count: Deserialize::deserialize(field("zero_count")?)?,
            count,
            sum: Deserialize::deserialize(field("sum")?)?,
            min: if count == 0 { f64::INFINITY } else { min },
            max: if count == 0 { f64::NEG_INFINITY } else { max },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The advertised relative-error bound.
    const BOUND: f64 = 1.0 / 128.0; // 2⁻⁷

    fn exact_nearest_rank(sorted: &[f64], q: f64) -> f64 {
        let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[target - 1]
    }

    #[test]
    fn empty_has_no_quantiles() {
        let h = Log2Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    /// Regression: a single-sample histogram must report that exact
    /// sample at *every* quantile, not a bucket representative — a
    /// one-completion LLM run's TTFT p50/p99 are the sample itself.
    #[test]
    fn single_sample_quantiles_are_exact() {
        for v in [0.0, 1e-9, 0.37, 41.5, 1e12] {
            let mut h = Log2Histogram::new();
            h.add(v);
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(h.quantile(q), Some(v), "v={v} q={q}");
            }
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut h = Log2Histogram::new();
        for v in [8.3, 120.7, 0.4, 55.5] {
            h.add(v);
        }
        assert_eq!(h.quantile(0.0), Some(0.4));
        assert_eq!(h.quantile(1.0), Some(120.7));
        assert_eq!(h.min(), Some(0.4));
        assert_eq!(h.max(), Some(120.7));
        let mean = (8.3 + 120.7 + 0.4 + 55.5) / 4.0;
        assert!((h.mean() - mean).abs() < 1e-12);
    }

    #[test]
    fn zeros_and_negatives_share_the_zero_bucket() {
        let mut h = Log2Histogram::new();
        h.add(0.0);
        h.add(-3.0);
        h.add(4.0);
        assert_eq!(h.len(), 3);
        assert_eq!(h.quantile(0.0), Some(0.0));
        // Rank 2 of 3 is still in the zero bucket.
        assert_eq!(h.quantile(0.5), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
    }

    #[test]
    fn non_finite_is_ignored() {
        let mut h = Log2Histogram::new();
        h.add(f64::NAN);
        h.add(f64::INFINITY);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_matches_combined_stream() {
        let (mut a, mut b, mut all) = (
            Log2Histogram::new(),
            Log2Histogram::new(),
            Log2Histogram::new(),
        );
        for i in 0..100 {
            let v = 1.0 + f64::from(i) * 3.7;
            if i % 2 == 0 {
                a.add(v);
            } else {
                b.add(v);
            }
            all.add(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    /// Sentinel hygiene: merging an empty histogram in (either
    /// direction) must not leak the `±inf` init values into min/max or
    /// the extreme quantiles — sharding produces empty shard recordings
    /// routinely (a function with no traffic on its shard).
    #[test]
    fn merge_with_empty_side_keeps_exact_extremes() {
        let mut recorded = Log2Histogram::new();
        for v in [3.5, 9.1, 0.7] {
            recorded.add(v);
        }
        let mut lhs = Log2Histogram::new();
        lhs.merge(&recorded);
        assert_eq!(lhs.min(), Some(0.7));
        assert_eq!(lhs.max(), Some(9.1));
        assert_eq!(lhs.quantile(0.0), Some(0.7));
        assert_eq!(lhs.quantile(1.0), Some(9.1));

        let mut rhs = recorded.clone();
        rhs.merge(&Log2Histogram::new());
        assert_eq!(rhs, recorded, "merging an empty rhs must be a no-op");

        let mut both = Log2Histogram::new();
        both.merge(&Log2Histogram::new());
        assert!(both.is_empty());
        assert_eq!(both.min(), None);
        assert_eq!(both.quantile(1.0), None);
    }

    /// `quantile(1.0)` of a merged histogram is the exact global
    /// maximum, whichever side contributed it.
    #[test]
    fn merged_top_quantile_is_exact_global_max() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for v in [1.0, 2.0, 440.25] {
            a.add(v);
        }
        for v in [3.0, 17.5] {
            b.add(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.quantile(1.0), Some(440.25));
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ba.quantile(1.0), Some(440.25));
        assert_eq!(ba.quantile(0.0), Some(1.0));
    }

    /// The empty histogram round-trips through serialization: the old
    /// derived impl wrote `min`/`max` as JSON `null` (non-finite f64),
    /// which could not be read back.
    #[test]
    fn empty_histogram_round_trips_through_serde() {
        let empty = Log2Histogram::new();
        let json = serde_json::to_string(&empty).expect("serializes");
        let back: Log2Histogram =
            serde_json::from_str(&json).expect("empty histogram deserializes");
        assert_eq!(back, empty);
        // And it still behaves as empty after the trip.
        let mut h = back;
        h.add(2.0);
        assert_eq!(h.min(), Some(2.0));
        assert_eq!(h.max(), Some(2.0));
    }

    #[test]
    fn populated_histogram_round_trips_through_serde() {
        let mut h = Log2Histogram::new();
        for v in [0.0, 0.25, 6.5, 1e4] {
            h.add(v);
        }
        let json = serde_json::to_string(&h).expect("serializes");
        let back: Log2Histogram = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, h);
    }

    #[test]
    fn memory_is_bounded_by_dynamic_range() {
        let mut h = Log2Histogram::new();
        // A million values across 1 ms – 100 s: far fewer buckets than
        // samples (≈ 128 per octave, ~17 octaves).
        for i in 0..1_000_000u64 {
            h.add(1.0 + (i % 100_000) as f64);
        }
        assert!(h.bucket_count() < 2_300, "got {}", h.bucket_count());
    }

    proptest! {
        /// Any interior quantile of any positive sample set is within
        /// the documented 2⁻⁷ relative bound of the exact nearest-rank
        /// answer.
        #[test]
        fn quantile_error_is_bounded(
            values in proptest::collection::vec(0.001f64..1.0e6, 1..200),
            q in 0.0f64..1.0,
        ) {
            let mut h = Log2Histogram::new();
            for &v in &values {
                h.add(v);
            }
            let mut sorted = values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let exact = exact_nearest_rank(&sorted, q);
            let approx = h.quantile(q).unwrap();
            let rel = (approx - exact).abs() / exact;
            prop_assert!(rel <= BOUND, "q={q} exact={exact} approx={approx} rel={rel}");
        }

        /// The sharded aggregation contract: partitioning a recording
        /// across any number of shard-local histograms and merging them
        /// back is equivalent to recording every value into one
        /// histogram — count, min, max, and mean exactly; interior
        /// quantiles within the documented 2⁻⁷ relative bound. Some
        /// partitions are deliberately left empty.
        #[test]
        fn sharded_merge_equals_single_recording(
            values in proptest::collection::vec(0.0f64..1.0e6, 1..300),
            assignment in proptest::collection::vec(0usize..8, 300),
            shards in 1usize..8,
        ) {
            let mut whole = Log2Histogram::new();
            let mut parts = vec![Log2Histogram::new(); shards];
            for (i, &v) in values.iter().enumerate() {
                whole.add(v);
                parts[assignment[i] % shards].add(v);
            }
            let mut merged = Log2Histogram::new();
            for p in &parts {
                merged.merge(p);
            }
            prop_assert_eq!(merged.count(), values.len() as u64);
            prop_assert_eq!(merged.min(), whole.min());
            prop_assert_eq!(merged.max(), whole.max());
            prop_assert_eq!(merged.bucket_count(), whole.bucket_count());
            // The running sum is accumulated in a different order when
            // partitioned, so the mean agrees to rounding ulps rather
            // than bit-for-bit (per-function histograms are never split
            // across shards in the simulator, so run reports stay
            // bit-identical regardless).
            prop_assert!(
                (merged.mean() - whole.mean()).abs() <= 1e-12 * whole.mean().abs(),
                "mean drifted: {} vs {}", merged.mean(), whole.mean()
            );
            for i in 0..=10 {
                let q = f64::from(i) / 10.0;
                let (m, w) = (merged.quantile(q).unwrap(), whole.quantile(q).unwrap());
                // Same buckets → identical answers; the bound is the
                // documented contract, the equality is the stronger
                // property this representation actually provides.
                prop_assert_eq!(m, w, "q={}", q);
                if w > 0.0 {
                    prop_assert!((m - w).abs() / w <= BOUND);
                }
            }
        }

        /// Quantiles are monotone in q.
        #[test]
        fn quantiles_are_monotone(
            values in proptest::collection::vec(0.001f64..1.0e6, 1..100),
        ) {
            let mut h = Log2Histogram::new();
            for &v in &values {
                h.add(v);
            }
            let mut prev = f64::NEG_INFINITY;
            for i in 0..=20 {
                let q = f64::from(i) / 20.0;
                let v = h.quantile(q).unwrap();
                prop_assert!(v >= prev, "q={q}: {v} < {prev}");
                prev = v;
            }
        }
    }
}
