//! Run telemetry: what happened *inside* a run, not just after it.
//!
//! The paper's evaluation argues through distributions and trajectories
//! — per-request latency CDFs (Fig. 12), instance counts over time
//! (Fig. 14), batch-size mixes (Fig. 13) — so the simulator needs a way
//! to see a run at request granularity without perturbing it. This
//! crate provides three pieces, threaded through the engine by
//! `infless-core`:
//!
//! * [`SpanEvent`] / [`TelemetrySink`] — per-request lifecycle spans
//!   (arrival → enqueued → batch-formed → exec-start →
//!   complete/dropped/shed, plus fault displacement and retry), pushed
//!   into a pluggable sink. The default [`NullSink`] makes a
//!   telemetry-free run bit-identical to one that never heard of this
//!   crate: span emission is gated on [`TelemetrySink::enabled`], never
//!   touches the RNG, and never schedules events.
//! * [`GaugeRow`] / [`TimeseriesSummary`] — tick-driven gauge sampling
//!   (instance counts, CPU/GPU occupancy, queue depth, in-flight
//!   batches) into fixed-interval rows, with a constant-size summary
//!   that is always maintained (it is a handful of max/mean updates per
//!   scaler tick) and folded into the run report.
//! * [`Log2Histogram`] — the log2-bucketed histogram behind the
//!   report's latency and batch-size percentiles, replacing the
//!   retain-and-sort quantile path (relative error ≤ 2⁻⁷, documented
//!   on the type).
//!
//! File outputs ([`FileSink`]) are a JSONL trace (one span per line,
//! preceded by a metadata record) and a CSV time-series; both are
//! written through reused buffers so the per-event hot path allocates
//! nothing after warm-up. [`summarize`] reads a trace back, validates
//! the schema, and recomputes the fault-conservation invariants
//! (`displaced == retried + shed`) from spans alone.

//!
//! The decision layer ([`DecisionEvent`] / [`BreakdownEvent`]) extends
//! the same machinery below the request lifecycle: *why* the scheduler,
//! consolidator, keep-alive reaper, and KV admission gate acted, plus a
//! per-request SLO latency decomposition, all on a dedicated
//! `--decisions-out` channel gated by
//! [`TelemetrySink::decisions_enabled`]. [`MetricsRegistry`] renders an
//! exportable Prometheus text surface, and [`FlightRecorder`] keeps a
//! bounded ring of recent spans that dumps to JSONL on fault bursts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod decision;
mod flight;
mod hist;
mod registry;
mod sink;
mod summary;
mod timeseries;

pub use analyze::{analyze, analyze_file, DecisionAnalysis, FunctionAttribution, STAGES};
pub use decision::{
    write_decision_trace, BreakdownEvent, DecisionEvent, DecisionKind, DecisionReason,
    DecisionRecord,
};
pub use flight::{
    FlightRecorder, FLIGHT_BURST_THRESHOLD, FLIGHT_BURST_WINDOW_S, FLIGHT_MAX_DUMPS,
    FLIGHT_RING_CAPACITY,
};
pub use hist::Log2Histogram;
pub use registry::{validate_prometheus_text, MetricsHandle, MetricsRegistry};
pub use sink::{
    DecisionBufferSink, FaultTag, FileSink, MemorySink, MemoryStore, NullSink, SpanEvent, SpanKind,
    TelemetrySink, TraceMeta, SPAN_RING_CAPACITY,
};
pub use summary::{summarize, summarize_file, TraceSummary};
pub use timeseries::{GaugeRow, TimeseriesSummary};
