//! A small metrics registry: counters, gauges, and fixed-bucket
//! histograms with label sets, rendered in the Prometheus text
//! exposition format.
//!
//! This is the exportable metrics surface behind
//! `inflessctl … --metrics-out metrics.prom` and the feed for a future
//! live `serve` mode. It is deliberately simulation-neutral: the engine
//! feeds it at scaler ticks (values it computes anyway), the run layer
//! adds final counters from the report, and nothing about the registry
//! can perturb a run — it draws no randomness, schedules no events, and
//! never enters the run report.
//!
//! Rendering is deterministic: families sort by name and series by
//! rendered label set (both live in `BTreeMap`s), so the same run
//! produces byte-identical output — the property the CI determinism
//! gate byte-diffs across shard counts.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// What a metric family measures — the `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FamilyKind {
    Counter,
    Gauge,
    Histogram,
}

impl FamilyKind {
    fn name(self) -> &'static str {
        match self {
            FamilyKind::Counter => "counter",
            FamilyKind::Gauge => "gauge",
            FamilyKind::Histogram => "histogram",
        }
    }
}

/// One series' cumulative histogram state.
#[derive(Debug, Clone, Default)]
struct HistSeries {
    /// Count per bucket, parallel to the family's upper bounds.
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

#[derive(Debug)]
struct Family {
    help: &'static str,
    kind: FamilyKind,
    /// Scalar series (counter/gauge), keyed by rendered label set.
    series: BTreeMap<String, f64>,
    /// Histogram series, keyed by rendered label set.
    hists: BTreeMap<String, HistSeries>,
    /// Bucket upper bounds (histograms only), fixed at first observe.
    buckets: Vec<f64>,
}

/// A registry of metric families. See the [module docs](self).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: BTreeMap<&'static str, Family>,
}

/// A shared handle to a registry: the engine holds one and feeds it at
/// scaler ticks; the run layer holds another and renders at the end.
pub type MetricsHandle = Arc<Mutex<MetricsRegistry>>;

/// Renders a label set as the `{k="v",…}` selector, keys sorted —
/// identical label sets always produce identical series keys.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{k}=\"").expect("write to String cannot fail");
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// A fresh shared handle to an empty registry.
    pub fn handle() -> MetricsHandle {
        Arc::new(Mutex::new(MetricsRegistry::new()))
    }

    fn family(&mut self, name: &'static str, help: &'static str, kind: FamilyKind) -> &mut Family {
        let fam = self.families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            series: BTreeMap::new(),
            hists: BTreeMap::new(),
            buckets: Vec::new(),
        });
        assert_eq!(
            fam.kind, kind,
            "metric {name} registered twice with different types"
        );
        fam
    }

    /// Adds `v` to the counter series `name{labels}` (created at zero).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type, or
    /// `v` is negative (counters are monotone).
    pub fn counter_add(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        v: f64,
    ) {
        assert!(v >= 0.0, "counter {name} decremented");
        let key = render_labels(labels);
        *self
            .family(name, help, FamilyKind::Counter)
            .series
            .entry(key)
            .or_insert(0.0) += v;
    }

    /// Sets the gauge series `name{labels}` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn gauge_set(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        v: f64,
    ) {
        let key = render_labels(labels);
        self.family(name, help, FamilyKind::Gauge)
            .series
            .insert(key, v);
    }

    /// Observes `v` into the histogram series `name{labels}`. The first
    /// observation of a family fixes its bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type or
    /// with different buckets.
    pub fn histogram_observe(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        buckets: &[f64],
        v: f64,
    ) {
        let key = render_labels(labels);
        let fam = self.family(name, help, FamilyKind::Histogram);
        if fam.buckets.is_empty() {
            fam.buckets = buckets.to_vec();
        } else {
            assert_eq!(fam.buckets, buckets, "histogram {name} buckets changed");
        }
        let n = fam.buckets.len();
        let hist = fam.hists.entry(key).or_insert_with(|| HistSeries {
            counts: vec![0; n],
            ..HistSeries::default()
        });
        for (i, le) in fam.buckets.iter().enumerate() {
            if v <= *le {
                hist.counts[i] += 1;
            }
        }
        hist.sum += v;
        hist.total += 1;
    }

    /// Renders every family in the Prometheus text exposition format:
    /// `# HELP` and `# TYPE` per family, one line per series, families
    /// and series in sorted order (so no series ever repeats).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            writeln!(out, "# HELP {name} {}", fam.help).expect("write to String cannot fail");
            writeln!(out, "# TYPE {name} {}", fam.kind.name())
                .expect("write to String cannot fail");
            for (labels, v) in &fam.series {
                writeln!(out, "{name}{labels} {v}").expect("write to String cannot fail");
            }
            for (labels, hist) in &fam.hists {
                // Re-render the bucket lines with the `le` label
                // appended inside the selector.
                let inner = labels.strip_suffix('}').map(|s| &s[1..]);
                for (i, le) in fam.buckets.iter().enumerate() {
                    let sel = match inner {
                        Some(rest) if !rest.is_empty() => format!("{{{rest},le=\"{le}\"}}"),
                        _ => format!("{{le=\"{le}\"}}"),
                    };
                    writeln!(out, "{name}_bucket{sel} {}", hist.counts[i])
                        .expect("write to String cannot fail");
                }
                let sel = match inner {
                    Some(rest) if !rest.is_empty() => format!("{{{rest},le=\"+Inf\"}}"),
                    _ => String::from("{le=\"+Inf\"}"),
                };
                writeln!(out, "{name}_bucket{sel} {}", hist.total)
                    .expect("write to String cannot fail");
                writeln!(out, "{name}_sum{labels} {}", hist.sum)
                    .expect("write to String cannot fail");
                writeln!(out, "{name}_count{labels} {}", hist.total)
                    .expect("write to String cannot fail");
            }
        }
        out
    }

    /// Renders to a file.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// Validates Prometheus text-format output: every series line belongs
/// to a family that declared `# HELP` and `# TYPE` first, no series
/// (name + label set) appears twice, and values parse as numbers.
/// This is the check CI runs over `--metrics-out` artifacts.
///
/// # Errors
///
/// Returns a description of the first violated rule.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut helped: BTreeMap<String, bool> = BTreeMap::new();
    let mut seen: BTreeMap<String, ()> = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if name.is_empty() {
                return Err(format!("line {line_no}: HELP with no metric name"));
            }
            helped.insert(name.to_string(), true);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {line_no}: unknown metric type {kind:?}"));
            }
            if !helped.contains_key(name) {
                return Err(format!("line {line_no}: TYPE for {name} precedes its HELP"));
            }
            typed.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {line_no}: expected \"series value\""))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("line {line_no}: non-numeric sample value {value:?}"))?;
        let name = series.split('{').next().unwrap_or(series);
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| typed.get(*base).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        if !typed.contains_key(base) {
            return Err(format!(
                "line {line_no}: series {name} has no # TYPE header"
            ));
        }
        if seen.insert(series.to_string(), ()).is_some() {
            return Err(format!("line {line_no}: duplicate series {series}"));
        }
    }
    if typed.is_empty() {
        return Err("no metric families found".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("sim_requests_total", "requests", &[("function", "f0")], 2.0);
        reg.counter_add("sim_requests_total", "requests", &[("function", "f0")], 3.0);
        reg.gauge_set("sim_instances", "instances", &[], 4.0);
        reg.gauge_set("sim_instances", "instances", &[], 7.0);
        let text = reg.render();
        assert!(text.contains("sim_requests_total{function=\"f0\"} 5"));
        assert!(text.contains("sim_instances 7"));
        assert!(text.contains("# TYPE sim_requests_total counter"));
        assert!(text.contains("# HELP sim_instances instances"));
        validate_prometheus_text(&text).unwrap();
    }

    #[test]
    fn histogram_renders_buckets_sum_count() {
        let mut reg = MetricsRegistry::new();
        let buckets = [1.0, 10.0, 100.0];
        for v in [0.5, 5.0, 50.0, 500.0] {
            reg.histogram_observe("sim_queue_depth", "queue depth", &[], &buckets, v);
        }
        let text = reg.render();
        assert!(text.contains("sim_queue_depth_bucket{le=\"1\"} 1"));
        assert!(text.contains("sim_queue_depth_bucket{le=\"10\"} 2"));
        assert!(text.contains("sim_queue_depth_bucket{le=\"100\"} 3"));
        assert!(text.contains("sim_queue_depth_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("sim_queue_depth_count 4"));
        validate_prometheus_text(&text).unwrap();
    }

    #[test]
    fn labels_sort_for_stable_series_keys() {
        assert_eq!(
            render_labels(&[("z", "1"), ("a", "2")]),
            "{a=\"2\",z=\"1\"}"
        );
        assert_eq!(render_labels(&[]), "");
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            reg.gauge_set("b_metric", "b", &[("x", "1")], 1.0);
            reg.gauge_set("a_metric", "a", &[], 2.0);
            reg.counter_add("c_total", "c", &[("fn", "f1")], 1.0);
            reg.counter_add("c_total", "c", &[("fn", "f0")], 1.0);
            reg.render()
        };
        assert_eq!(build(), build());
        // Families render in name order regardless of insertion order.
        let text = build();
        let a = text.find("a_metric").unwrap();
        let b = text.find("b_metric").unwrap();
        assert!(a < b);
    }

    #[test]
    fn validator_rejects_duplicates_and_untyped_series() {
        let dup = "# HELP m x\n# TYPE m gauge\nm 1\nm 2\n";
        assert!(validate_prometheus_text(dup)
            .unwrap_err()
            .contains("duplicate"));
        let untyped = "orphan 1\n";
        assert!(validate_prometheus_text(untyped)
            .unwrap_err()
            .contains("no # TYPE"));
        assert!(validate_prometheus_text("")
            .unwrap_err()
            .contains("no metric"));
    }
}
